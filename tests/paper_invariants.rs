//! Integration tests asserting the paper's analytic invariants across
//! crate boundaries — the statements §4 makes about schedules, partitions
//! and memory, checked against the executing system rather than against
//! formulas alone.

use ecofl::prelude::*;
use ecofl_pipeline::executor::ExecError;
use ecofl_pipeline::orchestrator::{k_bounds, p_bounds, q_bounds};
use ecofl_pipeline::partition::{partition_feasible, partition_objective};
use ecofl_pipeline::profiler::PipelineProfile;

fn devices3() -> Vec<Device> {
    vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ]
}

/// §4.2: the DP's objective value must lower-bound every alternative
/// feasible partition (sampled alternatives, full check in unit tests).
#[test]
fn dp_partition_is_optimal_among_shifted_variants() {
    let model = efficientnet_at(0, 224);
    let link = Link::mbps_100();
    let devices = devices3();
    let mbs = 8;
    let best = partition_dp(&model, &devices, &link, mbs).expect("feasible");
    let best_obj = partition_objective(&model, &best, &devices, &link, mbs);
    // Perturb each internal boundary by ±1 and ±2.
    for b in 1..best.boundaries.len() - 1 {
        for delta in [-2i64, -1, 1, 2] {
            let mut cand = best.clone();
            let moved = cand.boundaries[b] as i64 + delta;
            if moved <= cand.boundaries[b - 1] as i64 || moved >= cand.boundaries[b + 1] as i64 {
                continue;
            }
            cand.boundaries[b] = moved as usize;
            if !partition_feasible(&model, &cand, &devices, mbs) {
                continue;
            }
            let obj = partition_objective(&model, &cand, &devices, &link, mbs);
            assert!(
                obj + 1e-12 >= best_obj,
                "perturbed partition {cand:?} beats DP: {obj} < {best_obj}"
            );
        }
    }
}

/// §4.3: running with K = P must be at least as fast as any K < P
/// (DDB-free optimality of the Eq. 3 bounds).
#[test]
fn eq3_bounds_are_throughput_optimal_residencies() {
    let model = efficientnet_at(0, 224);
    let link = Link::mbps_100();
    let devices = devices3();
    let partition = partition_dp(&model, &devices, &link, 8).expect("feasible");
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 8);
    let p = p_bounds(&profile);
    let reference = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k: p.clone() })
        .expect("valid schedule")
        .run(12, 2)
        .expect("runs");
    for s in 0..p.len() {
        if p[s] <= 1 {
            continue;
        }
        let mut starved = p.clone();
        starved[s] -= 1;
        let r = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k: starved })
            .expect("valid schedule")
            .run(12, 2)
            .expect("runs");
        assert!(
            r.throughput <= reference.throughput + 1e-9,
            "starving stage {s} should not raise throughput"
        );
    }
    // And more residency than P gains nothing (P already hides the
    // round-trip).
    let mut extra = p.clone();
    extra[0] += 2;
    let r = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k: extra })
        .expect("valid schedule")
        .run(12, 2)
        .expect("runs");
    assert!(
        (r.throughput - reference.throughput).abs() / reference.throughput < 0.02,
        "residency beyond P should be throughput-neutral: {} vs {}",
        r.throughput,
        reference.throughput
    );
}

/// §4.1/Table 2: at equal settings Gpipe's peak memory exceeds
/// 1F1B-Sync's whenever M > max K, and both compute the same amount of
/// work (identical throughput ordering is not required, memory is).
#[test]
fn gpipe_memory_dominates_1f1b() {
    let model = efficientnet_at(2, 224);
    let link = Link::mbps_100();
    let devices = vec![Device::new(tx2_q()), Device::new(nano_h())];
    for mbs in [4usize, 8] {
        let partition = partition_dp(&model, &devices, &link, mbs).expect("feasible");
        let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, mbs);
        let k = k_bounds(&profile).expect("fits");
        let m = 2 * k.iter().max().copied().unwrap_or(1) + 2;
        let ours = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
            .expect("valid schedule")
            .run(m, 1)
            .expect("ours runs");
        match PipelineExecutor::new(&profile, SchedulePolicy::BafSync)
            .expect("valid schedule")
            .run(m, 1)
        {
            Ok(gpipe) => {
                assert!(
                    gpipe.stage_peak_memory[0] > ours.stage_peak_memory[0],
                    "mbs {mbs}: Gpipe {} must exceed ours {}",
                    gpipe.stage_peak_memory[0],
                    ours.stage_peak_memory[0]
                );
            }
            Err(ExecError::Oom { .. }) => {
                // OOM is an acceptable (stronger) outcome for Gpipe.
            }
            Err(e) => panic!("simulator can only fail with Oom, got {e}"),
        }
    }
}

/// §4.3: Q bounds respect memory; K never exceeds either bound.
#[test]
fn residency_bounds_consistency() {
    let model = efficientnet_at(4, 224);
    let link = Link::mbps_100();
    let devices = devices3();
    for mbs in [4usize, 8, 16] {
        let Some(partition) = partition_dp(&model, &devices, &link, mbs) else {
            continue;
        };
        let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, mbs);
        let p = p_bounds(&profile);
        let q = q_bounds(&profile);
        let Some(k) = k_bounds(&profile) else {
            continue;
        };
        for s in 0..k.len() {
            assert!(k[s] <= p[s] && k[s] <= q[s], "K must be min(P, Q)");
            assert!(k[s] >= 1);
            // Memory with K resident micro-batches must fit the budget.
            let stage = &profile.stages()[s];
            assert!(
                stage.memory_with_residency(k[s]) <= stage.memory_budget_bytes,
                "stage {s} at mbs {mbs} exceeds its budget with K={}",
                k[s]
            );
        }
    }
}

/// §6.3 claim: a larger micro-batch size (with equal total samples per
/// round) must not reduce the executor's throughput when memory admits
/// the same relative residency.
#[test]
fn larger_micro_batches_help_when_memory_allows() {
    let model = efficientnet_at(0, 224);
    let link = Link::mbps_100();
    let devices = devices3();
    let run_at = |mbs: usize, m: usize| {
        let partition = partition_dp(&model, &devices, &link, mbs).expect("feasible");
        let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, mbs);
        let k = k_bounds(&profile).expect("fits");
        PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
            .expect("valid schedule")
            .run(m, 2)
            .expect("runs")
            .throughput
    };
    let small = run_at(4, 32);
    let large = run_at(16, 8);
    assert!(
        large > small,
        "mbs 16 ({large}) should outperform mbs 4 ({small}) at equal samples/round"
    );
}
