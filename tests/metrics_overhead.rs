//! Wall-clock overhead gate for the metrics hub on the 1F1B hot path.
//!
//! Ignored by default — wall-clock ratios are meaningless under the
//! normal parallel test runner. `scripts/ci.sh` runs it explicitly
//! (release, watchdogged, at `ECOFL_THREADS=1/2/8`), mirroring the
//! committed `pipeline_1f1b_round_b2_m16` /
//! `pipeline_1f1b_round_b2_m16_metered` bench pair.

use ecofl::prelude::*;
use ecofl_pipeline::executor::{PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::orchestrator::k_bounds;
use ecofl_pipeline::partition::partition_dp;
use ecofl_pipeline::profiler::PipelineProfile;
use std::hint::black_box;
use std::time::Instant;

/// Generous bound: per-task hub cost is one atomic add plus one
/// mutex-guarded sketch insert, well under the event loop's own work;
/// the slack absorbs scheduler noise on loaded CI machines.
const MAX_MEDIAN_RATIO: f64 = 2.5;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

#[test]
#[ignore = "wall-clock perf gate; scripts/ci.sh runs it explicitly"]
fn hub_overhead_on_1f1b_round_is_bounded() {
    // The headline bench's 1F1B hot path: EfficientNet-B2 over
    // TX2-Q + 2x Nano-H, mbs 16, one 16-micro-batch sync-round.
    let model = efficientnet_at(2, 224);
    let devices = vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ];
    let link = Link::mbps_100();
    let partition = partition_dp(&model, &devices, &link, 16).expect("feasible");
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 16);
    let k = k_bounds(&profile).expect("residency");

    let hub = MetricsHub::new();
    let run_once = |hub: Option<&MetricsHub>| -> f64 {
        let mut exec = PipelineExecutor::new(
            black_box(&profile),
            SchedulePolicy::OneFOneBSync { k: k.clone() },
        )
        .expect("valid schedule");
        if let Some(h) = hub {
            exec = exec.with_metrics(h);
        }
        let t0 = Instant::now();
        black_box(exec.run(16, 1).expect("no OOM"));
        t0.elapsed().as_secs_f64()
    };

    for _ in 0..3 {
        run_once(None);
        run_once(Some(&hub));
    }
    // Interleave A/B samples so clock drift hits both sides equally.
    let mut plain = Vec::new();
    let mut metered = Vec::new();
    for _ in 0..15 {
        plain.push(run_once(None));
        metered.push(run_once(Some(&hub)));
    }
    let (p, m) = (median(plain), median(metered));
    let ratio = m / p;
    println!("1f1b round: plain {p:.6}s, metered {m:.6}s, ratio {ratio:.3}");
    assert!(
        ratio < MAX_MEDIAN_RATIO,
        "metrics hub costs {ratio:.2}x on the 1F1B round (bound {MAX_MEDIAN_RATIO}x)"
    );
    // Sanity: the metered side really was recording.
    assert!(hub.snapshot(0).counter("exec_tasks").unwrap_or(0) > 0);
}
