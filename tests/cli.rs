//! End-to-end smoke tests of the `ecofl` CLI binary.

use std::process::Command;

fn ecofl(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ecofl"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn devices_lists_table1() {
    let (ok, stdout, _) = ecofl(&["devices"]);
    assert!(ok);
    for name in ["Nano-L", "Nano-H", "TX2-Q", "TX2-N"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn plan_prints_stages_and_throughput() {
    let (ok, stdout, _) = ecofl(&[
        "plan",
        "--model",
        "effnet-b0",
        "--devices",
        "tx2q,nanoh",
        "--batch",
        "32",
    ]);
    assert!(ok, "plan failed:\n{stdout}");
    assert!(stdout.contains("stage 0"));
    assert!(stdout.contains("throughput"));
    assert!(stdout.contains("residency K"));
}

#[test]
fn gantt_renders_rows() {
    let (ok, stdout, _) = ecofl(&[
        "gantt",
        "--model",
        "effnet-b0",
        "--devices",
        "tx2q,nanoh",
        "--micro-batches",
        "4",
        "--schedule",
        "gpipe",
    ]);
    assert!(ok, "gantt failed:\n{stdout}");
    assert!(stdout.contains("stage 0 |"));
    assert!(stdout.contains("stage 1 |"));
}

#[test]
fn gantt_renders_interleaved_virtual_stage_rows() {
    let (ok, stdout, stderr) = ecofl(&[
        "gantt",
        "--model",
        "effnet-b0",
        "--devices",
        "tx2q,nanoh",
        "--micro-batches",
        "4",
        "--schedule",
        "interleaved",
    ]);
    assert!(ok, "gantt failed:\n{stdout}\n{stderr}");
    // Two devices at v = 2 produce four virtual-stage rows, chunk-major.
    for row in ["dev 0.0 |", "dev 1.0 |", "dev 0.1 |", "dev 1.1 |"] {
        assert!(stdout.contains(row), "missing {row} in:\n{stdout}");
    }
}

#[test]
fn gantt_renders_zero_bubble_weight_halves() {
    let (ok, stdout, stderr) = ecofl(&[
        "gantt",
        "--model",
        "effnet-b0",
        "--devices",
        "tx2q,nanoh",
        "--micro-batches",
        "4",
        "--schedule",
        "zb",
    ]);
    assert!(ok, "gantt failed:\n{stdout}\n{stderr}");
    let bars: String = stdout.lines().filter(|l| l.starts_with("stage ")).collect();
    assert!(
        bars.chars().any(|c| c.is_ascii_uppercase()),
        "weight-gradient halves must paint A-J:\n{stdout}"
    );
}

#[test]
fn unknown_schedule_fails_cleanly() {
    let (ok, _, stderr) = ecofl(&[
        "gantt",
        "--model",
        "effnet-b0",
        "--devices",
        "tx2q,nanoh",
        "--schedule",
        "rr",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown schedule"), "stderr:\n{stderr}");
}

#[test]
fn fl_runs_a_tiny_federation() {
    let (ok, stdout, _) = ecofl(&[
        "fl",
        "--strategy",
        "fedavg",
        "--clients",
        "8",
        "--horizon",
        "120",
        "--dataset",
        "mnist",
    ]);
    assert!(ok, "fl failed:\n{stdout}");
    assert!(stdout.contains("accuracy"));
    assert!(stdout.contains("updates"));
}

#[test]
fn trace_records_into_a_store_and_inspect_reads_it_back() {
    let dir = std::env::temp_dir().join(format!("ecofl-cli-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = dir.to_str().expect("utf-8 temp path");

    // Record a 3-round pipeline trace into a store with small blocks.
    let (ok, stdout, stderr) = ecofl(&[
        "trace",
        "--model",
        "effnet-b0",
        "--devices",
        "tx2q,nanoh",
        "--rounds",
        "3",
        "--store",
        store,
        "--block-records",
        "32",
    ]);
    assert!(ok, "trace failed:\n{stdout}\n{stderr}");
    assert!(stdout.contains("stored record(s)"), "stdout:\n{stdout}");
    assert!(dir.join("trace.seg").exists());
    assert!(dir.join("checkpoints.seg").exists());

    // `trace --store DIR` with no scenario inspects: a round-range
    // query must prune blocks (decode fewer than the total).
    let (ok, stdout, stderr) = ecofl(&["trace", "--store", store, "--rounds", "1..2"]);
    assert!(ok, "inspect failed:\n{stdout}\n{stderr}");
    assert!(stdout.contains("trace.seg"), "stdout:\n{stdout}");
    let line = stdout
        .lines()
        .find(|l| l.starts_with("query decoded"))
        .expect("decode summary line");
    let nums: Vec<usize> = line
        .split_whitespace()
        .filter_map(|w| w.parse().ok())
        .collect();
    let (decoded, total) = (nums[0], nums[1]);
    assert!(
        decoded < total,
        "expected pruning, decoded {decoded} of {total}:\n{stdout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_live_run_persists_snapshots_and_round_trips_prometheus() {
    let dir = std::env::temp_dir().join(format!("ecofl-cli-metrics-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = dir.to_str().expect("utf-8 temp path");

    // Live metered FL run: dashboard ticks while training, every tick's
    // snapshot lands in the store.
    let (ok, stdout, stderr) = ecofl(&[
        "metrics",
        "--live",
        "fl",
        "--clients",
        "8",
        "--horizon",
        "60",
        "--refresh-ms",
        "50",
        "--store",
        store,
    ]);
    assert!(ok, "metrics --live failed:\n{stdout}\n{stderr}");
    assert!(stdout.contains("metrics snapshot"), "stdout:\n{stdout}");
    for metric in [
        "fl_global_updates",
        "fl_round_latency_s",
        "fl_accuracy",
        "store_blocks_written",
    ] {
        assert!(stdout.contains(metric), "missing {metric} in:\n{stdout}");
    }
    assert!(
        stdout.contains("persisted") && stdout.contains("snapshot(s)"),
        "stdout:\n{stdout}"
    );
    assert!(dir.join("metrics.seg").exists());

    // Inspect the persisted snapshots and export Prometheus text.
    let prom = dir.join("export.prom");
    let prom_path = prom.to_str().expect("utf-8 temp path");
    let (ok, stdout, stderr) = ecofl(&["metrics", "--store", store, "--export", prom_path]);
    assert!(ok, "metrics inspect failed:\n{stdout}\n{stderr}");
    assert!(stdout.contains("metrics snapshot(s))"), "stdout:\n{stdout}");
    assert!(stdout.contains("fl_global_updates"), "stdout:\n{stdout}");
    let text = std::fs::read_to_string(&prom).expect("export written");
    assert!(text.starts_with("# ecofl-metrics v1 round="), "{text}");
    assert!(text.contains("# TYPE fl_round_latency_s histogram"));

    // Import the export, re-export, and demand a byte-identical file:
    // the CLI-level Prometheus round trip.
    let prom2 = dir.join("export2.prom");
    let prom2_path = prom2.to_str().expect("utf-8 temp path");
    let (ok, stdout, stderr) = ecofl(&["metrics", "--import", prom_path, "--export", prom2_path]);
    assert!(ok, "metrics import failed:\n{stdout}\n{stderr}");
    let text2 = std::fs::read_to_string(&prom2).expect("re-export written");
    assert_eq!(text, text2, "Prometheus round trip must be byte-identical");

    // --round selects a specific stored snapshot.
    let (ok, stdout, stderr) = ecofl(&["metrics", "--store", store, "--round", "1"]);
    assert!(ok, "metrics --round failed:\n{stdout}\n{stderr}");
    assert!(stdout.contains("round 1 ("), "stdout:\n{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_inspect_fails_cleanly_without_snapshots() {
    let dir = std::env::temp_dir().join(format!("ecofl-cli-nometrics-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    assert!(!ecofl(&["metrics", "--store", dir.to_str().unwrap()]).0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = ecofl(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "stderr:\n{stderr}");
}

#[test]
fn bad_model_fails_cleanly() {
    let (ok, _, stderr) = ecofl(&["plan", "--model", "resnet-50", "--devices", "tx2q,nanoh"]);
    assert!(!ok);
    assert!(stderr.contains("unknown model"));
}

#[test]
fn missing_required_arg_fails_cleanly() {
    let (ok, _, stderr) = ecofl(&["plan", "--devices", "tx2q"]);
    assert!(!ok);
    assert!(stderr.contains("--model is required"));
}

#[test]
fn help_prints_all_commands() {
    let (ok, stdout, _) = ecofl(&["help"]);
    assert!(ok);
    for cmd in ["devices", "plan", "gantt", "spike", "fl", "metrics"] {
        assert!(stdout.contains(cmd));
    }
}
