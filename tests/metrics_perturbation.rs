//! The metrics hub only *observes*: attaching a [`MetricsHub`] to the
//! FL engine, the virtual-time executor, or the threaded pipeline
//! runtime must leave results and traces **bit-identical** to a
//! detached run. `scripts/ci.sh` re-runs this suite at
//! `ECOFL_THREADS=1/2/8`, so the guarantee holds across kernel
//! parallelism levels too.

use ecofl::prelude::*;
use ecofl_compat::json;
use ecofl_pipeline::executor::{PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::profiler::{PipelineProfile, StageProfile};
use ecofl_pipeline::runtime::{PipelineTrainer, RuntimeOptions, SegmentFactory};
use ecofl_tensor::{Layer, Linear, ReLU};

fn tiny_setup(seed: u64) -> FlSetup {
    let config = FlConfig {
        num_clients: 12,
        clients_per_round: 4,
        num_groups: 2,
        horizon: 120.0,
        eval_interval: 30.0,
        seed,
        ..FlConfig::default()
    };
    let data = FederatedDataset::generate(
        &SyntheticSpec::mnist_like(),
        12,
        30,
        20,
        PartitionScheme::ClassesPerClient(2),
        None,
        seed,
    );
    FlSetup {
        data,
        arch: ModelArch::Mlp,
        config,
    }
}

#[test]
fn fl_run_is_bit_identical_with_hub_attached() {
    let setup = tiny_setup(7);
    let strategy = Strategy::EcoFl {
        dynamic_grouping: true,
    };

    let tracer_a = Tracer::new();
    let plain = run_strategy_traced(strategy, &setup, &tracer_a);

    let tracer_b = Tracer::new();
    let hub = MetricsHub::new();
    let metered = run_strategy_metered(strategy, &setup, Some(&tracer_b), &hub);

    // The RunResult is bit-identical...
    assert_eq!(plain.accuracy, metered.accuracy);
    assert_eq!(
        plain.final_accuracy.to_bits(),
        metered.final_accuracy.to_bits()
    );
    assert_eq!(
        plain.best_accuracy.to_bits(),
        metered.best_accuracy.to_bits()
    );
    assert_eq!(plain.global_updates, metered.global_updates);
    assert_eq!(plain.regroup_events, metered.regroup_events);
    assert_eq!(plain.dropped_final, metered.dropped_final);
    assert_eq!(plain.final_recall, metered.final_recall);
    // ...and so is the full trace record stream.
    assert_eq!(tracer_a.records(), tracer_b.records());

    // The hub actually observed the run.
    let snap = hub.snapshot(0);
    assert_eq!(
        snap.counter("fl_global_updates"),
        Some(metered.global_updates)
    );
    assert!(snap.counter("fl_cohorts_dispatched").unwrap_or(0) > 0);
    let latency = snap.histogram("fl_round_latency_s").expect("histogram");
    assert!(latency.count > 0);
    let acc = snap.gauge("fl_accuracy").expect("accuracy gauge");
    assert_eq!(acc.last.to_bits(), metered.final_accuracy.to_bits());
}

fn uniform_profile(s_count: usize) -> PipelineProfile {
    let stages: Vec<StageProfile> = (0..s_count)
        .map(|s| {
            let last = s + 1 == s_count;
            StageProfile {
                device: s,
                layers: s..s + 1,
                t_fwd: 0.4,
                t_bwd: 0.8,
                c_fwd: if last { 0.0 } else { 0.1 },
                c_bwd: if last { 0.0 } else { 0.1 },
                param_bytes: 1,
                activation_bytes_per_mb: 1,
                boundary_bytes: 1,
                memory_budget_bytes: 1 << 40,
                efficiency: 1.0,
            }
        })
        .collect();
    PipelineProfile::from_stages(stages, 4)
}

#[test]
fn executor_report_and_trace_are_bit_identical_with_hub_attached() {
    let profile = uniform_profile(3);
    let k = vec![3, 2, 1];
    let policies = [
        SchedulePolicy::OneFOneBSync { k: k.clone() },
        SchedulePolicy::ZeroBubble { k: k.clone() },
    ];
    for policy in policies {
        let exec_plain = PipelineExecutor::new(&profile, policy.clone()).expect("executor");
        let tracer_a = Tracer::new();
        let plain = exec_plain.run_traced(6, 2, &tracer_a).expect("runs");

        let hub = MetricsHub::new();
        let exec_metered = PipelineExecutor::new(&profile, policy.clone())
            .expect("executor")
            .with_metrics(&hub);
        let tracer_b = Tracer::new();
        let metered = exec_metered.run_traced(6, 2, &tracer_b).expect("runs");

        // Reports serialize identically (f64s compare bitwise through
        // the shortest-round-trip JSON encoding) and traces match.
        assert_eq!(
            json::to_string(&plain).expect("encodes"),
            json::to_string(&metered).expect("encodes"),
        );
        assert_eq!(tracer_a.records(), tracer_b.records());

        // Every dispatched compute task was counted, at its virtual
        // duration.
        let snap = hub.snapshot(0);
        assert_eq!(
            snap.counter("exec_tasks"),
            Some(metered.task_spans.len() as u64)
        );
        let task_s = snap.histogram("exec_task_s").expect("histogram");
        assert_eq!(task_s.count, metered.task_spans.len() as u64);
        let round_s = snap.histogram("exec_round_s").expect("histogram");
        assert_eq!(round_s.count, metered.rounds as u64);
    }
}

/// One hidden block per stage; same seed → same initial weights.
fn mlp_factory(seed: u64, stages: usize) -> SegmentFactory {
    Box::new(move || {
        let widths: Vec<usize> = std::iter::once(12)
            .chain(std::iter::repeat_n(16, stages - 1))
            .chain(std::iter::once(4))
            .collect();
        let mut rng = Rng::new(seed);
        (0..widths.len() - 1)
            .map(|s| {
                let mut layers: Vec<Box<dyn Layer>> =
                    vec![Box::new(Linear::new(widths[s], widths[s + 1], &mut rng))];
                if s + 2 < widths.len() {
                    layers.push(Box::new(ReLU::new()));
                }
                layers
            })
            .collect()
    })
}

#[test]
fn threaded_runtime_params_are_bit_identical_with_hub_attached() {
    let stages = 2;
    let rounds = 2;
    let m = 4;
    let k: Vec<usize> = (0..stages).map(|s| stages - s).collect();
    let data: Vec<Vec<(Tensor, Vec<usize>)>> = (0..rounds)
        .map(|r| {
            let mut rng = Rng::new(100 + r as u64);
            (0..m)
                .map(|_| {
                    let x = Tensor::randn(&[6, 12], 1.0, &mut rng);
                    let y = (0..6).map(|_| rng.range_usize(0, 4)).collect();
                    (x, y)
                })
                .collect()
        })
        .collect();

    let run = |metrics: Option<MetricsHub>| -> Vec<f32> {
        let opts = RuntimeOptions {
            metrics,
            ..RuntimeOptions::default()
        };
        let mut trainer =
            PipelineTrainer::launch_supervised(mlp_factory(3, stages), k.clone(), opts)
                .expect("launches");
        for batch in &data {
            trainer.train_round(batch, 0.05).expect("round runs");
        }
        let params = trainer.params().expect("collects");
        trainer.shutdown();
        params
    };

    let plain = run(None);
    let hub = MetricsHub::new();
    let metered = run(Some(hub.clone()));
    assert_eq!(plain, metered, "hub must not perturb training");

    // The wall-clock instrumentation really measured the run.
    let snap = hub.snapshot(0);
    // Launch checkpoint + one per round.
    assert_eq!(snap.counter("rt_checkpoints"), Some(rounds as u64 + 1));
    assert_eq!(snap.counter("rt_stage_deaths"), Some(0));
    assert_eq!(snap.counter("rt_recv_timeouts"), Some(0));
    let fwd = snap.histogram("rt_fwd_compute_ns").expect("histogram");
    assert_eq!(fwd.count, (stages * m * rounds) as u64);
    let bwd = snap.histogram("rt_bwd_compute_ns").expect("histogram");
    assert_eq!(bwd.count, (stages * m * rounds) as u64);
    assert!(bwd.sum > 0.0, "backward compute takes real time");
    let wait = snap.histogram("rt_recv_wait_ns").expect("histogram");
    assert!(wait.count > 0, "portal waits are measured");
    let round_ns = snap.histogram("rt_round_ns").expect("histogram");
    assert_eq!(round_ns.count, rounds as u64);
    let ckpt_ns = snap.histogram("rt_checkpoint_ns").expect("histogram");
    assert_eq!(ckpt_ns.count, rounds as u64 + 1);
}
