//! Property-tested invariants of the obs layer against the pipeline
//! executor: traced spans must serialize per device, the trace's idle
//! accounting must agree with the executor's own, on a uniform
//! pipeline the measured bubble fraction must match the analytic Eq. 2
//! synchronous static bubble exactly, and a round-range query over a
//! stored trace must prune blocks while returning exactly what a full
//! scan would.

use ecofl::obs::{Domain, RunStore, SpanKind, SpanRecord, TraceQuery, Tracer};
use ecofl_compat::check::{f64_in, forall, quad, triple, usize_in, vec_in};
use ecofl_pipeline::executor::{PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::orchestrator::p_bounds;
use ecofl_pipeline::profiler::{PipelineProfile, StageProfile};
use ecofl_pipeline::schedule::{ScheduleKind, DEFAULT_INTERLEAVE};

const CASES: usize = 24;

/// A stage with explicit compute/comm times and ample memory.
fn stage(s: usize, s_count: usize, t_fwd: f64, t_bwd: f64, comm: f64) -> StageProfile {
    let last = s + 1 == s_count;
    StageProfile {
        device: s,
        layers: s..s + 1,
        t_fwd,
        t_bwd,
        c_fwd: if last { 0.0 } else { comm },
        c_bwd: if last { 0.0 } else { comm },
        param_bytes: 1,
        activation_bytes_per_mb: 1,
        boundary_bytes: 1,
        memory_budget_bytes: 1 << 40,
        efficiency: 1.0,
    }
}

fn assert_serialized(spans: &mut Vec<&SpanRecord>, what: &str) {
    spans.sort_by(|a, b| a.t0.partial_cmp(&b.t0).expect("finite"));
    for w in spans.windows(2) {
        assert!(
            w[1].t0 >= w[0].t1 - 1e-9,
            "{what} overlap: [{}, {}] then [{}, {}]",
            w[0].t0,
            w[0].t1,
            w[1].t0,
            w[1].t1
        );
    }
}

#[test]
fn traced_spans_serialize_per_device_and_idle_matches_executor() {
    // Heterogeneous stage widths, arbitrary micro-batch count and rounds.
    let input = triple(
        vec_in(f64_in(0.05, 1.0), 2, 5),
        usize_in(2, 9),
        usize_in(1, 4),
    );
    forall(
        "traced_spans_serialize_per_device_and_idle_matches_executor",
        CASES,
        &input,
        |(widths, m, rounds)| {
            let s_count = widths.len();
            let stages: Vec<StageProfile> = widths
                .iter()
                .enumerate()
                .map(|(s, &w)| stage(s, s_count, w / 3.0, 2.0 * w / 3.0, 0.02))
                .collect();
            let profile = PipelineProfile::from_stages(stages, 4);
            let k = p_bounds(&profile);
            let exec = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
                .expect("valid schedule");
            let tracer = Tracer::new();
            let report = exec.run_traced(*m, *rounds, &tracer).expect("ample memory");
            let view = tracer.view();

            assert_eq!(view.stage_count(), s_count);
            assert_eq!(view.pipeline_rounds(), *rounds);
            for s in 0..s_count {
                // A device executes one compute task at a time …
                let mut compute: Vec<&SpanRecord> = view
                    .spans()
                    .filter(|sp| sp.is_compute() && sp.entity == s)
                    .collect();
                assert_eq!(compute.len(), 2 * m * rounds, "2·M tasks per round");
                assert_serialized(&mut compute, "compute");
                // … and each link direction carries one transfer at a time.
                for kind in [SpanKind::CommForward, SpanKind::CommBackward] {
                    let mut comm: Vec<&SpanRecord> = view
                        .spans_of(Domain::Pipeline, kind)
                        .filter(|sp| sp.entity == s)
                        .collect();
                    assert_serialized(&mut comm, "comm");
                }
            }
            // The trace's idle accounting is the executor's.
            let report_idle: f64 = report.stage_idle_time.iter().sum();
            assert!(
                (view.total_idle_time() - report_idle).abs() < 1e-9,
                "trace idle {} vs executor idle {report_idle}",
                view.total_idle_time()
            );
        },
    );
}

#[test]
fn stored_round_query_prunes_blocks_and_matches_full_scan() {
    // A real multi-round executor trace in a store with small blocks:
    // a single-round query must decode strictly fewer blocks than the
    // segment holds (the decode counter proves pruning actually ran)
    // and still return exactly the full-scan filter of every record.
    let input = triple(
        vec_in(f64_in(0.05, 1.0), 2, 4),
        usize_in(2, 6),
        usize_in(3, 6),
    );
    forall(
        "stored_round_query_prunes_blocks_and_matches_full_scan",
        8,
        &input,
        |(widths, m, rounds)| {
            let s_count = widths.len();
            let stages: Vec<StageProfile> = widths
                .iter()
                .enumerate()
                .map(|(s, &w)| stage(s, s_count, w / 3.0, 2.0 * w / 3.0, 0.02))
                .collect();
            let profile = PipelineProfile::from_stages(stages, 4);
            let k = p_bounds(&profile);
            let exec = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
                .expect("valid schedule");
            let tracer = Tracer::new();
            exec.run_traced(*m, *rounds, &tracer).expect("ample memory");
            let records = tracer.records();

            let dir = std::env::temp_dir().join(format!(
                "ecofl-trace-invariants-{}-{s_count}-{m}-{rounds}",
                std::process::id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            let mut store = RunStore::create(&dir)
                .expect("create store")
                .with_block_records(16);
            store.append(&records).expect("append");
            store.flush().expect("flush");

            let query = TraceQuery::new().rounds(0..1);
            let result = store.query(&query).expect("query");
            assert!(
                result.blocks_decoded < result.blocks_total,
                "round 0 of {rounds} decoded {} of {} blocks — no pruning happened",
                result.blocks_decoded,
                result.blocks_total
            );
            let expected: Vec<_> = records
                .iter()
                .filter(|r| query.matches(r))
                .cloned()
                .collect();
            assert_eq!(
                result.records, expected,
                "pruned query diverged from full scan"
            );
            std::fs::remove_dir_all(&dir).ok();
        },
    );
}

#[test]
fn uniform_pipeline_bubble_fraction_matches_eq2_ssb() {
    // S identical stages, zero task overhead, DDB-free residency: every
    // round's bubble is exactly the Eq. 2 synchronous static bubble, so
    // the trace-measured fraction must equal SSB / (M·(t_f+t_b) + SSB).
    let input = quad(
        usize_in(2, 6),
        usize_in(2, 10),
        f64_in(0.05, 0.5),
        f64_in(0.0, 0.2),
    );
    forall(
        "uniform_pipeline_bubble_fraction_matches_eq2_ssb",
        CASES,
        &input,
        |(s_count, m, w, comm)| {
            let stages: Vec<StageProfile> = (0..*s_count)
                .map(|s| stage(s, *s_count, *w, 2.0 * *w, *comm))
                .collect();
            let profile = PipelineProfile::from_stages(stages, 4);
            let k = p_bounds(&profile);
            let exec = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
                .expect("valid schedule")
                .with_task_overhead(0.0);
            let tracer = Tracer::new();
            let report = exec.run_traced(*m, 2, &tracer).expect("ample memory");
            let view = tracer.view();

            // Eq. 2 on uniform stages: SSB = (S−1) · (t_f + t_b + c_f + c_b).
            let w_c = 3.0 * *w;
            let expected_ssb = (*s_count as f64 - 1.0) * (w_c + 2.0 * *comm);
            assert!(
                (report.ssb_per_round - expected_ssb).abs() < 1e-9,
                "analytic SSB {} vs Eq. 2 {expected_ssb}",
                report.ssb_per_round
            );
            let expected_bubble = expected_ssb / (*m as f64 * w_c + expected_ssb);
            for r in 0..view.pipeline_rounds() {
                let bubble = view.bubble_fraction(r).expect("round has spans");
                assert!(
                    (bubble - expected_bubble).abs() < 1e-9,
                    "round {r}: measured bubble {bubble} vs Eq. 2 {expected_bubble} \
                     (S = {s_count}, M = {m}, w = {w}, comm = {comm})"
                );
            }
        },
    );
}

#[test]
fn interleaved_and_zero_bubble_traces_account_idle_and_bubbles() {
    // The idle/bubble identities are not 1F1B-specific: on interleaved
    // traces the entities are *virtual* stages (S·v of them, two per
    // device) and on zero-bubble traces the backward splits into
    // BwdInput/BwdWeight spans — in both cases the trace's idle
    // accounting must still equal the executor's own, and every round's
    // bubble fraction must be a well-formed ratio.
    let input = triple(
        vec_in(f64_in(0.05, 1.0), 2, 4),
        usize_in(2, 8),
        usize_in(1, 3),
    );
    forall(
        "interleaved_and_zero_bubble_traces_account_idle_and_bubbles",
        CASES,
        &input,
        |(widths, m, rounds)| {
            let s_count = widths.len();
            let stages: Vec<StageProfile> = widths
                .iter()
                .enumerate()
                .map(|(s, &w)| stage(s, s_count, w / 3.0, 2.0 * w / 3.0, 0.02))
                .collect();
            let profile = PipelineProfile::from_stages(stages, 4);
            for kind in [ScheduleKind::Interleaved1F1B, ScheduleKind::ZeroBubble] {
                let policy = kind.policy_for(&profile).expect("ample memory");
                let exec = PipelineExecutor::new(&profile, policy).expect("valid schedule");
                let tracer = Tracer::new();
                let report = exec.run_traced(*m, *rounds, &tracer).expect("ample memory");
                let view = tracer.view();

                // Interleaved entities are virtual stages; zero-bubble
                // splits each backward into two half-length spans.
                let (entities, spans_per_round) = match kind {
                    ScheduleKind::Interleaved1F1B => (s_count * DEFAULT_INTERLEAVE, 2 * m),
                    _ => (s_count, 3 * m),
                };
                assert_eq!(view.stage_count(), entities, "{}", kind.name());
                assert_eq!(view.pipeline_rounds(), *rounds, "{}", kind.name());
                let compute = view.spans().filter(|sp| sp.is_compute()).count();
                assert_eq!(
                    compute,
                    entities * spans_per_round * rounds,
                    "{}",
                    kind.name()
                );

                let report_idle: f64 = report.stage_idle_time.iter().sum();
                assert!(
                    (view.total_idle_time() - report_idle).abs() < 1e-9,
                    "{}: trace idle {} vs executor idle {report_idle}",
                    kind.name(),
                    view.total_idle_time()
                );
                for r in 0..*rounds {
                    let bubble = view.bubble_fraction(r).expect("round has spans");
                    assert!(
                        (0.0..1.0).contains(&bubble),
                        "{}: round {r} bubble {bubble} outside [0, 1)",
                        kind.name()
                    );
                }
            }
        },
    );
}

#[test]
fn zero_bubble_trace_beats_1f1b_bubble_on_uniform_stages() {
    // The point of the zero-bubble schedule: deferring BwdWeight work
    // into the drain fills part of the Eq. 2 bubble, so on the same
    // uniform profile its trace-measured bubble fraction must come in
    // strictly below synchronous 1F1B's in every round.
    let input = triple(usize_in(3, 6), usize_in(4, 10), f64_in(0.05, 0.5));
    forall(
        "zero_bubble_trace_beats_1f1b_bubble_on_uniform_stages",
        CASES,
        &input,
        |(s_count, m, w)| {
            let stages: Vec<StageProfile> = (0..*s_count)
                .map(|s| stage(s, *s_count, *w, 2.0 * *w, 0.0))
                .collect();
            let profile = PipelineProfile::from_stages(stages, 4);
            let bubble_of = |kind: ScheduleKind| -> Vec<f64> {
                let policy = kind.policy_for(&profile).expect("ample memory");
                let exec = PipelineExecutor::new(&profile, policy)
                    .expect("valid schedule")
                    .with_task_overhead(0.0);
                let tracer = Tracer::new();
                exec.run_traced(*m, 2, &tracer).expect("ample memory");
                let view = tracer.view();
                (0..view.pipeline_rounds())
                    .map(|r| view.bubble_fraction(r).expect("round has spans"))
                    .collect()
            };
            let plain = bubble_of(ScheduleKind::OneFOneBSync);
            let zb = bubble_of(ScheduleKind::ZeroBubble);
            assert_eq!(plain.len(), zb.len());
            for (r, (p, z)) in plain.iter().zip(&zb).enumerate() {
                assert!(
                    z < p,
                    "round {r}: zero-bubble {z} not below 1F1B {p} \
                     (S = {s_count}, M = {m}, w = {w})"
                );
            }
        },
    );
}
