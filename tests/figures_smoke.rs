//! Miniature versions of every figure experiment, sized for `cargo test`:
//! each asserts the same qualitative shape as its full bench target, so
//! the reproduction's claims are validated on every test run, not only
//! when the bench harness is invoked.

use ecofl::prelude::*;
use ecofl_pipeline::executor::ExecError;
use ecofl_pipeline::orchestrator::{k_bounds, p_bounds};
use ecofl_pipeline::partition::partition_objective;

fn three_devices() -> Vec<Device> {
    vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ]
}

/// Fig. 4 in miniature: starving a stage below `P_s` loses throughput.
#[test]
fn fig4_shape_starvation_costs_throughput() {
    let model = efficientnet_at(0, 224);
    let link = Link::mbps_100();
    let devices = three_devices();
    let partition = partition_dp(&model, &devices, &link, 4).unwrap();
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 4);
    let p = p_bounds(&profile);
    let run_k = |k: Vec<usize>| {
        PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
            .expect("valid schedule")
            .run(8, 2)
            .unwrap()
            .throughput
    };
    let healthy = run_k(p.clone());
    let mut starved_k = p;
    starved_k[0] = 1;
    let starved = run_k(starved_k);
    assert!(healthy > starved * 1.05);
}

/// Fig. 12 in miniature: Eq. 1 beats the even split on heterogeneous
/// devices.
#[test]
fn fig12_shape_dp_beats_even_split() {
    let model = efficientnet_at(1, 224);
    let link = Link::mbps_100();
    let devices = vec![Device::new(tx2_n()), Device::new(nano_h())];
    let ours = partition_dp(&model, &devices, &link, 8).unwrap();
    let even = partition_even(&model, 2).unwrap();
    let ours_obj = partition_objective(&model, &ours, &devices, &link, 8);
    let even_obj = partition_objective(&model, &even, &devices, &link, 8);
    assert!(ours_obj < even_obj * 0.8, "{ours_obj} vs {even_obj}");
}

/// Table 2 in miniature: Gpipe OOMs where 1F1B-Sync fits.
#[test]
fn table2_shape_gpipe_memory_dominates() {
    let model = efficientnet_at(6, 228);
    let link = Link::mbps_100();
    let devices = vec![Device::new(tx2_n()), Device::new(nano_h())];
    let partition = partition_dp(&model, &devices, &link, 8).unwrap();
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 8);
    let k = k_bounds(&profile).unwrap();
    assert!(
        PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
            .expect("valid schedule")
            .run(8, 1)
            .is_ok()
    );
    assert!(matches!(
        PipelineExecutor::new(&profile, SchedulePolicy::BafSync)
            .expect("valid schedule")
            .run(8, 1),
        Err(ExecError::Oom { .. })
    ));
}

/// Fig. 11 in miniature: on MobileNet-W3, pipeline < single TX2-Q < DP.
#[test]
fn fig11_shape_dp_loses_on_wide_mobilenet() {
    let model = mobilenet_v2_at(3.0, 224);
    let link = Link::mbps_100();
    let devices = three_devices();
    let dp = data_parallel_epoch(&model, &devices, &link, 64, 6400).unwrap();
    let single = single_device_epoch(&model, &devices[0], 64, 6400).unwrap();
    let plan = search_configuration(
        &model,
        &devices,
        &link,
        &OrchestratorConfig {
            global_batch: 64,
            mbs_candidates: vec![16, 8],
            eval_rounds: 1,
            ..OrchestratorConfig::default()
        },
    )
    .unwrap();
    let pipe_epoch = 6400.0 / plan.report.throughput;
    assert!(pipe_epoch < single.epoch_time);
    assert!(single.epoch_time < dp.epoch_time);
    assert!(dp.comm_fraction > 0.5);
}

/// Fig. 13 in miniature: the scheduler recovers throughput after a spike.
#[test]
fn fig13_shape_scheduler_recovers() {
    let model = efficientnet_at(4, 224);
    let link = Link::mbps_100();
    let devices = three_devices();
    let spike = LoadSpike {
        device: 1,
        at: 60.0,
        load: 0.6,
    };
    let with = simulate_load_spike(&model, &devices, &link, 8, 8, spike, 160.0, true)
        .expect("feasible spike scenario");
    let without = simulate_load_spike(&model, &devices, &link, 8, 8, spike, 160.0, false)
        .expect("feasible spike scenario");
    assert!(with.post_spike_throughput > without.post_spike_throughput * 1.1);
}

/// Fig. 8 in miniature: under group-level non-IID, latency-only tiers
/// (FedAT) lose to the Eq. 4 grouping.
#[test]
fn fig8_shape_fedat_collapses_under_rlg_niid() {
    let n = 40;
    let mut rng = ecofl::util::Rng::new(82);
    let delays: Vec<f64> = (0..n).map(|_| rng.gaussian(40.0, 18.0).max(3.0)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| delays[a].partial_cmp(&delays[b]).unwrap());
    let mut rlg = vec![0usize; n];
    for (rank, &client) in order.iter().enumerate() {
        rlg[client] = rank * 5 / n;
    }
    let config = FlConfig {
        num_clients: n,
        clients_per_round: 10,
        num_groups: 5,
        horizon: 1500.0,
        eval_interval: 150.0,
        dynamics: None,
        base_delay_override: Some(delays),
        learning_rate: 0.1,
        seed: 82,
        ..FlConfig::default()
    };
    let data = FederatedDataset::generate(
        &SyntheticSpec::cifar_like(),
        n,
        30,
        30,
        PartitionScheme::RlgNiid(3),
        Some(&rlg),
        82,
    );
    let setup = FlSetup {
        data,
        arch: ModelArch::Mlp,
        config,
    };
    let fedat = run_strategy(Strategy::FedAt, &setup);
    let ecofl = run_strategy(
        Strategy::EcoFl {
            dynamic_grouping: true,
        },
        &setup,
    );
    assert!(
        ecofl.best_accuracy > fedat.best_accuracy + 0.02,
        "Eco-FL {} vs FedAT {}",
        ecofl.best_accuracy,
        fedat.best_accuracy
    );
}

/// Fig. 9 in miniature: λ trades group data balance against latency
/// tightness.
#[test]
fn fig9_shape_lambda_tradeoff() {
    let mut rng = ecofl::util::Rng::new(91);
    let latencies: Vec<f64> = (0..60).map(|_| rng.range_f64(5.0, 60.0)).collect();
    let counts: Vec<Vec<f64>> = (0..60)
        .map(|i| {
            let mut c = vec![0.0; 10];
            c[i % 10] = 30.0;
            c
        })
        .collect();
    let js_at = |lambda: f64| {
        Grouper::initial(
            &latencies,
            &counts,
            GroupingConfig {
                num_groups: 5,
                strategy: GroupingStrategy::EcoFl { lambda },
                rt_relative: 0.8,
                rt_min: 5.0,
                assign_batch: 0,
            },
            &mut ecofl::util::Rng::new(7),
        )
        .avg_group_js()
    };
    assert!(js_at(2000.0) < js_at(0.0));
}
