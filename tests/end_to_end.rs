//! Cross-crate integration tests: the full Eco-FL system exercised
//! end-to-end through the public `ecofl` facade.

use ecofl::prelude::*;

fn quick_fl_config(seed: u64) -> FlConfig {
    FlConfig {
        num_clients: 24,
        clients_per_round: 8,
        num_groups: 3,
        horizon: 400.0,
        eval_interval: 50.0,
        seed,
        ..FlConfig::default()
    }
}

#[test]
fn full_system_pipeline_to_fl() {
    let homes = vec![
        SmartHome::new("fast", vec![tx2_q(), nano_h()]),
        SmartHome::new("mid", vec![nano_h(), nano_h()]),
        SmartHome::new("slow", vec![nano_l()]),
    ];
    let system = EcoFlSystem::builder()
        .homes(homes)
        .replicate_homes(24)
        .dataset(SyntheticSpec::mnist_like())
        .partition(PartitionScheme::ClassesPerClient(2))
        .fl_config(quick_fl_config(11))
        .seed(11)
        .build()
        .expect("system builds");

    // Every home template must get a feasible plan, ordered by capability.
    assert_eq!(system.plans().len(), 3);
    for plan in system.plans() {
        assert!(plan.report.throughput > 0.0);
        assert!(!plan.k.is_empty());
    }
    let report = system.run();
    assert_eq!(report.client_delays.len(), 24);
    assert!(
        report.client_delays[0] < report.client_delays[2],
        "two-device home must respond faster than the lone Nano-L"
    );
    assert!(report.fl.global_updates > 0);
    assert!(report.fl.best_accuracy > 0.2, "system must learn something");
}

#[test]
fn pipeline_beats_single_device_end_to_end() {
    // Partition → orchestrate → execute: collaborative throughput must
    // beat the best member device training alone.
    let model = efficientnet_at(1, 224);
    let link = Link::mbps_100();
    let devices = vec![Device::new(tx2_q()), Device::new(nano_h())];
    let plan = search_configuration(
        &model,
        &devices,
        &link,
        &OrchestratorConfig {
            global_batch: 64,
            mbs_candidates: vec![16, 8, 4],
            eval_rounds: 2,
            ..OrchestratorConfig::default()
        },
    )
    .expect("plan");
    let single = single_device_epoch(&model, &devices[0], 64, 1000).expect("fits");
    let pipeline_epoch = 1000.0 / plan.report.throughput;
    assert!(
        pipeline_epoch < single.epoch_time,
        "pipeline epoch {pipeline_epoch} must beat single-device {}",
        single.epoch_time
    );
}

#[test]
fn strategies_share_initialization_and_data() {
    // With one seed, every strategy starts from identical weights and
    // shards; their t = 0 accuracy must agree exactly.
    let data = FederatedDataset::generate(
        &SyntheticSpec::mnist_like(),
        24,
        40,
        20,
        PartitionScheme::ClassesPerClient(2),
        None,
        5,
    );
    let setup = FlSetup {
        data,
        arch: ModelArch::Mlp,
        config: quick_fl_config(5),
    };
    let a = run_strategy(Strategy::FedAvg, &setup);
    let b = run_strategy(
        Strategy::EcoFl {
            dynamic_grouping: true,
        },
        &setup,
    );
    assert_eq!(
        a.accuracy.points()[0].1,
        b.accuracy.points()[0].1,
        "identical seed must give identical initial accuracy"
    );
}

#[test]
fn determinism_across_full_runs() {
    let homes = vec![SmartHome::new("h", vec![tx2_q(), nano_h()])];
    let make = || {
        EcoFlSystem::builder()
            .homes(homes.clone())
            .replicate_homes(12)
            .fl_config(FlConfig {
                num_clients: 12,
                clients_per_round: 4,
                num_groups: 2,
                horizon: 250.0,
                eval_interval: 50.0,
                ..FlConfig::tiny()
            })
            .seed(77)
            .build()
            .expect("builds")
            .run()
    };
    let r1 = make();
    let r2 = make();
    assert_eq!(r1.fl.accuracy, r2.fl.accuracy);
    assert_eq!(r1.fl.global_updates, r2.fl.global_updates);
    assert_eq!(r1.client_delays, r2.client_delays);
}

#[test]
fn adaptive_rescheduling_recovers_throughput() {
    let model = efficientnet_at(4, 224);
    let link = Link::mbps_100();
    let devices = vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ];
    let spike = LoadSpike {
        device: 1,
        at: 80.0,
        load: 0.6,
    };
    let with = simulate_load_spike(&model, &devices, &link, 8, 8, spike, 220.0, true)
        .expect("feasible spike scenario");
    let without = simulate_load_spike(&model, &devices, &link, 8, 8, spike, 220.0, false)
        .expect("feasible spike scenario");
    assert!(with.post_spike_throughput > without.post_spike_throughput);
    assert!(!with.events.is_empty());
}

#[test]
fn threaded_pipeline_trains_a_real_model() {
    // The multi-threaded 1F1B-Sync prototype on a real synthetic task.
    use ecofl::tensor::{Layer, Linear, ReLU};
    use ecofl::util::Rng;

    let spec = SyntheticSpec::mnist_like();
    let protos = spec.prototypes(3);
    let mut rng = Rng::new(4);
    let train = protos.sample_balanced(20, &mut rng);

    let mut wrng = Rng::new(5);
    let segments: Vec<Vec<Box<dyn Layer>>> = vec![
        vec![
            Box::new(Linear::new(spec.feature_dim, 32, &mut wrng)) as Box<dyn Layer>,
            Box::new(ReLU::new()),
        ],
        vec![Box::new(Linear::new(32, spec.num_classes, &mut wrng)) as Box<dyn Layer>],
    ];
    let mut trainer = PipelineTrainer::launch(segments, vec![2, 1]);

    let mut first_loss = None;
    let mut last_loss = 0.0;
    for round in 0..25 {
        let batches: Vec<(Tensor, Vec<usize>)> = train
            .batches(25, &mut rng)
            .into_iter()
            .map(|idx| {
                let (feats, labels) = train.gather(&idx);
                (
                    Tensor::from_vec(feats, &[labels.len(), spec.feature_dim]),
                    labels,
                )
            })
            .collect();
        last_loss = trainer
            .train_round(&batches, 0.1)
            .expect("healthy pipeline round");
        if round == 0 {
            first_loss = Some(last_loss);
        }
    }
    let first = first_loss.unwrap();
    assert!(
        last_loss < first * 0.6,
        "pipelined training must reduce loss: {first} -> {last_loss}"
    );
    let (fwd, bwd) = trainer.comm_stats();
    assert!(
        fwd[0] > 0 && bwd[0] > 0,
        "boundary traffic must be recorded"
    );
    trainer.shutdown();
}

#[test]
fn grouping_responds_to_latency_drift_in_engine() {
    // Under dynamics, Eco-FL must actually perform regroups while the
    // static variant performs none.
    let data = FederatedDataset::generate(
        &SyntheticSpec::mnist_like(),
        30,
        40,
        20,
        PartitionScheme::ClassesPerClient(2),
        None,
        9,
    );
    let mut config = quick_fl_config(9);
    config.num_clients = 30;
    config.horizon = 800.0;
    config.dynamics = Some(DynamicsConfig {
        change_prob: 0.5,
        degrees: vec![0.2, 1.0],
    });
    let setup = FlSetup {
        data,
        arch: ModelArch::Mlp,
        config,
    };
    let dynamic = run_strategy(
        Strategy::EcoFl {
            dynamic_grouping: true,
        },
        &setup,
    );
    let static_ = run_strategy(
        Strategy::EcoFl {
            dynamic_grouping: false,
        },
        &setup,
    );
    assert!(
        dynamic.regroup_events > 0,
        "dynamics must trigger regrouping"
    );
    assert_eq!(static_.regroup_events, 0);
}
