//! Schedule-legality property suite (randomized).
//!
//! For random device mixes, stage counts, micro-batch counts, and
//! residency vectors, every registered schedule must obey the
//! [`PipelineSchedule`] contract twice over:
//!
//! 1. **Nominal stream legality** — the pure [`stage_stream`] respects
//!    forward/backward data dependencies, covers every micro-batch
//!    exactly once per direction, never exceeds the per-stage residency
//!    bound `K_s`, and ends with `Sync` exactly when the schedule
//!    flushes.
//! 2. **Executed-span legality** — the event-driven executor's actual
//!    dispatch order (which may deviate from the nominal stream under
//!    timing skew) still respects the same dependencies and bounds, and
//!    its idle/bubble accounting re-derives from the spans to 1e-9.
//!
//! [`stage_stream`]: ecofl::pipeline::PipelineSchedule::stage_stream

use ecofl::pipeline::executor::{ExecutionReport, TaskPhase};
use ecofl::pipeline::schedule::StageTask;
use ecofl::prelude::*;

/// Deterministic pool of profiles the properties sweep: random device
/// mixes (1–4 devices), models, and micro-batch sizes.
fn random_profile(rng: &mut Rng) -> (ModelProfile, Vec<Device>, Link, usize) {
    let model = match rng.range_usize(0, 3) {
        0 => efficientnet_at(0, 224),
        1 => efficientnet_at(1, 192),
        _ => mobilenet_v2_at(1.0, 224),
    };
    let n = rng.range_usize(1, 5);
    let devices: Vec<Device> = (0..n)
        .map(|_| {
            Device::new(match rng.range_usize(0, 4) {
                0 => nano_h(),
                1 => tx2_q(),
                2 => tx2_n(),
                _ => nano_h(),
            })
        })
        .collect();
    let mbs = [2, 4, 8][rng.range_usize(0, 3)];
    (model, devices, Link::mbps_100(), mbs)
}

/// Even layer boundaries for `s` stages over `layers` layers.
fn even_boundaries(layers: usize, s: usize) -> Vec<usize> {
    (0..=s).map(|i| (layers * i) / s).collect()
}

/// Asserts the nominal per-stage stream of `policy` is legal for `m`
/// micro-batches.
fn check_stream(policy: &SchedulePolicy, stages: usize, m: usize) {
    let sched = policy.instantiate();
    let name = sched.name();
    for stage in 0..stages {
        let stream = sched.stage_stream(stage, stages, m);
        let k = sched.residency(stage);
        let mut fwd_seen = vec![false; m];
        let mut bwd_in_seen = vec![false; m];
        let mut bwd_done = vec![false; m];
        let mut in_flight = 0usize;
        let mut synced = false;
        for task in &stream {
            assert!(!synced, "{name} s{stage}: task after Sync");
            match *task {
                StageTask::Fwd(n) => {
                    assert!(!fwd_seen[n], "{name} s{stage}: Fwd({n}) twice");
                    fwd_seen[n] = true;
                    in_flight += 1;
                    if let Some(k) = k {
                        assert!(
                            in_flight <= k,
                            "{name} s{stage}: {in_flight} resident > K={k}"
                        );
                    }
                }
                StageTask::Bwd(n) => {
                    assert!(
                        !sched.split_backward(),
                        "{name} s{stage}: full Bwd in a split schedule"
                    );
                    assert!(fwd_seen[n], "{name} s{stage}: Bwd({n}) before Fwd({n})");
                    assert!(!bwd_done[n], "{name} s{stage}: Bwd({n}) twice");
                    bwd_done[n] = true;
                    in_flight -= 1;
                }
                StageTask::BwdInput(n) => {
                    assert!(
                        sched.split_backward(),
                        "{name} s{stage}: BwdInput in an unsplit schedule"
                    );
                    assert!(
                        fwd_seen[n],
                        "{name} s{stage}: BwdInput({n}) before Fwd({n})"
                    );
                    assert!(!bwd_in_seen[n], "{name} s{stage}: BwdInput({n}) twice");
                    bwd_in_seen[n] = true;
                }
                StageTask::BwdWeight(n) => {
                    assert!(
                        bwd_in_seen[n],
                        "{name} s{stage}: BwdWeight({n}) before BwdInput({n})"
                    );
                    assert!(!bwd_done[n], "{name} s{stage}: BwdWeight({n}) twice");
                    bwd_done[n] = true;
                    in_flight -= 1;
                }
                StageTask::Sync => synced = true,
            }
        }
        assert!(
            fwd_seen.iter().all(|&f| f) && bwd_done.iter().all(|&b| b),
            "{name} s{stage}: incomplete round coverage"
        );
        assert_eq!(
            synced,
            !sched.flush_free(),
            "{name} s{stage}: Sync iff the schedule flushes"
        );
    }
}

/// Asserts the executed spans of `report` are legal under `policy` and
/// that the report's idle/bubble accounting re-derives from the spans.
fn check_execution(policy: &SchedulePolicy, report: &ExecutionReport, m: usize, rounds: usize) {
    let sched = policy.instantiate();
    let name = sched.name();
    let stages = report.stage_idle_time.len();
    let per_micro = if sched.split_backward() { 3 } else { 2 };
    assert_eq!(
        report.task_spans.len(),
        per_micro * m * rounds * stages,
        "{name}: span count"
    );

    for s in 0..stages {
        let mut spans: Vec<_> = report.task_spans.iter().filter(|t| t.stage == s).collect();
        spans.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        // Serial execution per stage.
        for w in spans.windows(2) {
            assert!(
                w[1].start >= w[0].end - 1e-9,
                "{name} s{s}: overlapping spans"
            );
        }
        // Dependency order and residency, walked chronologically. A
        // forward admits a micro-batch; a full backward or the
        // weight-gradient half retires it.
        let k = sched.residency(s);
        let mut in_flight = 0usize;
        let mut state = vec![0u8; m * rounds]; // 0=untouched 1=fwd 2=bwd-in 3=done
        for t in &spans {
            let id = t.round * m + t.micro;
            match t.phase {
                TaskPhase::Forward => {
                    assert_eq!(state[id], 0, "{name} s{s}: duplicate Fwd r{}", t.round);
                    state[id] = 1;
                    in_flight += 1;
                    if let Some(k) = k {
                        assert!(in_flight <= k, "{name} s{s}: {in_flight} resident > K={k}");
                    }
                }
                TaskPhase::Backward => {
                    assert_eq!(state[id], 1, "{name} s{s}: Bwd out of order");
                    state[id] = 3;
                    in_flight -= 1;
                }
                TaskPhase::BackwardInput => {
                    assert_eq!(state[id], 1, "{name} s{s}: BwdInput out of order");
                    state[id] = 2;
                }
                TaskPhase::BackwardWeight => {
                    assert_eq!(state[id], 2, "{name} s{s}: BwdWeight out of order");
                    state[id] = 3;
                    in_flight -= 1;
                }
            }
        }
        assert!(
            state.iter().all(|&st| st == 3),
            "{name} s{s}: unfinished micro-batches"
        );

        // Idle accounting: makespan minus busy time re-derived from the
        // spans must equal the report's ledger to 1e-9, and the measured
        // DDB must be idle-beyond-SSB clamped at zero.
        let busy: f64 = spans.iter().map(|t| t.end - t.start).sum();
        let idle = report.makespan - busy;
        assert!(
            (idle - report.stage_idle_time[s]).abs() < 1e-9,
            "{name} s{s}: idle {idle} vs report {}",
            report.stage_idle_time[s]
        );
        let ddb = ((idle / rounds as f64) - report.ssb_per_round).max(0.0);
        assert!(
            (ddb - report.ddb_per_round[s]).abs() < 1e-9,
            "{name} s{s}: ddb {ddb} vs report {}",
            report.ddb_per_round[s]
        );
    }
}

/// Random residency vectors (legal but arbitrary) exercise the nominal
/// stream far outside the Eq. 3 bounds the orchestrator would pick.
#[test]
fn nominal_streams_are_legal_for_random_residencies() {
    let mut rng = Rng::new(0x5eed);
    for _ in 0..60 {
        let stages = rng.range_usize(1, 6);
        let m = rng.range_usize(1, 9);
        let v = rng.range_usize(1, 4);
        let k = |n: usize, rng: &mut Rng| -> Vec<usize> {
            (0..n).map(|_| rng.range_usize(1, 5)).collect()
        };
        let kv = k(stages, &mut rng);
        check_stream(&SchedulePolicy::OneFOneBSync { k: kv.clone() }, stages, m);
        check_stream(&SchedulePolicy::BafSync, stages, m);
        check_stream(&SchedulePolicy::OneFOneBAsync { k: kv.clone() }, stages, m);
        check_stream(&SchedulePolicy::ZeroBubble { k: kv }, stages, m);
        check_stream(
            &SchedulePolicy::Interleaved {
                k: k(stages * v, &mut rng),
                v,
            },
            stages * v,
            m,
        );
    }
}

/// Every registered schedule, executed on random profiles, produces a
/// legal span stream whose idle/bubble ledger re-derives exactly.
#[test]
fn executed_schedules_are_legal_on_random_profiles() {
    let mut rng = Rng::new(0xec0f1);
    let mut executed = 0usize;
    for _ in 0..20 {
        let (model, devices, link, mbs) = random_profile(&mut rng);
        let boundaries = even_boundaries(model.num_layers(), devices.len());
        let profile = PipelineProfile::new(&model, &boundaries, &devices, &link, mbs);
        let m = rng.range_usize(2, 7);
        let rounds = rng.range_usize(1, 3);
        for kind in ScheduleKind::all() {
            let Some(policy) = kind.policy_for(&profile) else {
                continue; // some stage cannot hold one micro-batch
            };
            let exec = PipelineExecutor::new(&profile, policy.clone()).expect("legal policy");
            let Ok(report) = exec.run(m, rounds) else {
                continue; // OOM under an adversarial mix is legal
            };
            check_execution(&policy, &report, m, rounds);
            executed += 1;
        }
    }
    assert!(
        executed >= 40,
        "property suite executed only {executed} schedule runs"
    );
}
