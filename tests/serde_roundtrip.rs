//! JSON round-trips of the public configuration and report types via
//! `ecofl_compat::json` — these are the payloads the bench harness
//! persists, so their stability matters to downstream tooling.

use ecofl::prelude::*;
use ecofl_compat::json;
use ecofl_compat::serde::{Deserialize, Serialize};
use ecofl_pipeline::adaptive::SchedulerConfig;
use ecofl_pipeline::executor::TaskSpan;
use ecofl_pipeline::orchestrator::k_bounds;

fn round_trip<T>(value: &T) -> T
where
    T: Serialize + Deserialize,
{
    let text = json::to_string(value).expect("serialize");
    json::from_str(&text).expect("deserialize")
}

#[test]
fn fl_config_round_trips() {
    let cfg = FlConfig {
        base_delay_override: Some(vec![1.0, 2.0, 3.0]),
        dynamics: Some(DynamicsConfig {
            change_prob: 0.3,
            degrees: vec![0.5, 1.0],
        }),
        ..FlConfig::default()
    };
    let back = round_trip(&cfg);
    assert_eq!(back, cfg);
}

#[test]
fn grouping_config_round_trips() {
    for strategy in [
        GroupingStrategy::EcoFl { lambda: 123.0 },
        GroupingStrategy::LatencyOnly,
        GroupingStrategy::DataOnly,
    ] {
        let cfg = GroupingConfig {
            num_groups: 7,
            strategy,
            rt_relative: 0.4,
            rt_min: 1.5,
            assign_batch: 0,
        };
        assert_eq!(round_trip(&cfg), cfg);
    }
}

#[test]
fn device_and_link_round_trip() {
    let spec = tx2_n();
    assert_eq!(round_trip(&spec), spec);
    let link = Link::mbps_100();
    assert_eq!(round_trip(&link), link);
    let device = Device::new(nano_l());
    assert_eq!(round_trip(&device), device);
}

#[test]
fn model_profile_round_trips() {
    let model = efficientnet_at(1, 128);
    let back: ModelProfile = round_trip(&model);
    assert_eq!(back, model);
    assert_eq!(back.total_flops(), model.total_flops());
}

#[test]
fn partition_and_plan_round_trip() {
    let model = efficientnet_at(0, 224);
    let devices = vec![Device::new(tx2_q()), Device::new(nano_h())];
    let link = Link::mbps_100();
    let partition = partition_dp(&model, &devices, &link, 8).expect("feasible");
    assert_eq!(round_trip(&partition), partition);

    let plan = search_configuration(
        &model,
        &devices,
        &link,
        &OrchestratorConfig {
            global_batch: 32,
            mbs_candidates: vec![8, 4],
            eval_rounds: 1,
            ..OrchestratorConfig::default()
        },
    )
    .expect("plan");
    let back: PipelinePlan = round_trip(&plan);
    assert_eq!(back.partition, plan.partition);
    assert_eq!(back.k, plan.k);
    assert_eq!(back.micro_batch, plan.micro_batch);
    assert!((back.report.throughput - plan.report.throughput).abs() < 1e-12);
}

#[test]
fn execution_report_round_trips_with_spans() {
    let model = efficientnet_at(0, 224);
    let devices = vec![Device::new(tx2_q()), Device::new(nano_h())];
    let link = Link::mbps_100();
    let partition = partition_dp(&model, &devices, &link, 4).expect("feasible");
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 4);
    let k = k_bounds(&profile).expect("fits");
    let report = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
        .expect("valid schedule")
        .run(4, 1)
        .expect("runs");
    let back: ExecutionReport = round_trip(&report);
    assert_eq!(back.task_spans.len(), report.task_spans.len());
    let span: TaskSpan = report.task_spans[0];
    assert_eq!(round_trip(&span), span);
    assert_eq!(back.stage_peak_memory, report.stage_peak_memory);
}

#[test]
fn schedule_policy_round_trips() {
    for policy in [
        SchedulePolicy::OneFOneBSync { k: vec![3, 2, 1] },
        SchedulePolicy::BafSync,
        SchedulePolicy::OneFOneBAsync { k: vec![2, 1] },
        SchedulePolicy::Interleaved {
            k: vec![4, 3, 2, 1],
            v: 2,
        },
        SchedulePolicy::ZeroBubble { k: vec![3, 2, 1] },
    ] {
        assert_eq!(round_trip(&policy), policy);
    }
}

#[test]
fn schedule_kind_round_trips_and_configs_carry_it() {
    for kind in ScheduleKind::all() {
        assert_eq!(round_trip(&kind), kind);
    }
    // The selector travels inside both search configs.
    let ocfg = OrchestratorConfig {
        schedule: ScheduleKind::ZeroBubble,
        ..OrchestratorConfig::default()
    };
    assert_eq!(round_trip(&ocfg).schedule, ScheduleKind::ZeroBubble);
    let scfg = SchedulerConfig {
        schedule: ScheduleKind::Interleaved1F1B,
        ..SchedulerConfig::default()
    };
    assert_eq!(round_trip(&scfg), scfg);
}

#[test]
fn scheduler_config_and_spike_round_trip() {
    let cfg = SchedulerConfig {
        deviation_threshold: 0.33,
        restart_overhead: 1.25,
        ..SchedulerConfig::default()
    };
    assert_eq!(round_trip(&cfg), cfg);
    let spike = LoadSpike {
        device: 2,
        at: 42.0,
        load: 0.5,
    };
    assert_eq!(round_trip(&spike), spike);
}

#[test]
fn trace_record_variants_round_trip() {
    use ecofl::obs::{CounterRecord, Domain, EventKind, EventRecord, GaugeRecord, SpanKind};
    use ecofl::obs::{SpanRecord, TraceRecord};

    let span = SpanRecord {
        domain: Domain::Pipeline,
        kind: SpanKind::Backward,
        entity: 2,
        round: 1,
        micro: 5,
        t0: 0.25,
        t1: 1.75,
    };
    assert_eq!(round_trip(&span), span);

    let event = EventRecord {
        domain: Domain::Scheduler,
        kind: EventKind::Migration,
        entity: 1,
        time: 116.5,
        value: 1.5e7,
    };
    assert_eq!(round_trip(&event), event);

    let counter = CounterRecord {
        name: "global_updates".into(),
        time: 3.0,
        delta: 1.0,
    };
    assert_eq!(round_trip(&counter), counter);

    let gauge = GaugeRecord {
        name: "staleness_alpha".into(),
        time: 7.5,
        value: 0.375,
    };
    assert_eq!(round_trip(&gauge), gauge);

    // The externally-tagged envelope every JSONL line uses.
    for record in [
        TraceRecord::Span(span),
        TraceRecord::Event(event),
        TraceRecord::Counter(counter),
        TraceRecord::Gauge(gauge),
    ] {
        assert_eq!(round_trip(&record), record);
    }
}

#[test]
fn trace_jsonl_files_round_trip() {
    use ecofl::obs::{trace_dir, Domain, EventKind, RunStore, SpanKind};

    let tracer = Tracer::new();
    tracer.span(Domain::Fl, SpanKind::LocalTrain, 4, 2, 0, 10.0, 14.5);
    tracer.event(Domain::Grouping, EventKind::RegroupMoved, 4, 14.5, 1.0);
    tracer.counter("global_updates", 14.5, 1.0);
    tracer.gauge("accuracy", 15.0, 0.625);
    let records = tracer.records();

    // The store's JSONL export is the (only) flat-file path since the
    // deprecated write_jsonl/read_jsonl shims were removed.
    let dir = trace_dir().join(format!("serde-roundtrip-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut store = RunStore::create(&dir).expect("create store");
    store.append(&records).expect("append");
    store.flush().expect("flush");
    assert_eq!(store.records().expect("records"), records);

    let path = trace_dir().join("serde-roundtrip-test.jsonl");
    store.export_jsonl(&path).expect("export");
    let reopened = RunStore::open(&dir).expect("open");
    let text = std::fs::read_to_string(&path).expect("read export");
    assert_eq!(text.lines().count(), records.len());
    assert_eq!(reopened.records().expect("records"), records);
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn synthetic_spec_round_trips_values() {
    // SyntheticSpec carries a &'static str name, so compare fields.
    let spec = SyntheticSpec::cifar_like();
    let text = json::to_string(&spec).expect("serialize");
    let v: json::Value = json::from_str(&text).unwrap();
    assert_eq!(v["num_classes"], 10);
    assert_eq!(v["name"], "cifar-like");
}
