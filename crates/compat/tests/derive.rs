//! End-to-end tests of the `Serialize`/`Deserialize` derives: every
//! shape the workspace uses, asserting the serde-compatible JSON text
//! and value-level round-trips.

use ecofl_compat::json::{from_str, to_string, to_string_pretty, Value};
use ecofl_compat::serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plain {
    pub count: usize,
    pub ratio: f64,
    pub label: String,
    pub flag: bool,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Nested {
    /// Doc comments and attributes must be skipped by the parser.
    inner: Plain,
    xs: Vec<f32>,
    pairs: Vec<(f64, f64)>,
    maybe: Option<u32>,
    absent: Option<u32>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Mode {
    Fast,
    Slow,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Policy {
    /// Struct variant (externally tagged, like serde).
    Sync { k: Vec<usize>, strict: bool },
    /// Unit variant (a JSON string).
    Async,
    /// Newtype variant.
    Fixed(u64),
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StaticName {
    name: &'static str,
    value: f64,
}

fn round_trip<T>(value: &T) -> T
where
    T: Serialize + Deserialize,
{
    from_str(&to_string(value).expect("serialize")).expect("deserialize")
}

#[test]
fn plain_struct_round_trips_and_keeps_field_names() {
    let p = Plain {
        count: 3,
        ratio: 0.5,
        label: "edge".to_string(),
        flag: true,
    };
    assert_eq!(round_trip(&p), p);
    assert_eq!(
        to_string(&p).unwrap(),
        r#"{"count":3,"ratio":0.5,"label":"edge","flag":true}"#,
        "fields serialize in declaration order with their own names"
    );
}

#[test]
fn nested_struct_round_trips() {
    let n = Nested {
        inner: Plain {
            count: 1,
            ratio: 2.0,
            label: String::new(),
            flag: false,
        },
        xs: vec![1.5, -2.25],
        pairs: vec![(0.0, 1.0), (3.5, 4.0)],
        maybe: Some(9),
        absent: None,
    };
    assert_eq!(round_trip(&n), n);
    let v: Value = from_str(&to_string(&n).unwrap()).unwrap();
    assert_eq!(v["inner"]["ratio"].as_f64(), Some(2.0));
    assert!(v["absent"].is_null(), "None serializes as null");
}

#[test]
fn missing_option_field_defaults_to_none() {
    let n: Nested = from_str(
        r#"{"inner":{"count":0,"ratio":0.0,"label":"","flag":false},
            "xs":[],"pairs":[]}"#,
    )
    .expect("Option fields may be absent entirely");
    assert_eq!(n.maybe, None);
    assert_eq!(n.absent, None);
}

#[test]
fn missing_required_field_errors_with_context() {
    let err = from_str::<Plain>(r#"{"count":3}"#).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("Plain.ratio"), "error names the field: {msg}");
}

#[test]
fn unit_enum_is_a_string() {
    assert_eq!(to_string(&Mode::Fast).unwrap(), "\"Fast\"");
    assert_eq!(round_trip(&Mode::Slow), Mode::Slow);
    assert!(from_str::<Mode>("\"Medium\"").is_err());
}

#[test]
fn data_enum_is_externally_tagged() {
    let p = Policy::Sync {
        k: vec![3, 2, 1],
        strict: true,
    };
    assert_eq!(
        to_string(&p).unwrap(),
        r#"{"Sync":{"k":[3,2,1],"strict":true}}"#
    );
    assert_eq!(round_trip(&p), p);
    assert_eq!(round_trip(&Policy::Async), Policy::Async);
    assert_eq!(to_string(&Policy::Async).unwrap(), "\"Async\"");
    let f = Policy::Fixed(77);
    assert_eq!(to_string(&f).unwrap(), r#"{"Fixed":77}"#);
    assert_eq!(round_trip(&f), f);
}

#[test]
fn static_str_fields_round_trip_via_leak() {
    let s = StaticName {
        name: "cifar-like",
        value: 1.25,
    };
    let back = round_trip(&s);
    assert_eq!(back, s);
    let v: Value = from_str(&to_string(&s).unwrap()).unwrap();
    assert_eq!(v["name"], "cifar-like");
}

#[test]
fn pretty_printing_nests_with_two_space_indent() {
    let p = Plain {
        count: 1,
        ratio: 1.0,
        label: "x".to_string(),
        flag: false,
    };
    let pretty = to_string_pretty(&p).unwrap();
    assert!(pretty.starts_with("{\n  \"count\": 1,\n"), "{pretty}");
    assert_eq!(from_str::<Plain>(&pretty).unwrap(), p);
}
