//! Data-parallel helpers over a scoped worker pool — the rayon
//! replacement for this workspace's two hot paths (client local
//! training fan-out and matmul row blocking).
//!
//! Work is distributed dynamically: scoped workers pull the next item
//! index from a shared atomic counter, so uneven item costs (clients
//! with different shard sizes) still balance. Threads are spawned per
//! call via `std::thread::scope`; the kernels behind these helpers are
//! coarse enough (whole client training runs, ≥64³ matmuls) that spawn
//! cost is noise, and callers gate small inputs to the sequential path
//! themselves.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count: `ECOFL_THREADS` if set, else available parallelism.
#[must_use]
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("ECOFL_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every item, in parallel, preserving order of results
/// (the `par_iter().map().collect()` analogue).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = max_threads().min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut gathered: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        return local;
                    }
                    local.push((i, f(&items[i])));
                }
            }));
        }
        for h in handles {
            gathered.extend(h.join().expect("par_map worker panicked"));
        }
    });
    gathered.sort_by_key(|(i, _)| *i);
    gathered.into_iter().map(|(_, r)| r).collect()
}

/// Splits `data` into `chunk_size`-sized mutable chunks and applies
/// `f(chunk_index, chunk)` to each in parallel (the
/// `par_chunks_mut().enumerate().for_each()` analogue).
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(
        chunk_size > 0,
        "par_chunks_mut: chunk_size must be positive"
    );
    let n_chunks = data.len().div_ceil(chunk_size);
    let threads = max_threads().min(n_chunks);
    if threads <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    // Hand each worker disjoint chunks through a locked iterator; the
    // lock is only touched between chunks, never inside the kernel.
    let chunks: crate::sync::Mutex<_> =
        crate::sync::Mutex::new(data.chunks_mut(chunk_size).enumerate());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let item = chunks.lock().next();
                match item {
                    Some((i, chunk)) => f(i, chunk),
                    None => return,
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut data = vec![0u32; 1003];
        par_chunks_mut(&mut data, 64, |i, chunk| {
            for x in chunk.iter_mut() {
                *x += 1 + i as u32;
            }
        });
        for (j, &x) in data.iter().enumerate() {
            assert_eq!(x, 1 + (j / 64) as u32, "element {j}");
        }
    }

    #[test]
    fn par_chunks_mut_matches_sequential_kernel() {
        let n = 257usize;
        let kernel = |i: usize, chunk: &mut [f64]| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (i * 1000 + j) as f64;
            }
        };
        let mut seq = vec![0.0; n];
        for (i, chunk) in seq.chunks_mut(16).enumerate() {
            kernel(i, chunk);
        }
        let mut par = vec![0.0; n];
        par_chunks_mut(&mut par, 16, kernel);
        assert_eq!(seq, par);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
