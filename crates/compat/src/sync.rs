//! Synchronization primitives: a panic-tolerant [`Mutex`] (replacing
//! parking_lot) and MPMC channels (replacing `crossbeam::channel`).
//!
//! Only the surface this workspace uses is replicated: `Mutex::lock`
//! returning a guard directly (no poison `Result`), and
//! bounded/unbounded channels whose `Sender` *and* `Receiver` are
//! cloneable, with disconnect-aware blocking `send`/`recv`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard};

/// A cheaply-clonable shared immutable handle (an alias of
/// [`std::sync::Arc`]). Used where the simulator hands one snapshot —
/// e.g. the global model's weight vector — to many concurrent readers:
/// cloning a `Shared<Vec<f32>>` is a reference-count bump, not a copy
/// of the vector, so per-client weight materialization is deferred to
/// the moment training actually needs a mutable copy.
pub type Shared<T> = Arc<T>;

/// A mutual-exclusion lock with parking_lot's calling convention:
/// `lock()` returns the guard directly. A panic while holding the lock
/// does not poison it for later users (the protected invariants in this
/// workspace are all recoverable counters/statistics).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Multi-producer multi-consumer channels.
pub mod channel {
    use super::{fmt, Arc, AtomicUsize, Condvar, Ordering, StdMutex, VecDeque};

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the rejected message like crossbeam's.
    #[derive(Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Elides the payload so `T: Debug` is not required (crossbeam
    /// does the same — senders of non-Debug control messages still get
    /// `.expect()`).
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`]: the wait is bounded
    /// both by sender disconnects and by wall-clock time, so a caller
    /// supervising worker threads can never hang on a dead peer.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline elapsed with the channel still empty (senders
        /// may or may not still be alive).
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty, disconnected channel")
                }
            }
        }
    }

    struct Shared<T> {
        queue: StdMutex<VecDeque<T>>,
        /// `None` = unbounded.
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    /// The sending half; clone freely for multiple producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely for multiple consumers.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        ///
        /// # Errors
        /// Returns the message if all receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.lock();
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = self
                            .shared
                            .not_full
                            .wait(queue)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty.
        ///
        /// # Errors
        /// Returns [`RecvError`] if the channel is empty and all senders
        /// have been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Receives a message, blocking at most `timeout`: the
        /// disconnect-aware bounded wait that failure supervision is
        /// built on. Returns as soon as a message arrives, every sender
        /// disconnects, or the deadline passes — whichever is first.
        ///
        /// # Errors
        /// [`RecvTimeoutError::Disconnected`] if the channel is empty
        /// with all senders dropped, [`RecvTimeoutError::Timeout`] if
        /// the deadline elapsed first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.recv_timeout_timed(timeout).0
        }

        /// [`Receiver::recv_timeout`] plus a wall-clock measurement of
        /// how long the call actually blocked — the timing hook the
        /// runtime's channel-wait profiling is built on. The returned
        /// duration covers the whole call (queue lock to outcome), so
        /// an immediate pop reports a near-zero wait and a timeout
        /// reports approximately `timeout`.
        ///
        /// # Errors
        /// Exactly as [`Receiver::recv_timeout`].
        pub fn recv_timeout_timed(
            &self,
            timeout: std::time::Duration,
        ) -> (Result<T, RecvTimeoutError>, std::time::Duration) {
            let start = std::time::Instant::now();
            let deadline = start + timeout;
            let mut queue = self.shared.lock();
            let outcome = loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.shared.not_full.notify_one();
                    break Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    break Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    break Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .shared
                    .not_empty
                    .wait_timeout(queue, remaining)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = guard;
            };
            (outcome, start.elapsed())
        }

        /// Receives without blocking; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            let value = self.shared.lock().pop_front();
            if value.is_some() {
                self.shared.not_full.notify_one();
            }
            value
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: StdMutex::new(VecDeque::new()),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates a channel with unlimited buffering.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel that holds at most `cap` in-flight messages;
    /// `send` blocks while full, which is what keeps pipeline stage
    /// memory honest.
    ///
    /// # Panics
    /// Panics if `cap` is zero (rendezvous channels are not supported).
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded channel capacity must be positive");
        with_capacity(Some(cap))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, RecvTimeoutError};
    use super::Mutex;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn mutex_basic_and_poison_tolerant() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1, "lock still usable after a panic");
    }

    #[test]
    fn unbounded_fifo_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let producer = std::thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..1000 {
            got.push(rx.recv().unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError), "senders gone, queue empty");
    }

    #[test]
    fn bounded_blocks_producer_until_consumed() {
        let (tx, rx) = bounded::<u32>(2);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_returns_a_queued_message_immediately() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(7));
    }

    #[test]
    fn recv_timeout_times_out_with_live_senders() {
        let (tx, rx) = unbounded::<u32>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(25));
        drop(tx);
    }

    #[test]
    fn recv_timeout_observes_disconnect_before_deadline() {
        let (tx, rx) = unbounded::<u32>();
        let dropper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            drop(tx);
        });
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(60)),
            Err(RecvTimeoutError::Disconnected)
        );
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "disconnect must end the wait long before the deadline"
        );
        dropper.join().unwrap();
    }

    #[test]
    fn recv_timeout_wakes_on_late_send() {
        let (tx, rx) = unbounded::<u32>();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(9).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(60)), Ok(9));
        sender.join().unwrap();
    }

    #[test]
    fn recv_timeout_timed_measures_the_blocked_wait() {
        // Immediate pop: near-zero wait.
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        let (got, waited) = rx.recv_timeout_timed(Duration::from_secs(60));
        assert_eq!(got, Ok(7));
        assert!(waited < Duration::from_secs(1), "no blocking to report");

        // Full timeout: the measurement covers the deadline.
        let (_tx2, rx2) = unbounded::<u32>();
        let (got, waited) = rx2.recv_timeout_timed(Duration::from_millis(30));
        assert_eq!(got, Err(RecvTimeoutError::Timeout));
        assert!(waited >= Duration::from_millis(25), "waited {waited:?}");

        // Late send: the measurement covers the actual block, not the
        // full timeout.
        let (tx3, rx3) = unbounded::<u32>();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx3.send(9).unwrap();
        });
        let (got, waited) = rx3.recv_timeout_timed(Duration::from_secs(60));
        assert_eq!(got, Ok(9));
        assert!(waited >= Duration::from_millis(10), "waited {waited:?}");
        assert!(waited < Duration::from_secs(30), "waited {waited:?}");
        sender.join().unwrap();
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cloned_receivers_share_the_stream() {
        let (tx, rx1) = unbounded::<u32>();
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut both = vec![a, b];
        both.sort_unstable();
        assert_eq!(both, vec![1, 2], "each message delivered exactly once");
    }

    #[test]
    fn mpmc_many_producers_many_consumers() {
        let (tx, rx) = bounded::<u64>(8);
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    tx.send(p * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut local = Vec::new();
                while let Ok(v) = rx.recv() {
                    local.push(v);
                }
                local
            }));
        }
        drop(rx);
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..250).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
