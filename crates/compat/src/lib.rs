//! # ecofl-compat
//!
//! In-repo replacements for every external crate the workspace used to
//! pull from crates.io, so that a clean checkout builds and tests with
//! `--offline` on an air-gapped machine — the same constraint the
//! target deployment (smart-home edge clusters) imposes.
//!
//! | module | replaces | scope |
//! |---|---|---|
//! | [`json`] | serde + serde_json | JSON value, parser, writer, `ToJson`/`FromJson` |
//! | [`serde`] | serde derive front-end | `#[derive(Serialize, Deserialize)]` |
//! | [`sync`] | parking_lot + crossbeam-channel | `Mutex`, MPMC channels |
//! | [`par`] | rayon | scoped worker pool, `par_map`, `par_chunks_mut` |
//! | [`bytes`] | bytes | `Bytes` / `BytesMut` wire buffers |
//! | [`check`] | proptest | seeded property harness with shrinking |
//!
//! Each module replicates only the API surface this workspace uses;
//! see `DESIGN.md` ("The compat layer") for what is intentionally out
//! of scope.

pub mod bytes;
pub mod check;
pub mod json;
pub mod par;
pub mod sync;

/// Serde-compatible front-end: `use ecofl_compat::serde::{Serialize,
/// Deserialize};` brings both the derive macros and the corresponding
/// traits into scope, exactly like `use serde::{Serialize, Deserialize}`
/// used to (derive macros and traits live in separate namespaces).
pub mod serde {
    pub use crate::json::{FromJson as Deserialize, ToJson as Serialize};
    pub use ecofl_compat_derive::{Deserialize, Serialize};
}
