//! Wire buffers for the pipeline prototype — the `bytes` crate
//! replacement. [`BytesMut`] is a little-endian append buffer,
//! [`Bytes`] the frozen read cursor; exactly the surface
//! `pipeline::runtime`'s tensor codec uses.

/// An append-only byte buffer (the write half of the codec).
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a `u64` in little-endian order.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` in little-endian order.
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` in little-endian order.
    pub fn put_f32_le(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freezes into an immutable, readable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes {
            buf: self.buf,
            pos: 0,
        }
    }
}

/// An immutable byte buffer with a read cursor (the read half).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    buf: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps an owned byte vector.
    #[must_use]
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes remaining to be read.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` if fully consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        let end = self.pos + N;
        assert!(
            end <= self.buf.len(),
            "Bytes: read past end ({} of {})",
            end,
            self.buf.len()
        );
        let arr: [u8; N] = self.buf[self.pos..end].try_into().expect("length checked");
        self.pos = end;
        arr
    }

    /// Reads the next little-endian `u64`.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain.
    pub fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take::<8>())
    }

    /// Reads the next little-endian `u32`.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    pub fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take::<4>())
    }

    /// Reads the next little-endian `f32`.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    pub fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take::<4>())
    }

    /// The unread remainder as a slice (the cursor does not advance).
    #[must_use]
    pub fn chunk(&self) -> &[u8] {
        &self.buf[self.pos..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u64_le(u64::MAX - 3);
        w.put_u32_le(7);
        w.put_f32_le(-1.5);
        assert_eq!(w.len(), 16);
        let mut r = w.freeze();
        assert_eq!(r.len(), 16);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_f32_le(), -1.5);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let mut r = Bytes::from_vec(vec![1, 2, 3]);
        let _ = r.get_u64_le();
    }
}
