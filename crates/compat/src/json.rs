//! JSON value type, parser, writer, and the `ToJson`/`FromJson` traits
//! that `#[derive(Serialize)]` / `#[derive(Deserialize)]` target.
//!
//! Replaces serde + serde_json for this workspace's needs: persisting
//! bench result series under `target/ecofl-results/` and round-tripping
//! the public config/report types. The JSON shapes match serde's
//! defaults — structs as objects in field order, unit enum variants as
//! strings, data-carrying variants externally tagged — so existing
//! result files and any downstream tooling keep working.
//!
//! Intentional divergences from serde_json (see DESIGN.md): no borrowed
//! deserialization (`&'static str` fields are leaked on parse, a
//! non-issue for the handful of long-lived config values that use
//! them), no non-string map keys, and non-finite floats serialize as
//! `null` instead of erroring.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer number (serialized without a decimal point).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered so struct fields serialize in
    /// declaration order, like serde's derived `Serialize`.
    Object(Vec<(String, Value)>),
}

/// Error produced by parsing or by `FromJson` conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(msg: String) -> Self {
        Self { msg }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// A new, empty JSON object.
    #[must_use]
    pub fn empty_object() -> Self {
        Value::Object(Vec::new())
    }

    /// Inserts (or replaces) a key in an object value.
    ///
    /// # Panics
    /// Panics if `self` is not an object.
    pub fn insert(&mut self, key: &str, value: Value) {
        match self {
            Value::Object(pairs) => {
                if let Some(pair) = pairs.iter_mut().find(|(k, _)| k == key) {
                    pair.1 = value;
                } else {
                    pairs.push((key.to_string(), value));
                }
            }
            other => panic!("insert on non-object JSON value: {other:?}"),
        }
    }

    /// Looks up a key in an object; `None` for missing keys or
    /// non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `true` if this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if any.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (both `Int` and `Float`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer payload (also accepts an integral `Float`).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// Non-negative integer payload.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// String payload, if any.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload, if any.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object payload as ordered key/value pairs, if any.
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// For an externally tagged enum encoding `{"Tag": inner}`: the tag
    /// and inner value of a single-key object.
    #[must_use]
    pub fn as_singleton_object(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(pairs) if pairs.len() == 1 => Some((pairs[0].0.as_str(), &pairs[0].1)),
            _ => None,
        }
    }
}

/// Objects compare as maps (order-insensitive), mirroring
/// `serde_json::Value` equality; numbers compare by numeric value.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Object(a), Value::Object(b)) => {
                a.len() == b.len()
                    && a.iter().all(|(k, v)| other.get(k).is_some_and(|w| w == v))
                    && b.iter().all(|(k, v)| self.get(k).is_some_and(|w| w == v))
            }
            _ => false,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            #[allow(clippy::cast_lossless)]
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}
impl_value_eq_num!(i32, i64, u32, u64, usize, f64);

static NULL_VALUE: Value = Value::Null;

/// `value["key"]`, yielding `Null` for missing keys (like serde_json).
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

/// `value[i]`, yielding `Null` out of bounds (like serde_json).
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

// ---------------------------------------------------------------------------
// Serialization (writer)
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if !f.is_finite() {
        // serde_json refuses NaN/inf; emitting null keeps bench runs alive.
        out.push_str("null");
    } else if f.fract() == 0.0 && f.abs() < 1.0e16 {
        // Match serde_json/ryu: whole floats keep a trailing ".0".
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_f64(*f, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serializes to compact JSON (the `serde_json::to_string` analogue).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    Ok(out)
}

/// Serializes to 2-space-indented JSON (`serde_json::to_string_pretty`).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, JsonError> {
    let mut out = String::new();
    write_pretty(&value.to_json(), 0, &mut out);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our ASCII
                            // identifiers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // Out-of-range integers degrade to floats.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

/// Parses a JSON document (the `serde_json::from_str` analogue).
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_json(&v)
}

// ---------------------------------------------------------------------------
// ToJson / FromJson traits and impls
// ---------------------------------------------------------------------------

/// Conversion into a JSON value — the serialization half the
/// `Serialize` derive targets.
pub trait ToJson {
    /// Converts `self` into a [`Value`].
    fn to_json(&self) -> Value;
}

/// Conversion from a JSON value — the deserialization half the
/// `Deserialize` derive targets.
pub trait FromJson: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    /// Returns a [`JsonError`] describing the first mismatch.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

/// Looks up a struct field during derived deserialization. Missing
/// fields read as `null`, which lets `Option` fields default to `None`
/// (matching serde's behavior) while non-optional fields produce a
/// type-mismatch error naming the struct.
///
/// # Errors
/// Propagates the field's `FromJson` error, prefixed with context.
pub fn field<T: FromJson>(v: &Value, name: &str, ty: &str) -> Result<T, JsonError> {
    T::from_json(v.get(name).unwrap_or(&Value::Null))
        .map_err(|e| JsonError::new(format!("{ty}.{name}: {e}")))
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::new(format!("expected bool, found {v:?}")))
    }
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            #[allow(clippy::cast_lossless)]
            fn to_json(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| JsonError::new(format!("expected integer, found {v:?}")))?;
                <$t>::try_from(i)
                    .map_err(|_| JsonError::new(format!("integer {i} out of range")))
            }
        }
    )*};
}
impl_json_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::new(format!("expected number, found {v:?}")))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new(format!("expected string, found {v:?}")))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

/// `&'static str` fields (e.g. `SyntheticSpec::name`) deserialize by
/// leaking the parsed string. The workspace only deserializes a handful
/// of long-lived config values, so the leak is bounded and deliberate;
/// serde would instead require borrowed deserialization, which this
/// layer does not replicate.
impl FromJson for &'static str {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        String::from_json(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(x) => x.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json(v).map(Some)
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::new(format!("expected array, found {v:?}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (*self).to_json()
    }
}

impl<T: ToJson + ?Sized> ToJson for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let a = v
            .as_array()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| JsonError::new(format!("expected 2-element array, found {v:?}")))?;
        Ok((A::from_json(&a[0])?, B::from_json(&a[1])?))
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let a = v
            .as_array()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| JsonError::new(format!("expected 3-element array, found {v:?}")))?;
        Ok((
            A::from_json(&a[0])?,
            B::from_json(&a[1])?,
            C::from_json(&a[2])?,
        ))
    }
}

/// Serde encodes `Range` as `{"start": .., "end": ..}`.
impl<T: ToJson> ToJson for std::ops::Range<T> {
    fn to_json(&self) -> Value {
        let mut obj = Value::empty_object();
        obj.insert("start", self.start.to_json());
        obj.insert("end", self.end.to_json());
        obj
    }
}

impl<T: FromJson> FromJson for std::ops::Range<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(field(v, "start", "Range")?..field(v, "end", "Range")?)
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_object()
            .ok_or_else(|| JsonError::new(format!("expected object, found {v:?}")))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_json(x)?)))
            .collect()
    }
}

impl<V: ToJson> ToJson for HashMap<String, V> {
    fn to_json(&self) -> Value {
        // Deterministic output: sort keys like serde_json's BTreeMap-backed
        // map does.
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: FromJson> FromJson for HashMap<String, V> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_object()
            .ok_or_else(|| JsonError::new(format!("expected object, found {v:?}")))?
            .iter()
            .map(|(k, x)| Ok((k.clone(), V::from_json(x)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&42usize).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0", "whole floats keep .0");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
    }

    #[test]
    fn float_precision_survives_round_trip() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let back: Vec<Vec<u32>> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
        let pairs: Vec<(f64, f64)> = vec![(0.5, 1.5), (2.0, 3.0)];
        let back: Vec<(f64, f64)> = from_str(&to_string(&pairs).unwrap()).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\ \u{1F980}".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn object_access_and_equality() {
        let v: Value = from_str(r#"{"name":"cifar-like","num_classes":10}"#).unwrap();
        assert_eq!(v["name"], "cifar-like");
        assert_eq!(v["num_classes"], 10);
        assert!(v["missing"].is_null());
        let w: Value = from_str(r#"{"num_classes":10,"name":"cifar-like"}"#).unwrap();
        assert_eq!(v, w, "object equality ignores key order");
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let mut obj = Value::empty_object();
        obj.insert("xs", Value::Array(vec![Value::Int(1), Value::Int(2)]));
        obj.insert("name", Value::String("x".into()));
        let pretty = to_string_pretty(&obj).unwrap();
        assert!(pretty.contains("\n  \"xs\": [\n    1,\n    2\n  ]"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<u32>("-1").is_err(), "negative into unsigned");
        assert!(from_str::<bool>("1").is_err(), "type mismatch");
    }
}
