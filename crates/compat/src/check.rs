//! A minimal, deterministic property-testing harness — the proptest
//! replacement.
//!
//! Values are drawn from composable [`Gen`] generators seeded by the
//! same SplitMix64 stream as `ecofl_util::rng` (duplicated here because
//! `ecofl-util` depends on this crate, so the dependency cannot point
//! the other way). Every run is fully deterministic: the case seed is
//! derived from the property name, so there is no environment entropy
//! and no regression file churn. Set `ECOFL_CHECK_SEED=<u64>` to
//! explore a different stream, and `ECOFL_CHECK_CASES=<n>` to scale the
//! case count globally.
//!
//! On failure the harness greedily shrinks the counterexample (smaller
//! numbers, shorter vectors, component-wise for tuples) and reports the
//! shrunk value plus the property name and seed needed to replay it.

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The harness's SplitMix64 stream (mirrors `ecofl_util::Rng`'s core).
#[derive(Debug, Clone, Copy)]
pub struct CheckRng {
    state: u64,
}

impl CheckRng {
    /// Creates a stream from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: mix64(seed) }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Uniform in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: bound must be positive");
        // Multiply-shift; the tiny bias is irrelevant for test-case
        // generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A shrinker: proposes smaller variants of a failing value.
type Shrinker<T> = Rc<dyn Fn(&T) -> Vec<T>>;

/// A generator: a sampling function plus a shrinker proposing smaller
/// variants of a failing value.
pub struct Gen<T> {
    sample: Rc<dyn Fn(&mut CheckRng) -> T>,
    shrink: Shrinker<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Self {
            sample: Rc::clone(&self.sample),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Builds a generator from explicit sample and shrink functions.
    pub fn new(
        sample: impl Fn(&mut CheckRng) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Self {
            sample: Rc::new(sample),
            shrink: Rc::new(shrink),
        }
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut CheckRng) -> T {
        (self.sample)(rng)
    }

    /// Proposes shrunk candidates for a failing value.
    pub fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }

    /// Maps the generated value (the `prop_map` analogue). Mapped
    /// generators do not shrink — there is no inverse to shrink through.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let sample = self.sample;
        Gen {
            sample: Rc::new(move |rng| f((sample)(rng))),
            shrink: Rc::new(|_| Vec::new()),
        }
    }
}

/// Shrink an integer magnitude: candidates halve toward `lo`.
fn shrink_toward_u64(value: u64, lo: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if value > lo {
        out.push(lo);
        let mut delta = value - lo;
        while delta > 1 {
            delta /= 2;
            out.push(value - delta);
        }
    }
    out.dedup();
    out
}

/// Any `u64` (the `any::<u64>()` analogue).
#[must_use]
pub fn any_u64() -> Gen<u64> {
    Gen::new(|rng| rng.next_u64(), |&v| shrink_toward_u64(v, 0))
}

/// Uniform `u64` in `[lo, hi)`.
#[must_use]
pub fn u64_in(lo: u64, hi: u64) -> Gen<u64> {
    assert!(lo < hi, "u64_in: empty range {lo}..{hi}");
    Gen::new(
        move |rng| lo + rng.below(hi - lo),
        move |&v| shrink_toward_u64(v, lo),
    )
}

/// Uniform `usize` in `[lo, hi)`.
#[must_use]
pub fn usize_in(lo: usize, hi: usize) -> Gen<usize> {
    u64_in(lo as u64, hi as u64).map_shrinkable(|v| v as usize, |&v| v as u64)
}

/// Uniform `u32` in `[lo, hi)`.
#[must_use]
pub fn u32_in(lo: u32, hi: u32) -> Gen<u32> {
    u64_in(u64::from(lo), u64::from(hi)).map_shrinkable(|v| v as u32, |&v| u64::from(v))
}

impl Gen<u64> {
    /// Integer-to-integer map that keeps shrinking working by mapping
    /// back into the source domain.
    fn map_shrinkable<U: 'static>(
        self,
        fwd: impl Fn(u64) -> U + Copy + 'static,
        back: impl Fn(&U) -> u64 + 'static,
    ) -> Gen<U> {
        let sample = self.sample;
        let shrink = self.shrink;
        Gen {
            sample: Rc::new(move |rng| fwd((sample)(rng))),
            shrink: Rc::new(move |u| (shrink)(&back(u)).into_iter().map(fwd).collect()),
        }
    }
}

/// Uniform `f64` in `[lo, hi)`; shrinks toward `lo`.
#[must_use]
pub fn f64_in(lo: f64, hi: f64) -> Gen<f64> {
    assert!(lo < hi, "f64_in: empty range {lo}..{hi}");
    Gen::new(
        move |rng| lo + (hi - lo) * rng.unit_f64(),
        move |&v| {
            let mut out = Vec::new();
            if v > lo {
                out.push(lo);
                let mid = lo + (v - lo) / 2.0;
                if mid > lo && mid < v {
                    out.push(mid);
                }
            }
            out
        },
    )
}

/// Uniform `f32` in `[lo, hi)`; shrinks toward `lo`.
#[must_use]
pub fn f32_in(lo: f32, hi: f32) -> Gen<f32> {
    let g = f64_in(f64::from(lo), f64::from(hi));
    let shrink = g.shrink;
    let sample = g.sample;
    Gen {
        sample: Rc::new(move |rng| (sample)(rng) as f32),
        shrink: Rc::new(move |&v| {
            (shrink)(&f64::from(v))
                .into_iter()
                .map(|x| x as f32)
                .collect()
        }),
    }
}

/// Vector of `lo..hi` elements (the `collection::vec(g, lo..hi)`
/// analogue). Shrinks by dropping halves, dropping single elements,
/// and shrinking individual elements.
#[must_use]
pub fn vec_in<T: Clone + 'static>(elem: Gen<T>, lo: usize, hi: usize) -> Gen<Vec<T>> {
    assert!(lo < hi, "vec_in: empty range {lo}..{hi}");
    let sample_elem = elem.clone();
    Gen::new(
        move |rng| {
            let n = lo + rng.below((hi - lo) as u64) as usize;
            (0..n).map(|_| sample_elem.sample(rng)).collect()
        },
        move |v: &Vec<T>| {
            let mut out: Vec<Vec<T>> = Vec::new();
            let n = v.len();
            // Structural shrinks: halves, then single-element drops.
            if n > lo {
                if n / 2 >= lo {
                    out.push(v[..n / 2].to_vec());
                    out.push(v[n - n / 2..].to_vec());
                }
                for i in 0..n.min(8) {
                    let mut shorter = v.clone();
                    shorter.remove(i);
                    out.push(shorter);
                }
            }
            // Element-wise shrinks (first few positions only).
            for i in 0..n.min(4) {
                for cand in elem.shrink(&v[i]) {
                    let mut copy = v.clone();
                    copy[i] = cand;
                    out.push(copy);
                }
            }
            out
        },
    )
}

/// Vector of exactly `n` elements (the fixed-length `collection::vec`).
#[must_use]
pub fn vec_exact<T: Clone + 'static>(elem: Gen<T>, n: usize) -> Gen<Vec<T>> {
    let sample_elem = elem.clone();
    Gen::new(
        move |rng| (0..n).map(|_| sample_elem.sample(rng)).collect(),
        move |v: &Vec<T>| {
            let mut out = Vec::new();
            for i in 0..v.len().min(4) {
                for cand in elem.shrink(&v[i]) {
                    let mut copy = v.clone();
                    copy[i] = cand;
                    out.push(copy);
                }
            }
            out
        },
    )
}

/// Pair of independent draws; shrinks component-wise.
#[must_use]
pub fn pair<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    let (sa, sb) = (a.clone(), b.clone());
    Gen::new(
        move |rng| (sa.sample(rng), sb.sample(rng)),
        move |(x, y): &(A, B)| {
            let mut out: Vec<(A, B)> = Vec::new();
            for cand in a.shrink(x) {
                out.push((cand, y.clone()));
            }
            for cand in b.shrink(y) {
                out.push((x.clone(), cand));
            }
            out
        },
    )
}

/// Triple of independent draws; shrinks component-wise.
#[must_use]
pub fn triple<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
) -> Gen<(A, B, C)> {
    pair(a, pair(b, c)).map_tuple3()
}

impl<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static> Gen<(A, (B, C))> {
    fn map_tuple3(self) -> Gen<(A, B, C)> {
        let sample = self.sample;
        let shrink = self.shrink;
        Gen {
            sample: Rc::new(move |rng| {
                let (a, (b, c)) = (sample)(rng);
                (a, b, c)
            }),
            shrink: Rc::new(move |(a, b, c): &(A, B, C)| {
                (shrink)(&(a.clone(), (b.clone(), c.clone())))
                    .into_iter()
                    .map(|(a, (b, c))| (a, b, c))
                    .collect()
            }),
        }
    }
}

/// Quadruple of independent draws; shrinks component-wise.
#[must_use]
pub fn quad<A, B, C, D>(a: Gen<A>, b: Gen<B>, c: Gen<C>, d: Gen<D>) -> Gen<(A, B, C, D)>
where
    A: Clone + 'static,
    B: Clone + 'static,
    C: Clone + 'static,
    D: Clone + 'static,
{
    let inner = pair(pair(a, b), pair(c, d));
    let sample = inner.sample;
    let shrink = inner.shrink;
    Gen {
        sample: Rc::new(move |rng| {
            let ((a, b), (c, d)) = (sample)(rng);
            (a, b, c, d)
        }),
        shrink: Rc::new(move |(a, b, c, d): &(A, B, C, D)| {
            (shrink)(&((a.clone(), b.clone()), (c.clone(), d.clone())))
                .into_iter()
                .map(|((a, b), (c, d))| (a, b, c, d))
                .collect()
        }),
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn base_seed(name: &str) -> u64 {
    let env = std::env::var("ECOFL_CHECK_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xEC0F_1AB5);
    env ^ fnv1a(name)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic payload>".to_string())
    }
}

fn fails<T>(prop: &impl Fn(&T), value: &T) -> Option<String> {
    // Silence the default per-panic backtrace spam while probing.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(AssertUnwindSafe(|| prop(value)));
    std::panic::set_hook(prev);
    result.err().map(|p| panic_message(p.as_ref()))
}

/// Maximum shrink steps before giving up and reporting the best-so-far
/// counterexample.
const SHRINK_BUDGET: usize = 400;

/// Runs `prop` against `cases` values drawn from `gen`; the property
/// fails by panicking (plain `assert!` works). On failure the value is
/// shrunk and the harness panics with a replayable report.
///
/// # Panics
/// Panics if the property fails for any generated case.
pub fn forall<T: Debug + Clone + 'static>(
    name: &str,
    cases: usize,
    gen: &Gen<T>,
    prop: impl Fn(&T),
) {
    let cases = std::env::var("ECOFL_CHECK_CASES")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(cases)
        .max(1);
    let seed = base_seed(name);
    for case in 0..cases {
        let mut rng = CheckRng::new(seed.wrapping_add(GOLDEN_GAMMA.wrapping_mul(case as u64)));
        let original = gen.sample(&mut rng);
        let Some(first_msg) = fails(&prop, &original) else {
            continue;
        };
        // Greedy shrink: walk to the first failing candidate, repeat.
        let mut current = original.clone();
        let mut message = first_msg;
        let mut steps = 0usize;
        'outer: while steps < SHRINK_BUDGET {
            for candidate in gen.shrink(&current) {
                steps += 1;
                if let Some(msg) = fails(&prop, &candidate) {
                    current = candidate;
                    message = msg;
                    continue 'outer;
                }
                if steps >= SHRINK_BUDGET {
                    break;
                }
            }
            break;
        }
        panic!(
            "property '{name}' failed (case {case}, base seed {seed:#x})\n\
             shrunk counterexample: {current:?}\n\
             original counterexample: {original:?}\n\
             assertion: {message}\n\
             replay with ECOFL_CHECK_SEED={}",
            seed ^ fnv1a(name)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_stays_quiet() {
        forall(
            "sum_commutes",
            64,
            &pair(any_u64(), any_u64()),
            |&(a, b)| {
                assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
            },
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let g = vec_in(u64_in(0, 100), 1, 20);
        let mut r1 = CheckRng::new(9);
        let mut r2 = CheckRng::new(9);
        assert_eq!(g.sample(&mut r1), g.sample(&mut r2));
    }

    #[test]
    fn ranges_are_respected() {
        let g = triple(usize_in(4, 60), f64_in(1.0, 500.0), u32_in(1, 4));
        let mut rng = CheckRng::new(3);
        for _ in 0..2000 {
            let (n, x, w) = g.sample(&mut rng);
            assert!((4..60).contains(&n));
            assert!((1.0..500.0).contains(&x));
            assert!((1..4).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_are_respected() {
        let g = vec_in(f64_in(0.0, 1.0), 2, 7);
        let mut rng = CheckRng::new(4);
        for _ in 0..500 {
            let v = g.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn failure_is_reported_with_shrunk_value() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall("gt_100_fails", 200, &u64_in(0, 10_000), |&v| {
                assert!(v < 100, "value {v} too big");
            });
        }));
        let msg = panic_message(result.expect_err("property must fail").as_ref());
        assert!(msg.contains("property 'gt_100_fails' failed"), "{msg}");
        // Greedy halving toward the range floor lands exactly on the
        // boundary counterexample.
        assert!(msg.contains("shrunk counterexample: 100"), "{msg}");
    }

    #[test]
    fn shrink_respects_vec_min_length() {
        let g = vec_in(u64_in(0, 10), 3, 9);
        let mut rng = CheckRng::new(5);
        for _ in 0..100 {
            let v = g.sample(&mut rng);
            for cand in g.shrink(&v) {
                assert!(cand.len() >= 3, "shrink below min length: {cand:?}");
            }
        }
    }
}
