//! # ecofl-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§6). Each bench target (`benches/`) is a
//! stand-alone `harness = false` binary that prints the paper's rows or
//! series and writes a machine-readable JSON next to it under
//! `target/ecofl-results/`.
//!
//! Shared helpers live here: result output, table formatting, and the
//! common experimental fixtures (device clusters, datasets).

use ecofl_compat::json;
use ecofl_compat::serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Directory where bench targets drop their JSON series.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/ecofl-results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a JSON result file for a figure/table id (e.g. `"fig7"`).
///
/// # Panics
/// Panics if serialization or the write fails.
pub fn write_json<T: Serialize>(id: &str, value: &T) {
    let path = results_dir().join(format!("{id}.json"));
    let json = json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, json).expect("write result file");
    println!("\n[written] {}", path.display());
}

/// One measured benchmark case — the schema-stable record that makes up a
/// `BENCH_<topic>.json` snapshot at the repo root. Adding fields is a
/// schema change: update `validate_bench` and DESIGN.md alongside.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseStats {
    /// Case name as printed by [`time_case`].
    pub case: String,
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
    /// Median iteration, nanoseconds.
    pub median_ns: f64,
    /// Measured iterations (after warmup).
    pub iters: u64,
    /// Discarded warmup iterations.
    pub warmup: u64,
    /// Git revision the snapshot was taken at (`ECOFL_GIT_REV`, falling
    /// back to `git rev-parse --short HEAD`, then `"unknown"`).
    pub git_rev: String,
}

/// Cases recorded by [`time_case`] since the last
/// [`write_bench_snapshot`], in execution order.
fn recorded() -> &'static Mutex<Vec<CaseStats>> {
    static RECORDED: OnceLock<Mutex<Vec<CaseStats>>> = OnceLock::new();
    RECORDED.get_or_init(|| Mutex::new(Vec::new()))
}

fn env_count(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be a non-negative integer, got {v:?}")),
        Err(_) => default,
    }
}

/// Measured iteration count: `ECOFL_BENCH_ITERS` when set (CI smoke runs
/// use `1`), otherwise `default`. Clamped to at least 1.
#[must_use]
pub fn bench_iters(default: usize) -> usize {
    env_count("ECOFL_BENCH_ITERS", default).max(1)
}

/// Warmup iteration count: `ECOFL_BENCH_WARMUP` when set, else `default`.
#[must_use]
pub fn bench_warmup(default: usize) -> usize {
    env_count("ECOFL_BENCH_WARMUP", default)
}

/// Revision stamped into snapshot records: `ECOFL_GIT_REV` if set (how
/// `scripts/bench.sh` pins it), else `git rev-parse --short HEAD`, else
/// `"unknown"` (hermetic environments without a git binary).
#[must_use]
pub fn git_rev() -> String {
    static REV: OnceLock<String> = OnceLock::new();
    REV.get_or_init(|| {
        if let Ok(rev) = std::env::var("ECOFL_GIT_REV") {
            let rev = rev.trim().to_string();
            if !rev.is_empty() {
                return rev;
            }
        }
        std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    })
    .clone()
}

/// Median of a non-empty sample set (mean of the middle pair when even).
fn median_ns(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Times `f` over `iters` runs after `warmup` discarded runs and prints
/// a `name  mean ± spread  [min, max]` line — the criterion-free micro
/// bench driver. Records the case (mean/min/median) for the next
/// [`write_bench_snapshot`] and returns the mean in nanoseconds so
/// callers can report derived figures.
pub fn time_case<R>(name: &str, warmup: usize, iters: usize, mut f: impl FnMut() -> R) -> f64 {
    assert!(iters > 0, "time_case: need at least one iteration");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples_ns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        samples_ns.push(start.elapsed().as_nanos() as f64);
    }
    let mean = samples_ns.iter().sum::<f64>() / iters as f64;
    let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples_ns.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let var = samples_ns.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / iters as f64;
    let sd = var.sqrt();
    let median = median_ns(&samples_ns);
    let scale = |ns: f64| -> String {
        if ns < 1e3 {
            format!("{ns:8.1} ns")
        } else if ns < 1e6 {
            format!("{:8.2} µs", ns / 1e3)
        } else if ns < 1e9 {
            format!("{:8.2} ms", ns / 1e6)
        } else {
            format!("{:8.2} s ", ns / 1e9)
        }
    };
    println!(
        "  {name:<32} {} ± {}   [{}, {}]   med {}",
        scale(mean),
        scale(sd),
        scale(min),
        scale(max),
        scale(median)
    );
    recorded().lock().expect("bench registry").push(CaseStats {
        case: name.to_string(),
        mean_ns: mean,
        min_ns: min,
        median_ns: median,
        iters: iters as u64,
        warmup: warmup as u64,
        git_rev: git_rev(),
    });
    mean
}

/// Writes every case recorded since the previous snapshot to
/// `BENCH_<topic>.json` (a flat array of [`CaseStats`]) and clears the
/// registry. The destination directory is `ECOFL_BENCH_DIR` when set
/// (CI smoke runs point it at a scratch dir), otherwise the repo root —
/// where the trajectory snapshots are committed.
///
/// # Panics
/// Panics if no cases were recorded or the write fails.
pub fn write_bench_snapshot(topic: &str) -> PathBuf {
    let cases = std::mem::take(&mut *recorded().lock().expect("bench registry"));
    let dir = std::env::var("ECOFL_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    write_snapshot_in(&dir, topic, &cases)
}

/// [`write_bench_snapshot`] with an explicit destination directory.
///
/// # Panics
/// Panics if no cases were recorded or the write fails.
pub fn write_snapshot_in(dir: &std::path::Path, topic: &str, cases: &[CaseStats]) -> PathBuf {
    assert!(
        !cases.is_empty(),
        "write_bench_snapshot({topic}): no cases recorded"
    );
    std::fs::create_dir_all(dir).expect("create bench snapshot dir");
    let path = dir.join(format!("BENCH_{topic}.json"));
    let json = json::to_string_pretty(&cases).expect("serialize bench snapshot");
    std::fs::write(&path, json).expect("write bench snapshot");
    println!("\n[bench-snapshot] {}", path.display());
    path
}

/// Prints a section header in the bench output.
pub fn header(title: &str) {
    println!("\n==== {title} ====");
}

/// Formats an accuracy-vs-time series as aligned rows.
pub fn print_series(name: &str, points: &[(f64, f64)], unit: &str) {
    println!("--- {name} ---");
    for (t, v) in points {
        println!("  t = {t:8.1}s   {v:8.3} {unit}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists() {
        let d = results_dir();
        assert!(d.is_dir());
    }

    #[test]
    fn write_json_round_trips() {
        write_json("selftest", &vec![1, 2, 3]);
        let content = std::fs::read_to_string(results_dir().join("selftest.json")).unwrap();
        let back: Vec<i32> = json::from_str(&content).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn time_case_reports_positive_mean() {
        let mean = time_case("selftest_spin", 1, 5, || {
            (0..1000u64).fold(0u64, |a, b| a.wrapping_add(b * b))
        });
        assert!(mean > 0.0);
    }

    #[test]
    fn median_handles_odd_and_even_sample_counts() {
        assert_eq!(median_ns(&[5.0]), 5.0);
        assert_eq!(median_ns(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_ns(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn bench_counts_fall_back_to_defaults() {
        // The CI smoke path sets these only around `scripts/bench.sh`;
        // under `cargo test` they are unset and the defaults win.
        if std::env::var("ECOFL_BENCH_ITERS").is_err() {
            assert_eq!(bench_iters(20), 20);
        }
        if std::env::var("ECOFL_BENCH_WARMUP").is_err() {
            assert_eq!(bench_warmup(3), 3);
        }
    }

    #[test]
    fn git_rev_is_never_empty() {
        assert!(!git_rev().is_empty());
    }

    #[test]
    fn case_stats_round_trip_preserves_schema() {
        let stats = CaseStats {
            case: "selftest_case".into(),
            mean_ns: 1500.0,
            min_ns: 1200.0,
            median_ns: 1400.0,
            iters: 20,
            warmup: 3,
            git_rev: "abc1234".into(),
        };
        let text = json::to_string_pretty(&vec![stats.clone()]).unwrap();
        let back: Vec<CaseStats> = json::from_str(&text).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].case, stats.case);
        assert_eq!(back[0].mean_ns, stats.mean_ns);
        assert_eq!(back[0].min_ns, stats.min_ns);
        assert_eq!(back[0].median_ns, stats.median_ns);
        assert_eq!(back[0].iters, stats.iters);
        assert_eq!(back[0].warmup, stats.warmup);
        assert_eq!(back[0].git_rev, stats.git_rev);
    }

    #[test]
    fn snapshot_writer_emits_readable_case_array() {
        let dir = results_dir().join("snapshot-selftest");
        let cases = vec![CaseStats {
            case: "selftest_snapshot".into(),
            mean_ns: 10.0,
            min_ns: 8.0,
            median_ns: 9.0,
            iters: 5,
            warmup: 1,
            git_rev: git_rev(),
        }];
        let path = write_snapshot_in(&dir, "selftest", &cases);
        assert_eq!(path.file_name().unwrap(), "BENCH_selftest.json");
        let back: Vec<CaseStats> =
            json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].case, "selftest_snapshot");
    }

    #[test]
    #[should_panic(expected = "no cases recorded")]
    fn snapshot_writer_rejects_empty_registry() {
        let dir = results_dir().join("snapshot-selftest");
        write_snapshot_in(&dir, "selftest_empty", &[]);
    }
}
