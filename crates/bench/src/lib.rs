//! # ecofl-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§6). Each bench target (`benches/`) is a
//! stand-alone `harness = false` binary that prints the paper's rows or
//! series and writes a machine-readable JSON next to it under
//! `target/ecofl-results/`.
//!
//! Shared helpers live here: result output, table formatting, and the
//! common experimental fixtures (device clusters, datasets).

use serde::Serialize;
use std::path::PathBuf;

/// Directory where bench targets drop their JSON series.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/ecofl-results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a JSON result file for a figure/table id (e.g. `"fig7"`).
///
/// # Panics
/// Panics if serialization or the write fails.
pub fn write_json<T: Serialize>(id: &str, value: &T) {
    let path = results_dir().join(format!("{id}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, json).expect("write result file");
    println!("\n[written] {}", path.display());
}

/// Prints a section header in the bench output.
pub fn header(title: &str) {
    println!("\n==== {title} ====");
}

/// Formats an accuracy-vs-time series as aligned rows.
pub fn print_series(name: &str, points: &[(f64, f64)], unit: &str) {
    println!("--- {name} ---");
    for (t, v) in points {
        println!("  t = {t:8.1}s   {v:8.3} {unit}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists() {
        let d = results_dir();
        assert!(d.is_dir());
    }

    #[test]
    fn write_json_round_trips() {
        write_json("selftest", &vec![1, 2, 3]);
        let content = std::fs::read_to_string(results_dir().join("selftest.json")).unwrap();
        let back: Vec<i32> = serde_json::from_str(&content).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
