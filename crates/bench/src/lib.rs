//! # ecofl-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§6). Each bench target (`benches/`) is a
//! stand-alone `harness = false` binary that prints the paper's rows or
//! series and writes a machine-readable JSON next to it under
//! `target/ecofl-results/`.
//!
//! Shared helpers live here: result output, table formatting, and the
//! common experimental fixtures (device clusters, datasets).

use ecofl_compat::json;
use ecofl_compat::serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

/// Directory where bench targets drop their JSON series.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/ecofl-results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a JSON result file for a figure/table id (e.g. `"fig7"`).
///
/// # Panics
/// Panics if serialization or the write fails.
pub fn write_json<T: Serialize>(id: &str, value: &T) {
    let path = results_dir().join(format!("{id}.json"));
    let json = json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, json).expect("write result file");
    println!("\n[written] {}", path.display());
}

/// Times `f` over `iters` runs after `warmup` discarded runs and prints
/// a `name  mean ± spread  [min, max]` line — the criterion-free micro
/// bench driver. Returns the mean in nanoseconds so callers can report
/// derived figures.
pub fn time_case<R>(name: &str, warmup: usize, iters: usize, mut f: impl FnMut() -> R) -> f64 {
    assert!(iters > 0, "time_case: need at least one iteration");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples_ns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        samples_ns.push(start.elapsed().as_nanos() as f64);
    }
    let mean = samples_ns.iter().sum::<f64>() / iters as f64;
    let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples_ns.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let var = samples_ns.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / iters as f64;
    let sd = var.sqrt();
    let scale = |ns: f64| -> String {
        if ns < 1e3 {
            format!("{ns:8.1} ns")
        } else if ns < 1e6 {
            format!("{:8.2} µs", ns / 1e3)
        } else if ns < 1e9 {
            format!("{:8.2} ms", ns / 1e6)
        } else {
            format!("{:8.2} s ", ns / 1e9)
        }
    };
    println!(
        "  {name:<32} {} ± {}   [{}, {}]",
        scale(mean),
        scale(sd),
        scale(min),
        scale(max)
    );
    mean
}

/// Prints a section header in the bench output.
pub fn header(title: &str) {
    println!("\n==== {title} ====");
}

/// Formats an accuracy-vs-time series as aligned rows.
pub fn print_series(name: &str, points: &[(f64, f64)], unit: &str) {
    println!("--- {name} ---");
    for (t, v) in points {
        println!("  t = {t:8.1}s   {v:8.3} {unit}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_exists() {
        let d = results_dir();
        assert!(d.is_dir());
    }

    #[test]
    fn write_json_round_trips() {
        write_json("selftest", &vec![1, 2, 3]);
        let content = std::fs::read_to_string(results_dir().join("selftest.json")).unwrap();
        let back: Vec<i32> = json::from_str(&content).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn time_case_reports_positive_mean() {
        let mean = time_case("selftest_spin", 1, 5, || {
            (0..1000u64).fold(0u64, |a, b| a.wrapping_add(b * b))
        });
        assert!(mean > 0.0);
    }
}
