//! Validates `BENCH_<topic>.json` snapshot files against the
//! [`ecofl_bench::CaseStats`] schema — the gate `scripts/bench.sh` and
//! the CI bench-smoke step run after every snapshot write.
//!
//! Usage: `validate_bench <snapshot.json>...`
//!
//! Each file must parse as a non-empty JSON array of records carrying
//! exactly the `CaseStats` fields with sane values (finite non-negative
//! timings, `min_ns <= median_ns`, `iters >= 1`, non-empty `case` /
//! `git_rev`, and no duplicate case names). Exits non-zero naming the
//! first violation, so a malformed snapshot fails the pipeline instead
//! of silently landing in the trajectory.

use ecofl_compat::json::{self, Value};

const REQUIRED_FIELDS: [&str; 7] = [
    "case",
    "mean_ns",
    "min_ns",
    "median_ns",
    "iters",
    "warmup",
    "git_rev",
];

fn check_record(rec: &Value, idx: usize) -> Result<String, String> {
    let at = |field: &str| format!("record {idx}: field {field:?}");
    let obj = rec
        .as_object()
        .ok_or_else(|| format!("record {idx}: not a JSON object"))?;
    for field in REQUIRED_FIELDS {
        if !obj.iter().any(|(k, _)| k == field) {
            return Err(format!("{} missing", at(field)));
        }
    }
    for (key, _) in obj {
        if !REQUIRED_FIELDS.contains(&key.as_str()) {
            return Err(format!("record {idx}: unknown field {key:?}"));
        }
    }
    let case = rec
        .get("case")
        .and_then(Value::as_str)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| format!("{} must be a non-empty string", at("case")))?;
    let num = |field: &str| -> Result<f64, String> {
        rec.get(field)
            .and_then(Value::as_f64)
            .filter(|v| v.is_finite() && *v >= 0.0)
            .ok_or_else(|| format!("{} must be a finite non-negative number", at(field)))
    };
    let (mean, min, median) = (num("mean_ns")?, num("min_ns")?, num("median_ns")?);
    if min > median {
        return Err(format!(
            "record {idx} ({case}): min_ns {min} exceeds median_ns {median}"
        ));
    }
    if min > mean {
        return Err(format!(
            "record {idx} ({case}): min_ns {min} exceeds mean_ns {mean}"
        ));
    }
    let iters = rec
        .get("iters")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{} must be a non-negative integer", at("iters")))?;
    if iters == 0 {
        return Err(format!("record {idx} ({case}): iters must be >= 1"));
    }
    rec.get("warmup")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{} must be a non-negative integer", at("warmup")))?;
    rec.get("git_rev")
        .and_then(Value::as_str)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| format!("{} must be a non-empty string", at("git_rev")))?;
    Ok(case.to_string())
}

fn check_file(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value: Value = json::from_str(&text).map_err(|e| format!("{path}: invalid JSON: {e:?}"))?;
    let records = value
        .as_array()
        .ok_or_else(|| format!("{path}: top level must be a JSON array"))?;
    if records.is_empty() {
        return Err(format!("{path}: snapshot holds no cases"));
    }
    let mut names: Vec<String> = Vec::with_capacity(records.len());
    for (idx, rec) in records.iter().enumerate() {
        let case = check_record(rec, idx).map_err(|e| format!("{path}: {e}"))?;
        if names.contains(&case) {
            return Err(format!("{path}: duplicate case {case:?}"));
        }
        names.push(case);
    }
    Ok(records.len())
}

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_bench <snapshot.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        match check_file(path) {
            Ok(n) => println!("[validate-bench] {path}: ok ({n} cases)"),
            Err(e) => {
                eprintln!("[validate-bench] FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
