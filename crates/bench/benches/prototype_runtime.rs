//! Prototype-side measurement: the *real* multi-threaded 1F1B-Sync
//! runtime training a genuine model, timed on this machine's wall clock.
//!
//! This complements the simulation benches the way the paper's testbed
//! complements its numerical simulation: the schedule, channels, and
//! tensor math are all real. Throughput numbers are machine-dependent, so
//! the only assertions are semantic (identical final parameters across
//! stage counts — 1F1B-Sync never changes training semantics).

use ecofl_bench::{header, write_json};
use ecofl_compat::serde::Serialize;
use ecofl_pipeline::runtime::PipelineTrainer;
use ecofl_tensor::{Layer, Linear, ReLU, Tensor};
use ecofl_util::Rng;
use std::time::Instant;

const IN_DIM: usize = 64;
const HIDDEN: usize = 256;
const CLASSES: usize = 10;
const MICRO_BATCHES: usize = 8;
const BATCH: usize = 16;
const ROUNDS: usize = 30;

#[derive(Serialize)]
struct Row {
    stages: usize,
    rounds_per_sec: f64,
    samples_per_sec: f64,
    final_loss: f32,
}

/// Six-layer MLP as `segment_count` contiguous segments.
fn segments(seed: u64, segment_count: usize) -> Vec<Vec<Box<dyn Layer>>> {
    let mut rng = Rng::new(seed);
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Linear::new(IN_DIM, HIDDEN, &mut rng)),
        Box::new(ReLU::new()),
        Box::new(Linear::new(HIDDEN, HIDDEN, &mut rng)),
        Box::new(ReLU::new()),
        Box::new(Linear::new(HIDDEN, HIDDEN, &mut rng)),
        Box::new(Linear::new(HIDDEN, CLASSES, &mut rng)),
    ];
    let per = layers.len().div_ceil(segment_count);
    let mut segs: Vec<Vec<Box<dyn Layer>>> = Vec::new();
    let mut current = Vec::new();
    for layer in layers {
        current.push(layer);
        if current.len() == per && segs.len() + 1 < segment_count {
            segs.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        segs.push(current);
    }
    segs
}

fn batches(seed: u64) -> Vec<(Tensor, Vec<usize>)> {
    let mut rng = Rng::new(seed);
    (0..MICRO_BATCHES)
        .map(|_| {
            let x = Tensor::randn(&[BATCH, IN_DIM], 1.0, &mut rng);
            let y = (0..BATCH).map(|_| rng.range_usize(0, CLASSES)).collect();
            (x, y)
        })
        .collect()
}

fn main() {
    header("Prototype: real threaded 1F1B-Sync runtime (wall-clock, machine-dependent)");
    println!(
        "6-layer MLP {IN_DIM}->{HIDDEN}x3->{CLASSES}, {MICRO_BATCHES} micro-batches x {BATCH} \
         samples, {ROUNDS} rounds\n"
    );
    println!(
        "{:>7} {:>12} {:>14} {:>12}",
        "stages", "rounds/s", "samples/s", "final loss"
    );

    let data = batches(99);
    let mut rows = Vec::new();
    let mut final_params: Vec<Vec<f32>> = Vec::new();
    for stages in [1usize, 2, 3] {
        let k: Vec<usize> = (0..stages).map(|s| stages - s).collect();
        let mut trainer = PipelineTrainer::launch(segments(7, stages), k);
        // Warmup round excluded from timing.
        let _ = trainer.train_round(&data, 0.05);
        let start = Instant::now();
        let mut loss = 0.0;
        for _ in 0..ROUNDS {
            loss = trainer.train_round(&data, 0.05).expect("healthy round");
        }
        let secs = start.elapsed().as_secs_f64();
        let row = Row {
            stages,
            rounds_per_sec: ROUNDS as f64 / secs,
            samples_per_sec: (ROUNDS * MICRO_BATCHES * BATCH) as f64 / secs,
            final_loss: loss,
        };
        println!(
            "{:>7} {:>12.1} {:>14.0} {:>12.4}",
            row.stages, row.rounds_per_sec, row.samples_per_sec, row.final_loss
        );
        final_params.push(trainer.params().expect("healthy collect"));
        rows.push(row);
        trainer.shutdown();
    }

    // Semantic assertion: every stage count produces bit-identical weights.
    for w in final_params.windows(2) {
        assert_eq!(
            w[0], w[1],
            "1F1B-Sync must be semantically identical across stage counts"
        );
    }
    println!("\nSemantic check passed: 1, 2 and 3-stage runs end with bit-identical weights.");
    write_json("prototype_runtime", &rows);
}
