//! Fig. 12 — heterogeneity-aware partitioning vs PipeDream's even split.
//!
//! Two-stage pipeline ⟨TX2-N, Nano-H⟩ on EfficientNet-B1 and
//! MobileNetV2-W2. PipeDream's partitioner was designed for homogeneous
//! devices and splits FLOPs evenly, leaving the ~2.8× faster TX2-N idle
//! most of the time; the Eq. 1 partitioner balances *time*, keeping both
//! stages busy and lifting pipeline throughput.

use ecofl_bench::{header, write_json};
use ecofl_compat::serde::Serialize;
use ecofl_models::{efficientnet_at, mobilenet_v2_at, ModelProfile};
use ecofl_pipeline::executor::{PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::orchestrator::k_bounds;
use ecofl_pipeline::partition::{partition_dp, partition_even, Partition};
use ecofl_pipeline::profiler::PipelineProfile;
use ecofl_simnet::{nano_h, tx2_n, Device, Link};

#[derive(Serialize)]
struct Row {
    model: String,
    partitioner: &'static str,
    boundaries: Vec<usize>,
    throughput: f64,
    gpu_utilization: Vec<f64>,
}

fn run_case(model: &ModelProfile, partition: &Partition, mbs: usize, m: usize) -> (f64, Vec<f64>) {
    let link = Link::mbps_100();
    let devices = vec![Device::new(tx2_n()), Device::new(nano_h())];
    let profile = PipelineProfile::new(model, &partition.boundaries, &devices, &link, mbs);
    let k = k_bounds(&profile).expect("feasible residency");
    let r = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
        .expect("valid schedule")
        .run(m, 4)
        .expect("no OOM");
    (r.throughput, r.stage_gpu_utilization)
}

fn main() {
    header("Fig. 12: Eq. 1 partitioner vs PipeDream even split — 2 stages (TX2-N + Nano-H)");
    let link = Link::mbps_100();
    let devices = vec![Device::new(tx2_n()), Device::new(nano_h())];
    let mbs = 16;
    let m = 16;

    println!(
        "{:<22} {:<10} {:>14} {:>12} {:>22}",
        "Model", "Partition", "boundaries", "samples/s", "GPU util TX2-N/Nano-H"
    );
    let mut rows = Vec::new();
    for model in [efficientnet_at(1, 224), mobilenet_v2_at(2.0, 224)] {
        let even = partition_even(&model, 2).expect("even split");
        let ours = partition_dp(&model, &devices, &link, mbs).expect("dp split");
        for (name, partition) in [("PipeDream", &even), ("Eco-FL", &ours)] {
            let (throughput, util) = run_case(&model, partition, mbs, m);
            println!(
                "{:<22} {:<10} {:>14} {:>12.2} {:>10.1}% /{:>7.1}%",
                model.name,
                name,
                format!("{:?}", partition.boundaries),
                throughput,
                util[0] * 100.0,
                util[1] * 100.0,
            );
            rows.push(Row {
                model: model.name.clone(),
                partitioner: name,
                boundaries: partition.boundaries.clone(),
                throughput,
                gpu_utilization: util,
            });
        }
    }

    // Shape checks: ours wins throughput on both models, and PipeDream
    // starves the fast device.
    for pair in rows.chunks(2) {
        let (even, ours) = (&pair[0], &pair[1]);
        assert!(
            ours.throughput > even.throughput,
            "{}: Eco-FL {} must beat even split {}",
            ours.model,
            ours.throughput,
            even.throughput
        );
        assert!(
            even.gpu_utilization[0] < ours.gpu_utilization[0],
            "{}: even split must under-utilize the fast device",
            even.model
        );
    }
    println!("\nShape checks passed: heterogeneity-aware partitioning wins on both models.");
    write_json("fig12", &rows);
}
