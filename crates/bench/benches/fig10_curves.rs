//! Fig. 10 — time-to-accuracy of single-device, data-parallel, and
//! Eco-FL pipeline training on the four pipeline workloads.
//!
//! All methods run the same synchronous SGD, so the accuracy-per-epoch
//! curve is shared; methods differ in seconds-per-epoch. A genuine
//! reference curve is trained once (our CNN on the hard synthetic task,
//! standing in for CIFAR-10 — see DESIGN.md), and each method's curve is
//! that reference stretched by its simulated epoch time from the Fig. 11
//! harness. Shape: pipeline reaches the target accuracy first; DP last
//! (slower than a single device for MobileNet-W3).

use ecofl_bench::{header, print_series, write_json};
use ecofl_compat::serde::Serialize;
use ecofl_data::SyntheticSpec;
use ecofl_fl::reference::ReferenceCurve;
use ecofl_models::{efficientnet_at, mobilenet_v2_at, ModelArch, ModelProfile};
use ecofl_pipeline::baselines::{data_parallel_epoch, single_device_epoch};
use ecofl_pipeline::orchestrator::{search_configuration, OrchestratorConfig};
use ecofl_simnet::{nano_h, nano_l, tx2_q, Device, DeviceSpec, Link};
use ecofl_util::Rng;

const EPOCH_SAMPLES: usize = 50_000;
const GLOBAL_BATCH: usize = 64;

#[derive(Serialize)]
struct Series {
    workload: String,
    method: String,
    epoch_time: f64,
    curve: Vec<(f64, f64)>,
    time_to_target: Option<f64>,
}

fn epoch_times(
    model: &ModelProfile,
    cluster: &[DeviceSpec],
    singles: &[DeviceSpec],
) -> Vec<(String, f64)> {
    let link = Link::mbps_100();
    let devices: Vec<Device> = cluster.iter().cloned().map(Device::new).collect();
    let mut out = Vec::new();
    for s in singles {
        if let Some(r) =
            single_device_epoch(model, &Device::new(s.clone()), GLOBAL_BATCH, EPOCH_SAMPLES)
        {
            out.push((format!("{} only", s.name), r.epoch_time));
        }
    }
    if let Some(dp) = data_parallel_epoch(model, &devices, &link, GLOBAL_BATCH, EPOCH_SAMPLES) {
        out.push(("Data Parallelism".into(), dp.epoch_time));
    }
    let plan = search_configuration(
        model,
        &devices,
        &link,
        &OrchestratorConfig {
            global_batch: GLOBAL_BATCH,
            mbs_candidates: vec![16, 8, 4],
            eval_rounds: 2,
            ..OrchestratorConfig::default()
        },
    )
    .expect("pipeline plan");
    out.push((
        "Eco-FL Pipeline".into(),
        EPOCH_SAMPLES as f64 / plan.report.throughput,
    ));
    out
}

fn main() {
    header("Fig. 10: time-to-accuracy per training method");

    // One genuine reference run: accuracy after each epoch on the hard
    // (CIFAR-10-like) synthetic task.
    let spec = SyntheticSpec::cifar_like();
    let protos = spec.prototypes(99);
    let mut rng = Rng::new(100);
    let train = protos.sample_balanced(120, &mut rng);
    let test = protos.sample_balanced(40, &mut rng);
    let reference = ReferenceCurve::train(ModelArch::Mlp, &train, &test, 25, 16, 0.03, 7);
    let best = reference
        .accuracy
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let target = 0.9 * best;
    println!(
        "reference curve: {} epochs, best accuracy {:.1}%, target {:.1}%",
        reference.epochs(),
        best * 100.0,
        target * 100.0
    );

    let two_stage = [nano_l(), nano_h()];
    let three_stage = [tx2_q(), nano_h(), nano_h()];
    let workloads: Vec<(String, ModelProfile, &[DeviceSpec], Vec<DeviceSpec>)> = vec![
        (
            "EfficientNet-B1 @ Pipeline-2".into(),
            efficientnet_at(1, 224),
            &two_stage,
            vec![nano_h(), nano_l()],
        ),
        (
            "MobileNet-W2 @ Pipeline-2".into(),
            mobilenet_v2_at(2.0, 224),
            &two_stage,
            vec![nano_h(), nano_l()],
        ),
        (
            "EfficientNet-B4 @ Pipeline-3".into(),
            efficientnet_at(4, 224),
            &three_stage,
            vec![tx2_q(), nano_h()],
        ),
        (
            "MobileNet-W3 @ Pipeline-3".into(),
            mobilenet_v2_at(3.0, 224),
            &three_stage,
            vec![tx2_q(), nano_h()],
        ),
    ];

    let mut all = Vec::new();
    for (name, model, cluster, singles) in &workloads {
        println!("\n--- {name} ---");
        let mut fastest_to_target: Option<(String, f64)> = None;
        for (method, epoch_time) in epoch_times(model, cluster, singles) {
            let curve = reference.timed(epoch_time);
            let ttt = curve.time_to_reach(target);
            println!(
                "{:<18} {:>9.1} s/epoch   target hit at {}",
                method,
                epoch_time,
                ttt.map_or("never".into(), |t| format!("{t:.0} s")),
            );
            if let Some(t) = ttt {
                if fastest_to_target.as_ref().is_none_or(|(_, bt)| t < *bt) {
                    fastest_to_target = Some((method.clone(), t));
                }
            }
            all.push(Series {
                workload: name.clone(),
                method,
                epoch_time,
                curve: curve.resample(12),
                time_to_target: ttt,
            });
        }
        let (winner, _) = fastest_to_target.expect("someone reaches the target");
        assert_eq!(
            winner, "Eco-FL Pipeline",
            "{name}: the pipeline must reach the target first"
        );
    }

    // 2.6× headline: pipeline vs DP time-to-target on MobileNet-W3.
    let pick = |method: &str| {
        all.iter()
            .find(|s| s.workload.contains("W3") && s.method.contains(method))
            .and_then(|s| s.time_to_target)
            .expect("target reached")
    };
    let speedup = pick("Data Parallelism") / pick("Eco-FL Pipeline");
    println!(
        "\nMobileNet-W3: pipeline reaches the target {speedup:.1}x faster than DP \
         (paper: 2.6x)."
    );
    assert!(speedup > 1.5, "pipeline must hold a clear speedup over DP");

    print_series(
        "example series: Eco-FL Pipeline on MobileNet-W3 (accuracy)",
        &all.iter()
            .find(|s| s.workload.contains("W3") && s.method == "Eco-FL Pipeline")
            .unwrap()
            .curve,
        "",
    );
    write_json("fig10", &all);
}
