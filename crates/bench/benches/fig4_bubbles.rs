//! Figs. 3 & 4 — pipeline bubble anatomy under different residency
//! vectors `K_s`.
//!
//! Reproduces the schedule phenomena of §4.3: with the Eq. 3 bound
//! `K_s = P_s` the pipeline only pays the synchronous static bubble
//! (SSB, Eq. 2); starving a stage (the paper's `K = (4,2,1)` and
//! `K = (3,2,1)` examples) adds recurring data-dependency bubbles (DDB)
//! and stretches the sync-round.

use ecofl_bench::{header, write_json};
use ecofl_compat::serde::Serialize;
use ecofl_models::efficientnet;
use ecofl_pipeline::executor::{PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::orchestrator::p_bounds;
use ecofl_pipeline::partition::partition_dp;
use ecofl_pipeline::profiler::PipelineProfile;
use ecofl_simnet::{nano_h, tx2_q, Device, Link};

#[derive(Serialize)]
struct Row {
    k: Vec<usize>,
    round_time: f64,
    throughput: f64,
    ssb_per_round: f64,
    ddb_per_round: Vec<f64>,
    stage_idle: Vec<f64>,
}

fn main() {
    let model = efficientnet(0);
    let link = Link::mbps_100();
    let devices = vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ];
    let mbs = 8;
    let m = 8;
    let partition = partition_dp(&model, &devices, &link, mbs).expect("feasible");
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, mbs);
    let p = p_bounds(&profile);

    header("Fig. 4: bubbles vs in-flight forward bounds K_s (3-stage pipeline)");
    println!("Eq. 3 bounds: P = {p:?}; M = {m} micro-batches, mbs = {mbs}\n");
    println!(
        "{:<14} {:>11} {:>12} {:>10} {:>26}",
        "K", "round (s)", "samples/s", "SSB (s)", "DDB per stage (s)"
    );

    let mut rows = Vec::new();
    for k in [p.clone(), vec![4, 2, 1], vec![3, 2, 1], vec![2, 2, 1]] {
        let exec = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k: k.clone() })
            .expect("valid schedule");
        let r = exec.run(m, 4).expect("no OOM");
        println!(
            "{:<14} {:>11.3} {:>12.2} {:>10.3} {:>26}",
            format!("{k:?}"),
            r.round_time,
            r.throughput,
            r.ssb_per_round,
            format!(
                "[{}]",
                r.ddb_per_round
                    .iter()
                    .map(|d| format!("{d:.2}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        );
        rows.push(Row {
            k,
            round_time: r.round_time,
            throughput: r.throughput,
            ssb_per_round: r.ssb_per_round,
            ddb_per_round: r.ddb_per_round.clone(),
            stage_idle: r.stage_idle_time.clone(),
        });
    }
    println!(
        "\nShape check (paper): starving any stage below P_s introduces DDB and \
         lowers throughput; K = P pays only the SSB."
    );
    assert!(
        rows[0].throughput >= rows[2].throughput,
        "K = P must not lose to a starved configuration"
    );
    write_json("fig4", &rows);
}
