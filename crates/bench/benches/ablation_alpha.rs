//! Ablation — the inter-group mixing weight α and the FedProx proximal
//! coefficient µ of Eco-FL's hierarchical aggregator (§5.1 design
//! choices).
//!
//! Small α under-weights fresh group models (slow convergence); large α
//! lets biased group models swing the global (the staleness discount
//! damps, but cannot remove, the oscillation). µ anchors local training
//! to the group model, trading per-round progress against client drift.

use ecofl_bench::{header, write_json};
use ecofl_compat::serde::Serialize;
use ecofl_data::federated::PartitionScheme;
use ecofl_data::{FederatedDataset, SyntheticSpec};
use ecofl_fl::engine::{run, FlSetup, Strategy};
use ecofl_fl::FlConfig;
use ecofl_models::ModelArch;

#[derive(Serialize)]
struct Row {
    alpha: f64,
    mu: f32,
    best_accuracy: f64,
    final_accuracy: f64,
    global_updates: u64,
}

fn run_at(alpha: f64, mu: f32, data: &FederatedDataset, seed: u64) -> Row {
    let config = FlConfig {
        num_clients: 60,
        clients_per_round: 15,
        num_groups: 5,
        horizon: 1200.0,
        eval_interval: 60.0,
        alpha,
        mu,
        seed,
        ..FlConfig::default()
    };
    let setup = FlSetup {
        data: data.clone(),
        arch: ModelArch::Mlp,
        config,
    };
    let r = run(
        Strategy::EcoFl {
            dynamic_grouping: true,
        },
        &setup,
    );
    Row {
        alpha,
        mu,
        best_accuracy: r.best_accuracy,
        final_accuracy: r.final_accuracy,
        global_updates: r.global_updates,
    }
}

fn main() {
    header("Ablation: Eco-FL α (inter-group mixing) and µ (proximal term)");
    let seed = 2024;
    let data = FederatedDataset::generate(
        &SyntheticSpec::cifar_like(),
        60,
        60,
        60,
        PartitionScheme::ClassesPerClient(2),
        None,
        seed,
    );

    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>9}",
        "alpha", "mu", "best", "final", "updates"
    );
    let mut rows = Vec::new();
    for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let r = run_at(alpha, 0.05, &data, seed);
        println!(
            "{:>6.1} {:>6.2} {:>9.1}% {:>9.1}% {:>9}",
            r.alpha,
            r.mu,
            r.best_accuracy * 100.0,
            r.final_accuracy * 100.0,
            r.global_updates
        );
        rows.push(r);
    }
    for mu in [0.0f32, 0.05, 0.2, 1.0] {
        let r = run_at(0.7, mu, &data, seed);
        println!(
            "{:>6.1} {:>6.2} {:>9.1}% {:>9.1}% {:>9}",
            r.alpha,
            r.mu,
            r.best_accuracy * 100.0,
            r.final_accuracy * 100.0,
            r.global_updates
        );
        rows.push(r);
    }

    // Shape checks: mid-range α beats the tiny-α extreme; a very strong
    // proximal term (µ = 1) slows learning relative to the paper's 0.05.
    let best_of = |pred: &dyn Fn(&Row) -> bool| {
        rows.iter()
            .filter(|r| pred(r))
            .map(|r| r.best_accuracy)
            .fold(0.0, f64::max)
    };
    let tiny_alpha = best_of(&|r: &Row| r.alpha == 0.1 && r.mu == 0.05);
    let mid_alpha = best_of(&|r: &Row| (0.5..=0.9).contains(&r.alpha) && r.mu == 0.05);
    assert!(
        mid_alpha > tiny_alpha,
        "mid-range α ({mid_alpha}) should beat α = 0.1 ({tiny_alpha})"
    );
    let paper_mu = best_of(&|r: &Row| r.alpha == 0.7 && r.mu == 0.05);
    let strong_mu = best_of(&|r: &Row| r.alpha == 0.7 && r.mu == 1.0);
    assert!(
        paper_mu >= strong_mu,
        "the paper's µ = 0.05 ({paper_mu}) should not lose to µ = 1 ({strong_mu})"
    );
    println!("\nShape checks passed: mid α > tiny α; µ = 0.05 ≥ µ = 1.");
    write_json("ablation_alpha", &rows);
}
