//! Ablation — sensitivity of the §4.4 adaptive rescheduler to its
//! deviation threshold and restart overhead (the two design knobs
//! DESIGN.md calls out for the Fig. 13 mechanism).
//!
//! A lower threshold reacts faster but can fire on noise; a higher one
//! tolerates more degradation before migrating. The restart overhead
//! prices each migration, trading reaction speed against stall time.

use ecofl_bench::{header, write_json};
use ecofl_compat::serde::Serialize;
use ecofl_models::efficientnet_at;
use ecofl_pipeline::adaptive::{simulate_load_spike_with, LoadSpike, SchedulerConfig};
use ecofl_simnet::{nano_h, tx2_q, Device, Link};

#[derive(Serialize)]
struct Row {
    deviation_threshold: f64,
    restart_overhead: f64,
    migrations: usize,
    post_spike_throughput: f64,
    recovery_fraction: f64,
}

fn main() {
    header("Ablation: §4.4 rescheduler tuning (load spike on device 1 at t = 100 s)");
    let model = efficientnet_at(4, 224);
    let link = Link::mbps_100();
    let devices = vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ];
    let horizon = 300.0;
    let mut rows = Vec::new();
    let mut best_reasonable = 0.0f64;
    // A heavy spike (every threshold fires; restart overhead is the
    // discriminator) and a mild one (a 30% load is a ~43% stage-time
    // deviation, so only thresholds below 0.43 fire at all).
    for load in [0.6, 0.3] {
        let spike = LoadSpike {
            device: 1,
            at: 100.0,
            load,
        };
        let baseline = simulate_load_spike_with(
            &model,
            &devices,
            &link,
            8,
            16,
            spike,
            horizon,
            false,
            SchedulerConfig::default(),
        )
        .expect("feasible spike scenario");
        let lost = baseline.pre_spike_throughput - baseline.post_spike_throughput;
        println!(
            "\nload {:.0}%: static pipeline pre {:.2} -> post {:.2} samples/s (lost {:.2})",
            load * 100.0,
            baseline.pre_spike_throughput,
            baseline.post_spike_throughput,
            lost
        );
        println!(
            "{:>10} {:>9} {:>11} {:>12} {:>10}",
            "threshold", "restart", "migrations", "post (smp/s)", "recovered"
        );
        for threshold in [0.05, 0.1, 0.25, 0.5, 1.0] {
            for restart in [0.5, 2.0, 10.0] {
                let cfg = SchedulerConfig {
                    deviation_threshold: threshold,
                    restart_overhead: restart,
                    ..SchedulerConfig::default()
                };
                let t = simulate_load_spike_with(
                    &model, &devices, &link, 8, 16, spike, horizon, true, cfg,
                )
                .expect("feasible spike scenario");
                let recovered = if lost > 0.0 {
                    (t.post_spike_throughput - baseline.post_spike_throughput) / lost
                } else {
                    0.0
                };
                println!(
                    "{threshold:>10.2} {restart:>9.1} {:>11} {:>12.2} {:>9.0}%",
                    t.events.len(),
                    t.post_spike_throughput,
                    recovered * 100.0
                );
                assert!(
                    t.post_spike_throughput + 1e-9 >= baseline.post_spike_throughput,
                    "scheduler must never end below the static pipeline"
                );
                if load > 0.5 && threshold <= 0.5 && restart <= 2.0 {
                    best_reasonable = best_reasonable.max(recovered);
                }
                if load < 0.5 && threshold >= 1.0 {
                    assert!(
                        t.events.is_empty(),
                        "a 43% deviation must not fire a 100% threshold"
                    );
                }
                rows.push(Row {
                    deviation_threshold: threshold,
                    restart_overhead: restart,
                    migrations: t.events.len(),
                    post_spike_throughput: t.post_spike_throughput,
                    recovery_fraction: recovered,
                });
            }
        }
    }

    assert!(
        best_reasonable > 0.5,
        "a reasonable tuning should recover >50% of the lost throughput, got {best_reasonable}"
    );
    println!(
        "\nShape checks passed: all tunings ≥ static; coarse thresholds ignore mild \
         spikes; best reasonable tuning recovers {:.0}% of the heavy spike.",
        best_reasonable * 100.0
    );
    write_json("ablation_rescheduler", &rows);
}
