//! Table 2 — 1F1B-Sync vs Gpipe's BAF-Sync schedule.
//!
//! EfficientNet-B6, two-stage pipeline ⟨TX2-N, Nano-H⟩. Gpipe keeps all
//! `M` forward activations resident until the flush, so its peak memory
//! grows with `M` and it OOMs where the early-backward 1F1B-Sync
//! schedule (resident set bounded by `K_s`) keeps running; 1F1B-Sync can
//! then spend the saved memory on a *larger micro-batch size*, pushing
//! GPU utilization up.
//!
//! Expected shape (paper):
//! - Gpipe fits `M = 6` at mbs 8 but OOMs at `M = 8`,
//! - ours at the same mbs holds far lower peak memory at `M = 8` and 16,
//! - ours scales to mbs 16 and 32 without OOM, with utilization rising.

use ecofl_bench::{header, write_json};
use ecofl_compat::serde::Serialize;
use ecofl_models::efficientnet_at;
use ecofl_pipeline::executor::{ExecError, PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::orchestrator::k_bounds;
use ecofl_pipeline::partition::partition_dp;
use ecofl_pipeline::profiler::PipelineProfile;
use ecofl_simnet::{nano_h, tx2_n, Device, Link};
use ecofl_util::units::fmt_bytes;

#[derive(Serialize)]
struct Row {
    schedule: &'static str,
    mbs: usize,
    micro_batches: usize,
    outcome: String,
    peak_memory: Vec<u64>,
    gpu_utilization: Vec<f64>,
}

fn main() {
    let model = efficientnet_at(6, 228);
    let link = Link::mbps_100();
    let devices = vec![Device::new(tx2_n()), Device::new(nano_h())];

    header("Table 2: 1F1B-Sync (ours) vs Gpipe BAF-Sync — EfficientNet-B6, 2 stages");
    println!(
        "{:<8} {:>5} {:>4} {:>25} {:>20} {:>22}",
        "Sched", "mbs", "M", "peak mem stage 0/1", "GPU util stage 0/1", "outcome"
    );

    let mut rows: Vec<Row> = Vec::new();
    let cases: Vec<(&'static str, usize, usize)> = vec![
        ("Gpipe", 8, 6),
        ("Gpipe", 8, 8),
        ("Ours", 8, 8),
        ("Ours", 8, 16),
        ("Ours", 16, 8),
        ("Ours", 16, 16),
        ("Ours", 32, 8),
        ("Ours", 32, 16),
    ];
    for (sched, mbs, m) in cases {
        let partition = partition_dp(&model, &devices, &link, mbs).expect("partition");
        let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, mbs);
        let policy = if sched == "Gpipe" {
            SchedulePolicy::BafSync
        } else {
            let k = k_bounds(&profile).expect("1F1B residency");
            SchedulePolicy::OneFOneBSync { k }
        };
        let result = PipelineExecutor::new(&profile, policy)
            .expect("valid schedule")
            .run(m, 2);
        let row = match result {
            Ok(r) => {
                println!(
                    "{:<8} {:>5} {:>4} {:>12} /{:>11} {:>9.1}% /{:>8.1}% {:>22}",
                    sched,
                    mbs,
                    m,
                    fmt_bytes(r.stage_peak_memory[0]),
                    fmt_bytes(r.stage_peak_memory[1]),
                    r.stage_gpu_utilization[0] * 100.0,
                    r.stage_gpu_utilization[1] * 100.0,
                    "ok"
                );
                Row {
                    schedule: sched,
                    mbs,
                    micro_batches: m,
                    outcome: "ok".into(),
                    peak_memory: r.stage_peak_memory,
                    gpu_utilization: r.stage_gpu_utilization,
                }
            }
            Err(ExecError::Oom { stage, micro }) => {
                println!(
                    "{:<8} {:>5} {:>4} {:>25} {:>20} {:>22}",
                    sched,
                    mbs,
                    m,
                    "-",
                    "-",
                    format!("OOM (stage {stage}, µb {micro})")
                );
                Row {
                    schedule: sched,
                    mbs,
                    micro_batches: m,
                    outcome: format!("OOM stage {stage}"),
                    peak_memory: Vec::new(),
                    gpu_utilization: Vec::new(),
                }
            }
            Err(e) => panic!("simulator can only fail with Oom, got {e}"),
        };
        rows.push(row);
    }

    // Shape checks.
    assert_eq!(rows[0].outcome, "ok", "Gpipe must fit M = 6 at mbs 8");
    assert!(
        rows[1].outcome.starts_with("OOM"),
        "Gpipe must OOM at M = 8 (got {})",
        rows[1].outcome
    );
    assert_eq!(rows[2].outcome, "ok", "ours must fit M = 8 at mbs 8");
    assert!(
        rows[2].peak_memory[0] < rows[0].peak_memory[0],
        "ours must hold less stage-0 memory than Gpipe at equal mbs"
    );
    let ours_small = rows[3].gpu_utilization[0];
    let ours_large = rows[5].gpu_utilization[0];
    assert!(
        ours_large > ours_small,
        "utilization should rise with micro-batch size: {ours_small} -> {ours_large}"
    );
    println!(
        "\nShape checks passed: Gpipe OOMs at M = 8 where 1F1B-Sync fits M = 16; \
         1F1B-Sync peak memory is lower at equal settings and utilization rises \
         with the micro-batch size the saved memory affords (mbs 8 -> 16)."
    );
    println!(
        "note: at mbs = 32 the memory bound forces K_0 = Q_0 = 1 < P_0 in our strictly \
         linear activation model, so utilization drops — exactly the K_s = min(P_s, Q_s) \
         trade-off of §4.3; the configuration search therefore settles on mbs = 16."
    );
    write_json("table2", &rows);
}
