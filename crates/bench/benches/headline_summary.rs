//! Headline summary — the abstract's three claims, recomputed from the
//! figure benches' JSON outputs:
//!
//! 1. "upgrade the training accuracy by up to 26.3%"  → fig8 (RLG-NIID,
//!    Eco-FL vs FedAT),
//! 2. "reduce the local training time by up to 61.5%" → fig11 (pipeline
//!    vs single-device epoch time),
//! 3. "improve the local training throughput by up to 2.6×" → fig10
//!    (pipeline vs data-parallel time-to-accuracy).
//!
//! Run after the figure benches (`cargo bench --workspace` orders targets
//! alphabetically, so `fig*` precede `headline_summary`).
//!
//! Besides recomputing the claims, this target times the headline-scale
//! workloads themselves (an end-to-end FL run, a 1F1B pipeline round,
//! and a Table-2-style schedule x device-mix matrix of `sched_*` cases)
//! and writes a `BENCH_headline.json` snapshot — the wall-clock
//! trajectory that complements `BENCH_micro.json`'s kernel view.

use ecofl_bench::{
    bench_iters, bench_warmup, header, results_dir, time_case, write_bench_snapshot,
};
use ecofl_compat::json::{self, Value};
use ecofl_data::federated::PartitionScheme;
use ecofl_data::{FederatedDataset, SyntheticSpec};
use ecofl_fl::engine::{run, FlSetup, Strategy};
use ecofl_fl::FlConfig;
use ecofl_models::{efficientnet_at, ModelArch};
use ecofl_pipeline::executor::{PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::orchestrator::k_bounds;
use ecofl_pipeline::partition::partition_dp;
use ecofl_pipeline::profiler::PipelineProfile;
use ecofl_pipeline::schedule::ScheduleKind;
use ecofl_simnet::{nano_h, tx2_n, tx2_q, Device, DeviceSpec, Link};
use std::hint::black_box;

/// End-to-end runs are ~1000x a micro case; default to fewer measured
/// iterations (still overridable via `ECOFL_BENCH_ITERS`).
const DEFAULT_ITERS: usize = 5;
const DEFAULT_WARMUP: usize = 1;

fn bench_fl_runs() {
    let config = FlConfig::tiny();
    let data = FederatedDataset::generate(
        &SyntheticSpec::mnist_like(),
        config.num_clients,
        60,
        60,
        PartitionScheme::ClassesPerClient(2),
        None,
        config.seed,
    );
    let setup = FlSetup {
        data,
        arch: ModelArch::Mlp,
        config,
    };
    let iters = bench_iters(DEFAULT_ITERS);
    let warmup = bench_warmup(DEFAULT_WARMUP);
    time_case("fl_run_fedavg_tiny", warmup, iters, || {
        run(Strategy::FedAvg, black_box(&setup))
    });
    time_case("fl_run_ecofl_tiny", warmup, iters, || {
        run(
            Strategy::EcoFl {
                dynamic_grouping: true,
            },
            black_box(&setup),
        )
    });
}

fn bench_sched_dispatch_100k() {
    // 100k virtual clients round-robined onto 64 data shards: the
    // census-scale scheduler path (calendar event queue, shared
    // start-parameter snapshots, streaming delta folds) end to end.
    let config = FlConfig {
        num_clients: 100_000,
        clients_per_round: 256,
        horizon: 150.0,
        eval_interval: 50.0,
        ..FlConfig::tiny()
    };
    let data = FederatedDataset::generate(
        &SyntheticSpec::mnist_like(),
        64,
        60,
        60,
        PartitionScheme::ClassesPerClient(2),
        None,
        config.seed,
    )
    .virtualize(config.num_clients);
    let setup = FlSetup {
        data,
        arch: ModelArch::Mlp,
        config,
    };
    let iters = bench_iters(DEFAULT_ITERS);
    let warmup = bench_warmup(DEFAULT_WARMUP);
    time_case("sched_dispatch_100k", warmup, iters, || {
        run(Strategy::FedAvg, black_box(&setup))
    });
}

fn bench_pipeline_round() {
    let model = efficientnet_at(2, 224);
    let devices = vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ];
    let link = Link::mbps_100();
    let partition = partition_dp(&model, &devices, &link, 16).expect("feasible");
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 16);
    let k = k_bounds(&profile).expect("residency");
    let iters = bench_iters(DEFAULT_ITERS);
    let warmup = bench_warmup(DEFAULT_WARMUP);
    time_case("pipeline_1f1b_round_b2_m16", warmup, iters, || {
        PipelineExecutor::new(
            black_box(&profile),
            SchedulePolicy::OneFOneBSync { k: k.clone() },
        )
        .expect("valid schedule")
        .run(16, 1)
    });
    // The same round with a MetricsHub attached: the pair is the
    // committed record of hub overhead on the 1F1B hot path, CI-gated
    // by tests/metrics_overhead.rs.
    let hub = ecofl_obs::MetricsHub::new();
    time_case("pipeline_1f1b_round_b2_m16_metered", warmup, iters, || {
        PipelineExecutor::new(
            black_box(&profile),
            SchedulePolicy::OneFOneBSync { k: k.clone() },
        )
        .expect("valid schedule")
        .with_metrics(&hub)
        .run(16, 1)
    });
}

/// Table-2-style matrix: every registered schedule on two heterogeneous
/// device mixes. Each cell becomes a `sched_<kind>_<mix>` wall-clock
/// case in `BENCH_headline.json`; the simulated throughput and analytic
/// bubble are printed alongside, and zero-bubble must land strictly
/// below 1F1B-Sync's Eq. 2 bubble on every mix.
fn bench_schedule_matrix() {
    let mixes: [(&str, Vec<DeviceSpec>, usize); 2] = [
        ("b2_qhh_m16", vec![tx2_q(), nano_h(), nano_h()], 16),
        ("b0_nh_m8", vec![tx2_n(), nano_h()], 8),
    ];
    let iters = bench_iters(DEFAULT_ITERS);
    let warmup = bench_warmup(DEFAULT_WARMUP);
    println!(
        "{:<12} {:<12} {:>12} {:>10}",
        "mix", "schedule", "samples/s", "bubble/rd"
    );
    for (mix, specs, m) in mixes {
        let arch = if mix.starts_with("b2") { 2 } else { 0 };
        let model = efficientnet_at(arch, 224);
        let devices: Vec<Device> = specs.into_iter().map(Device::new).collect();
        let link = Link::mbps_100();
        let mbs = m.min(8);
        let partition = partition_dp(&model, &devices, &link, mbs).expect("feasible");
        let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, mbs);
        let bubble = |kind: ScheduleKind| -> f64 {
            let policy = kind.policy_for(&profile).expect("residency");
            let report = PipelineExecutor::new(&profile, policy.clone())
                .expect("valid schedule")
                .run(m, 1)
                .expect("no OOM");
            println!(
                "{mix:<12} {:<12} {:>12.2} {:>10.4}",
                kind.name(),
                report.throughput,
                report.ssb_per_round
            );
            time_case(
                &format!("sched_{}_{mix}", kind.name()),
                warmup,
                iters,
                || {
                    PipelineExecutor::new(black_box(&profile), policy.clone())
                        .expect("valid schedule")
                        .run(m, 1)
                },
            );
            report.ssb_per_round
        };
        let mut by_kind = std::collections::BTreeMap::new();
        for kind in ScheduleKind::all() {
            by_kind.insert(kind.name(), bubble(kind));
        }
        assert!(
            by_kind["zb"] < by_kind["1f1b"],
            "{mix}: zero-bubble must beat the Eq. 2 bubble ({} vs {})",
            by_kind["zb"],
            by_kind["1f1b"]
        );
    }
}

fn load(id: &str) -> Option<Value> {
    let path = results_dir().join(format!("{id}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    json::from_str(&text).ok()
}

fn main() {
    header("Headline workloads (wall-clock)");
    bench_fl_runs();
    bench_sched_dispatch_100k();
    bench_pipeline_round();
    header("Schedule matrix (Table-2 style: schedule x device mix)");
    bench_schedule_matrix();
    write_bench_snapshot("headline");

    header("Headline claims vs measured");
    let mut missing = Vec::new();

    // 1. Accuracy uplift (fig8, RLG-NIID).
    match load("fig8") {
        Some(v) => {
            let arr = v.as_array().expect("fig8 array");
            let best = |strategy: &str| {
                arr.iter()
                    .find(|c| c["setting"] == "RLG-NIID" && c["strategy"] == strategy)
                    .and_then(|c| c["best_accuracy"].as_f64())
                    .expect("curve")
            };
            let uplift = (best("Eco-FL") - best("FedAT")) * 100.0;
            println!(
                "accuracy uplift vs FedAT (RLG-NIID): +{uplift:.1} pp   (paper: up to +26.3%)"
            );
        }
        None => missing.push("fig8"),
    }

    // 2. Training-time reduction (fig11).
    match load("fig11") {
        Some(v) => {
            let arr = v.as_array().expect("fig11 array");
            let mut best_cut = 0.0f64;
            let mut at = String::new();
            for workload in [
                "EfficientNet-B1 @ Pipeline-2",
                "MobileNet-W2 @ Pipeline-2",
                "EfficientNet-B4 @ Pipeline-3",
                "MobileNet-W3 @ Pipeline-3",
            ] {
                let pipe = arr
                    .iter()
                    .filter(|r| r["workload"] == workload)
                    .filter(|r| r["method"].as_str().unwrap_or("").contains("pipeline"))
                    .filter_map(|r| r["epoch_time"].as_f64())
                    .fold(f64::INFINITY, f64::min);
                // "Up to": against the member device that would otherwise
                // train alone (the paper's participant without
                // collaboration), i.e. the slowest single-device baseline.
                let single = arr
                    .iter()
                    .filter(|r| r["workload"] == workload)
                    .filter(|r| r["method"].as_str().unwrap_or("").contains("only"))
                    .filter_map(|r| r["epoch_time"].as_f64())
                    .fold(f64::NEG_INFINITY, f64::max);
                let cut = (1.0 - pipe / single) * 100.0;
                if cut > best_cut {
                    best_cut = cut;
                    at = workload.into();
                }
            }
            println!(
                "local training time reduction vs training alone: -{best_cut:.1}% \
                 on {at}   (paper: up to -61.5%)"
            );
        }
        None => missing.push("fig11"),
    }

    // 3. Throughput / time-to-accuracy speedup (fig10).
    match load("fig10") {
        Some(v) => {
            let arr = v.as_array().expect("fig10 array");
            let mut best = 0.0f64;
            let mut at = String::new();
            for workload in [
                "EfficientNet-B1 @ Pipeline-2",
                "MobileNet-W2 @ Pipeline-2",
                "EfficientNet-B4 @ Pipeline-3",
                "MobileNet-W3 @ Pipeline-3",
            ] {
                let ttt = |m: &str| {
                    arr.iter()
                        .filter(|r| r["workload"] == workload)
                        .filter(|r| r["method"].as_str().unwrap_or("").contains(m))
                        .filter_map(|r| r["time_to_target"].as_f64())
                        .fold(f64::INFINITY, f64::min)
                };
                let speedup = ttt("Data Parallelism") / ttt("Eco-FL Pipeline");
                if speedup.is_finite() && speedup > best {
                    best = speedup;
                    at = workload.into();
                }
            }
            println!(
                "time-to-accuracy speedup vs data parallelism: {best:.1}x on {at}   \
                 (paper: up to 2.6x)"
            );
        }
        None => missing.push("fig10"),
    }

    if missing.is_empty() {
        println!("\nAll three headline claims reproduced in shape.");
    } else {
        println!(
            "\n[note] missing inputs: {missing:?} — run `cargo bench --workspace` so the \
             figure benches write their JSON first."
        );
    }
}
