//! Headline summary — the abstract's three claims, recomputed from the
//! figure benches' JSON outputs:
//!
//! 1. "upgrade the training accuracy by up to 26.3%"  → fig8 (RLG-NIID,
//!    Eco-FL vs FedAT),
//! 2. "reduce the local training time by up to 61.5%" → fig11 (pipeline
//!    vs single-device epoch time),
//! 3. "improve the local training throughput by up to 2.6×" → fig10
//!    (pipeline vs data-parallel time-to-accuracy).
//!
//! Run after the figure benches (`cargo bench --workspace` orders targets
//! alphabetically, so `fig*` precede `headline_summary`).

use ecofl_bench::{header, results_dir};
use ecofl_compat::json::{self, Value};

fn load(id: &str) -> Option<Value> {
    let path = results_dir().join(format!("{id}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    json::from_str(&text).ok()
}

fn main() {
    header("Headline claims vs measured");
    let mut missing = Vec::new();

    // 1. Accuracy uplift (fig8, RLG-NIID).
    match load("fig8") {
        Some(v) => {
            let arr = v.as_array().expect("fig8 array");
            let best = |strategy: &str| {
                arr.iter()
                    .find(|c| c["setting"] == "RLG-NIID" && c["strategy"] == strategy)
                    .and_then(|c| c["best_accuracy"].as_f64())
                    .expect("curve")
            };
            let uplift = (best("Eco-FL") - best("FedAT")) * 100.0;
            println!(
                "accuracy uplift vs FedAT (RLG-NIID): +{uplift:.1} pp   (paper: up to +26.3%)"
            );
        }
        None => missing.push("fig8"),
    }

    // 2. Training-time reduction (fig11).
    match load("fig11") {
        Some(v) => {
            let arr = v.as_array().expect("fig11 array");
            let mut best_cut = 0.0f64;
            let mut at = String::new();
            for workload in [
                "EfficientNet-B1 @ Pipeline-2",
                "MobileNet-W2 @ Pipeline-2",
                "EfficientNet-B4 @ Pipeline-3",
                "MobileNet-W3 @ Pipeline-3",
            ] {
                let pipe = arr
                    .iter()
                    .filter(|r| r["workload"] == workload)
                    .filter(|r| r["method"].as_str().unwrap_or("").contains("pipeline"))
                    .filter_map(|r| r["epoch_time"].as_f64())
                    .fold(f64::INFINITY, f64::min);
                // "Up to": against the member device that would otherwise
                // train alone (the paper's participant without
                // collaboration), i.e. the slowest single-device baseline.
                let single = arr
                    .iter()
                    .filter(|r| r["workload"] == workload)
                    .filter(|r| r["method"].as_str().unwrap_or("").contains("only"))
                    .filter_map(|r| r["epoch_time"].as_f64())
                    .fold(f64::NEG_INFINITY, f64::max);
                let cut = (1.0 - pipe / single) * 100.0;
                if cut > best_cut {
                    best_cut = cut;
                    at = workload.into();
                }
            }
            println!(
                "local training time reduction vs training alone: -{best_cut:.1}% \
                 on {at}   (paper: up to -61.5%)"
            );
        }
        None => missing.push("fig11"),
    }

    // 3. Throughput / time-to-accuracy speedup (fig10).
    match load("fig10") {
        Some(v) => {
            let arr = v.as_array().expect("fig10 array");
            let mut best = 0.0f64;
            let mut at = String::new();
            for workload in [
                "EfficientNet-B1 @ Pipeline-2",
                "MobileNet-W2 @ Pipeline-2",
                "EfficientNet-B4 @ Pipeline-3",
                "MobileNet-W3 @ Pipeline-3",
            ] {
                let ttt = |m: &str| {
                    arr.iter()
                        .filter(|r| r["workload"] == workload)
                        .filter(|r| r["method"].as_str().unwrap_or("").contains(m))
                        .filter_map(|r| r["time_to_target"].as_f64())
                        .fold(f64::INFINITY, f64::min)
                };
                let speedup = ttt("Data Parallelism") / ttt("Eco-FL Pipeline");
                if speedup.is_finite() && speedup > best {
                    best = speedup;
                    at = workload.into();
                }
            }
            println!(
                "time-to-accuracy speedup vs data parallelism: {best:.1}x on {at}   \
                 (paper: up to 2.6x)"
            );
        }
        None => missing.push("fig10"),
    }

    if missing.is_empty() {
        println!("\nAll three headline claims reproduced in shape.");
    } else {
        println!(
            "\n[note] missing inputs: {missing:?} — run `cargo bench --workspace` so the \
             figure benches write their JSON first."
        );
    }
}
