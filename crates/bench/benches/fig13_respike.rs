//! Fig. 13 — adaptive pipeline re-scheduling under an external load spike.
//!
//! EfficientNet-B4, 3-stage pipeline ⟨TX2-Q, Nano-H, Nano-H⟩. At
//! t = 100 s an external GPU workload lands on device 1 (stage 1). The
//! static pipeline (w/o scheduler) is dragged to the lagger's pace; the
//! adaptive scheduler (§4.4) detects the deviation, re-runs the Eq. 1
//! partitioner against the devices' current effective speeds, migrates
//! the moved layers' parameters, restarts, and recovers most of the
//! throughput.

use ecofl_bench::{header, print_series, write_json};
use ecofl_compat::serde::Serialize;
use ecofl_models::efficientnet_at;
use ecofl_pipeline::adaptive::{simulate_load_spike, LoadSpike, SpikeTrace};
use ecofl_simnet::{nano_h, tx2_q, Device, Link};

#[derive(Serialize)]
struct Output {
    with_scheduler: SpikeSummary,
    without_scheduler: SpikeSummary,
}

#[derive(Serialize)]
struct SpikeSummary {
    pre_spike_throughput: f64,
    post_spike_throughput: f64,
    throughput_series: Vec<(f64, f64)>,
    device_utilization: Vec<Vec<(f64, f64)>>,
    migrations: usize,
}

fn summarize(trace: &SpikeTrace) -> SpikeSummary {
    SpikeSummary {
        pre_spike_throughput: trace.pre_spike_throughput,
        post_spike_throughput: trace.post_spike_throughput,
        throughput_series: trace.throughput.resample(24),
        device_utilization: trace
            .device_utilization
            .iter()
            .map(|s| s.resample(24))
            .collect(),
        migrations: trace.events.len(),
    }
}

fn main() {
    let model = efficientnet_at(4, 224);
    let link = Link::mbps_100();
    let devices = vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ];
    let spike = LoadSpike {
        device: 1,
        at: 100.0,
        load: 0.6,
    };
    let horizon = 250.0;

    header("Fig. 13: external load spike on device 1 at t = 100 s (EfficientNet-B4)");
    let with = simulate_load_spike(&model, &devices, &link, 8, 16, spike, horizon, true)
        .expect("feasible spike scenario");
    let without = simulate_load_spike(&model, &devices, &link, 8, 16, spike, horizon, false)
        .expect("feasible spike scenario");

    println!(
        "pre-spike throughput          : {:6.2} samples/s",
        with.pre_spike_throughput
    );
    println!(
        "post-spike w/o scheduler      : {:6.2} samples/s",
        without.post_spike_throughput
    );
    println!(
        "post-spike w/  scheduler      : {:6.2} samples/s ({} migration(s))",
        with.post_spike_throughput,
        with.events.len()
    );
    for ev in &with.events {
        println!(
            "  t = {:6.1}s  {:?} -> {:?}  moved {}  stall {:.2}s",
            ev.time,
            ev.old_boundaries,
            ev.new_boundaries,
            ecofl_util::units::fmt_bytes(ev.bytes_moved),
            ev.pause
        );
    }
    println!();
    print_series(
        "throughput w/ scheduler (samples/s)",
        &with.throughput.resample(12),
        "",
    );
    print_series(
        "throughput w/o scheduler (samples/s)",
        &without.throughput.resample(12),
        "",
    );
    for (d, series) in with.device_utilization.iter().enumerate() {
        print_series(
            &format!("device {d} GPU utilization w/ scheduler"),
            &series.resample(8),
            "",
        );
    }

    // Shape checks.
    assert!(
        without.post_spike_throughput < without.pre_spike_throughput * 0.8,
        "the spike must depress the static pipeline"
    );
    assert!(
        with.post_spike_throughput > without.post_spike_throughput * 1.1,
        "the scheduler must recover throughput: {} vs {}",
        with.post_spike_throughput,
        without.post_spike_throughput
    );
    assert!(!with.events.is_empty(), "the scheduler must migrate");
    assert!(
        without.events.is_empty(),
        "the static pipeline must not migrate"
    );
    println!(
        "\nShape checks passed: migration + restart recovers {:.0}% of the lost throughput.",
        100.0 * (with.post_spike_throughput - without.post_spike_throughput)
            / (with.pre_spike_throughput - without.post_spike_throughput)
    );
    write_json(
        "fig13",
        &Output {
            with_scheduler: summarize(&with),
            without_scheduler: summarize(&without),
        },
    );
}
