//! Fig. 5 — pipeline performance under different device orders and
//! micro-batch sizes.
//!
//! The paper's configurations on a ⟨1× TX2, 2× Nano⟩ pipeline training
//! EfficientNet:
//!
//! - Config A: ⟨TX2, Nano, Nano⟩, mbs = 16 — the memory-rich TX2 hosts the
//!   activation-heavy front, every stage holds `K_s = P_s` forwards,
//! - Config B: ⟨Nano, TX2, Nano⟩, mbs = 8 — a Nano at stage 0 forces a
//!   smaller micro-batch,
//! - Config C: ⟨Nano, TX2, Nano⟩, mbs = 16 — same order keeping the large
//!   micro-batch, so stage 0 cannot hold enough forwards (`K_0 < P_0`).
//!
//! Expected shape: A beats B and C in both throughput and utilization.

use ecofl_bench::{header, write_json};
use ecofl_compat::serde::Serialize;
use ecofl_models::efficientnet_at;
use ecofl_pipeline::executor::{PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::orchestrator::{k_bounds, p_bounds};
use ecofl_pipeline::partition::partition_dp;
use ecofl_pipeline::profiler::PipelineProfile;
use ecofl_simnet::{nano_h, tx2_q, Device, DeviceSpec, Link};

#[derive(Serialize)]
struct Row {
    config: &'static str,
    order: Vec<String>,
    mbs: usize,
    k: Vec<usize>,
    p: Vec<usize>,
    throughput: f64,
    gpu_utilization: Vec<f64>,
}

fn run_config(
    name: &'static str,
    model: &ecofl_models::ModelProfile,
    order: &[DeviceSpec],
    mbs: usize,
    global_batch: usize,
) -> Option<Row> {
    let link = Link::mbps_100();
    let devices: Vec<Device> = order.iter().cloned().map(Device::new).collect();
    let partition = partition_dp(model, &devices, &link, mbs)?;
    let profile = PipelineProfile::new(model, &partition.boundaries, &devices, &link, mbs);
    let p = p_bounds(&profile);
    let k = k_bounds(&profile)?;
    let m = global_batch / mbs;
    let report = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k: k.clone() })
        .expect("valid schedule")
        .run(m, 4)
        .ok()?;
    Some(Row {
        config: name,
        order: order.iter().map(|d| d.name.clone()).collect(),
        mbs,
        k,
        p,
        throughput: report.throughput,
        gpu_utilization: report.stage_gpu_utilization,
    })
}

fn main() {
    // EfficientNet at 224² (the paper evaluates "EfficientNet" on a
    // 1×TX2 + 2×Nano pipeline); B2 puts the Nano's 4 GB right at the
    // memory knife-edge the figure is about.
    let model = efficientnet_at(2, 224);
    let global_batch = 256;
    header("Fig. 5: device order and micro-batch size (EfficientNet-B2, 3 stages)");

    let configs: Vec<(&'static str, Vec<DeviceSpec>, usize)> = vec![
        ("A", vec![tx2_q(), nano_h(), nano_h()], 16),
        ("B", vec![nano_h(), tx2_q(), nano_h()], 8),
        ("C", vec![nano_h(), tx2_q(), nano_h()], 16),
    ];

    println!(
        "{:<4} {:<26} {:>4} {:>12} {:>12} {:>12} {:>24}",
        "Cfg", "order", "mbs", "K", "P", "samples/s", "GPU util per stage (%)"
    );
    let mut rows = Vec::new();
    for (name, order, mbs) in configs {
        match run_config(name, &model, &order, mbs, global_batch) {
            Some(row) => {
                println!(
                    "{:<4} {:<26} {:>4} {:>12} {:>12} {:>12.2} {:>24}",
                    row.config,
                    row.order.join(","),
                    row.mbs,
                    format!("{:?}", row.k),
                    format!("{:?}", row.p),
                    row.throughput,
                    format!(
                        "[{}]",
                        row.gpu_utilization
                            .iter()
                            .map(|u| format!("{:.0}", u * 100.0))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                );
                rows.push(row);
            }
            None => println!("{name:<4} infeasible (OOM or no partition)"),
        }
    }

    if rows.len() == 3 {
        assert!(
            rows[0].throughput >= rows[1].throughput && rows[0].throughput >= rows[2].throughput,
            "Config A should dominate (paper's Fig. 5 shape)"
        );
        println!("\nShape check passed: Config A ≥ Config B, C in throughput.");
    }
    write_json("fig5", &rows);
}
