//! Fig. 11 — average epoch time of each training method, plus the §4.1
//! claim that data-parallel transmission overhead dominates on 100 Mbps
//! links (the paper measures 66.29% and finds DP slower than a single
//! device for MobileNet-W3).
//!
//! Four workloads, as in the paper:
//! - 2-stage pipeline (Nano-L + Nano-H): EfficientNet-B1, MobileNet-W2,
//! - 3-stage pipeline (TX2-Q + 2× Nano-H): EfficientNet-B4, MobileNet-W3.
//!
//! Methods: each single device, heterogeneity-aware data parallelism,
//! and the Eco-FL pipeline (orchestrated via the §4.3 search).

use ecofl_bench::{header, write_json};
use ecofl_compat::serde::Serialize;
use ecofl_models::{efficientnet_at, mobilenet_v2_at, ModelProfile};
use ecofl_pipeline::baselines::{data_parallel_epoch, single_device_epoch};
use ecofl_pipeline::orchestrator::{search_configuration, OrchestratorConfig};
use ecofl_simnet::{nano_h, nano_l, tx2_q, Device, DeviceSpec, Link};

/// CIFAR-10 training-set size: epoch = 50 000 samples.
const EPOCH_SAMPLES: usize = 50_000;
const GLOBAL_BATCH: usize = 64;

#[derive(Serialize)]
struct Row {
    workload: String,
    method: String,
    epoch_time: f64,
    comm_fraction: Option<f64>,
}

fn bench_workload(
    name: &str,
    model: &ModelProfile,
    cluster: &[DeviceSpec],
    singles: &[DeviceSpec],
    rows: &mut Vec<Row>,
) {
    let link = Link::mbps_100();
    let devices: Vec<Device> = cluster.iter().cloned().map(Device::new).collect();
    println!(
        "\n--- {name}: {} on {} devices ---",
        model.name,
        cluster.len()
    );

    for s in singles {
        let dev = Device::new(s.clone());
        match single_device_epoch(model, &dev, GLOBAL_BATCH, EPOCH_SAMPLES) {
            Some(r) => {
                println!(
                    "{:<18} {:>10.1} s/epoch",
                    format!("{} only", s.name),
                    r.epoch_time
                );
                rows.push(Row {
                    workload: name.into(),
                    method: format!("{} only", s.name),
                    epoch_time: r.epoch_time,
                    comm_fraction: None,
                });
            }
            None => println!("{:<18} OOM", format!("{} only", s.name)),
        }
    }

    let dp = data_parallel_epoch(model, &devices, &link, GLOBAL_BATCH, EPOCH_SAMPLES)
        .expect("DP feasible");
    println!(
        "{:<18} {:>10.1} s/epoch ({:.1}% transmission)",
        "Data parallelism",
        dp.epoch_time,
        dp.comm_fraction * 100.0
    );
    rows.push(Row {
        workload: name.into(),
        method: "Data parallelism".into(),
        epoch_time: dp.epoch_time,
        comm_fraction: Some(dp.comm_fraction),
    });

    let plan = search_configuration(
        model,
        &devices,
        &link,
        &OrchestratorConfig {
            global_batch: GLOBAL_BATCH,
            mbs_candidates: vec![16, 8, 4],
            eval_rounds: 2,
            ..OrchestratorConfig::default()
        },
    )
    .expect("pipeline plan");
    let pipe_epoch = EPOCH_SAMPLES as f64 / plan.report.throughput;
    println!(
        "{:<18} {:>10.1} s/epoch (mbs = {}, order = {:?})",
        "Eco-FL pipeline", pipe_epoch, plan.micro_batch, plan.order
    );
    rows.push(Row {
        workload: name.into(),
        method: "Eco-FL pipeline".into(),
        epoch_time: pipe_epoch,
        comm_fraction: None,
    });
}

fn main() {
    header("Fig. 11: average epoch time per training method");
    let mut rows = Vec::new();

    let two_stage = [nano_l(), nano_h()];
    let three_stage = [tx2_q(), nano_h(), nano_h()];

    bench_workload(
        "EfficientNet-B1 @ Pipeline-2",
        &efficientnet_at(1, 224),
        &two_stage,
        &[nano_h(), nano_l()],
        &mut rows,
    );
    bench_workload(
        "MobileNet-W2 @ Pipeline-2",
        &mobilenet_v2_at(2.0, 224),
        &two_stage,
        &[nano_h(), nano_l()],
        &mut rows,
    );
    bench_workload(
        "EfficientNet-B4 @ Pipeline-3",
        &efficientnet_at(4, 224),
        &three_stage,
        &[tx2_q(), nano_h()],
        &mut rows,
    );
    bench_workload(
        "MobileNet-W3 @ Pipeline-3",
        &mobilenet_v2_at(3.0, 224),
        &three_stage,
        &[tx2_q(), nano_h()],
        &mut rows,
    );

    // Shape checks per workload: pipeline fastest; for MobileNet-W3, DP
    // slower than the single TX2-Q (the paper's headline DP failure).
    for workload in [
        "EfficientNet-B1 @ Pipeline-2",
        "MobileNet-W2 @ Pipeline-2",
        "EfficientNet-B4 @ Pipeline-3",
        "MobileNet-W3 @ Pipeline-3",
    ] {
        let of = |m: &str| {
            rows.iter()
                .find(|r| r.workload == workload && r.method.contains(m))
                .map(|r| r.epoch_time)
        };
        let pipe = of("pipeline").expect("pipeline row");
        let dp = of("parallelism").expect("dp row");
        assert!(pipe < dp, "{workload}: pipeline {pipe} must beat DP {dp}");
        let best_single = rows
            .iter()
            .filter(|r| r.workload == workload && r.method.contains("only"))
            .map(|r| r.epoch_time)
            .fold(f64::INFINITY, f64::min);
        assert!(
            pipe < best_single,
            "{workload}: pipeline {pipe} must beat the best single device {best_single}"
        );
    }
    let w3_dp = rows
        .iter()
        .find(|r| r.workload.contains("W3") && r.method.contains("parallelism"))
        .unwrap();
    let w3_single = rows
        .iter()
        .find(|r| r.workload.contains("W3") && r.method.contains("TX2-Q only"))
        .unwrap();
    assert!(
        w3_dp.epoch_time > w3_single.epoch_time,
        "MobileNet-W3: DP ({}) must be slower than a single TX2-Q ({})",
        w3_dp.epoch_time,
        w3_single.epoch_time
    );
    assert!(
        w3_dp.comm_fraction.unwrap() > 0.5,
        "MobileNet-W3 DP must be transmission-dominated"
    );
    println!(
        "\nShape checks passed: pipeline < best single < DP where the paper says so; \
         W3 DP is transmission-bound ({:.1}%).",
        w3_dp.comm_fraction.unwrap() * 100.0
    );
    write_json("fig11", &rows);
}
