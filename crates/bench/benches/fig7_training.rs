//! Fig. 7 — FL training performance under the dynamic setting.
//!
//! CIFAR-10-like and Fashion-MNIST-like synthetic tasks, 2-class
//! non-IID clients, dynamic collaborative degrees. Five methods: FedAvg,
//! FedAsync, FedAT, Eco-FL w/o dynamic grouping, Eco-FL.
//!
//! Expected shape: Eco-FL converges fastest and highest; removing
//! dynamic grouping costs accuracy under dynamics; FedAT sits below the
//! Eco-FL variants; FedAvg pays straggler-bound rounds.

use ecofl_bench::{header, write_json};
use ecofl_compat::serde::Serialize;
use ecofl_data::federated::PartitionScheme;
use ecofl_data::{FederatedDataset, SyntheticSpec};
use ecofl_fl::engine::{run, FlSetup, Strategy};
use ecofl_fl::metrics::max_drawdown;
use ecofl_fl::FlConfig;
use ecofl_models::ModelArch;

#[derive(Serialize)]
struct Curve {
    dataset: String,
    strategy: String,
    points: Vec<(f64, f64)>,
    best_accuracy: f64,
    final_accuracy: f64,
    global_updates: u64,
    regroup_events: u64,
}

fn run_dataset(spec: &SyntheticSpec, horizon: f64, seed: u64, out: &mut Vec<Curve>) {
    let config = FlConfig {
        num_clients: 120,
        clients_per_round: 20,
        num_groups: 5,
        horizon,
        eval_interval: horizon / 40.0,
        seed,
        ..FlConfig::default()
    };
    let data = FederatedDataset::generate(
        spec,
        config.num_clients,
        60,
        60,
        PartitionScheme::ClassesPerClient(2),
        None,
        seed,
    );
    let setup = FlSetup {
        data,
        arch: ModelArch::Mlp,
        config,
    };
    println!("\n--- {} (dynamic setting, 2-class non-IID) ---", spec.name);
    for strategy in Strategy::LINEUP {
        let r = run(strategy, &setup);
        println!(
            "{:<14} best {:5.1}%  final {:5.1}%  drawdown {:4.1}pp  {:>5} updates  {:>3} regroups",
            r.strategy,
            r.best_accuracy * 100.0,
            r.final_accuracy * 100.0,
            max_drawdown(&r.accuracy) * 100.0,
            r.global_updates,
            r.regroup_events
        );
        out.push(Curve {
            dataset: spec.name.into(),
            strategy: r.strategy.clone(),
            points: r.accuracy.resample(30),
            best_accuracy: r.best_accuracy,
            final_accuracy: r.final_accuracy,
            global_updates: r.global_updates,
            regroup_events: r.regroup_events,
        });
    }
}

fn main() {
    header("Fig. 7: training accuracy vs time under dynamics");
    let mut curves = Vec::new();
    run_dataset(&SyntheticSpec::cifar_like(), 4000.0, 71, &mut curves);
    run_dataset(&SyntheticSpec::fashion_like(), 2500.0, 72, &mut curves);

    // Shape checks per dataset.
    for dataset in ["cifar-like", "fashion-like"] {
        let best = |name: &str| {
            curves
                .iter()
                .find(|c| c.dataset == dataset && c.strategy == name)
                .map(|c| c.best_accuracy)
                .expect("strategy present")
        };
        let ecofl = best("Eco-FL");
        assert!(
            ecofl + 1e-9 >= best("FedAT"),
            "{dataset}: Eco-FL ({ecofl}) must not trail FedAT ({})",
            best("FedAT")
        );
        assert!(
            ecofl + 1e-9 >= best("FedAvg"),
            "{dataset}: Eco-FL must not trail FedAvg"
        );
        // Dynamic grouping must not hurt.
        assert!(
            ecofl + 0.02 >= best("Eco-FL w/o DG"),
            "{dataset}: dynamic grouping should help or be neutral"
        );
        // FedAsync trades update volume for bias; Eco-FL must at least
        // match its settled accuracy (our synthetic tasks are more
        // forgiving to async single-client updates than CIFAR-10 — see
        // EXPERIMENTS.md).
        let final_of = |name: &str| {
            curves
                .iter()
                .find(|c| c.dataset == dataset && c.strategy == name)
                .map(|c| c.final_accuracy)
                .expect("strategy present")
        };
        assert!(
            final_of("Eco-FL") + 0.02 >= final_of("FedAsync"),
            "{dataset}: Eco-FL should settle at or above FedAsync"
        );
    }
    println!("\nShape checks passed: Eco-FL leads FedAT/FedAvg on both datasets.");
    write_json("fig7", &curves);
}
