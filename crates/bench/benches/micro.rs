//! Micro-benchmarks of the hot algorithmic kernels, driven by
//! `ecofl_bench::time_case` (the criterion-free harness):
//! the Eq. 1 dynamic-programming partitioner, the event-driven pipeline
//! executor, k-means latency clustering, JS divergence, FedAvg
//! aggregation, client local training, and the tensor matmul that
//! dominates it.

use ecofl_bench::{header, time_case};
use ecofl_data::SyntheticSpec;
use ecofl_fl::aggregate::weighted_average;
use ecofl_fl::client::{local_train, LocalTrainConfig};
use ecofl_grouping::kmeans_1d;
use ecofl_models::{efficientnet_at, ModelArch};
use ecofl_pipeline::executor::{PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::orchestrator::k_bounds;
use ecofl_pipeline::partition::partition_dp;
use ecofl_pipeline::profiler::PipelineProfile;
use ecofl_simnet::{nano_h, tx2_q, Device, Link};
use ecofl_tensor::Tensor;
use ecofl_util::{js_divergence, Rng};
use std::hint::black_box;

/// Criterion ran `sample_size(20)`; keep the same measured-iteration
/// count so timings stay comparable across the harness switch.
const ITERS: usize = 20;
const WARMUP: usize = 3;

fn bench_partition() {
    let model = efficientnet_at(6, 224);
    let devices = vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ];
    let link = Link::mbps_100();
    time_case("partition_dp_b6_3dev", WARMUP, ITERS, || {
        partition_dp(black_box(&model), &devices, &link, 16)
    });
}

fn bench_executor() {
    let model = efficientnet_at(2, 224);
    let devices = vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ];
    let link = Link::mbps_100();
    let partition = partition_dp(&model, &devices, &link, 16).expect("feasible");
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 16);
    let k = k_bounds(&profile).expect("residency");
    time_case("executor_sync_round_m16", WARMUP, ITERS, || {
        PipelineExecutor::new(
            black_box(&profile),
            SchedulePolicy::OneFOneBSync { k: k.clone() },
        )
        .run(16, 1)
    });
}

fn bench_kmeans() {
    let mut rng = Rng::new(5);
    let points: Vec<f64> = (0..300).map(|_| rng.range_f64(5.0, 150.0)).collect();
    time_case("kmeans_300_clients_k5", WARMUP, ITERS, || {
        let mut r = Rng::new(7);
        kmeans_1d(black_box(&points), 5, &mut r, 100)
    });
}

fn bench_js() {
    let p: Vec<f64> = (0..10).map(|i| (i + 1) as f64 / 55.0).collect();
    let q = vec![0.1f64; 10];
    time_case("js_divergence_10_classes", WARMUP, ITERS, || {
        js_divergence(black_box(&p), black_box(&q))
    });
}

fn bench_aggregate() {
    let mut rng = Rng::new(9);
    let updates: Vec<Vec<f32>> = (0..20)
        .map(|_| (0..4938).map(|_| rng.next_f32()).collect())
        .collect();
    time_case("weighted_average_20x4938", WARMUP, ITERS, || {
        let refs: Vec<(&[f32], f64)> = updates.iter().map(|u| (u.as_slice(), 60.0)).collect();
        weighted_average(black_box(&refs))
    });
}

fn bench_local_train() {
    let spec = SyntheticSpec::mnist_like();
    let protos = spec.prototypes(1);
    let mut rng = Rng::new(2);
    let data = protos.sample_balanced(6, &mut rng);
    let start = ModelArch::Mlp
        .build(spec.feature_dim, spec.num_classes, &mut Rng::new(3))
        .params();
    let cfg = LocalTrainConfig {
        epochs: 3,
        batch_size: 10,
        lr: 0.05,
        mu: 0.05,
    };
    time_case("local_train_60samples_3epochs", WARMUP, ITERS, || {
        let mut r = Rng::new(11);
        local_train(ModelArch::Mlp, black_box(&start), &data, &cfg, &mut r)
    });
}

fn bench_matmul() {
    let mut rng = Rng::new(13);
    let a = Tensor::randn(&[64, 64], 1.0, &mut rng);
    let b_mat = Tensor::randn(&[64, 64], 1.0, &mut rng);
    time_case("matmul_64x64", WARMUP, ITERS, || {
        black_box(&a).matmul(black_box(&b_mat))
    });
}

fn main() {
    header("Micro-benchmarks (hot kernels)");
    bench_partition();
    bench_executor();
    bench_kmeans();
    bench_js();
    bench_aggregate();
    bench_local_train();
    bench_matmul();
}
