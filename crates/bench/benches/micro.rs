//! Micro-benchmarks of the hot algorithmic kernels, driven by
//! `ecofl_bench::time_case` (the criterion-free harness):
//! the Eq. 1 dynamic-programming partitioner, the event-driven pipeline
//! executor, the calendar event queue at 100k events, k-means latency
//! clustering (exact and million-point mini-batch), JS divergence, FedAvg
//! aggregation, client local training, the blocked tensor kernels
//! that dominate it — each blocked kernel timed next to its retained
//! naive reference so every `BENCH_micro.json` snapshot carries its own
//! before/after ratio — and the segmented run store (block append,
//! summary-pruned round query vs. full scan).
//!
//! Iteration counts honor `ECOFL_BENCH_ITERS` / `ECOFL_BENCH_WARMUP`
//! (the CI smoke path runs 1 iteration); the run finishes by writing a
//! `BENCH_micro.json` snapshot via `write_bench_snapshot`.

use ecofl_bench::{bench_iters, bench_warmup, header, time_case, write_bench_snapshot};
use ecofl_data::SyntheticSpec;
use ecofl_fl::aggregate::weighted_average;
use ecofl_fl::client::{local_train, LocalTrainConfig};
use ecofl_grouping::{kmeans_1d, kmeans_1d_minibatch};
use ecofl_models::{efficientnet_at, ModelArch};
use ecofl_pipeline::executor::{PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::orchestrator::k_bounds;
use ecofl_pipeline::partition::partition_dp;
use ecofl_pipeline::profiler::PipelineProfile;
use ecofl_simnet::{nano_h, tx2_q, Device, EventQueue, Link};
use ecofl_tensor::{reference, Conv2d, Layer, Sgd, Tensor};
use ecofl_util::{js_divergence, Rng};
use std::hint::black_box;

/// Criterion ran `sample_size(20)`; keep the same default
/// measured-iteration count so timings stay comparable across the
/// harness switch. Overridden by `ECOFL_BENCH_ITERS`.
const DEFAULT_ITERS: usize = 20;
const DEFAULT_WARMUP: usize = 3;

fn iters() -> usize {
    bench_iters(DEFAULT_ITERS)
}

fn warmup() -> usize {
    bench_warmup(DEFAULT_WARMUP)
}

fn bench_partition() {
    let model = efficientnet_at(6, 224);
    let devices = vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ];
    let link = Link::mbps_100();
    time_case("partition_dp_b6_3dev", warmup(), iters(), || {
        partition_dp(black_box(&model), &devices, &link, 16)
    });
}

fn bench_executor() {
    let model = efficientnet_at(2, 224);
    let devices = vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ];
    let link = Link::mbps_100();
    let partition = partition_dp(&model, &devices, &link, 16).expect("feasible");
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 16);
    let k = k_bounds(&profile).expect("residency");
    time_case("executor_sync_round_m16", warmup(), iters(), || {
        PipelineExecutor::new(
            black_box(&profile),
            SchedulePolicy::OneFOneBSync { k: k.clone() },
        )
        .expect("valid schedule")
        .run(16, 1)
    });
}

fn bench_kmeans() {
    let mut rng = Rng::new(5);
    let points: Vec<f64> = (0..300).map(|_| rng.range_f64(5.0, 150.0)).collect();
    time_case("kmeans_300_clients_k5", warmup(), iters(), || {
        let mut r = Rng::new(7);
        kmeans_1d(black_box(&points), 5, &mut r, 100)
    });
}

fn bench_eventqueue() {
    // 100k events through the calendar-queue backend: schedule with an
    // xorshift time spread, then drain to empty. This is the per-event
    // cost the scheduler pays at census scale (O(1) amortized vs the
    // binary heap's O(log n)).
    time_case("eventqueue_schedule_pop", warmup(), iters(), || {
        let mut q: EventQueue<usize> = EventQueue::new();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for i in 0..100_000usize {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.schedule((x % 1_000_000) as f64 * 1e-3, i);
        }
        let mut drained = 0usize;
        while q.pop().is_some() {
            drained += 1;
        }
        black_box(drained)
    });
}

fn bench_kmeans_minibatch() {
    // Million-point latency clustering via mini-batch k-means — the
    // initial-grouping seed at the scale the exact Lloyd path cannot
    // afford (its per-sweep cost is O(n·k) with tens of sweeps).
    let mut rng = Rng::new(31);
    let points: Vec<f64> = (0..1_000_000).map(|_| rng.range_f64(5.0, 150.0)).collect();
    time_case("kmeans_minibatch_1m", warmup(), iters(), || {
        let mut r = Rng::new(7);
        kmeans_1d_minibatch(black_box(&points), 5, 8192, 30, &mut r)
    });
}

fn bench_js() {
    let p: Vec<f64> = (0..10).map(|i| (i + 1) as f64 / 55.0).collect();
    let q = vec![0.1f64; 10];
    time_case("js_divergence_10_classes", warmup(), iters(), || {
        js_divergence(black_box(&p), black_box(&q))
    });
}

fn bench_aggregate() {
    let mut rng = Rng::new(9);
    let updates: Vec<Vec<f32>> = (0..20)
        .map(|_| (0..4938).map(|_| rng.next_f32()).collect())
        .collect();
    time_case("weighted_average_20x4938", warmup(), iters(), || {
        let refs: Vec<(&[f32], f64)> = updates.iter().map(|u| (u.as_slice(), 60.0)).collect();
        weighted_average(black_box(&refs))
    });
}

fn bench_local_train() {
    let spec = SyntheticSpec::mnist_like();
    let protos = spec.prototypes(1);
    let mut rng = Rng::new(2);
    let data = protos.sample_balanced(6, &mut rng);
    let start = ModelArch::Mlp
        .build(spec.feature_dim, spec.num_classes, &mut Rng::new(3))
        .params();
    let cfg = LocalTrainConfig {
        epochs: 3,
        batch_size: 10,
        lr: 0.05,
        mu: 0.05,
    };
    time_case("local_train_60samples_3epochs", warmup(), iters(), || {
        let mut r = Rng::new(11);
        local_train(ModelArch::Mlp, black_box(&start), &data, &cfg, &mut r)
    });
}

fn bench_matmul() {
    let mut rng = Rng::new(13);
    let a = Tensor::randn(&[64, 64], 1.0, &mut rng);
    let b_mat = Tensor::randn(&[64, 64], 1.0, &mut rng);
    time_case("matmul_64x64", warmup(), iters(), || {
        black_box(&a).matmul(black_box(&b_mat))
    });
    time_case("matmul_64x64_naive", warmup(), iters(), || {
        reference::naive_matmul(black_box(a.data()), black_box(b_mat.data()), 64, 64, 64)
    });
    time_case("matmul_tn_64x64", warmup(), iters(), || {
        black_box(&a).matmul_tn(black_box(&b_mat))
    });
    time_case("matmul_nt_64x64", warmup(), iters(), || {
        black_box(&a).matmul_nt(black_box(&b_mat))
    });

    let a256 = Tensor::randn(&[256, 256], 1.0, &mut rng);
    let b256 = Tensor::randn(&[256, 256], 1.0, &mut rng);
    time_case("matmul_256x256", warmup(), iters(), || {
        black_box(&a256).matmul(black_box(&b256))
    });
}

fn bench_conv() {
    let mut rng = Rng::new(17);
    let x = Tensor::randn(&[4, 8, 16, 16], 1.0, &mut rng);
    let mut conv = Conv2d::new(8, 16, 3, 1, &mut rng);
    let out = conv.forward(&x);
    let grad = Tensor::randn(out.shape(), 1.0, &mut rng);
    conv.clear_cache();
    time_case("conv2d_fwd_4x8x16x16_k3", warmup(), iters(), || {
        let y = conv.forward(black_box(&x));
        conv.clear_cache();
        y
    });
    time_case("conv2d_fwd_bwd_4x8x16x16_k3", warmup(), iters(), || {
        conv.forward(black_box(&x));
        conv.backward(black_box(&grad))
    });
}

fn bench_store() {
    use ecofl_obs::{Domain, RunStore, SpanKind, SpanRecord, TraceQuery, TraceRecord};

    // A deterministic 40-round, 20k-record trace: 500 spans per round,
    // virtual times spread so every block summary is round-disjoint.
    let records: Vec<TraceRecord> = (0..40u64)
        .flat_map(|r| {
            (0..500u64).map(move |i| {
                let t = (r * 100) as f64 + i as f64 * 0.1;
                TraceRecord::Span(SpanRecord {
                    domain: Domain::Pipeline,
                    kind: if i % 2 == 0 {
                        SpanKind::Forward
                    } else {
                        SpanKind::Backward
                    },
                    entity: (i % 4) as usize,
                    round: r as usize,
                    micro: (i % 3) as usize,
                    t0: t,
                    t1: t + 0.05,
                })
            })
        })
        .collect();

    let dir = std::env::temp_dir().join(format!("ecofl-bench-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    time_case("store_append_20k_records", warmup(), iters(), || {
        let mut store = RunStore::create(&dir)
            .expect("create store")
            .with_block_records(256);
        store.append(black_box(&records)).expect("append");
        store.flush().expect("flush");
        store.record_count()
    });

    // Query the store the append case left behind: a one-round range
    // (summaries prune ~79 of 80 blocks) next to the full scan.
    let store = RunStore::open(&dir).expect("open store");
    let pruned = TraceQuery::new().rounds(30..31);
    time_case("store_query_rounds_pruned", warmup(), iters(), || {
        store
            .query(black_box(&pruned))
            .expect("query")
            .records
            .len()
    });
    let full = TraceQuery::new();
    time_case("store_query_full_scan", warmup(), iters(), || {
        store.query(black_box(&full)).expect("query").records.len()
    });
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_metrics() {
    use ecofl_obs::MetricsHub;

    // Batches of 1024 ops per sample: a single atomic add / sketch
    // insert is below timer resolution, so the committed number is the
    // per-1024 cost of the hot instrument paths.
    let hub = MetricsHub::new();
    let counter = hub.counter("bench_counter");
    time_case("metrics_hub_counter_inc_1024", warmup(), iters(), || {
        for _ in 0..1024 {
            black_box(&counter).inc(1);
        }
        counter.get()
    });

    let histogram = hub.histogram("bench_histogram");
    let mut rng = Rng::new(23);
    let values: Vec<f64> = (0..1024).map(|_| rng.range_f64(1e-6, 1e6)).collect();
    time_case(
        "metrics_hub_histogram_record_1024",
        warmup(),
        iters(),
        || {
            for &v in &values {
                black_box(&histogram).record(v);
            }
        },
    );

    // Snapshot cost over a realistically-sized registry: the live CLI
    // dashboard takes one of these per refresh tick.
    let populated = MetricsHub::new();
    let mut r = Rng::new(29);
    for i in 0..16 {
        populated.counter(&format!("c{i}")).inc(i + 1);
        populated.gauge(&format!("g{i}")).set(i as f64);
        let h = populated.histogram(&format!("h{i}"));
        for _ in 0..256 {
            h.record(r.range_f64(1e-3, 1e3));
        }
    }
    time_case("metrics_hub_snapshot_48_series", warmup(), iters(), || {
        black_box(&populated).snapshot(0)
    });
}

fn bench_sgd() {
    let mut rng = Rng::new(19);
    let mut params: Vec<f32> = (0..4938).map(|_| rng.next_f32()).collect();
    let grads: Vec<f32> = (0..4938).map(|_| rng.next_f32()).collect();
    let anchor: Vec<f32> = (0..4938).map(|_| rng.next_f32()).collect();
    let mut opt = Sgd::new(0.05).with_momentum(0.9).with_proximal(0.05);
    time_case("sgd_prox_momentum_4938", warmup(), iters(), || {
        opt.step(black_box(&mut params), black_box(&grads), Some(&anchor));
    });
}

fn main() {
    header("Micro-benchmarks (hot kernels)");
    bench_partition();
    bench_executor();
    bench_kmeans();
    bench_kmeans_minibatch();
    bench_eventqueue();
    bench_js();
    bench_aggregate();
    bench_local_train();
    bench_matmul();
    bench_conv();
    bench_sgd();
    bench_store();
    bench_metrics();
    write_bench_snapshot("micro");
}
