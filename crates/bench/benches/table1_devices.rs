//! Table 1 — specifications of the edge devices.
//!
//! Prints the device catalog exactly as the paper tabulates it, plus the
//! derived effective training compute rate our simulator assigns to each
//! power mode.

use ecofl_bench::{header, write_json};
use ecofl_simnet::catalog::{table1, NETWORK_MBPS};
use ecofl_util::units::{fmt_bytes, fmt_flops};

fn main() {
    header("Table 1: Specifications of the used edge devices");
    println!(
        "{:<10} {:>14} {:>12} {:>10} {:>22}",
        "Hardware", "Memory", "Network", "", "Derived compute rate"
    );
    for spec in table1() {
        println!(
            "{:<10} {:>14} {:>9.0} Mbps {:>10} {:>18}/s",
            spec.name,
            fmt_bytes(spec.memory_bytes),
            NETWORK_MBPS,
            "",
            fmt_flops(spec.compute_flops),
        );
    }
    println!(
        "\nPower-mode speed ratios (paper: frequency-proportional): \
         Nano H/L = {:.2}, TX2 N/Q = {:.2}",
        table1()[1].compute_flops / table1()[0].compute_flops,
        table1()[3].compute_flops / table1()[2].compute_flops,
    );
    write_json("table1", &table1());
}
