//! Ablation — the five registered pipeline schedules side by side across
//! micro-batch counts: throughput, peak memory, and analytic bubble of
//! 1F1B-Sync (ours), Gpipe's BAF-Sync, PipeDream's 1F1B-Async with
//! weight stashing, interleaved 1F1B (virtual stages), and zero-bubble
//! 1F1B (split backward).
//!
//! This is the §2 comparison quantified: async is fastest (no flush) but
//! stashes `K_s` weight copies; Gpipe is flush-bound *and* holds all `M`
//! activations; 1F1B-Sync matches Gpipe's synchronous semantics at far
//! lower memory and approaches async throughput as `M` grows; the two
//! new schedules shrink the synchronous bubble itself — interleaving by
//! the virtual-stage factor `v`, zero-bubble by deferring each stage's
//! weight-gradient half into idle time.

use ecofl_bench::{header, write_json};
use ecofl_compat::serde::Serialize;
use ecofl_models::efficientnet_at;
use ecofl_pipeline::executor::PipelineExecutor;
use ecofl_pipeline::partition::partition_dp;
use ecofl_pipeline::profiler::PipelineProfile;
use ecofl_pipeline::schedule::ScheduleKind;
use ecofl_simnet::{nano_h, tx2_q, Device, Link};
use ecofl_util::units::fmt_bytes;

#[derive(Serialize)]
struct Row {
    schedule: &'static str,
    micro_batches: usize,
    throughput: f64,
    peak_memory_stage0: u64,
    bubble_per_round: f64,
    outcome: &'static str,
}

fn main() {
    header("Ablation: the five schedules (EfficientNet-B2, 3 stages, mbs 8)");
    let model = efficientnet_at(2, 224);
    let link = Link::mbps_100();
    let devices = vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ];
    let mbs = 8;
    let partition = partition_dp(&model, &devices, &link, mbs).expect("feasible");
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, mbs);

    println!(
        "{:<12} {:>4} {:>12} {:>14} {:>10} {:>8}",
        "schedule", "M", "samples/s", "peak mem s0", "bubble/rd", "outcome"
    );
    let mut rows = Vec::new();
    let names = [
        "1F1B-Sync",
        "Gpipe",
        "1F1B-Async",
        "Interleaved",
        "Zero-bubble",
    ];
    for m in [4usize, 8, 16, 32] {
        for (kind, name) in ScheduleKind::all().into_iter().zip(names) {
            let policy = kind.policy_for(&profile).expect("fits");
            match PipelineExecutor::new(&profile, policy)
                .expect("valid schedule")
                .run(m, 4)
            {
                Ok(r) => {
                    println!(
                        "{name:<12} {m:>4} {:>12.2} {:>14} {:>10.4} {:>8}",
                        r.throughput,
                        fmt_bytes(r.stage_peak_memory[0]),
                        r.ssb_per_round,
                        "ok"
                    );
                    rows.push(Row {
                        schedule: name,
                        micro_batches: m,
                        throughput: r.throughput,
                        peak_memory_stage0: r.stage_peak_memory[0],
                        bubble_per_round: r.ssb_per_round,
                        outcome: "ok",
                    });
                }
                Err(_) => {
                    println!(
                        "{name:<12} {m:>4} {:>12} {:>14} {:>10} {:>8}",
                        "-", "-", "-", "OOM"
                    );
                    rows.push(Row {
                        schedule: name,
                        micro_batches: m,
                        throughput: 0.0,
                        peak_memory_stage0: 0,
                        bubble_per_round: f64::NAN,
                        outcome: "oom",
                    });
                }
            }
        }
    }

    // Shape checks at M = 16.
    let at = |name: &str, m: usize| {
        rows.iter()
            .find(|r| r.schedule == name && r.micro_batches == m)
            .expect("row")
    };
    let ours = at("1F1B-Sync", 16);
    let gpipe = at("Gpipe", 16);
    let asynchronous = at("1F1B-Async", 16);
    assert_eq!(ours.outcome, "ok");
    if gpipe.outcome == "ok" {
        assert!(
            ours.peak_memory_stage0 < gpipe.peak_memory_stage0,
            "1F1B-Sync must hold less memory than Gpipe"
        );
    }
    if asynchronous.outcome == "ok" {
        assert!(
            asynchronous.throughput >= ours.throughput,
            "flush-free async must not be slower than sync"
        );
        assert!(
            ours.peak_memory_stage0 < asynchronous.peak_memory_stage0,
            "1F1B-Sync must hold less memory than weight-stashing async"
        );
    }
    // SSB amortization: sync throughput grows with M.
    assert!(
        at("1F1B-Sync", 32).throughput > at("1F1B-Sync", 4).throughput,
        "more micro-batches must amortize the flush bubble"
    );
    // The two new schedules attack the bubble itself: zero-bubble's
    // analytic bubble is strictly below Eq. 2 on this heterogeneous mix,
    // and interleaving shrinks the per-device warmup bubble too.
    let zb = at("Zero-bubble", 16);
    let inter = at("Interleaved", 16);
    assert_eq!(zb.outcome, "ok");
    assert!(
        zb.bubble_per_round < ours.bubble_per_round,
        "zero-bubble must beat the Eq. 2 bubble: {} vs {}",
        zb.bubble_per_round,
        ours.bubble_per_round
    );
    if inter.outcome == "ok" {
        assert!(
            inter.bubble_per_round < ours.bubble_per_round,
            "interleaving must shrink the warmup bubble: {} vs {}",
            inter.bubble_per_round,
            ours.bubble_per_round
        );
    }
    println!(
        "\nShape checks passed: memory 1F1B-Sync < Gpipe and < async; throughput \
         async ≥ sync; sync improves with M; zero-bubble and interleaved \
         shrink the Eq. 2 bubble."
    );
    write_json("ablation_schedules", &rows);
}
