//! Extension — energy efficiency across Table 1's power modes.
//!
//! The paper tabulates the devices by power mode but never evaluates
//! energy; a smart home, however, cares about joules as much as seconds.
//! This bench plans the same workload on low-power and high-power
//! pipelines and reports throughput, energy, and samples-per-joule.
//!
//! Expected shape: the high-power modes win on throughput; the low-power
//! modes win (or tie) on samples-per-joule — DVFS on Jetson-class silicon
//! trades roughly linearly, so the efficiency gap is modest but the
//! latency gap is not.

use ecofl_bench::{header, write_json};
use ecofl_compat::serde::Serialize;
use ecofl_models::efficientnet_at;
use ecofl_pipeline::executor::{PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::orchestrator::k_bounds;
use ecofl_pipeline::partition::partition_dp;
use ecofl_pipeline::profiler::PipelineProfile;
use ecofl_simnet::{nano_h, nano_l, power_of, tx2_n, tx2_q, Device, DeviceSpec, Link};

#[derive(Serialize)]
struct Row {
    cluster: String,
    throughput: f64,
    total_watts: f64,
    samples_per_joule: f64,
}

fn run_cluster(name: &str, specs: Vec<DeviceSpec>, rows: &mut Vec<Row>) {
    let model = efficientnet_at(1, 224);
    let link = Link::mbps_100();
    let devices: Vec<Device> = specs.iter().cloned().map(Device::new).collect();
    let partition = partition_dp(&model, &devices, &link, 8).expect("feasible");
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 8);
    let k = k_bounds(&profile).expect("fits");
    let report = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
        .expect("valid schedule")
        .run(16, 3)
        .expect("runs");
    let power: Vec<_> = specs
        .iter()
        .map(|s| power_of(&s.name).expect("catalog device"))
        .collect();
    let energy: f64 = report.stage_energy_joules(&power).iter().sum();
    let spj = report.samples_per_joule(&power);
    println!(
        "{name:<22} {:>10.2} samples/s {:>8.1} W avg {:>10.3} samples/J",
        report.throughput,
        energy / report.makespan,
        spj,
    );
    rows.push(Row {
        cluster: name.into(),
        throughput: report.throughput,
        total_watts: energy / report.makespan,
        samples_per_joule: spj,
    });
}

fn main() {
    header("Extension: energy across Table 1 power modes (EfficientNet-B1, 2-stage)");
    let mut rows = Vec::new();
    run_cluster("low  (Nano-L + TX2-Q)", vec![tx2_q(), nano_l()], &mut rows);
    run_cluster("high (Nano-H + TX2-N)", vec![tx2_n(), nano_h()], &mut rows);

    let (low, high) = (&rows[0], &rows[1]);
    assert!(
        high.throughput > low.throughput,
        "high power modes must be faster"
    );
    assert!(
        high.total_watts > low.total_watts,
        "high power modes must draw more"
    );
    println!(
        "\nShape checks passed: high-power modes are {:.2}x faster at {:.2}x the draw \
         ({:.2}x the energy efficiency).",
        high.throughput / low.throughput,
        high.total_watts / low.total_watts,
        high.samples_per_joule / low.samples_per_joule,
    );
    write_json("energy_modes", &rows);
}
