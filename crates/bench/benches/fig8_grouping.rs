//! Fig. 8 — effectiveness of the grouping strategy under RLG-IID and
//! RLG-NIID label assignments.
//!
//! The paper runs MNIST; our mnist-like synthetic preset is *more*
//! separable than MNIST for an MLP and saturates for every method, hiding
//! the grouping effect, so this figure uses the hard (cifar-like) preset
//! where group-level label bias genuinely damages convergence.
//!
//! Clients fall into 5 response-latency groups (RLGs). Under RLG-IID
//! every RLG sees all 10 classes; under RLG-NIID each RLG holds only 3
//! classes (the "businessmen" correlation between device speed and data).
//!
//! Expected shape (paper):
//! - RLG-IID: Eco-FL ≈ FedAT (both fine), Astraea suffers stragglers
//!   because it mixes fast and slow clients in one group,
//! - RLG-NIID: FedAT's latency-only groups are exactly the skewed RLGs
//!   and convergence collapses; Eco-FL and Astraea stay healthy, with
//!   Eco-FL converging faster (it also respects latency).

use ecofl_bench::{header, write_json};
use ecofl_compat::serde::Serialize;
use ecofl_data::federated::PartitionScheme;
use ecofl_data::{FederatedDataset, SyntheticSpec};
use ecofl_fl::engine::{run, FlSetup, Strategy};
use ecofl_fl::FlConfig;
use ecofl_models::ModelArch;
use ecofl_util::Rng;

#[derive(Serialize)]
struct Curve {
    setting: &'static str,
    strategy: String,
    points: Vec<(f64, f64)>,
    best_accuracy: f64,
    final_accuracy: f64,
    time_to_60: Option<f64>,
    min_class_recall: f64,
}

/// Samples base delays and derives each client's RLG as its latency
/// quintile, so the data assignment genuinely correlates with speed.
fn latencies_and_rlg(n: usize, seed: u64) -> (Vec<f64>, Vec<usize>) {
    let mut rng = Rng::new(seed);
    let delays: Vec<f64> = (0..n).map(|_| rng.gaussian(40.0, 18.0).max(3.0)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| delays[a].partial_cmp(&delays[b]).expect("finite"));
    let mut rlg = vec![0usize; n];
    for (rank, &client) in order.iter().enumerate() {
        rlg[client] = rank * 5 / n;
    }
    (delays, rlg)
}

fn run_setting(setting: &'static str, scheme: PartitionScheme, seed: u64, out: &mut Vec<Curve>) {
    let n = 100;
    let (delays, rlg) = latencies_and_rlg(n, seed);
    let config = FlConfig {
        num_clients: n,
        clients_per_round: 20,
        num_groups: 5,
        horizon: 4000.0,
        eval_interval: 100.0,
        dynamics: None, // grouping robustness is probed statically
        base_delay_override: Some(delays),
        learning_rate: 0.1,
        seed,
        ..FlConfig::default()
    };
    let data = FederatedDataset::generate(
        &SyntheticSpec::cifar_like(),
        n,
        30,
        60,
        scheme,
        Some(&rlg),
        seed,
    );
    let setup = FlSetup {
        data,
        arch: ModelArch::Mlp,
        config,
    };
    println!("\n--- {setting} @ cifar-like ---");
    for strategy in [
        Strategy::Astraea,
        Strategy::FedAt,
        Strategy::EcoFl {
            dynamic_grouping: true,
        },
    ] {
        let r = run(strategy, &setup);
        let t70 = r.accuracy.time_to_reach(0.60);
        let min_recall = r.final_recall.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "{:<10} best {:5.1}%  final {:5.1}%  60% at {}  worst-class recall {:4.1}%",
            r.strategy,
            r.best_accuracy * 100.0,
            r.final_accuracy * 100.0,
            t70.map_or("never".into(), |t| format!("{t:.0} s")),
            min_recall * 100.0,
        );
        out.push(Curve {
            setting,
            strategy: r.strategy.clone(),
            points: r.accuracy.resample(30),
            best_accuracy: r.best_accuracy,
            final_accuracy: r.final_accuracy,
            time_to_60: t70,
            min_class_recall: min_recall,
        });
    }
}

fn main() {
    header("Fig. 8: grouping effectiveness under RLG-IID / RLG-NIID");
    let mut curves = Vec::new();
    run_setting("RLG-IID", PartitionScheme::RlgIid, 81, &mut curves);
    run_setting("RLG-NIID", PartitionScheme::RlgNiid(3), 82, &mut curves);

    let get = |setting: &str, strategy: &str| {
        curves
            .iter()
            .find(|c| c.setting == setting && c.strategy == strategy)
            .expect("curve present")
    };

    // RLG-NIID: Eco-FL must clearly beat FedAT (the paper's ≤26.3% gap).
    let eco = get("RLG-NIID", "Eco-FL");
    let fedat = get("RLG-NIID", "FedAT");
    assert!(
        eco.best_accuracy > fedat.best_accuracy + 0.03,
        "RLG-NIID: Eco-FL ({:.3}) must clearly beat FedAT ({:.3})",
        eco.best_accuracy,
        fedat.best_accuracy
    );
    let uplift = (eco.best_accuracy - fedat.best_accuracy) * 100.0;
    // RLG-NIID: Astraea healthy too; Eco-FL not much slower to 60%.
    let astraea = get("RLG-NIID", "Astraea");
    if let (Some(te), Some(ta)) = (eco.time_to_60, astraea.time_to_60) {
        assert!(
            te <= ta * 1.25,
            "RLG-NIID: Eco-FL should not be much slower than Astraea to 60%"
        );
    }
    // RLG-IID: Eco-FL and FedAT comparable.
    let eco_iid = get("RLG-IID", "Eco-FL");
    let fedat_iid = get("RLG-IID", "FedAT");
    assert!(
        (eco_iid.best_accuracy - fedat_iid.best_accuracy).abs() < 0.1,
        "RLG-IID: Eco-FL and FedAT should be comparable"
    );
    // The mechanism behind FedAT's collapse: some classes are starved by
    // tier-biased aggregation, visible as worst-class recall.
    assert!(
        eco.min_class_recall > fedat.min_class_recall,
        "Eco-FL's worst class ({:.2}) should be served better than FedAT's ({:.2})",
        eco.min_class_recall,
        fedat.min_class_recall
    );
    println!(
        "\nShape checks passed. RLG-NIID accuracy uplift over FedAT: +{uplift:.1} \
         percentage points (paper headline: up to 26.3%); FedAT's worst-class \
         recall {:.0}% vs Eco-FL {:.0}% exposes the tier-bias mechanism.",
        fedat.min_class_recall * 100.0,
        eco.min_class_recall * 100.0
    );
    write_json("fig8", &curves);
}
