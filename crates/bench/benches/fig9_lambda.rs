//! Fig. 9 — sensitivity of the Eq. 4 grouping cost to λ (RLG-NIID).
//!
//! As λ grows the grouper trades latency tightness for data balance:
//! average group JS divergence falls while the groups' synchronous
//! barrier latency (the slowest member each round) creeps up as slower
//! clients join faster groups for their data. Accuracy holds or improves;
//! under Eco-FL's staleness-damped asynchronous mixing the final-accuracy
//! sensitivity to λ is milder here than in the paper's long CIFAR-10
//! runs (see EXPERIMENTS.md).

use ecofl_bench::{header, write_json};
use ecofl_compat::serde::Serialize;
use ecofl_data::federated::PartitionScheme;
use ecofl_data::{FederatedDataset, SyntheticSpec};
use ecofl_fl::engine::{run, FlSetup, Strategy};
use ecofl_fl::FlConfig;
use ecofl_grouping::{Grouper, GroupingConfig, GroupingStrategy};
use ecofl_models::ModelArch;
use ecofl_util::Rng;

#[derive(Serialize)]
struct Row {
    lambda: f64,
    avg_group_js: f64,
    avg_group_latency: f64,
    final_accuracy: f64,
    best_accuracy: f64,
}

fn latencies_and_rlg(n: usize, seed: u64) -> (Vec<f64>, Vec<usize>) {
    let mut rng = Rng::new(seed);
    let delays: Vec<f64> = (0..n).map(|_| rng.gaussian(40.0, 18.0).max(3.0)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| delays[a].partial_cmp(&delays[b]).expect("finite"));
    let mut rlg = vec![0usize; n];
    for (rank, &client) in order.iter().enumerate() {
        rlg[client] = rank * 5 / n;
    }
    (delays, rlg)
}

fn main() {
    header("Fig. 9: λ sensitivity on RLG-NIID (avg JS, avg latency, accuracy)");
    let n = 100;
    let seed = 91;
    let (delays, rlg) = latencies_and_rlg(n, seed);
    let data = FederatedDataset::generate(
        &SyntheticSpec::cifar_like(),
        n,
        30,
        60,
        PartitionScheme::RlgNiid(3),
        Some(&rlg),
        seed,
    );
    let label_counts: Vec<Vec<f64>> = data
        .clients()
        .iter()
        .map(|d| d.label_counts().iter().map(|&c| c as f64).collect())
        .collect();

    println!(
        "{:>7} {:>14} {:>18} {:>12} {:>12}",
        "lambda", "avg group JS", "barrier lat (s)", "best acc", "final acc"
    );
    let mut rows = Vec::new();
    for lambda in [0.0, 250.0, 500.0, 1000.0, 1500.0, 2000.0] {
        // Grouping-level metrics (exactly what the figure's left axes show).
        let grouper = Grouper::initial(
            &delays,
            &label_counts,
            GroupingConfig {
                num_groups: 5,
                strategy: GroupingStrategy::EcoFl { lambda },
                rt_relative: 0.6,
                rt_min: 5.0,
                assign_batch: 0,
            },
            &mut Rng::new(seed + 1),
        );
        let avg_js = grouper.avg_group_js();
        let avg_latency = grouper.avg_group_barrier_latency();

        // End-to-end accuracy at this λ.
        let config = FlConfig {
            num_clients: n,
            clients_per_round: 20,
            num_groups: 5,
            horizon: 2500.0,
            eval_interval: 100.0,
            dynamics: None,
            base_delay_override: Some(delays.clone()),
            grouping: GroupingStrategy::EcoFl { lambda },
            learning_rate: 0.1,
            seed,
            ..FlConfig::default()
        };
        let setup = FlSetup {
            data: data.clone(),
            arch: ModelArch::Mlp,
            config,
        };
        let r = run(
            Strategy::EcoFl {
                dynamic_grouping: true,
            },
            &setup,
        );
        println!(
            "{:>7.0} {:>14.4} {:>18.2} {:>11.1}% {:>11.1}%",
            lambda,
            avg_js,
            avg_latency,
            r.best_accuracy * 100.0,
            r.final_accuracy * 100.0
        );
        rows.push(Row {
            lambda,
            avg_group_js: avg_js,
            avg_group_latency: avg_latency,
            final_accuracy: r.final_accuracy,
            best_accuracy: r.best_accuracy,
        });
    }

    // Shape checks: JS decreases with λ; barrier latency does not fall;
    // accuracy stays healthy across the sweep.
    assert!(
        rows.last().unwrap().avg_group_js <= rows[0].avg_group_js + 1e-9,
        "avg JS must not increase with λ"
    );
    assert!(
        rows.last().unwrap().avg_group_latency >= rows[0].avg_group_latency - 1e-9,
        "group barrier latency should not fall as λ grows"
    );
    let acc_floor = rows
        .iter()
        .map(|r| r.best_accuracy)
        .fold(f64::INFINITY, f64::min);
    let acc_ceil = rows.iter().map(|r| r.best_accuracy).fold(0.0, f64::max);
    assert!(
        acc_ceil - acc_floor < 0.08,
        "accuracy must not collapse anywhere in the sweep ({acc_floor}..{acc_ceil})"
    );
    println!(
        "\nShape checks passed: JS falls and barrier latency rises with λ; accuracy \
         stays within {:.1} pp across the sweep.",
        (acc_ceil - acc_floor) * 100.0
    );
    write_json("fig9", &rows);
}
