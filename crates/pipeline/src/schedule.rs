//! Pluggable pipeline schedules: the [`PipelineSchedule`] trait and its
//! five implementations.
//!
//! Mirroring the `AggregationStrategy` split on the FL side, the schedule
//! layer separates *what order a pipeline trains in* from *the engines
//! that execute that order*. A schedule answers two kinds of questions:
//!
//! - **Admission queries** consumed by the event-driven
//!   [`crate::executor::PipelineExecutor`]: per-stage residency bounds
//!   `K_s`, weight-version stashing, whether backwards are gated
//!   (BAF-Sync), whether micro-batches stream across round boundaries
//!   (flush-free), and whether the backward pass splits into
//!   activation-gradient and weight-gradient tasks (zero-bubble).
//! - **A deterministic per-stage task stream** ([`stage_stream`]) — the
//!   nominal order `Fwd(mb)` / `Bwd(mb)` (optionally
//!   `BwdInput(mb)`/`BwdWeight(mb)`) ending in `Sync` — consumed by the
//!   threaded [`crate::runtime`] interpreter and the schedule-legality
//!   property suite. In the executor the *actual* dispatch order may
//!   deviate from the nominal stream (a backward becomes ready only when
//!   its gradient arrives), but it always respects the same data
//!   dependencies and residency bounds, which the legality checker
//!   asserts on the executed spans.
//!
//! The five registered schedules:
//!
//! | schedule | bubble per round | memory | new here |
//! |---|---|---|---|
//! | 1F1B-Sync (Eco-FL §4.1) | Eq. 2 SSB | `K_s` activations | no |
//! | BAF-Sync (Gpipe) | Eq. 2 SSB (+DDB) | `M` activations | no |
//! | 1F1B-Async (PipeDream) | SSB paid once | `K_s` weight copies | no |
//! | Interleaved 1F1B | SSB / v (per-device warmup) | `K_j` per virtual stage | yes |
//! | Zero-bubble | SSB − (S−1)·t_b/2 | `K_s` activations | yes |
//!
//! [`stage_stream`]: PipelineSchedule::stage_stream

use crate::profiler::{PipelineProfile, StageProfile};
use ecofl_compat::serde::{Deserialize, Serialize};

/// Virtual stages per device used when a schedule selector
/// ([`ScheduleKind::policy_for`]) has to pick an interleaving depth
/// without an explicit `v`.
pub const DEFAULT_INTERLEAVE: usize = 2;

/// One task in a schedule's nominal per-stage stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageTask {
    /// Forward pass of micro-batch `n`.
    Fwd(usize),
    /// Full backward pass of micro-batch `n` (unsplit schedules).
    Bwd(usize),
    /// Activation-gradient half of the backward of micro-batch `n`
    /// (zero-bubble schedules): computes and sends the upstream gradient,
    /// deferring the weight gradient.
    BwdInput(usize),
    /// Weight-gradient half of the backward of micro-batch `n`
    /// (zero-bubble schedules): local work, schedulable into bubbles.
    BwdWeight(usize),
    /// Synchronous flush: weights update, the round ends.
    Sync,
}

/// One step of the *threaded runtime's* per-stage program. The real
/// runtime blocks on channel receives, so ordering within a round is
/// enforced by data availability; only the verb sequence matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtStep {
    /// Receive the next activation and run a forward.
    Fwd,
    /// Receive the next gradient (or pop a pending logit) and run a
    /// backward.
    Bwd,
}

/// A pipeline schedule: admission rules for the event-driven executor
/// plus a deterministic nominal task stream for the threaded runtime.
///
/// Implementations must be deterministic pure functions of their
/// configuration — both engines rely on identical answers across calls
/// for bit-identical replay.
pub trait PipelineSchedule {
    /// Human-readable schedule name (stable; used in benches and CLI).
    fn name(&self) -> &'static str;

    /// The serializable selector this schedule was built from.
    fn kind(&self) -> ScheduleKind;

    /// Per-stage residency limit `K_s`, or `None` for unbounded
    /// (BAF-Sync holds all `M` activations).
    fn residency(&self, stage: usize) -> Option<usize>;

    /// Weight versions stashed per stage (1 unless weight-stashing
    /// async).
    fn weight_versions(&self, _stage: usize) -> u64 {
        1
    }

    /// Whether micro-batches stream across round boundaries (no flush).
    fn flush_free(&self) -> bool {
        false
    }

    /// Whether the backward splits into `BwdInput`/`BwdWeight` tasks.
    fn split_backward(&self) -> bool {
        false
    }

    /// Whether a ready backward wins over an admissible forward (the
    /// early-backward rule of 1F1B; BAF-Sync prefers forwards).
    fn prefer_backward(&self) -> bool {
        true
    }

    /// Whether stage `stage` may start a backward now, given it has
    /// forwarded `fp_done` of `m` micro-batches this round. BAF-Sync
    /// gates the last stage until every forward is done.
    fn backward_allowed(&self, _stage: usize, _s_count: usize, _fp_done: usize, _m: usize) -> bool {
        true
    }

    /// Virtual stages per device (1 unless interleaved).
    fn virtual_per_device(&self) -> usize {
        1
    }

    /// The nominal per-stage task stream for one sync-round of `m`
    /// micro-batches: every forward and backward of the round in the
    /// order the stage would run them absent timing skew, ending with
    /// [`StageTask::Sync`] for synchronous schedules.
    fn stage_stream(&self, stage: usize, s_count: usize, m: usize) -> Vec<StageTask>;

    /// Analytic bubble per sync-round for `profile` *as executed* (the
    /// interleaved schedule receives the virtual-stage profile). The
    /// default is Eq. 2's synchronous static bubble — the sum of stage
    /// widths over all but the last stage.
    fn bubble_per_round(&self, profile: &PipelineProfile) -> f64 {
        eq2_ssb(profile)
    }
}

/// Eq. 2: the synchronous static bubble — `Σ_{s<S-1} full_width(s)`.
#[must_use]
pub fn eq2_ssb(profile: &PipelineProfile) -> f64 {
    let stages = profile.stages();
    stages[..stages.len().saturating_sub(1)]
        .iter()
        .map(StageProfile::full_width)
        .sum::<f64>()
}

/// The 1F1B nominal stream shared by every 1F1B-shaped schedule:
/// `min(k, m)` warmup forwards, then alternate backward/forward, then
/// the remaining backwards.
fn one_f_one_b_stream(k: usize, m: usize, split: bool, sync: bool) -> Vec<StageTask> {
    let w = k.min(m).max(1);
    let mut out = Vec::with_capacity(2 * m + 1);
    for n in 0..w {
        out.push(StageTask::Fwd(n));
    }
    let mut fp = w;
    for n in 0..m {
        if split {
            out.push(StageTask::BwdInput(n));
            out.push(StageTask::BwdWeight(n));
        } else {
            out.push(StageTask::Bwd(n));
        }
        if fp < m {
            out.push(StageTask::Fwd(fp));
            fp += 1;
        }
    }
    if sync {
        out.push(StageTask::Sync);
    }
    out
}

/// Serializable schedule selector — the configuration-file / CLI face of
/// the schedule layer. [`instantiate`](Self::instantiate) turns it into
/// the trait object both engines consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Eco-FL's memory-efficient synchronous 1F1B with per-stage
    /// residency limits `K_s`.
    OneFOneBSync {
        /// Max forwards resident per stage (`K_s = min(P_s, Q_s)`).
        k: Vec<usize>,
    },
    /// Gpipe's backward-after-forward synchronous schedule: all `M`
    /// forwards precede any backward.
    BafSync,
    /// PipeDream's asynchronous 1F1B: same per-stage ordering as
    /// 1F1B-Sync but no pipeline flush — micro-batches stream across
    /// sync-round boundaries, which removes the SSB but requires each
    /// stage to stash one weight version per in-flight micro-batch
    /// (`K_s` copies of its parameters). That weight-stashing memory is
    /// the reason §2 rules PipeDream out for memory-limited IoT devices.
    OneFOneBAsync {
        /// Max forwards resident per stage.
        k: Vec<usize>,
    },
    /// Interleaved 1F1B: each device hosts `v` virtual stages (model
    /// chunks), shrinking the per-device warmup bubble to ~`SSB / v` at
    /// the cost of `v − 1` extra transfer hops per micro-batch.
    Interleaved {
        /// Max forwards resident per *virtual* stage (length `S · v`).
        k: Vec<usize>,
        /// Virtual stages per device (`v ≥ 1`).
        v: usize,
    },
    /// Zero-bubble 1F1B: the backward splits into an activation-gradient
    /// task (sends the upstream gradient after `t_b/2`) and a deferred
    /// weight-gradient task scheduled into what would otherwise be
    /// bubble time.
    ZeroBubble {
        /// Max forwards resident per stage.
        k: Vec<usize>,
    },
}

impl SchedulePolicy {
    /// The selector variant of this policy.
    #[must_use]
    pub fn kind(&self) -> ScheduleKind {
        match self {
            SchedulePolicy::OneFOneBSync { .. } => ScheduleKind::OneFOneBSync,
            SchedulePolicy::BafSync => ScheduleKind::BafSync,
            SchedulePolicy::OneFOneBAsync { .. } => ScheduleKind::OneFOneBAsync,
            SchedulePolicy::Interleaved { .. } => ScheduleKind::Interleaved1F1B,
            SchedulePolicy::ZeroBubble { .. } => ScheduleKind::ZeroBubble,
        }
    }

    /// Builds the schedule trait object both engines consume.
    #[must_use]
    pub fn instantiate(&self) -> Box<dyn PipelineSchedule> {
        match self {
            SchedulePolicy::OneFOneBSync { k } => Box::new(OneFOneBSyncSchedule { k: k.clone() }),
            SchedulePolicy::BafSync => Box::new(BafSyncSchedule),
            SchedulePolicy::OneFOneBAsync { k } => Box::new(OneFOneBAsyncSchedule { k: k.clone() }),
            SchedulePolicy::Interleaved { k, v } => Box::new(InterleavedSchedule {
                k: k.clone(),
                v: (*v).max(1),
            }),
            SchedulePolicy::ZeroBubble { k } => Box::new(ZeroBubbleSchedule { k: k.clone() }),
        }
    }
}

/// Data-free schedule selector for registries, configs, and CI sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// Eco-FL 1F1B-Sync.
    OneFOneBSync,
    /// Gpipe BAF-Sync.
    BafSync,
    /// PipeDream 1F1B-Async.
    OneFOneBAsync,
    /// Interleaved 1F1B (virtual stages per device).
    Interleaved1F1B,
    /// Zero-bubble 1F1B (split backward).
    ZeroBubble,
}

impl ScheduleKind {
    /// Every registered schedule, in gallery order — the sweep the
    /// conformance gate and benches iterate.
    #[must_use]
    pub fn all() -> [ScheduleKind; 5] {
        [
            ScheduleKind::OneFOneBSync,
            ScheduleKind::BafSync,
            ScheduleKind::OneFOneBAsync,
            ScheduleKind::Interleaved1F1B,
            ScheduleKind::ZeroBubble,
        ]
    }

    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScheduleKind::OneFOneBSync => "1f1b",
            ScheduleKind::BafSync => "gpipe",
            ScheduleKind::OneFOneBAsync => "async",
            ScheduleKind::Interleaved1F1B => "interleaved",
            ScheduleKind::ZeroBubble => "zb",
        }
    }

    /// Builds a concrete [`SchedulePolicy`] for `profile` using the Eq. 3
    /// residency bounds (`K_s = min(P_s, Q_s)`); the interleaved variant
    /// derives bounds on its [`DEFAULT_INTERLEAVE`]-deep virtual profile.
    /// `None` when some stage cannot hold even one micro-batch.
    #[must_use]
    pub fn policy_for(self, profile: &PipelineProfile) -> Option<SchedulePolicy> {
        use crate::orchestrator::k_bounds;
        match self {
            ScheduleKind::OneFOneBSync => {
                k_bounds(profile).map(|k| SchedulePolicy::OneFOneBSync { k })
            }
            ScheduleKind::BafSync => Some(SchedulePolicy::BafSync),
            ScheduleKind::OneFOneBAsync => {
                k_bounds(profile).map(|k| SchedulePolicy::OneFOneBAsync { k })
            }
            ScheduleKind::Interleaved1F1B => {
                let vp = interleave_profile(profile, DEFAULT_INTERLEAVE);
                k_bounds(&vp).map(|k| SchedulePolicy::Interleaved {
                    k,
                    v: DEFAULT_INTERLEAVE,
                })
            }
            ScheduleKind::ZeroBubble => k_bounds(profile).map(|k| SchedulePolicy::ZeroBubble { k }),
        }
    }

    /// The per-stage step program the *threaded runtime* interprets for
    /// one round of `m` micro-batches at residency `k`.
    ///
    /// The runtime is round-synchronous with one physical segment per
    /// device, so schedules collapse to their round-synchronous core:
    /// BAF-Sync runs all forwards then all backwards; every other
    /// schedule runs the 1F1B order (the async schedule's flush-freedom,
    /// the interleaved schedule's virtual stages and the zero-bubble
    /// split are executor-level refinements that do not change which
    /// gradients are accumulated, so round results stay bit-identical
    /// across all five schedules).
    #[must_use]
    pub fn runtime_stream(self, m: usize, k: usize) -> Vec<RtStep> {
        let mut out = Vec::with_capacity(2 * m);
        match self {
            ScheduleKind::BafSync => {
                out.extend(std::iter::repeat_n(RtStep::Fwd, m));
                out.extend(std::iter::repeat_n(RtStep::Bwd, m));
            }
            _ => {
                let w = k.min(m).max(1);
                out.extend(std::iter::repeat_n(RtStep::Fwd, w));
                let mut fp = w;
                for _ in 0..m {
                    out.push(RtStep::Bwd);
                    if fp < m {
                        out.push(RtStep::Fwd);
                        fp += 1;
                    }
                }
            }
        }
        out
    }
}

impl std::str::FromStr for ScheduleKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "1f1b" => Ok(ScheduleKind::OneFOneBSync),
            "gpipe" => Ok(ScheduleKind::BafSync),
            "async" => Ok(ScheduleKind::OneFOneBAsync),
            "interleaved" => Ok(ScheduleKind::Interleaved1F1B),
            "zb" | "zerobubble" => Ok(ScheduleKind::ZeroBubble),
            other => Err(format!(
                "unknown schedule {other:?} (1f1b, gpipe, async, interleaved, zb)"
            )),
        }
    }
}

struct OneFOneBSyncSchedule {
    k: Vec<usize>,
}

impl PipelineSchedule for OneFOneBSyncSchedule {
    fn name(&self) -> &'static str {
        "1F1B-Sync"
    }

    fn kind(&self) -> ScheduleKind {
        ScheduleKind::OneFOneBSync
    }

    fn residency(&self, stage: usize) -> Option<usize> {
        Some(self.k[stage])
    }

    fn stage_stream(&self, stage: usize, _s_count: usize, m: usize) -> Vec<StageTask> {
        one_f_one_b_stream(self.k[stage], m, false, true)
    }
}

struct BafSyncSchedule;

impl PipelineSchedule for BafSyncSchedule {
    fn name(&self) -> &'static str {
        "BAF-Sync"
    }

    fn kind(&self) -> ScheduleKind {
        ScheduleKind::BafSync
    }

    fn residency(&self, _stage: usize) -> Option<usize> {
        None
    }

    fn prefer_backward(&self) -> bool {
        false
    }

    fn backward_allowed(&self, stage: usize, s_count: usize, fp_done: usize, m: usize) -> bool {
        // Gpipe: the last stage flips to backwards only after forwarding
        // everything; upstream stages receive gradients late enough that
        // this gate only matters at the last stage.
        stage != s_count - 1 || fp_done == m
    }

    fn stage_stream(&self, _stage: usize, _s_count: usize, m: usize) -> Vec<StageTask> {
        let mut out: Vec<StageTask> = (0..m).map(StageTask::Fwd).collect();
        out.extend((0..m).map(StageTask::Bwd));
        out.push(StageTask::Sync);
        out
    }
}

struct OneFOneBAsyncSchedule {
    k: Vec<usize>,
}

impl PipelineSchedule for OneFOneBAsyncSchedule {
    fn name(&self) -> &'static str {
        "1F1B-Async"
    }

    fn kind(&self) -> ScheduleKind {
        ScheduleKind::OneFOneBAsync
    }

    fn residency(&self, stage: usize) -> Option<usize> {
        Some(self.k[stage])
    }

    fn weight_versions(&self, stage: usize) -> u64 {
        self.k[stage] as u64
    }

    fn flush_free(&self) -> bool {
        true
    }

    fn stage_stream(&self, stage: usize, _s_count: usize, m: usize) -> Vec<StageTask> {
        // Flush-free: no Sync terminator.
        one_f_one_b_stream(self.k[stage], m, false, false)
    }
}

struct InterleavedSchedule {
    /// Residency per *virtual* stage.
    k: Vec<usize>,
    v: usize,
}

impl PipelineSchedule for InterleavedSchedule {
    fn name(&self) -> &'static str {
        "Interleaved-1F1B"
    }

    fn kind(&self) -> ScheduleKind {
        ScheduleKind::Interleaved1F1B
    }

    fn residency(&self, stage: usize) -> Option<usize> {
        Some(self.k[stage])
    }

    fn virtual_per_device(&self) -> usize {
        self.v
    }

    fn stage_stream(&self, stage: usize, _s_count: usize, m: usize) -> Vec<StageTask> {
        one_f_one_b_stream(self.k[stage], m, false, true)
    }

    fn bubble_per_round(&self, profile: &PipelineProfile) -> f64 {
        // Warmup only has to reach the last *device* once (its first
        // virtual stage), not traverse the whole virtual chain: the
        // per-device bubble spans the first S−1 virtual stages, each
        // 1/v of a physical stage wide.
        let stages = profile.stages();
        let devices = stages.len() / self.v.max(1);
        stages[..devices.saturating_sub(1)]
            .iter()
            .map(StageProfile::full_width)
            .sum::<f64>()
    }
}

struct ZeroBubbleSchedule {
    k: Vec<usize>,
}

impl PipelineSchedule for ZeroBubbleSchedule {
    fn name(&self) -> &'static str {
        "Zero-Bubble"
    }

    fn kind(&self) -> ScheduleKind {
        ScheduleKind::ZeroBubble
    }

    fn residency(&self, stage: usize) -> Option<usize> {
        Some(self.k[stage])
    }

    fn split_backward(&self) -> bool {
        true
    }

    fn stage_stream(&self, stage: usize, _s_count: usize, m: usize) -> Vec<StageTask> {
        one_f_one_b_stream(self.k[stage], m, true, true)
    }

    fn bubble_per_round(&self, profile: &PipelineProfile) -> f64 {
        // The upstream gradient leaves after the activation-gradient
        // half, so each warmup/drain hop shortens by t_b/2 relative to
        // Eq. 2.
        let stages = profile.stages();
        stages[..stages.len().saturating_sub(1)]
            .iter()
            .map(|sp| sp.full_width() - sp.t_bwd * 0.5)
            .sum::<f64>()
    }
}

/// Derives the virtual-stage profile for interleaved 1F1B: each physical
/// stage splits into `v` equal chunks, ordered chunk-major (virtual stage
/// `j = r·S + s` is chunk `r` of device `s`), so every device hosts `v`
/// virtual stages and micro-batches visit each device `v` times.
///
/// Compute, parameters and activations divide evenly across the chunks;
/// inter-device boundaries keep their profiled transfer cost, and the
/// `v − 1` wrap boundaries (last device back to device 0) are charged the
/// mean of the profiled inter-device transfers — an approximation, since
/// the physical profiler never measured those cuts.
#[must_use]
pub fn interleave_profile(profile: &PipelineProfile, v: usize) -> PipelineProfile {
    assert!(v >= 1, "interleave_profile: v must be ≥ 1");
    if v == 1 {
        return profile.clone();
    }
    let phys = profile.stages();
    let s = phys.len();
    let vf = v as f64;
    let inter = &phys[..s - 1];
    let wrap_c = if inter.is_empty() {
        0.0
    } else {
        inter.iter().map(|p| p.c_fwd).sum::<f64>() / inter.len() as f64
    };
    let wrap_bytes = if inter.is_empty() {
        0
    } else {
        inter.iter().map(|p| p.boundary_bytes).sum::<u64>() / inter.len() as u64
    };
    let mut stages = Vec::with_capacity(s * v);
    for r in 0..v {
        for (si, p) in phys.iter().enumerate() {
            let last = r == v - 1 && si == s - 1;
            let wraps = si == s - 1 && !last;
            let (c_fwd, c_bwd, boundary_bytes) = if last {
                (0.0, 0.0, 0)
            } else if wraps {
                (wrap_c, wrap_c, wrap_bytes)
            } else {
                (p.c_fwd, p.c_bwd, p.boundary_bytes)
            };
            // Even u64 splits, remainders charged to chunk 0 so device
            // totals are preserved exactly.
            let split = |b: u64| b / v as u64 + if r == 0 { b % v as u64 } else { 0 };
            let len = p.layers.len();
            let lo = p.layers.start + (len * r) / v;
            let hi = p.layers.start + (len * (r + 1)) / v;
            stages.push(StageProfile {
                device: p.device,
                layers: lo..hi,
                t_fwd: p.t_fwd / vf,
                t_bwd: p.t_bwd / vf,
                c_fwd,
                c_bwd,
                param_bytes: split(p.param_bytes),
                activation_bytes_per_mb: split(p.activation_bytes_per_mb),
                boundary_bytes,
                memory_budget_bytes: p.memory_budget_bytes,
                efficiency: p.efficiency,
            });
        }
    }
    PipelineProfile::from_stages(stages, profile.micro_batch())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_profile(s: usize) -> PipelineProfile {
        let stages: Vec<StageProfile> = (0..s)
            .map(|i| StageProfile {
                device: i,
                layers: i..i + 1,
                t_fwd: 1.0,
                t_bwd: 2.0,
                c_fwd: if i < s - 1 { 0.25 } else { 0.0 },
                c_bwd: if i < s - 1 { 0.25 } else { 0.0 },
                param_bytes: 600,
                activation_bytes_per_mb: 100,
                boundary_bytes: 50,
                memory_budget_bytes: 1 << 30,
                efficiency: 1.0,
            })
            .collect();
        PipelineProfile::from_stages(stages, 1)
    }

    #[test]
    fn stream_covers_every_micro_batch_once() {
        let m = 7;
        for kind in ScheduleKind::all() {
            let p = uniform_profile(3);
            let exec_p = if kind == ScheduleKind::Interleaved1F1B {
                interleave_profile(&p, DEFAULT_INTERLEAVE)
            } else {
                p.clone()
            };
            let policy = kind.policy_for(&p).expect("bounds fit");
            let sched = policy.instantiate();
            for stage in 0..exec_p.num_stages() {
                let stream = sched.stage_stream(stage, exec_p.num_stages(), m);
                let fwds: Vec<usize> = stream
                    .iter()
                    .filter_map(|t| match t {
                        StageTask::Fwd(n) => Some(*n),
                        _ => None,
                    })
                    .collect();
                let bwds: Vec<usize> = stream
                    .iter()
                    .filter_map(|t| match t {
                        StageTask::Bwd(n) | StageTask::BwdWeight(n) => Some(*n),
                        _ => None,
                    })
                    .collect();
                assert_eq!(fwds, (0..m).collect::<Vec<_>>(), "{}", sched.name());
                assert_eq!(bwds, (0..m).collect::<Vec<_>>(), "{}", sched.name());
                let syncs = stream.iter().filter(|t| **t == StageTask::Sync).count();
                assert_eq!(syncs, usize::from(!sched.flush_free()));
            }
        }
    }

    #[test]
    fn stream_respects_residency_and_order() {
        for kind in ScheduleKind::all() {
            let p = uniform_profile(4);
            let exec_p = if kind == ScheduleKind::Interleaved1F1B {
                interleave_profile(&p, DEFAULT_INTERLEAVE)
            } else {
                p.clone()
            };
            let sched = kind.policy_for(&p).expect("bounds fit").instantiate();
            for stage in 0..exec_p.num_stages() {
                let mut resident = 0usize;
                let mut fwd_done = [false; 9];
                let mut bwd_in_done = [false; 9];
                for t in sched.stage_stream(stage, exec_p.num_stages(), 9) {
                    match t {
                        StageTask::Fwd(n) => {
                            resident += 1;
                            fwd_done[n] = true;
                            if let Some(k) = sched.residency(stage) {
                                assert!(resident <= k, "{}: residency exceeded", sched.name());
                            }
                        }
                        StageTask::Bwd(n) => {
                            assert!(fwd_done[n], "backward before forward");
                            resident -= 1;
                        }
                        StageTask::BwdInput(n) => {
                            assert!(fwd_done[n]);
                            bwd_in_done[n] = true;
                        }
                        StageTask::BwdWeight(n) => {
                            assert!(bwd_in_done[n], "weight grad before activation grad");
                            resident -= 1;
                        }
                        StageTask::Sync => assert_eq!(resident, 0, "sync with residents"),
                    }
                }
            }
        }
    }

    #[test]
    fn interleave_preserves_device_totals() {
        let p = uniform_profile(3);
        let vp = interleave_profile(&p, 3);
        assert_eq!(vp.num_stages(), 9);
        for d in 0..3 {
            let params: u64 = vp
                .stages()
                .iter()
                .filter(|sp| sp.device == d)
                .map(|sp| sp.param_bytes)
                .sum();
            assert_eq!(params, p.stages()[d].param_bytes);
            let t: f64 = vp
                .stages()
                .iter()
                .filter(|sp| sp.device == d)
                .map(StageProfile::t_total)
                .sum();
            assert!((t - p.stages()[d].t_total()).abs() < 1e-12);
        }
        // Chunk-major order: devices cycle 0,1,2,0,1,2,…
        let order: Vec<usize> = vp.stages().iter().map(|sp| sp.device).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn bubble_formulas_ordered() {
        let p = uniform_profile(4);
        let ssb = eq2_ssb(&p);
        let sync = ScheduleKind::OneFOneBSync
            .policy_for(&p)
            .unwrap()
            .instantiate();
        assert!((sync.bubble_per_round(&p) - ssb).abs() < 1e-12);
        let zb = ScheduleKind::ZeroBubble
            .policy_for(&p)
            .unwrap()
            .instantiate();
        assert!(
            zb.bubble_per_round(&p) < ssb,
            "zero-bubble must undercut Eq. 2"
        );
        let il = ScheduleKind::Interleaved1F1B
            .policy_for(&p)
            .unwrap()
            .instantiate();
        let vp = interleave_profile(&p, DEFAULT_INTERLEAVE);
        assert!(
            il.bubble_per_round(&vp) < ssb,
            "interleaving must shrink the warmup bubble"
        );
    }

    #[test]
    fn runtime_stream_shapes() {
        let s = ScheduleKind::OneFOneBSync.runtime_stream(5, 3);
        // 3 warmup forwards, then bwd/fwd alternation, then tail bwds.
        assert_eq!(s.iter().filter(|x| **x == RtStep::Fwd).count(), 5);
        assert_eq!(s.iter().filter(|x| **x == RtStep::Bwd).count(), 5);
        assert_eq!(&s[..3], &[RtStep::Fwd, RtStep::Fwd, RtStep::Fwd]);
        let g = ScheduleKind::BafSync.runtime_stream(4, 2);
        assert_eq!(&g[..4], &[RtStep::Fwd; 4]);
        assert_eq!(&g[4..], &[RtStep::Bwd; 4]);
    }
}
