//! Training baselines the pipeline is compared against (Figs. 10–11).
//!
//! - **Single-device training**: the whole model on one device; feasible
//!   only if parameters + one batch of activations fit its memory.
//! - **Data-parallel training (DP)**: every device holds a full model
//!   replica, the global batch is sharded proportionally to device speed
//!   (the paper's heterogeneity-aware DP baseline), and every step ends
//!   with a gradient synchronization over the 100 Mbps network. The
//!   synchronization term is what makes DP collapse on IoT links — the
//!   paper measures 66.29% transmission overhead and finds DP *slower
//!   than a single device* for MobileNet-W3.

use crate::executor::DEFAULT_TASK_OVERHEAD;
use crate::profiler::PARAM_STATE_FACTOR;
use ecofl_compat::serde::{Deserialize, Serialize};
use ecofl_models::ModelProfile;
use ecofl_simnet::{Device, Link};

/// Result of a single-device epoch estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleDeviceReport {
    /// Device name.
    pub device: String,
    /// Seconds per epoch.
    pub epoch_time: f64,
    /// Samples per second.
    pub throughput: f64,
    /// Largest batch slice the memory admits.
    pub max_batch: usize,
}

/// Estimates one training epoch on a single device.
///
/// The device micro-batches internally (gradient accumulation), so the
/// run is feasible whenever one sample's activations fit; throughput
/// degrades at tiny admissible batch sizes through the per-task overhead.
///
/// Returns `None` if even a single sample cannot be trained.
#[must_use]
pub fn single_device_epoch(
    model: &ModelProfile,
    device: &Device,
    batch: usize,
    epoch_samples: usize,
) -> Option<SingleDeviceReport> {
    let params: u64 = model.total_param_bytes();
    let act_per_sample: u64 = model.layers.iter().map(|l| l.train_activation_bytes).sum();
    let static_bytes = params * PARAM_STATE_FACTOR;
    let mem = device.spec().memory_bytes;
    if static_bytes + act_per_sample > mem {
        return None;
    }
    let max_batch = ((mem - static_bytes) / act_per_sample.max(1)) as usize;
    let eff_batch = batch.min(max_batch).max(1);
    let steps = epoch_samples.div_ceil(eff_batch);
    let flops_per_sample = model.total_flops();
    let compute = epoch_samples as f64 * flops_per_sample
        / (device.effective_flops() * crate::profiler::batch_efficiency(eff_batch));
    // Forward + backward dispatch per step.
    let overhead = steps as f64 * 2.0 * DEFAULT_TASK_OVERHEAD;
    let epoch_time = compute + overhead;
    Some(SingleDeviceReport {
        device: device.name().to_owned(),
        epoch_time,
        throughput: epoch_samples as f64 / epoch_time,
        max_batch,
    })
}

/// Result of a data-parallel epoch estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataParallelReport {
    /// Seconds per epoch.
    pub epoch_time: f64,
    /// Compute seconds per epoch (slowest replica).
    pub compute_time: f64,
    /// Gradient-synchronization seconds per epoch.
    pub comm_time: f64,
    /// Fraction of the epoch spent on transmission.
    pub comm_fraction: f64,
    /// Samples per second.
    pub throughput: f64,
    /// Per-device utilization (compute ÷ wall time).
    pub per_device_utilization: Vec<f64>,
    /// Batch shard per device.
    pub shards: Vec<usize>,
}

/// Estimates one data-parallel training epoch.
///
/// Shards each global batch across `devices` proportionally to effective
/// speed, then synchronizes gradients every step with a ring all-reduce
/// over `link`: `2 · (D−1)/D · param_bytes / bandwidth` per step.
///
/// Returns `None` if some replica cannot hold the full model plus its
/// shard's activations (DP requires a complete replica everywhere — the
/// memory pressure the paper's §1 highlights).
#[must_use]
pub fn data_parallel_epoch(
    model: &ModelProfile,
    devices: &[Device],
    link: &Link,
    global_batch: usize,
    epoch_samples: usize,
) -> Option<DataParallelReport> {
    if devices.is_empty() {
        return None;
    }
    let d = devices.len();
    let params = model.total_param_bytes();
    let act_per_sample: u64 = model.layers.iter().map(|l| l.train_activation_bytes).sum();

    // Speed-proportional shards (largest-remainder rounding).
    let total_rate: f64 = devices.iter().map(Device::effective_flops).sum();
    let mut shards: Vec<usize> = devices
        .iter()
        .map(|dev| {
            ((global_batch as f64 * dev.effective_flops() / total_rate).floor() as usize).max(1)
        })
        .collect();
    let mut assigned: usize = shards.iter().sum();
    let mut i = 0;
    while assigned < global_batch {
        shards[i % d] += 1;
        assigned += 1;
        i += 1;
    }
    while assigned > global_batch {
        if let Some(s) = shards.iter_mut().rev().find(|s| **s > 1) {
            *s -= 1;
            assigned -= 1;
        } else {
            break;
        }
    }

    // Memory feasibility: every replica holds the full model; shards are
    // processed in internal sub-batches (gradient accumulation), so one
    // sample's activations must fit. The admissible sub-batch size also
    // caps the kernel efficiency the device can reach.
    let mut sub_batches = Vec::with_capacity(d);
    for (dev, &shard) in devices.iter().zip(&shards) {
        let static_bytes = params * PARAM_STATE_FACTOR;
        if static_bytes + act_per_sample > dev.spec().memory_bytes {
            return None;
        }
        let max_fit = ((dev.spec().memory_bytes - static_bytes) / act_per_sample.max(1)) as usize;
        sub_batches.push(shard.min(max_fit).max(1));
    }

    let flops_per_sample = model.total_flops();
    let steps = epoch_samples.div_ceil(global_batch);
    // Per step the wall time is the slowest replica.
    let step_compute = devices
        .iter()
        .zip(shards.iter().zip(&sub_batches))
        .map(|(dev, (&s, &sub))| {
            s as f64 * flops_per_sample
                / (dev.effective_flops() * crate::profiler::batch_efficiency(sub))
        })
        .fold(0.0, f64::max)
        + 2.0 * DEFAULT_TASK_OVERHEAD;
    // Ring all-reduce of gradients each step.
    let step_comm = if d > 1 {
        2.0 * (d as f64 - 1.0) / d as f64 * params as f64 / link.bandwidth()
            + 2.0 * (d as f64 - 1.0) * link.latency()
    } else {
        0.0
    };
    let compute_time = steps as f64 * step_compute;
    let comm_time = steps as f64 * step_comm;
    let epoch_time = compute_time + comm_time;

    let per_device_utilization = devices
        .iter()
        .zip(shards.iter().zip(&sub_batches))
        .map(|(dev, (&s, &sub))| {
            let busy = steps as f64 * s as f64 * flops_per_sample
                / (dev.effective_flops() * crate::profiler::batch_efficiency(sub));
            busy / epoch_time
        })
        .collect();

    Some(DataParallelReport {
        epoch_time,
        compute_time,
        comm_time,
        comm_fraction: comm_time / epoch_time,
        throughput: epoch_samples as f64 / epoch_time,
        per_device_utilization,
        shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofl_models::{efficientnet, mobilenet_v2};
    use ecofl_simnet::{nano_h, nano_l, tx2_q, DeviceSpec};

    #[test]
    fn single_device_scales_with_speed() {
        let model = efficientnet(1);
        let fast = single_device_epoch(&model, &Device::new(tx2_q()), 32, 1000).unwrap();
        let slow = single_device_epoch(&model, &Device::new(nano_l()), 32, 1000).unwrap();
        assert!(fast.epoch_time < slow.epoch_time);
        let ratio = slow.epoch_time / fast.epoch_time;
        let rate_ratio = tx2_q().compute_flops / nano_l().compute_flops;
        assert!((ratio - rate_ratio).abs() / rate_ratio < 0.05);
    }

    #[test]
    fn single_device_oom_returns_none() {
        let model = efficientnet(6);
        let tiny = Device::new(DeviceSpec::new("tiny", 1e9, 1 << 20, 1e8));
        assert!(single_device_epoch(&model, &tiny, 8, 100).is_none());
    }

    #[test]
    fn dp_shards_proportional_to_speed() {
        let model = mobilenet_v2(1.0);
        let devices = vec![Device::new(tx2_q()), Device::new(nano_l())];
        let r = data_parallel_epoch(&model, &devices, &Link::mbps_100(), 30, 300).unwrap();
        assert_eq!(r.shards.iter().sum::<usize>(), 30);
        assert!(
            r.shards[0] > 2 * r.shards[1],
            "fast device should take the larger shard: {:?}",
            r.shards
        );
    }

    #[test]
    fn dp_comm_dominates_for_wide_mobilenet() {
        // The §6.3 observation: for MobileNet-W3 gradient sync exceeds
        // compute per epoch on 100 Mbps.
        let model = mobilenet_v2(3.0);
        let devices = vec![
            Device::new(tx2_q()),
            Device::new(nano_h()),
            Device::new(nano_h()),
        ];
        let r = data_parallel_epoch(&model, &devices, &Link::mbps_100(), 128, 1280).unwrap();
        assert!(
            r.comm_fraction > 0.4,
            "W3 DP should be transmission-bound, got {}",
            r.comm_fraction
        );
    }

    #[test]
    fn dp_single_replica_has_no_comm() {
        let model = mobilenet_v2(1.0);
        let devices = vec![Device::new(tx2_q())];
        let r = data_parallel_epoch(&model, &devices, &Link::mbps_100(), 16, 160).unwrap();
        assert_eq!(r.comm_time, 0.0);
        assert_eq!(r.comm_fraction, 0.0);
    }

    #[test]
    fn dp_can_lose_to_single_device() {
        // MobileNet-W3 over 100 Mbps: the paper finds DP slower than one
        // TX2-Q.
        let model = mobilenet_v2(3.0);
        let cluster = vec![
            Device::new(tx2_q()),
            Device::new(nano_h()),
            Device::new(nano_h()),
        ];
        let dp = data_parallel_epoch(&model, &cluster, &Link::mbps_100(), 64, 640).unwrap();
        let single = single_device_epoch(&model, &Device::new(tx2_q()), 64, 640).unwrap();
        assert!(
            dp.epoch_time > single.epoch_time,
            "DP {} should be slower than single TX2-Q {}",
            dp.epoch_time,
            single.epoch_time
        );
    }

    #[test]
    fn utilization_below_one_under_comm() {
        let model = mobilenet_v2(2.0);
        let devices = vec![Device::new(nano_l()), Device::new(nano_h())];
        let r = data_parallel_epoch(&model, &devices, &Link::mbps_100(), 32, 320).unwrap();
        for &u in &r.per_device_utilization {
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
