//! Heterogeneity-aware workload partitioning (§4.2, Eq. 1).
//!
//! Finds stage boundaries that minimize the lagger — the slowest stage's
//! per-micro-batch time — while accounting for inter-stage communication
//! and per-device memory capacity. The recurrence is the paper's Eq. 1:
//!
//! ```text
//! A(0→j, D_n) = min_{s} max{ A(0→s, D_{n-1}),
//!                            (a_s + g_s) / B_{n-2},
//!                            T(s+1→j, n−1) }
//! ```
//!
//! solved bottom-up in `O(D · L²)`. [`partition_even`] is the PipeDream
//! baseline of Fig. 12: it balances raw FLOPs assuming homogeneous
//! devices, ignoring their actual speeds.

use crate::profiler::PARAM_STATE_FACTOR;
use ecofl_compat::serde::{Deserialize, Serialize};
use ecofl_models::ModelProfile;
use ecofl_simnet::{Device, Link};

/// A pipeline partition: `boundaries[s]..boundaries[s+1]` is the layer
/// range of stage `s`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Stage boundaries; `len() == num_stages + 1`, first is 0, last is
    /// the model's layer count.
    pub boundaries: Vec<usize>,
}

impl Partition {
    /// Number of stages.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// Layer range of stage `s`.
    #[must_use]
    pub fn stage_range(&self, s: usize) -> std::ops::Range<usize> {
        self.boundaries[s]..self.boundaries[s + 1]
    }
}

/// Per-micro-batch compute time of layers `range` on a device.
fn seg_time(model: &ModelProfile, range: std::ops::Range<usize>, rate: f64, mbs: usize) -> f64 {
    mbs as f64 * model.range_flops(range) / rate
}

/// Whether layers `range` fit in `device`'s memory with at least one
/// resident micro-batch.
fn fits(model: &ModelProfile, range: std::ops::Range<usize>, device: &Device, mbs: usize) -> bool {
    let params: u64 = model.layers[range.clone()]
        .iter()
        .map(|l| l.param_bytes)
        .sum();
    let act: u64 = model.layers[range]
        .iter()
        .map(|l| l.train_activation_bytes)
        .sum::<u64>()
        * mbs as u64;
    params * PARAM_STATE_FACTOR + act <= device.spec().memory_bytes
}

/// Combined forward+backward boundary-transfer time for a cut after layer
/// `cut − 1` (the `(a_s + g_s)/B` term of Eq. 1).
fn comm_time(model: &ModelProfile, cut: usize, link: &Link, mbs: usize) -> f64 {
    let bytes = 2 * model.activation_bytes_after(cut - 1) * mbs as u64;
    link.transfer_time(bytes)
}

/// Runs the Eq. 1 dynamic program.
///
/// `devices` is the pipeline order (stage `s` runs on `devices[s]`).
/// Returns `None` when no feasible partition exists — fewer layers than
/// devices, or no split satisfies every stage's memory constraint.
#[must_use]
pub fn partition_dp(
    model: &ModelProfile,
    devices: &[Device],
    link: &Link,
    mbs: usize,
) -> Option<Partition> {
    let l = model.num_layers();
    let d = devices.len();
    if d == 0 || l < d {
        return None;
    }
    if d == 1 {
        if !fits(model, 0..l, &devices[0], mbs) {
            return None;
        }
        return Some(Partition {
            boundaries: vec![0, l],
        });
    }

    const INF: f64 = f64::INFINITY;
    // best[n][j]: optimal lagger using first n devices for layers 0..j.
    let mut best = vec![vec![INF; l + 1]; d + 1];
    // choice[n][j]: the prefix length s chosen at the optimum.
    let mut choice = vec![vec![usize::MAX; l + 1]; d + 1];

    #[allow(clippy::needless_range_loop)]
    for j in 1..=l {
        if fits(model, 0..j, &devices[0], mbs) {
            best[1][j] = seg_time(model, 0..j, devices[0].effective_flops(), mbs);
        }
    }

    for n in 2..=d {
        let rate = devices[n - 1].effective_flops();
        // Need at least n layers for n non-empty stages, and leave enough
        // layers for the remaining devices.
        for j in n..=l {
            let mut best_cost = INF;
            let mut best_s = usize::MAX;
            #[allow(clippy::needless_range_loop)]
            for s in (n - 1)..j {
                let prefix = best[n - 1][s];
                if !prefix.is_finite() {
                    continue;
                }
                if !fits(model, s..j, &devices[n - 1], mbs) {
                    continue;
                }
                let cost = prefix.max(comm_time(model, s, link, mbs)).max(seg_time(
                    model,
                    s..j,
                    rate,
                    mbs,
                ));
                if cost < best_cost {
                    best_cost = cost;
                    best_s = s;
                }
            }
            best[n][j] = best_cost;
            choice[n][j] = best_s;
        }
    }

    if !best[d][l].is_finite() {
        return None;
    }
    // Reconstruct boundaries from the choice table.
    let mut boundaries = vec![0usize; d + 1];
    boundaries[d] = l;
    let mut j = l;
    for n in (2..=d).rev() {
        let s = choice[n][j];
        debug_assert_ne!(s, usize::MAX);
        boundaries[n - 1] = s;
        j = s;
    }
    Some(Partition { boundaries })
}

/// The lagger value of a given partition under the Eq. 1 objective
/// (maximum over stage compute times and cut communication times).
#[must_use]
pub fn partition_objective(
    model: &ModelProfile,
    partition: &Partition,
    devices: &[Device],
    link: &Link,
    mbs: usize,
) -> f64 {
    let mut worst = 0.0f64;
    #[allow(clippy::needless_range_loop)]
    for s in 0..partition.num_stages() {
        let range = partition.stage_range(s);
        worst = worst.max(seg_time(model, range, devices[s].effective_flops(), mbs));
        if s + 1 < partition.num_stages() {
            worst = worst.max(comm_time(model, partition.boundaries[s + 1], link, mbs));
        }
    }
    worst
}

/// Whether every stage of `partition` fits its device's memory.
#[must_use]
pub fn partition_feasible(
    model: &ModelProfile,
    partition: &Partition,
    devices: &[Device],
    mbs: usize,
) -> bool {
    (0..partition.num_stages()).all(|s| fits(model, partition.stage_range(s), &devices[s], mbs))
}

/// PipeDream-style homogeneous partitioning (the Fig. 12 baseline).
///
/// Splits layers so each stage holds an (approximately) equal share of
/// total FLOPs, ignoring device heterogeneity — "the workload will be
/// evenly divided into different stages". Greedy prefix packing: stage `s`
/// takes layers until its share reaches `total / D`.
///
/// Returns `None` if there are fewer layers than devices.
#[must_use]
pub fn partition_even(model: &ModelProfile, num_stages: usize) -> Option<Partition> {
    let l = model.num_layers();
    if num_stages == 0 || l < num_stages {
        return None;
    }
    let total = model.total_flops();
    let target = total / num_stages as f64;
    let mut boundaries = Vec::with_capacity(num_stages + 1);
    boundaries.push(0usize);
    let mut acc = 0.0;
    let mut next_target = target;
    for (i, layer) in model.layers.iter().enumerate() {
        acc += layer.total_flops();
        let stages_done = boundaries.len(); // includes leading 0
        let remaining_layers = l - (i + 1);
        let remaining_stages = num_stages - stages_done;
        if stages_done < num_stages && (acc >= next_target || remaining_layers == remaining_stages)
        {
            boundaries.push(i + 1);
            next_target += target;
        }
    }
    boundaries.push(l);
    debug_assert_eq!(boundaries.len(), num_stages + 1);
    Some(Partition { boundaries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofl_models::{efficientnet, mobilenet_v2};
    use ecofl_simnet::{nano_h, nano_l, tx2_n, tx2_q};

    fn devices2() -> Vec<Device> {
        vec![Device::new(tx2_n()), Device::new(nano_h())]
    }

    /// Exhaustive search over all boundary placements (small inputs only).
    fn brute_force(
        model: &ModelProfile,
        devices: &[Device],
        link: &Link,
        mbs: usize,
    ) -> Option<(f64, Partition)> {
        let l = model.num_layers();
        let d = devices.len();
        let mut best: Option<(f64, Partition)> = None;
        // Choose d-1 cut positions from 1..l.
        fn rec(
            cuts: &mut Vec<usize>,
            start: usize,
            need: usize,
            l: usize,
            out: &mut Vec<Vec<usize>>,
        ) {
            if need == 0 {
                out.push(cuts.clone());
                return;
            }
            for c in start..l {
                cuts.push(c);
                rec(cuts, c + 1, need - 1, l, out);
                cuts.pop();
            }
        }
        let mut all = Vec::new();
        rec(&mut Vec::new(), 1, d - 1, l, &mut all);
        for cuts in all {
            let mut boundaries = vec![0];
            boundaries.extend(cuts);
            boundaries.push(l);
            let p = Partition { boundaries };
            if !partition_feasible(model, &p, devices, mbs) {
                continue;
            }
            let obj = partition_objective(model, &p, devices, link, mbs);
            if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                best = Some((obj, p));
            }
        }
        best
    }

    #[test]
    fn dp_matches_brute_force_small() {
        let model = efficientnet(0);
        let link = Link::mbps_100();
        for (devices, mbs) in [
            (devices2(), 4usize),
            (
                vec![
                    Device::new(nano_h()),
                    Device::new(tx2_q()),
                    Device::new(nano_h()),
                ],
                8,
            ),
            (vec![Device::new(nano_l()), Device::new(tx2_n())], 16),
        ] {
            let dp = partition_dp(&model, &devices, &link, mbs).expect("feasible");
            let dp_obj = partition_objective(&model, &dp, &devices, &link, mbs);
            let (bf_obj, _) = brute_force(&model, &devices, &link, mbs).expect("feasible");
            assert!(
                (dp_obj - bf_obj).abs() < 1e-9,
                "DP {dp_obj} != brute force {bf_obj} for {} devices mbs={mbs}",
                devices.len()
            );
        }
    }

    #[test]
    fn dp_gives_fast_device_more_work() {
        let model = mobilenet_v2(1.0);
        let link = Link::mbps_100();
        // TX2-N is ~2.8× a Nano-L: its stage should carry more FLOPs.
        let devices = vec![Device::new(tx2_n()), Device::new(nano_l())];
        let p = partition_dp(&model, &devices, &link, 8).expect("feasible");
        let f0 = model.range_flops(p.stage_range(0));
        let f1 = model.range_flops(p.stage_range(1));
        assert!(
            f0 > 1.5 * f1,
            "fast stage flops {f0} should dominate slow stage {f1}"
        );
    }

    #[test]
    fn even_split_balances_flops_not_time() {
        let model = efficientnet(1);
        let p = partition_even(&model, 2).expect("feasible");
        let f0 = model.range_flops(p.stage_range(0));
        let f1 = model.range_flops(p.stage_range(1));
        let ratio = f0.max(f1) / f0.min(f1);
        assert!(
            ratio < 1.6,
            "even split should roughly balance flops, ratio {ratio}"
        );
    }

    #[test]
    fn dp_beats_even_split_on_heterogeneous_devices() {
        let model = efficientnet(1);
        let link = Link::mbps_100();
        let devices = vec![Device::new(tx2_n()), Device::new(nano_h())];
        let dp = partition_dp(&model, &devices, &link, 8).expect("dp feasible");
        let even = partition_even(&model, 2).expect("even feasible");
        let dp_obj = partition_objective(&model, &dp, &devices, &link, 8);
        let even_obj = partition_objective(&model, &even, &devices, &link, 8);
        assert!(
            dp_obj < even_obj,
            "heterogeneity-aware {dp_obj} must beat even split {even_obj}"
        );
    }

    #[test]
    fn infeasible_when_fewer_layers_than_devices() {
        let model = efficientnet(0);
        let n = model.num_layers();
        let devices: Vec<Device> = (0..=n).map(|_| Device::new(nano_h())).collect();
        assert!(partition_dp(&model, &devices, &Link::mbps_100(), 4).is_none());
    }

    #[test]
    fn memory_constraint_can_forbid_partitions() {
        let model = efficientnet(4);
        // A device with absurdly small memory cannot host any stage.
        let tiny = Device::new(ecofl_simnet::DeviceSpec::new("tiny", 1e9, 1024, 1e8));
        let devices = vec![tiny.clone(), tiny];
        assert!(partition_dp(&model, &devices, &Link::mbps_100(), 8).is_none());
    }

    #[test]
    fn single_device_partition() {
        let model = efficientnet(0);
        let devices = vec![Device::new(tx2_n())];
        let p = partition_dp(&model, &devices, &Link::mbps_100(), 4).expect("fits");
        assert_eq!(p.num_stages(), 1);
        assert_eq!(p.stage_range(0), 0..model.num_layers());
    }

    #[test]
    fn boundaries_are_strictly_increasing() {
        let model = mobilenet_v2(2.0);
        let devices = vec![
            Device::new(nano_h()),
            Device::new(tx2_q()),
            Device::new(nano_h()),
        ];
        let p = partition_dp(&model, &devices, &Link::mbps_100(), 8).expect("feasible");
        for w in p.boundaries.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(p.boundaries[0], 0);
        assert_eq!(*p.boundaries.last().unwrap(), model.num_layers());
    }
}
