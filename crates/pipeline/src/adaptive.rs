//! Adaptive pipeline re-scheduling (§4.4, Fig. 13).
//!
//! Every training worker periodically reports its FP/BP execution time to
//! the portal node. The portal smooths reports with an EMA; when a
//! stage's current time deviates from its history beyond a threshold, it
//! re-runs the Eq. 1 partitioner against the devices' *current* effective
//! speeds, migrates the moved layers' parameters over the network, and
//! restarts the pipeline.
//!
//! [`simulate_load_spike`] drives the whole Fig. 13 scenario: a pipeline
//! trains in steady state, an external GPU load lands on one device at a
//! chosen time, and the run proceeds either with or without the adaptive
//! scheduler, producing per-device utilization and throughput series.

use crate::executor::PipelineExecutor;
use crate::partition::{partition_dp, Partition};
use crate::profiler::PipelineProfile;
use crate::schedule::ScheduleKind;
use ecofl_compat::serde::{Deserialize, Serialize};
use ecofl_models::ModelProfile;
use ecofl_obs::{Domain, EventKind, Tracer};
use ecofl_simnet::{Device, Link};
use ecofl_util::stats::Ema;
use ecofl_util::TimeSeries;

/// Why a Fig. 13 spike scenario cannot run at all. These cover the
/// *setup* of the scenario; a repartition that turns out infeasible
/// *mid-run* is not an error — the scheduler falls back to the
/// unmigrated pipeline (§4.4: degrade, don't die).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpikeError {
    /// The Eq. 1 partitioner found no feasible initial partition (e.g.
    /// fewer layers than devices, or memory bounds violated everywhere).
    InfeasibleInitialPartition,
    /// The initial pipeline admits no executable 1F1B-Sync schedule.
    InitialPipelineStalled,
    /// After the spike landed, the (unmigrated) pipeline no longer
    /// admits an executable schedule.
    SpikedPipelineStalled,
}

impl std::fmt::Display for SpikeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpikeError::InfeasibleInitialPartition => {
                write!(f, "no feasible initial partition for the spike scenario")
            }
            SpikeError::InitialPipelineStalled => {
                write!(
                    f,
                    "initial pipeline admits no executable 1F1B-Sync schedule"
                )
            }
            SpikeError::SpikedPipelineStalled => {
                write!(
                    f,
                    "post-spike pipeline admits no executable 1F1B-Sync schedule"
                )
            }
        }
    }
}

impl std::error::Error for SpikeError {}

/// One re-scheduling action taken by the portal node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RescheduleEvent {
    /// Simulation time of the decision, seconds.
    pub time: f64,
    /// Stage boundaries before migration.
    pub old_boundaries: Vec<usize>,
    /// Stage boundaries after migration.
    pub new_boundaries: Vec<usize>,
    /// Parameter bytes moved between devices.
    pub bytes_moved: u64,
    /// Pipeline stall: migration transfer + restart overhead, seconds.
    pub pause: f64,
}

/// Lagger detector: EMA-smoothed per-stage times with a relative
/// deviation threshold.
#[derive(Debug, Clone)]
pub struct AdaptiveScheduler {
    /// Relative deviation of a stage's time vs. history that triggers
    /// re-scheduling (paper: "a large deviation").
    pub deviation_threshold: f64,
    /// Fixed restart overhead added to every migration, seconds.
    pub restart_overhead: f64,
    history: Vec<Ema>,
}

impl AdaptiveScheduler {
    /// Creates a detector for `num_stages` stages.
    #[must_use]
    pub fn new(num_stages: usize, deviation_threshold: f64, restart_overhead: f64) -> Self {
        assert!(deviation_threshold > 0.0);
        assert!(restart_overhead >= 0.0);
        Self {
            deviation_threshold,
            restart_overhead,
            history: vec![Ema::new(0.3); num_stages],
        }
    }

    /// Feeds one round of per-stage execution-time reports; returns the
    /// index of a stage whose current report deviates from its EMA history
    /// beyond the threshold, if any.
    pub fn observe(&mut self, stage_times: &[f64]) -> Option<usize> {
        assert_eq!(stage_times.len(), self.history.len());
        let mut trigger = None;
        for (s, (&t, ema)) in stage_times.iter().zip(self.history.iter_mut()).enumerate() {
            if let Some(prev) = ema.value() {
                let dev = (t - prev).abs() / prev.max(1e-12);
                if dev > self.deviation_threshold && trigger.is_none() {
                    trigger = Some(s);
                }
            }
            ema.push(t);
        }
        trigger
    }

    /// Resets history after a migration (old per-stage times no longer
    /// apply to the new partition).
    pub fn reset(&mut self) {
        let n = self.history.len();
        self.history = vec![Ema::new(0.3); n];
    }
}

/// Parameter bytes that change devices between two partitions of the same
/// model over the same device order.
#[must_use]
pub fn migration_bytes(model: &ModelProfile, old: &Partition, new: &Partition) -> u64 {
    assert_eq!(old.num_stages(), new.num_stages());
    let mut moved = 0u64;
    for (l, layer) in model.layers.iter().enumerate() {
        let old_stage = (0..old.num_stages())
            .find(|&s| old.stage_range(s).contains(&l))
            .expect("layer covered");
        let new_stage = (0..new.num_stages())
            .find(|&s| new.stage_range(s).contains(&l))
            .expect("layer covered");
        if old_stage != new_stage {
            moved += layer.param_bytes;
        }
    }
    moved
}

/// The external load spike of Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadSpike {
    /// Device index (in pipeline order) receiving the external workload.
    pub device: usize,
    /// Simulation time at which the load lands, seconds.
    pub at: f64,
    /// External-load fraction applied, in `[0, 1)`.
    pub load: f64,
}

/// Output of [`simulate_load_spike`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpikeTrace {
    /// Per-device utilization over time (window-sampled).
    pub device_utilization: Vec<TimeSeries>,
    /// Pipeline throughput over time, samples per second.
    pub throughput: TimeSeries,
    /// Migrations performed (empty without the scheduler).
    pub events: Vec<RescheduleEvent>,
    /// Mean throughput after the spike until the horizon.
    pub post_spike_throughput: f64,
    /// Mean throughput before the spike.
    pub pre_spike_throughput: f64,
}

/// Steady-state per-round statistics for one pipeline configuration.
struct SteadyState {
    round_time: f64,
    stage_util: Vec<f64>,
    stage_times: Vec<f64>,
    samples_per_round: f64,
}

fn steady_state(
    model: &ModelProfile,
    partition: &Partition,
    devices: &[Device],
    link: &Link,
    mbs: usize,
    micro_batches: usize,
    schedule: ScheduleKind,
) -> Option<SteadyState> {
    let profile = PipelineProfile::new(model, &partition.boundaries, devices, link, mbs);
    let policy = schedule.policy_for(&profile)?;
    let exec = PipelineExecutor::new(&profile, policy).ok()?;
    let report = exec.run(micro_batches, 1).ok()?;
    Some(SteadyState {
        round_time: report.round_time,
        stage_util: report.stage_gpu_utilization.clone(),
        stage_times: profile
            .stages()
            .iter()
            .map(crate::profiler::StageProfile::t_total)
            .collect(),
        samples_per_round: (micro_batches * mbs) as f64,
    })
}

/// Tunables of the §4.4 rescheduler used by [`simulate_load_spike_with`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Relative stage-time deviation that triggers re-scheduling.
    pub deviation_threshold: f64,
    /// Fixed restart overhead per migration, seconds.
    pub restart_overhead: f64,
    /// Pipeline schedule the rescheduled pipeline runs.
    pub schedule: ScheduleKind,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            deviation_threshold: 0.25,
            restart_overhead: 2.0,
            schedule: ScheduleKind::OneFOneBSync,
        }
    }
}

/// Runs the Fig. 13 scenario with the default scheduler tuning.
///
/// # Errors
/// [`SpikeError`] if the scenario cannot be set up (infeasible initial
/// partition, or a pipeline with no executable schedule). A repartition
/// that is infeasible *mid-run* is handled by falling back to the
/// unmigrated pipeline, never by an error.
#[allow(clippy::too_many_arguments)]
pub fn simulate_load_spike(
    model: &ModelProfile,
    devices: &[Device],
    link: &Link,
    mbs: usize,
    micro_batches: usize,
    spike: LoadSpike,
    horizon: f64,
    with_scheduler: bool,
) -> Result<SpikeTrace, SpikeError> {
    simulate_load_spike_with(
        model,
        devices,
        link,
        mbs,
        micro_batches,
        spike,
        horizon,
        with_scheduler,
        SchedulerConfig::default(),
    )
}

/// Runs the Fig. 13 scenario with explicit scheduler tuning (used by the
/// ablation bench).
///
/// # Errors
/// [`SpikeError`] if the scenario cannot be set up; see
/// [`simulate_load_spike`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_load_spike_with(
    model: &ModelProfile,
    devices: &[Device],
    link: &Link,
    mbs: usize,
    micro_batches: usize,
    spike: LoadSpike,
    horizon: f64,
    with_scheduler: bool,
    scheduler_cfg: SchedulerConfig,
) -> Result<SpikeTrace, SpikeError> {
    simulate_load_spike_inner(
        model,
        devices,
        link,
        mbs,
        micro_batches,
        spike,
        horizon,
        with_scheduler,
        scheduler_cfg,
        None,
    )
}

/// [`simulate_load_spike_with`], recording the §4.4 re-scheduling
/// timeline into `tracer`: [`EventKind::LaggerDetected`] per detector
/// trigger, [`EventKind::Migration`] (value = bytes moved) and
/// [`EventKind::Restart`] (value = stall seconds) per committed
/// migration, all under [`Domain::Scheduler`] at virtual timestamps.
///
/// # Errors
/// [`SpikeError`] if the scenario cannot be set up; see
/// [`simulate_load_spike`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_load_spike_traced(
    model: &ModelProfile,
    devices: &[Device],
    link: &Link,
    mbs: usize,
    micro_batches: usize,
    spike: LoadSpike,
    horizon: f64,
    with_scheduler: bool,
    scheduler_cfg: SchedulerConfig,
    tracer: &Tracer,
) -> Result<SpikeTrace, SpikeError> {
    simulate_load_spike_inner(
        model,
        devices,
        link,
        mbs,
        micro_batches,
        spike,
        horizon,
        with_scheduler,
        scheduler_cfg,
        Some(tracer),
    )
}

#[allow(clippy::too_many_arguments)]
fn simulate_load_spike_inner(
    model: &ModelProfile,
    devices: &[Device],
    link: &Link,
    mbs: usize,
    micro_batches: usize,
    spike: LoadSpike,
    horizon: f64,
    with_scheduler: bool,
    scheduler_cfg: SchedulerConfig,
    tracer: Option<&Tracer>,
) -> Result<SpikeTrace, SpikeError> {
    let mut devices: Vec<Device> = devices.to_vec();
    let mut partition =
        partition_dp(model, &devices, link, mbs).ok_or(SpikeError::InfeasibleInitialPartition)?;
    let schedule = scheduler_cfg.schedule;
    let mut steady = steady_state(
        model,
        &partition,
        &devices,
        link,
        mbs,
        micro_batches,
        schedule,
    )
    .ok_or(SpikeError::InitialPipelineStalled)?;

    let mut scheduler = AdaptiveScheduler::new(
        devices.len(),
        scheduler_cfg.deviation_threshold,
        scheduler_cfg.restart_overhead,
    );
    let mut util_series: Vec<TimeSeries> = vec![TimeSeries::new(); devices.len()];
    let mut throughput = TimeSeries::new();
    let mut events = Vec::new();

    let mut t = 0.0;
    let mut spiked = false;
    let mut pre_samples = 0.0;
    let mut pre_time = 0.0;
    let mut post_samples = 0.0;
    let mut post_time = 0.0;

    while t < horizon {
        // Apply the spike at its time (quantized to round starts).
        if !spiked && t >= spike.at {
            devices[spike.device].set_external_load(spike.load);
            steady = steady_state(
                model,
                &partition,
                &devices,
                link,
                mbs,
                micro_batches,
                schedule,
            )
            .ok_or(SpikeError::SpikedPipelineStalled)?;
            spiked = true;
        }
        // One sync-round at the current configuration.
        let round = steady.round_time;
        for (d, series) in util_series.iter_mut().enumerate() {
            series.push(t, steady.stage_util[d]);
        }
        throughput.push(t, steady.samples_per_round / round);
        if spiked {
            post_samples += steady.samples_per_round;
            post_time += round;
        } else {
            pre_samples += steady.samples_per_round;
            pre_time += round;
        }
        t += round;

        // Portal receives the per-stage reports at the round boundary.
        if with_scheduler {
            if let Some(lagger) = scheduler.observe(&steady.stage_times) {
                if let Some(tr) = tracer {
                    tr.event(
                        Domain::Scheduler,
                        EventKind::LaggerDetected,
                        lagger,
                        t,
                        steady.stage_times[lagger],
                    );
                }
                // §4.4 degrade-don't-die: a mid-run repartition can be
                // infeasible (the spiked device's memory bound may now
                // reject every cut) or yield an inexecutable pipeline.
                // Both the candidate partition and its steady state are
                // evaluated *before* committing anything; on failure the
                // scheduler keeps the current (unmigrated) pipeline.
                let candidate = partition_dp(model, &devices, link, mbs)
                    .filter(|p| *p != partition)
                    .and_then(|p| {
                        steady_state(model, &p, &devices, link, mbs, micro_batches, schedule)
                            .map(|s| (p, s))
                    });
                if let Some((new_partition, new_steady)) = candidate {
                    let moved = migration_bytes(model, &partition, &new_partition);
                    let pause = link.transfer_time(moved) + scheduler.restart_overhead;
                    if let Some(tr) = tracer {
                        tr.event(
                            Domain::Scheduler,
                            EventKind::Migration,
                            lagger,
                            t,
                            moved as f64,
                        );
                        tr.event(
                            Domain::Scheduler,
                            EventKind::Restart,
                            lagger,
                            t + pause,
                            pause,
                        );
                    }
                    events.push(RescheduleEvent {
                        time: t,
                        old_boundaries: partition.boundaries.clone(),
                        new_boundaries: new_partition.boundaries.clone(),
                        bytes_moved: moved,
                        pause,
                    });
                    // Pipeline stalls during migration: utilization zero.
                    for series in util_series.iter_mut() {
                        series.push(t, 0.0);
                    }
                    throughput.push(t, 0.0);
                    if spiked {
                        post_time += pause;
                    } else {
                        pre_time += pause;
                    }
                    t += pause;
                    partition = new_partition;
                    steady = new_steady;
                    scheduler.reset();
                }
            }
        }
    }

    Ok(SpikeTrace {
        device_utilization: util_series,
        throughput,
        events,
        post_spike_throughput: if post_time > 0.0 {
            post_samples / post_time
        } else {
            0.0
        },
        pre_spike_throughput: if pre_time > 0.0 {
            pre_samples / pre_time
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofl_models::efficientnet;
    use ecofl_simnet::{nano_h, tx2_q};

    fn setup() -> (ecofl_models::ModelProfile, Vec<Device>, Link) {
        (
            efficientnet(1),
            vec![
                Device::new(tx2_q()),
                Device::new(nano_h()),
                Device::new(nano_h()),
            ],
            Link::mbps_100(),
        )
    }

    #[test]
    fn detector_triggers_on_deviation() {
        let mut s = AdaptiveScheduler::new(2, 0.25, 1.0);
        assert_eq!(s.observe(&[1.0, 1.0]), None, "no history yet");
        assert_eq!(s.observe(&[1.0, 1.0]), None, "stable");
        assert_eq!(s.observe(&[1.05, 1.0]), None, "within threshold");
        assert_eq!(s.observe(&[2.0, 1.0]), Some(0), "2x slowdown");
    }

    #[test]
    fn detector_reset_clears_history() {
        let mut s = AdaptiveScheduler::new(1, 0.25, 1.0);
        let _ = s.observe(&[1.0]);
        s.reset();
        assert_eq!(s.observe(&[100.0]), None, "fresh history after reset");
    }

    #[test]
    fn migration_bytes_zero_for_identical_partitions() {
        let (model, devices, link) = setup();
        let p = partition_dp(&model, &devices, &link, 8).unwrap();
        assert_eq!(migration_bytes(&model, &p, &p), 0);
    }

    #[test]
    fn migration_bytes_counts_moved_layers() {
        let (model, _, _) = setup();
        let l = model.num_layers();
        let a = Partition {
            boundaries: vec![0, 5, 10, l],
        };
        let b = Partition {
            boundaries: vec![0, 6, 10, l],
        };
        // Only layer 5 moved (stage 1 → stage 0).
        assert_eq!(migration_bytes(&model, &a, &b), model.layers[5].param_bytes);
    }

    #[test]
    fn scheduler_recovers_throughput_after_spike() {
        let (model, devices, link) = setup();
        let spike = LoadSpike {
            device: 1,
            at: 100.0,
            load: 0.6,
        };
        let without = simulate_load_spike(&model, &devices, &link, 8, 8, spike, 250.0, false)
            .expect("feasible scenario");
        let with = simulate_load_spike(&model, &devices, &link, 8, 8, spike, 250.0, true)
            .expect("feasible scenario");
        assert!(without.events.is_empty());
        assert!(!with.events.is_empty(), "scheduler should migrate");
        assert!(
            with.post_spike_throughput > without.post_spike_throughput * 1.05,
            "scheduler {} should beat static {} after the spike",
            with.post_spike_throughput,
            without.post_spike_throughput
        );
        // Neither run should out-perform the pre-spike pipeline.
        assert!(with.post_spike_throughput <= with.pre_spike_throughput * 1.01);
    }

    #[test]
    fn traced_spike_records_reschedule_timeline() {
        let (model, devices, link) = setup();
        let spike = LoadSpike {
            device: 1,
            at: 100.0,
            load: 0.6,
        };
        let tracer = Tracer::new();
        let trace = simulate_load_spike_traced(
            &model,
            &devices,
            &link,
            8,
            8,
            spike,
            250.0,
            true,
            SchedulerConfig::default(),
            &tracer,
        )
        .expect("feasible scenario");
        assert!(!trace.events.is_empty(), "scheduler should migrate");
        let view = tracer.view();
        let migrations = view.events_of(EventKind::Migration);
        assert_eq!(migrations.len(), trace.events.len());
        for (ev, rec) in trace.events.iter().zip(&migrations) {
            assert!((rec.time - ev.time).abs() < 1e-12);
            assert!((rec.value - ev.bytes_moved as f64).abs() < 1e-12);
        }
        // Every migration is preceded by a lagger detection at its time.
        assert!(view.events_of(EventKind::LaggerDetected).len() >= migrations.len());
        let restarts = view.events_of(EventKind::Restart);
        assert_eq!(restarts.len(), trace.events.len());
        for (ev, rec) in trace.events.iter().zip(&restarts) {
            assert!((rec.value - ev.pause).abs() < 1e-12);
        }
    }

    #[test]
    fn spike_depresses_static_pipeline() {
        let (model, devices, link) = setup();
        let spike = LoadSpike {
            device: 1,
            at: 60.0,
            load: 0.6,
        };
        let trace = simulate_load_spike(&model, &devices, &link, 8, 8, spike, 200.0, false)
            .expect("feasible scenario");
        assert!(
            trace.post_spike_throughput < trace.pre_spike_throughput * 0.8,
            "static pipeline should lose throughput: pre {} post {}",
            trace.pre_spike_throughput,
            trace.post_spike_throughput
        );
    }

    #[test]
    fn infeasible_initial_partition_is_a_typed_error() {
        // One layer across three devices: partition_dp cannot give every
        // device a non-empty stage, so setup must fail — with an error,
        // not a panic.
        let (model, devices, link) = setup();
        let tiny = ecofl_models::ModelProfile {
            name: "tiny".to_string(),
            layers: vec![model.layers[0].clone()],
            input_bytes: model.input_bytes,
        };
        let spike = LoadSpike {
            device: 1,
            at: 10.0,
            load: 0.5,
        };
        let result = simulate_load_spike(&tiny, &devices, &link, 8, 8, spike, 50.0, true);
        assert_eq!(result.unwrap_err(), SpikeError::InfeasibleInitialPartition);
    }
}
