//! Multi-threaded 1F1B-Sync pipeline prototype.
//!
//! Where [`crate::executor`] *simulates* pipeline timing on modelled
//! hardware, this module actually *trains*: each stage is an OS thread
//! owning a contiguous segment of a real `ecofl-tensor` network, and
//! micro-batch activations/gradients flow through MPMC channels,
//! serialized to wire [`Bytes`] exactly as they would cross a network.
//!
//! The schedule is the paper's 1F1B-Sync: stage `s` warms up with `K_s`
//! forwards, then strictly alternates backward/forward, and the sync-round
//! ends with a pipeline flush that applies the accumulated gradients.
//! Because gradient accumulation is order-preserving per layer, the
//! resulting parameter updates are **bit-identical** to single-device
//! gradient-accumulation training over the same micro-batches — the
//! schedule changes execution order, never semantics. The tests assert
//! this exactly.

use ecofl_compat::bytes::{Bytes, BytesMut};
use ecofl_compat::sync::channel::{bounded, unbounded, Receiver, Sender};
use ecofl_compat::sync::Mutex;
use ecofl_tensor::{Layer, SoftmaxCrossEntropy, Tensor};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Serializes a tensor (shape + payload) into wire bytes.
#[must_use]
pub fn encode_tensor(t: &Tensor) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + t.shape().len() * 8 + t.len() * 4);
    buf.put_u64_le(t.shape().len() as u64);
    for &d in t.shape() {
        buf.put_u64_le(d as u64);
    }
    for &x in t.data() {
        buf.put_f32_le(x);
    }
    buf.freeze()
}

/// Deserializes a tensor produced by [`encode_tensor`].
///
/// # Panics
/// Panics on a malformed buffer.
#[must_use]
pub fn decode_tensor(mut bytes: Bytes) -> Tensor {
    let rank = bytes.get_u64_le() as usize;
    let shape: Vec<usize> = (0..rank).map(|_| bytes.get_u64_le() as usize).collect();
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(bytes.get_f32_le());
    }
    Tensor::from_vec(data, &shape)
}

/// Bytes moved across each stage boundary, shared with the portal.
#[derive(Debug, Default)]
pub struct CommStats {
    /// Forward (activation) bytes per boundary.
    pub fwd_bytes: Vec<u64>,
    /// Backward (gradient) bytes per boundary.
    pub bwd_bytes: Vec<u64>,
}

enum Ctrl {
    /// Run one sync-round of `m` micro-batches with warmup residency `k`.
    Round {
        m: usize,
        k: usize,
    },
    /// Apply accumulated gradients: SGD with `lr`, gradients scaled by
    /// `scale`, then zero gradients.
    Apply {
        lr: f32,
        scale: f32,
    },
    /// Send this stage's flat parameters to the portal.
    Collect,
    /// Overwrite this stage's parameters.
    SetParams(Vec<f32>),
    Shutdown,
}

enum Reply {
    Params(Vec<f32>),
    RoundDone { losses: Vec<f32> },
    Applied,
}

struct StageThread {
    ctrl_tx: Sender<Ctrl>,
    reply_rx: Receiver<Reply>,
    handle: Option<JoinHandle<()>>,
}

/// A running multi-threaded pipeline trainer (the "smart home" prototype).
pub struct PipelineTrainer {
    stages: Vec<StageThread>,
    input_tx: Sender<Bytes>,
    target_tx: Sender<Vec<usize>>,
    k: Vec<usize>,
    comm: Arc<Mutex<CommStats>>,
    /// Micro-batches fully processed (backward done at the last stage).
    /// Relaxed ordering suffices: it is a monitoring counter, not a
    /// synchronization point.
    progress: Arc<AtomicU64>,
}

struct StageCtx {
    layers: Vec<Box<dyn Layer>>,
    is_last: bool,
    upstream_grad_tx: Option<Sender<Bytes>>,
    input_rx: Receiver<Bytes>,
    downstream_act_tx: Option<Sender<Bytes>>,
    grad_rx: Option<Receiver<Bytes>>,
    target_rx: Option<Receiver<Vec<usize>>>,
    ctrl_rx: Receiver<Ctrl>,
    reply_tx: Sender<Reply>,
    comm: Arc<Mutex<CommStats>>,
    progress: Arc<AtomicU64>,
    stage_idx: usize,
}

fn stage_main(mut ctx: StageCtx) {
    let mut head = SoftmaxCrossEntropy::new();
    // Logits awaiting their backward at the last stage (FIFO).
    let mut pending_logits: std::collections::VecDeque<Tensor> = std::collections::VecDeque::new();

    let fwd = |ctx: &mut StageCtx, pending_logits: &mut std::collections::VecDeque<Tensor>| {
        let bytes = ctx.input_rx.recv().expect("activation channel closed");
        let x = decode_tensor(bytes);
        let mut out = x;
        for layer in &mut ctx.layers {
            out = layer.forward(&out);
        }
        if ctx.is_last {
            pending_logits.push_back(out);
        } else {
            let encoded = encode_tensor(&out);
            ctx.comm.lock().fwd_bytes[ctx.stage_idx] += encoded.len() as u64;
            ctx.downstream_act_tx
                .as_ref()
                .expect("non-last stage has downstream")
                .send(encoded)
                .expect("downstream closed");
        }
    };

    let bwd = |ctx: &mut StageCtx,
               head: &mut SoftmaxCrossEntropy,
               pending_logits: &mut std::collections::VecDeque<Tensor>,
               losses: &mut Vec<f32>| {
        let mut grad = if ctx.is_last {
            let logits = pending_logits.pop_front().expect("logit for backward");
            let targets = ctx
                .target_rx
                .as_ref()
                .expect("last stage has targets")
                .recv()
                .expect("target channel closed");
            let (loss, grad) = head.loss_and_grad(&logits, &targets);
            losses.push(loss);
            ctx.progress.fetch_add(1, Ordering::Relaxed);
            grad
        } else {
            let bytes = ctx
                .grad_rx
                .as_ref()
                .expect("non-last stage has grad channel")
                .recv()
                .expect("grad channel closed");
            decode_tensor(bytes)
        };
        for layer in ctx.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        if let Some(tx) = &ctx.upstream_grad_tx {
            let encoded = encode_tensor(&grad);
            ctx.comm.lock().bwd_bytes[ctx.stage_idx - 1] += encoded.len() as u64;
            tx.send(encoded).expect("upstream closed");
        }
    };

    loop {
        match ctx.ctrl_rx.recv() {
            Ok(Ctrl::Round { m, k }) => {
                let mut losses = Vec::new();
                // 1F1B-Sync: warmup with K forwards, then alternate BP/FP,
                // drain remaining backwards.
                let warmup = k.min(m);
                let mut fp_done = 0usize;
                let mut bp_done = 0usize;
                for _ in 0..warmup {
                    fwd(&mut ctx, &mut pending_logits);
                    fp_done += 1;
                }
                while bp_done < m {
                    bwd(&mut ctx, &mut head, &mut pending_logits, &mut losses);
                    bp_done += 1;
                    if fp_done < m {
                        fwd(&mut ctx, &mut pending_logits);
                        fp_done += 1;
                    }
                }
                ctx.reply_tx
                    .send(Reply::RoundDone { losses })
                    .expect("portal closed");
            }
            Ok(Ctrl::Apply { lr, scale }) => {
                // Pipeline flush: local SGD on the accumulated gradients.
                let mut params = Vec::new();
                let mut grads = Vec::new();
                for layer in &ctx.layers {
                    layer.write_params(&mut params);
                    layer.write_grads(&mut grads);
                }
                for (p, g) in params.iter_mut().zip(&grads) {
                    *p -= lr * g * scale;
                }
                let mut offset = 0;
                for layer in &mut ctx.layers {
                    offset += layer.read_params(&params[offset..]);
                    layer.zero_grads();
                }
                ctx.reply_tx.send(Reply::Applied).expect("portal closed");
            }
            Ok(Ctrl::Collect) => {
                let mut params = Vec::new();
                for layer in &ctx.layers {
                    layer.write_params(&mut params);
                }
                ctx.reply_tx
                    .send(Reply::Params(params))
                    .expect("portal closed");
            }
            Ok(Ctrl::SetParams(params)) => {
                let mut offset = 0;
                for layer in &mut ctx.layers {
                    offset += layer.read_params(&params[offset..]);
                }
                debug_assert_eq!(offset, params.len());
            }
            Ok(Ctrl::Shutdown) | Err(_) => return,
        }
    }
}

impl PipelineTrainer {
    /// Launches one thread per stage.
    ///
    /// `segments[s]` is the ordered layer list of stage `s`; `k[s]` is the
    /// warmup residency (use `S − s`, the §4.3 bound with negligible
    /// communication, for an in-memory channel transport).
    ///
    /// # Panics
    /// Panics on empty segments or a `k` length mismatch.
    #[must_use]
    pub fn launch(segments: Vec<Vec<Box<dyn Layer>>>, k: Vec<usize>) -> Self {
        let s_count = segments.len();
        assert!(s_count > 0, "PipelineTrainer: need at least one stage");
        assert_eq!(k.len(), s_count, "PipelineTrainer: K length mismatch");
        assert!(k.iter().all(|&x| x >= 1));

        let comm = Arc::new(Mutex::new(CommStats {
            fwd_bytes: vec![0; s_count.saturating_sub(1)],
            bwd_bytes: vec![0; s_count.saturating_sub(1)],
        }));
        let progress = Arc::new(AtomicU64::new(0));

        // Data channels: input into stage 0, activations between stages,
        // gradients between stages (bounded to keep memory honest).
        let (input_tx, first_rx) = unbounded::<Bytes>();
        let mut act_rx = Some(first_rx);
        let mut grad_txs: Vec<Option<Sender<Bytes>>> = vec![None; s_count];
        let mut grad_rxs: Vec<Option<Receiver<Bytes>>> = vec![None; s_count];
        for s in 0..s_count.saturating_sub(1) {
            let (tx, rx) = bounded::<Bytes>(64);
            grad_txs[s + 1] = Some(tx); // stage s+1 sends grads up to s
            grad_rxs[s] = Some(rx);
        }
        let (target_tx, target_rx) = unbounded::<Vec<usize>>();

        let mut stages = Vec::with_capacity(s_count);
        let mut segments = segments;
        for (s, layers) in segments.drain(..).enumerate() {
            assert!(!layers.is_empty(), "PipelineTrainer: stage {s} empty");
            let (ctrl_tx, ctrl_rx) = unbounded::<Ctrl>();
            let (reply_tx, reply_rx) = unbounded::<Reply>();
            let is_last = s == s_count - 1;
            let (downstream_act_tx, next_rx) = if is_last {
                (None, None)
            } else {
                let (tx, rx) = bounded::<Bytes>(64);
                (Some(tx), Some(rx))
            };
            let ctx = StageCtx {
                layers,
                is_last,
                upstream_grad_tx: grad_txs[s].take(),
                input_rx: act_rx.take().expect("input channel"),
                downstream_act_tx,
                grad_rx: grad_rxs[s].take(),
                target_rx: is_last.then(|| target_rx.clone()),
                ctrl_rx,
                reply_tx,
                comm: Arc::clone(&comm),
                progress: Arc::clone(&progress),
                stage_idx: s,
            };
            act_rx = next_rx;
            let handle = std::thread::Builder::new()
                .name(format!("ecofl-stage-{s}"))
                .spawn(move || stage_main(ctx))
                .expect("spawn stage thread");
            stages.push(StageThread {
                ctrl_tx,
                reply_rx,
                handle: Some(handle),
            });
        }

        Self {
            stages,
            input_tx,
            target_tx,
            k,
            comm,
            progress,
        }
    }

    /// Micro-batches whose loss has been computed so far — a lock-free
    /// progress probe for monitoring threads.
    #[must_use]
    pub fn micro_batches_processed(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Number of stages.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Trains one sync-round over `micro_batches` and flushes with plain
    /// SGD at `lr` (gradients averaged over the micro-batch count).
    /// Returns the mean micro-batch loss.
    ///
    /// # Panics
    /// Panics if `micro_batches` is empty or a stage thread died.
    pub fn train_round(&mut self, micro_batches: &[(Tensor, Vec<usize>)], lr: f32) -> f32 {
        let m = micro_batches.len();
        assert!(m > 0, "train_round: need at least one micro-batch");
        for (s, stage) in self.stages.iter().enumerate() {
            stage
                .ctrl_tx
                .send(Ctrl::Round { m, k: self.k[s] })
                .expect("stage alive");
        }
        for (x, targets) in micro_batches {
            self.input_tx.send(encode_tensor(x)).expect("stage 0 alive");
            self.target_tx
                .send(targets.clone())
                .expect("last stage alive");
        }
        let mut mean_loss = 0.0f32;
        for stage in &self.stages {
            match stage.reply_rx.recv().expect("stage alive") {
                Reply::RoundDone { losses } => {
                    if !losses.is_empty() {
                        mean_loss = losses.iter().sum::<f32>() / losses.len() as f32;
                    }
                }
                _ => panic!("unexpected reply during round"),
            }
        }
        // Pipeline flush: synchronized update with 1/M gradient scaling.
        let scale = 1.0 / m as f32;
        for stage in &self.stages {
            stage
                .ctrl_tx
                .send(Ctrl::Apply { lr, scale })
                .expect("stage alive");
        }
        for stage in &self.stages {
            match stage.reply_rx.recv().expect("stage alive") {
                Reply::Applied => {}
                _ => panic!("unexpected reply during apply"),
            }
        }
        mean_loss
    }

    /// Collects the full flat parameter vector (stage order).
    ///
    /// # Panics
    /// Panics if a stage thread died.
    #[must_use]
    pub fn params(&self) -> Vec<f32> {
        let mut all = Vec::new();
        for stage in &self.stages {
            stage.ctrl_tx.send(Ctrl::Collect).expect("stage alive");
            match stage.reply_rx.recv().expect("stage alive") {
                Reply::Params(p) => all.extend(p),
                _ => panic!("unexpected reply during collect"),
            }
        }
        all
    }

    /// Overwrites the full flat parameter vector (stage order).
    ///
    /// # Panics
    /// Panics if a stage thread died.
    pub fn set_params(&mut self, params: &[f32], stage_lens: &[usize]) {
        assert_eq!(stage_lens.len(), self.stages.len());
        let mut offset = 0;
        for (stage, &len) in self.stages.iter().zip(stage_lens) {
            stage
                .ctrl_tx
                .send(Ctrl::SetParams(params[offset..offset + len].to_vec()))
                .expect("stage alive");
            offset += len;
        }
        assert_eq!(offset, params.len(), "set_params: length mismatch");
    }

    /// Snapshot of cross-boundary traffic so far.
    #[must_use]
    pub fn comm_stats(&self) -> (Vec<u64>, Vec<u64>) {
        let c = self.comm.lock();
        (c.fwd_bytes.clone(), c.bwd_bytes.clone())
    }

    /// Stops all stage threads.
    pub fn shutdown(mut self) {
        for stage in &self.stages {
            let _ = stage.ctrl_tx.send(Ctrl::Shutdown);
        }
        for stage in &mut self.stages {
            if let Some(h) = stage.handle.take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for PipelineTrainer {
    fn drop(&mut self) {
        for stage in &self.stages {
            let _ = stage.ctrl_tx.send(Ctrl::Shutdown);
        }
        for stage in &mut self.stages {
            if let Some(h) = stage.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofl_tensor::{Linear, Network, ReLU};
    use ecofl_util::Rng;

    type Segments = Vec<Vec<Box<dyn Layer>>>;

    /// Builds identical layer stacks twice: once as pipeline segments,
    /// once as a monolithic network.
    fn build(seed: u64) -> (Segments, Network, Vec<usize>) {
        let mk = |rng: &mut Rng| -> Vec<Vec<Box<dyn Layer>>> {
            vec![
                vec![
                    Box::new(Linear::new(8, 16, rng)) as Box<dyn Layer>,
                    Box::new(ReLU::new()),
                ],
                vec![
                    Box::new(Linear::new(16, 12, rng)) as Box<dyn Layer>,
                    Box::new(ReLU::new()),
                ],
                vec![Box::new(Linear::new(12, 4, rng)) as Box<dyn Layer>],
            ]
        };
        let mut rng1 = Rng::new(seed);
        let segments = mk(&mut rng1);
        let mut rng2 = Rng::new(seed);
        let reference_layers: Vec<Box<dyn Layer>> = mk(&mut rng2).into_iter().flatten().collect();
        let reference = Network::new(reference_layers);
        let stage_lens = vec![8 * 16 + 16, 16 * 12 + 12, 12 * 4 + 4];
        (segments, reference, stage_lens)
    }

    fn micro_batches(seed: u64, m: usize, bs: usize) -> Vec<(Tensor, Vec<usize>)> {
        let mut rng = Rng::new(seed);
        (0..m)
            .map(|_| {
                let x = Tensor::randn(&[bs, 8], 1.0, &mut rng);
                let y = (0..bs).map(|_| rng.range_usize(0, 4)).collect();
                (x, y)
            })
            .collect()
    }

    #[test]
    fn tensor_codec_round_trip() {
        let mut rng = Rng::new(1);
        let t = Tensor::randn(&[3, 5, 2], 1.0, &mut rng);
        let decoded = decode_tensor(encode_tensor(&t));
        assert_eq!(t, decoded);
    }

    #[test]
    fn pipeline_matches_single_device_exactly() {
        let (segments, mut reference, _) = build(77);
        let k = vec![3, 2, 1];
        let mut trainer = PipelineTrainer::launch(segments, k);
        let batches = micro_batches(5, 6, 4);
        let lr = 0.1;

        // Pipeline round.
        let pipe_loss = trainer.train_round(&batches, lr);

        // Reference: gradient accumulation then one scaled update.
        let mut ref_loss = 0.0;
        reference.zero_grads();
        for (x, y) in &batches {
            ref_loss += reference.train_step(x, y);
        }
        ref_loss /= batches.len() as f32;
        let mut params = reference.params();
        let grads = reference.grads();
        let scale = 1.0 / batches.len() as f32;
        for (p, g) in params.iter_mut().zip(&grads) {
            *p -= lr * g * scale;
        }
        reference.set_params(&params);

        assert!(
            (pipe_loss - ref_loss).abs() < 1e-6,
            "{pipe_loss} vs {ref_loss}"
        );
        let pipe_params = trainer.params();
        assert_eq!(
            pipe_params, params,
            "1F1B-Sync must be bit-identical to gradient accumulation"
        );
        trainer.shutdown();
    }

    #[test]
    fn multiple_rounds_reduce_loss() {
        let (segments, _, _) = build(88);
        let mut trainer = PipelineTrainer::launch(segments, vec![3, 2, 1]);
        // Fixed batches make the loss monotone-ish under SGD.
        let batches = micro_batches(9, 4, 8);
        let first = trainer.train_round(&batches, 0.2);
        let mut last = first;
        for _ in 0..30 {
            last = trainer.train_round(&batches, 0.2);
        }
        assert!(last < first * 0.8, "loss {first} -> {last} should drop");
        trainer.shutdown();
    }

    #[test]
    fn progress_counter_tracks_micro_batches() {
        let (segments, _, _) = build(42);
        let mut trainer = PipelineTrainer::launch(segments, vec![3, 2, 1]);
        assert_eq!(trainer.micro_batches_processed(), 0);
        let _ = trainer.train_round(&micro_batches(1, 5, 4), 0.1);
        assert_eq!(trainer.micro_batches_processed(), 5);
        let _ = trainer.train_round(&micro_batches(2, 3, 4), 0.1);
        assert_eq!(trainer.micro_batches_processed(), 8);
        trainer.shutdown();
    }

    #[test]
    fn comm_stats_track_boundary_traffic() {
        let (segments, _, _) = build(99);
        let mut trainer = PipelineTrainer::launch(segments, vec![3, 2, 1]);
        let batches = micro_batches(2, 3, 4);
        let _ = trainer.train_round(&batches, 0.1);
        let (fwd, bwd) = trainer.comm_stats();
        assert_eq!(fwd.len(), 2);
        // Boundary 0 carries [4,16] activations thrice; boundary 1 [4,12].
        assert!(fwd[0] > 0 && fwd[1] > 0);
        assert!(bwd[0] > 0 && bwd[1] > 0);
        assert!(fwd[0] > fwd[1], "wider boundary moves more bytes");
        trainer.shutdown();
    }

    #[test]
    fn set_params_round_trip() {
        let (segments, _, stage_lens) = build(55);
        let mut trainer = PipelineTrainer::launch(segments, vec![3, 2, 1]);
        let mut params = trainer.params();
        for p in params.iter_mut() {
            *p = 0.5;
        }
        trainer.set_params(&params, &stage_lens);
        assert_eq!(trainer.params(), params);
        trainer.shutdown();
    }

    #[test]
    fn single_stage_pipeline_works() {
        let mut rng = Rng::new(3);
        let segments: Vec<Vec<Box<dyn Layer>>> = vec![vec![Box::new(Linear::new(8, 4, &mut rng))]];
        let mut trainer = PipelineTrainer::launch(segments, vec![1]);
        let batches = micro_batches(4, 2, 4);
        let loss = trainer.train_round(&batches, 0.1);
        assert!(loss.is_finite() && loss > 0.0);
        trainer.shutdown();
    }
}
