//! Multi-threaded 1F1B-Sync pipeline runtime with a supervision tree.
//!
//! Where [`crate::executor`] *simulates* pipeline timing on modelled
//! hardware, this module actually *trains*: each stage is an OS thread
//! owning a contiguous segment of a real `ecofl-tensor` network, and
//! micro-batch activations/gradients flow through MPMC channels,
//! serialized to wire [`Bytes`] exactly as they would cross a network.
//!
//! # Schedule
//!
//! The schedule is the paper's 1F1B-Sync: stage `s` warms up with `K_s`
//! forwards, then strictly alternates backward/forward, and the sync-round
//! ends with a pipeline flush that applies the accumulated gradients.
//! Because gradient accumulation is order-preserving per layer, the
//! resulting parameter updates are **bit-identical** to single-device
//! gradient-accumulation training over the same micro-batches — the
//! schedule changes execution order, never semantics. The tests assert
//! this exactly. Inter-stage channels are bounded by the *receiving*
//! stage's residency `K_s`, so the in-flight micro-batch memory really is
//! limited by the §4.3 (Eq. 3) analysis rather than an arbitrary buffer.
//!
//! # Supervision tree and the never-panic contract
//!
//! The portal (the thread owning [`PipelineTrainer`]) supervises the
//! stage threads. Every stage runs inside a panic-catching wrapper: when
//! a stage dies — a real panic in layer code, an injected [`FaultPlan`]
//! kill, or a channel-disconnect cascade from a dead neighbour — it
//! posts a death note (stage index + what it was doing) to a shared
//! board *before* its channels close, so the first note on the board is
//! always the root cause. Portal-side waits all go through the
//! disconnect-aware bounded [`recv_timeout`] of `ecofl-compat`, so a
//! dead or wedged stage surfaces as
//! [`ExecError::StageDied`] in bounded time instead of a hang.
//!
//! The public runtime API **never panics on a runtime disturbance**:
//! [`PipelineTrainer::train_round`], [`PipelineTrainer::params`],
//! [`PipelineTrainer::set_params`] and [`PipelineTrainer::recover`] all
//! return `Result<_, ExecError>`. (Constructor shape checks — empty
//! segments, `K` arity — remain documented panics: they are programmer
//! errors, not disturbances.) After an error the trainer is *poisoned*:
//! further calls return the stored error until [`PipelineTrainer::recover`]
//! rebuilds it.
//!
//! # Checkpoint / recovery (§4.4 on the real runtime)
//!
//! The portal snapshots the full parameter vector at launch and after
//! every sync-round flush, as a typed [`CheckpointRecord`] carrying a
//! monotone sequence number. With [`RuntimeOptions::store_path`] set,
//! every snapshot is also durably appended to the run store's
//! checkpoint segment, and [`PipelineTrainer::recover`] restores from
//! the store's newest checkpoint instead of the in-memory copy — the
//! two paths are bit-identical by construction (the store holds exactly
//! what `take_checkpoint` encoded), which `tests/fault_injection.rs`
//! asserts. [`stored_checkpoints`] and [`load_checkpoint_at_or_before`]
//! read the same segment offline for point-in-time recovery and
//! cross-run diffing. Recovery tears the broken pipeline down
//! (unblocking and joining every surviving thread), relaunches all
//! stages from the segment factory, restores the checkpoint, and
//! rewinds the round counter — so replaying the interrupted round
//! yields parameters **bit-identical** to an uninterrupted run on the
//! same data (asserted across random stage counts, micro-batch counts
//! and kill points). Recovery needs a way to rebuild dead stages, so it
//! is available from [`PipelineTrainer::launch_supervised`] (which
//! takes a segment factory); plain [`PipelineTrainer::launch`] keeps the
//! old signature and reports [`ExecError::RecoveryUnsupported`].
//!
//! # Observability
//!
//! With [`RuntimeOptions::tracer`] set, the portal records
//! `EventKind::{StageDied, CheckpointTaken, RoundReplayed}` under
//! `Domain::Pipeline`. The runtime executes in real time, so these
//! events carry the sync-round index as their (virtual) timestamp.
//!
//! # Relation to `fl::FlConfig::failure_prob`
//!
//! The FL layer models *client* churn statistically: `failure_prob` is
//! the chance that a whole client (one collaborative pipeline) drops out
//! of a round. [`FaultPlan`] is the same disturbance one level down —
//! a deterministic, seed-driven death of one *stage* inside a pipeline —
//! so the recovery loop tested here is what keeps a client from
//! becoming an `failure_prob` casualty in the first place.
//!
//! [`recv_timeout`]: ecofl_compat::sync::channel::Receiver::recv_timeout

use crate::executor::ExecError;
use crate::schedule::{RtStep, ScheduleKind};
use ecofl_compat::bytes::{Bytes, BytesMut};
use ecofl_compat::sync::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use ecofl_compat::sync::Mutex;
use ecofl_obs::store::CheckpointMeta;
use ecofl_obs::{Counter, Domain, EventKind, Histogram, MetricsHub, RunStore, Tracer};
use ecofl_tensor::{Layer, SoftmaxCrossEntropy, Tensor};
use ecofl_util::Rng;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serializes a tensor (shape + payload) into wire bytes.
#[must_use]
pub fn encode_tensor(t: &Tensor) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + t.shape().len() * 8 + t.len() * 4);
    buf.put_u64_le(t.shape().len() as u64);
    for &d in t.shape() {
        buf.put_u64_le(d as u64);
    }
    for &x in t.data() {
        buf.put_f32_le(x);
    }
    buf.freeze()
}

/// Deserializes a tensor produced by [`encode_tensor`].
///
/// # Panics
/// Panics on a malformed buffer.
#[must_use]
pub fn decode_tensor(mut bytes: Bytes) -> Tensor {
    let rank = bytes.get_u64_le() as usize;
    let shape: Vec<usize> = (0..rank).map(|_| bytes.get_u64_le() as usize).collect();
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(bytes.get_f32_le());
    }
    Tensor::from_vec(data, &shape)
}

/// Bytes moved across each stage boundary, shared with the portal.
#[derive(Debug, Default)]
pub struct CommStats {
    /// Forward (activation) bytes per boundary.
    pub fwd_bytes: Vec<u64>,
    /// Backward (gradient) bytes per boundary.
    pub bwd_bytes: Vec<u64>,
}

/// One deterministic stage kill: stage `stage` dies immediately before
/// the forward pass of micro-batch `micro` in sync-round `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPoint {
    /// Stage to kill.
    pub stage: usize,
    /// Sync-round (0-based, counted over the trainer's lifetime) in
    /// which the kill fires.
    pub round: u64,
    /// Micro-batch index (0-based within the round) whose forward the
    /// stage dies before. A `micro >= m` never fires.
    pub micro: usize,
}

/// Deterministic fault-injection plan for the §4.4 recovery loop: which
/// stages die, when. Injected deaths are clean thread exits (no panic
/// output), reported exactly like real crashes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled kills.
    pub kills: Vec<KillPoint>,
}

impl FaultPlan {
    /// No injected faults.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A single kill at the given point.
    #[must_use]
    pub fn kill_at(stage: usize, round: u64, micro: usize) -> Self {
        Self {
            kills: vec![KillPoint {
                stage,
                round,
                micro,
            }],
        }
    }

    /// A single seed-driven kill drawn uniformly over `stages × rounds ×
    /// m` — the deterministic analogue of the FL layer's statistical
    /// `failure_prob`.
    #[must_use]
    pub fn from_seed(seed: u64, stages: usize, rounds: u64, m: usize) -> Self {
        assert!(
            stages > 0 && rounds > 0 && m > 0,
            "FaultPlan::from_seed: empty domain"
        );
        let mut rng = Rng::new(seed);
        Self::kill_at(
            rng.range_usize(0, stages),
            rng.range_usize(0, rounds as usize) as u64,
            rng.range_usize(0, m),
        )
    }

    /// Kill points scheduled for one stage, as `(round, micro)` pairs.
    fn for_stage(&self, stage: usize) -> Vec<(u64, usize)> {
        self.kills
            .iter()
            .filter(|k| k.stage == stage)
            .map(|k| (k.round, k.micro))
            .collect()
    }
}

/// Supervision knobs of the runtime.
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// Upper bound on any single portal-side wait for a stage reply.
    /// Dead stages are detected much earlier via channel disconnect;
    /// this bound catches genuinely wedged (live but silent) stages.
    pub recv_timeout: Duration,
    /// Deterministic fault injection (empty by default).
    pub fault_plan: FaultPlan,
    /// Failure/recovery event sink (`StageDied`, `CheckpointTaken`,
    /// `RoundReplayed` under `Domain::Pipeline`, timestamped by round).
    pub tracer: Option<Tracer>,
    /// Run-store directory for durable checkpoints. When set, every
    /// checkpoint is also appended to the store's checkpoint segment
    /// under a monotone sequence number, and [`PipelineTrainer::recover`]
    /// restores from the store instead of the in-memory snapshot. The
    /// store is opened (or created) at launch; opening an existing
    /// store continues its sequence numbering, enabling cross-run
    /// point-in-time recovery and diffing.
    pub store_path: Option<PathBuf>,
    /// Pipeline schedule the stage threads interpret per round. The
    /// runtime is round-synchronous, so every schedule collapses to its
    /// round-synchronous step program (see
    /// [`ScheduleKind::runtime_stream`]); which gradients accumulate is
    /// unchanged, so round results are bit-identical across schedules.
    pub schedule: ScheduleKind,
    /// Streaming metrics hub. When set, the runtime records *real
    /// wall-clock* observations into `rt_*` metrics: per-stage
    /// forward/backward compute nanoseconds, portal reply-wait
    /// nanoseconds (via the timed `recv_timeout` hook), checkpoint /
    /// restore latency, and counters for stage deaths, checkpoints,
    /// restores and reply-wait timeouts. The hub only *observes* — the
    /// parameter stream and the trace are bit-identical with or
    /// without it (asserted by `tests/metrics_perturbation.rs`).
    pub metrics: Option<MetricsHub>,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        Self {
            recv_timeout: Duration::from_secs(30),
            fault_plan: FaultPlan::none(),
            tracer: None,
            store_path: None,
            schedule: ScheduleKind::OneFOneBSync,
            metrics: None,
        }
    }
}

/// Portal-side `rt_*` metric handles, resolved once at launch so the
/// hot paths never touch the hub's registry maps.
struct RtMetrics {
    recv_wait_ns: Histogram,
    recv_timeouts: Counter,
    stage_deaths: Counter,
    checkpoints: Counter,
    checkpoint_ns: Histogram,
    restores: Counter,
    restore_ns: Histogram,
    round_ns: Histogram,
}

impl RtMetrics {
    fn new(hub: &MetricsHub) -> Self {
        Self {
            recv_wait_ns: hub.histogram("rt_recv_wait_ns"),
            recv_timeouts: hub.counter("rt_recv_timeouts"),
            stage_deaths: hub.counter("rt_stage_deaths"),
            checkpoints: hub.counter("rt_checkpoints"),
            checkpoint_ns: hub.histogram("rt_checkpoint_ns"),
            restores: hub.counter("rt_restores"),
            restore_ns: hub.histogram("rt_restore_ns"),
            round_ns: hub.histogram("rt_round_ns"),
        }
    }
}

/// Stage-side metric handles (cloned into every stage thread).
#[derive(Clone)]
struct StageMetrics {
    fwd_compute_ns: Histogram,
    bwd_compute_ns: Histogram,
}

impl StageMetrics {
    fn new(hub: &MetricsHub) -> Self {
        Self {
            fwd_compute_ns: hub.histogram("rt_fwd_compute_ns"),
            bwd_compute_ns: hub.histogram("rt_bwd_compute_ns"),
        }
    }
}

/// Rebuilds the stage segments after a crash; must return the same
/// layer architecture every call (parameters are overwritten from the
/// checkpoint, so their values are irrelevant).
pub type SegmentFactory = Box<dyn Fn() -> Vec<Vec<Box<dyn Layer>>>>;

enum Ctrl {
    /// Run one sync-round of `m` micro-batches with warmup residency `k`
    /// under schedule `sched`. `round` is the trainer-lifetime round
    /// index (drives fault injection).
    Round {
        m: usize,
        k: usize,
        round: u64,
        sched: ScheduleKind,
    },
    /// Apply accumulated gradients: SGD with `lr`, gradients scaled by
    /// `scale`, then zero gradients.
    Apply {
        lr: f32,
        scale: f32,
    },
    /// Send this stage's flat parameters to the portal.
    Collect,
    /// Overwrite this stage's parameters (acked with `Reply::SetDone`).
    SetParams(Vec<f32>),
    Shutdown,
}

enum Reply {
    Params(Vec<f32>),
    RoundDone {
        losses: Vec<f32>,
    },
    Applied,
    /// Ack for `SetParams`: the stage's own parameter count and the
    /// length it was handed. On mismatch nothing was applied.
    SetDone {
        expected: usize,
        got: usize,
    },
}

/// Why a stage thread exited abnormally.
enum StageFail {
    /// A `FaultPlan` kill fired.
    Killed { round: u64, micro: usize },
    /// A peer (portal or neighbour stage) disconnected mid-protocol.
    Disconnect { during: &'static str },
}

impl StageFail {
    fn describe(&self) -> String {
        match self {
            StageFail::Killed { round, micro } => {
                format!("injected kill before forward of micro-batch {micro} in round {round}")
            }
            StageFail::Disconnect { during } => format!("{during} (peer disconnected)"),
        }
    }
}

/// One entry on the shared death board. The first entry is the root
/// cause: a dying stage posts its note *before* dropping its channels,
/// so cascade victims always file later.
struct DeathNote {
    stage: usize,
    during: String,
}

type DeathBoard = Arc<Mutex<Vec<DeathNote>>>;

struct StageThread {
    ctrl_tx: Sender<Ctrl>,
    reply_rx: Receiver<Reply>,
    handle: Option<JoinHandle<()>>,
}

/// A running multi-threaded pipeline trainer (the "smart home"
/// prototype), supervised and crash-recoverable — see the
/// [module docs](self) for the supervision and checkpoint contract.
pub struct PipelineTrainer {
    stages: Vec<StageThread>,
    input_tx: Sender<Bytes>,
    target_tx: Sender<Vec<usize>>,
    k: Vec<usize>,
    comm: Arc<Mutex<CommStats>>,
    /// Micro-batches whose backward completed at the last stage,
    /// including work from rounds later aborted by a fault. Relaxed
    /// ordering suffices: it is a monitoring counter, not a
    /// synchronization point.
    progress: Arc<AtomicU64>,
    deaths: DeathBoard,
    opts: RuntimeOptions,
    factory: Option<SegmentFactory>,
    /// Index of the next sync-round.
    round: u64,
    checkpoint: CheckpointRecord,
    /// Sequence number the next checkpoint will carry. Resumes from the
    /// store's last stored number + 1 when a store is configured.
    next_ckpt_seq: u64,
    store: Option<RunStore>,
    failure: Option<ExecError>,
    replaying: bool,
    metrics: Option<RtMetrics>,
    stage_metrics: Option<StageMetrics>,
}

/// Wire-format version of [`CheckpointRecord::encode`].
pub const CHECKPOINT_VERSION: u32 = 1;

/// A versioned §4.4 parameter snapshot: the full flat parameter vector
/// with its per-stage split, tagged by a store-wide monotone sequence
/// number and the sync-round it captured. Taken at launch and after
/// every sync-round flush; with [`RuntimeOptions::store_path`] set,
/// each one is durably appended to the run store, where
/// [`stored_checkpoints`] / [`load_checkpoint_at_or_before`] give
/// point-in-time recovery and cross-run diffing.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRecord {
    /// Monotone sequence number, unique within a store across runs.
    pub seq: u64,
    /// Sync-round the snapshot captured (recovery rewinds here).
    pub round: u64,
    /// Flat parameter count per stage, in stage order.
    pub stage_lens: Vec<usize>,
    /// The full flat parameter vector (stage order).
    pub params: Vec<f32>,
}

impl CheckpointRecord {
    /// Serializes the record: a version/seq/round/lens header followed
    /// by the parameters as an [`encode_tensor`] rank-1 tensor.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf =
            BytesMut::with_capacity(32 + self.stage_lens.len() * 8 + self.params.len() * 4);
        buf.put_u32_le(CHECKPOINT_VERSION);
        buf.put_u64_le(self.seq);
        buf.put_u64_le(self.round);
        buf.put_u64_le(self.stage_lens.len() as u64);
        for &len in &self.stage_lens {
            buf.put_u64_le(len as u64);
        }
        let tensor = Tensor::from_vec(self.params.clone(), &[self.params.len()]);
        buf.put_slice(encode_tensor(&tensor).chunk());
        buf.freeze().chunk().to_vec()
    }

    /// Deserializes an [`encode`](Self::encode) payload.
    ///
    /// # Errors
    /// [`ExecError::CheckpointStore`] on a truncated buffer, unknown
    /// version, or a parameter tensor inconsistent with the header.
    pub fn decode(payload: &[u8]) -> Result<CheckpointRecord, ExecError> {
        let bad = |detail: String| ExecError::CheckpointStore { detail };
        let mut bytes = Bytes::from_vec(payload.to_vec());
        if bytes.len() < 28 {
            return Err(bad(format!(
                "checkpoint payload truncated ({} bytes)",
                payload.len()
            )));
        }
        let version = bytes.get_u32_le();
        if version != CHECKPOINT_VERSION {
            return Err(bad(format!("unknown checkpoint version {version}")));
        }
        let seq = bytes.get_u64_le();
        let round = bytes.get_u64_le();
        let nstages = bytes.get_u64_le() as usize;
        if bytes.len() < nstages * 8 {
            return Err(bad(format!("checkpoint header claims {nstages} stages")));
        }
        let stage_lens: Vec<usize> = (0..nstages).map(|_| bytes.get_u64_le() as usize).collect();
        let total: usize = stage_lens.iter().sum();
        // encode_tensor of a rank-1 [n] tensor is 8 (rank) + 8 (dim) +
        // 4n bytes; validate before decode_tensor, which panics.
        if bytes.len() != 16 + 4 * total {
            return Err(bad(format!(
                "checkpoint params region is {} bytes, expected {} for {total} parameters",
                bytes.len(),
                16 + 4 * total
            )));
        }
        let tensor = decode_tensor(bytes);
        if tensor.shape() != [total] {
            return Err(bad(format!(
                "checkpoint tensor shape {:?} does not match stage lens total {total}",
                tensor.shape()
            )));
        }
        Ok(CheckpointRecord {
            seq,
            round,
            stage_lens,
            params: tensor.data().to_vec(),
        })
    }

    /// The parameter vector split back into per-stage slices.
    ///
    /// # Panics
    /// Panics if `stage_lens` does not sum to `params.len()` (a decoded
    /// record is always consistent).
    #[must_use]
    pub fn stage_params(&self) -> Vec<Vec<f32>> {
        let total: usize = self.stage_lens.iter().sum();
        assert_eq!(total, self.params.len(), "inconsistent checkpoint record");
        let mut out = Vec::with_capacity(self.stage_lens.len());
        let mut offset = 0;
        for &len in &self.stage_lens {
            out.push(self.params[offset..offset + len].to_vec());
            offset += len;
        }
        out
    }
}

fn store_err(e: std::io::Error) -> ExecError {
    ExecError::CheckpointStore {
        detail: e.to_string(),
    }
}

/// Lists `(seq, round)` of every checkpoint in the store at `dir`.
///
/// # Errors
/// [`ExecError::CheckpointStore`] if the store cannot be opened.
pub fn stored_checkpoints(dir: &Path) -> Result<Vec<CheckpointMeta>, ExecError> {
    Ok(RunStore::open(dir).map_err(store_err)?.checkpoint_metas())
}

/// Loads the newest checkpoint with sequence number ≤ `seq` from the
/// store at `dir` — the point-in-time half of §4.4 recovery, also
/// usable across runs (e.g. for diffing two checkpoints).
///
/// # Errors
/// [`ExecError::CheckpointStore`] on open/read/decode failure.
pub fn load_checkpoint_at_or_before(
    dir: &Path,
    seq: u64,
) -> Result<Option<CheckpointRecord>, ExecError> {
    let store = RunStore::open(dir).map_err(store_err)?;
    match store
        .latest_checkpoint_at_or_before(seq)
        .map_err(store_err)?
    {
        Some((_, payload)) => Ok(Some(CheckpointRecord::decode(&payload)?)),
        None => Ok(None),
    }
}

/// Loads the newest checkpoint from the store at `dir`.
///
/// # Errors
/// [`ExecError::CheckpointStore`] on open/read/decode failure.
pub fn load_latest_checkpoint(dir: &Path) -> Result<Option<CheckpointRecord>, ExecError> {
    load_checkpoint_at_or_before(dir, u64::MAX)
}

struct StageCtx {
    layers: Vec<Box<dyn Layer>>,
    is_last: bool,
    upstream_grad_tx: Option<Sender<Bytes>>,
    input_rx: Receiver<Bytes>,
    downstream_act_tx: Option<Sender<Bytes>>,
    grad_rx: Option<Receiver<Bytes>>,
    target_rx: Option<Receiver<Vec<usize>>>,
    ctrl_rx: Receiver<Ctrl>,
    reply_tx: Sender<Reply>,
    comm: Arc<Mutex<CommStats>>,
    progress: Arc<AtomicU64>,
    stage_idx: usize,
    /// `(round, micro)` kill points for this stage.
    kills: Vec<(u64, usize)>,
    deaths: DeathBoard,
    metrics: Option<StageMetrics>,
}

impl StageCtx {
    fn kill_due(&self, round: u64, micro: usize) -> bool {
        self.kills.iter().any(|&(r, n)| r == round && n == micro)
    }
}

fn do_fwd(ctx: &mut StageCtx, pending_logits: &mut VecDeque<Tensor>) -> Result<(), StageFail> {
    let bytes = ctx.input_rx.recv().map_err(|_| StageFail::Disconnect {
        during: "activation receive",
    })?;
    let x = decode_tensor(bytes);
    // Compute-only window: the blocking receive above is channel-wait,
    // not compute, and is excluded from the histogram.
    let t0 = ctx.metrics.as_ref().map(|_| Instant::now());
    let mut out = x;
    for layer in &mut ctx.layers {
        out = layer.forward(&out);
    }
    if let (Some(m), Some(t0)) = (&ctx.metrics, t0) {
        m.fwd_compute_ns.record(t0.elapsed().as_nanos() as f64);
    }
    if ctx.is_last {
        pending_logits.push_back(out);
    } else {
        let encoded = encode_tensor(&out);
        ctx.comm.lock().fwd_bytes[ctx.stage_idx] += encoded.len() as u64;
        ctx.downstream_act_tx
            .as_ref()
            .expect("non-last stage has downstream")
            .send(encoded)
            .map_err(|_| StageFail::Disconnect {
                during: "activation send",
            })?;
    }
    Ok(())
}

fn do_bwd(
    ctx: &mut StageCtx,
    head: &mut SoftmaxCrossEntropy,
    pending_logits: &mut VecDeque<Tensor>,
    losses: &mut Vec<f32>,
) -> Result<(), StageFail> {
    let mut grad = if ctx.is_last {
        let logits = pending_logits.pop_front().expect("logit for backward");
        let targets = ctx
            .target_rx
            .as_ref()
            .expect("last stage has targets")
            .recv()
            .map_err(|_| StageFail::Disconnect {
                during: "target receive",
            })?;
        let (loss, grad) = head.loss_and_grad(&logits, &targets);
        losses.push(loss);
        ctx.progress.fetch_add(1, Ordering::Relaxed);
        grad
    } else {
        let bytes = ctx
            .grad_rx
            .as_ref()
            .expect("non-last stage has grad channel")
            .recv()
            .map_err(|_| StageFail::Disconnect {
                during: "gradient receive",
            })?;
        decode_tensor(bytes)
    };
    let t0 = ctx.metrics.as_ref().map(|_| Instant::now());
    for layer in ctx.layers.iter_mut().rev() {
        grad = layer.backward(&grad);
    }
    if let (Some(m), Some(t0)) = (&ctx.metrics, t0) {
        m.bwd_compute_ns.record(t0.elapsed().as_nanos() as f64);
    }
    if let Some(tx) = &ctx.upstream_grad_tx {
        let encoded = encode_tensor(&grad);
        ctx.comm.lock().bwd_bytes[ctx.stage_idx - 1] += encoded.len() as u64;
        tx.send(encoded).map_err(|_| StageFail::Disconnect {
            during: "gradient send",
        })?;
    }
    Ok(())
}

/// The stage protocol loop. `Ok(())` is a clean shutdown (explicit
/// `Ctrl::Shutdown` or the portal dropping the control channel);
/// `Err(_)` is a death the wrapper reports to the board.
fn stage_loop(ctx: &mut StageCtx) -> Result<(), StageFail> {
    let mut head = SoftmaxCrossEntropy::new();
    // Logits awaiting their backward at the last stage (FIFO).
    let mut pending_logits: VecDeque<Tensor> = VecDeque::new();
    // Own flat parameter count, for `SetParams` length validation.
    let own_params = {
        let mut scratch = Vec::new();
        for layer in &ctx.layers {
            layer.write_params(&mut scratch);
        }
        scratch.len()
    };

    loop {
        match ctx.ctrl_rx.recv() {
            Ok(Ctrl::Round { m, k, round, sched }) => {
                let mut losses = Vec::new();
                // Interpret the schedule's step program (for 1F1B: warmup
                // with K forwards, then alternate BP/FP, drain remaining
                // backwards). Ordering within the round is ultimately
                // enforced by channel data availability; the program fixes
                // the verb sequence and the fault-injection points, which
                // fire before each forward.
                let mut fp_done = 0usize;
                for step in sched.runtime_stream(m, k) {
                    match step {
                        RtStep::Fwd => {
                            if ctx.kill_due(round, fp_done) {
                                return Err(StageFail::Killed {
                                    round,
                                    micro: fp_done,
                                });
                            }
                            do_fwd(ctx, &mut pending_logits)?;
                            fp_done += 1;
                        }
                        RtStep::Bwd => {
                            do_bwd(ctx, &mut head, &mut pending_logits, &mut losses)?;
                        }
                    }
                }
                ctx.reply_tx
                    .send(Reply::RoundDone { losses })
                    .map_err(|_| StageFail::Disconnect {
                        during: "round-done reply",
                    })?;
            }
            Ok(Ctrl::Apply { lr, scale }) => {
                // Pipeline flush: local SGD on the accumulated gradients.
                let mut params = Vec::new();
                let mut grads = Vec::new();
                for layer in &ctx.layers {
                    layer.write_params(&mut params);
                    layer.write_grads(&mut grads);
                }
                for (p, g) in params.iter_mut().zip(&grads) {
                    *p -= lr * g * scale;
                }
                let mut offset = 0;
                for layer in &mut ctx.layers {
                    offset += layer.read_params(&params[offset..]);
                    layer.zero_grads();
                }
                ctx.reply_tx
                    .send(Reply::Applied)
                    .map_err(|_| StageFail::Disconnect {
                        during: "apply reply",
                    })?;
            }
            Ok(Ctrl::Collect) => {
                let mut params = Vec::new();
                for layer in &ctx.layers {
                    layer.write_params(&mut params);
                }
                ctx.reply_tx
                    .send(Reply::Params(params))
                    .map_err(|_| StageFail::Disconnect {
                        during: "params reply",
                    })?;
            }
            Ok(Ctrl::SetParams(params)) => {
                let got = params.len();
                if got == own_params {
                    let mut offset = 0;
                    for layer in &mut ctx.layers {
                        offset += layer.read_params(&params[offset..]);
                    }
                    assert_eq!(offset, got, "layer param accounting diverged");
                }
                // On mismatch nothing was applied — no stale-tail
                // corruption; the portal turns the ack into a typed error.
                ctx.reply_tx
                    .send(Reply::SetDone {
                        expected: own_params,
                        got,
                    })
                    .map_err(|_| StageFail::Disconnect {
                        during: "set-params ack",
                    })?;
            }
            Ok(Ctrl::Shutdown) | Err(_) => return Ok(()),
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic payload>".to_string())
    }
}

/// Thread body: runs the protocol loop under `catch_unwind` and posts a
/// death note before the context (and with it every channel endpoint)
/// drops, so neighbours can only observe the disconnect *after* the
/// root cause is on the board.
fn stage_thread(mut ctx: StageCtx) {
    let outcome = catch_unwind(AssertUnwindSafe(|| stage_loop(&mut ctx)));
    let during = match outcome {
        Ok(Ok(())) => None,
        Ok(Err(fail)) => Some(fail.describe()),
        Err(payload) => Some(format!("panic: {}", panic_message(payload.as_ref()))),
    };
    if let Some(during) = during {
        ctx.deaths.lock().push(DeathNote {
            stage: ctx.stage_idx,
            during,
        });
    }
}

/// Everything `spawn_stages` wires up.
struct Wiring {
    stages: Vec<StageThread>,
    input_tx: Sender<Bytes>,
    target_tx: Sender<Vec<usize>>,
}

/// Builds the channel topology and spawns one thread per stage.
///
/// Data channels between stages are bounded by the *receiving* stage's
/// residency: the activation channel into stage `s+1` holds at most
/// `k[s+1]` micro-batches and the gradient channel back into stage `s`
/// at most `k[s]`, so in-flight memory is governed by the §4.3 `K_s`
/// bound. The portal-side input/target channels stay unbounded — the
/// portal owns the round's batches either way, and a bounded feed would
/// let a dead stage 0 wedge the portal inside `send`.
fn spawn_stages(
    segments: Vec<Vec<Box<dyn Layer>>>,
    k: &[usize],
    comm: &Arc<Mutex<CommStats>>,
    progress: &Arc<AtomicU64>,
    deaths: &DeathBoard,
    fault_plan: &FaultPlan,
    metrics: Option<&StageMetrics>,
) -> Wiring {
    let s_count = segments.len();
    let (input_tx, first_rx) = unbounded::<Bytes>();
    let mut act_rx = Some(first_rx);
    let mut grad_txs: Vec<Option<Sender<Bytes>>> = vec![None; s_count];
    let mut grad_rxs: Vec<Option<Receiver<Bytes>>> = vec![None; s_count];
    for s in 0..s_count.saturating_sub(1) {
        let (tx, rx) = bounded::<Bytes>(k[s]);
        grad_txs[s + 1] = Some(tx); // stage s+1 sends grads up to s
        grad_rxs[s] = Some(rx);
    }
    let (target_tx, target_rx) = unbounded::<Vec<usize>>();

    let mut stages = Vec::with_capacity(s_count);
    let mut segments = segments;
    for (s, layers) in segments.drain(..).enumerate() {
        assert!(!layers.is_empty(), "PipelineTrainer: stage {s} empty");
        let (ctrl_tx, ctrl_rx) = unbounded::<Ctrl>();
        let (reply_tx, reply_rx) = unbounded::<Reply>();
        let is_last = s == s_count - 1;
        let (downstream_act_tx, next_rx) = if is_last {
            (None, None)
        } else {
            let (tx, rx) = bounded::<Bytes>(k[s + 1]);
            (Some(tx), Some(rx))
        };
        let ctx = StageCtx {
            layers,
            is_last,
            upstream_grad_tx: grad_txs[s].take(),
            input_rx: act_rx.take().expect("input channel"),
            downstream_act_tx,
            grad_rx: grad_rxs[s].take(),
            target_rx: is_last.then(|| target_rx.clone()),
            ctrl_rx,
            reply_tx,
            comm: Arc::clone(comm),
            progress: Arc::clone(progress),
            stage_idx: s,
            kills: fault_plan.for_stage(s),
            deaths: Arc::clone(deaths),
            metrics: metrics.cloned(),
        };
        act_rx = next_rx;
        let handle = std::thread::Builder::new()
            .name(format!("ecofl-stage-{s}"))
            .spawn(move || stage_thread(ctx))
            .expect("spawn stage thread");
        stages.push(StageThread {
            ctrl_tx,
            reply_rx,
            handle: Some(handle),
        });
    }

    Wiring {
        stages,
        input_tx,
        target_tx,
    }
}

impl PipelineTrainer {
    /// Launches one thread per stage with default supervision and no
    /// fault injection. Kept for callers that own their segments
    /// directly; such a trainer cannot [`recover`](Self::recover)
    /// (there is no factory to rebuild dead stages from).
    ///
    /// `segments[s]` is the ordered layer list of stage `s`; `k[s]` is the
    /// warmup residency (use `S − s`, the §4.3 bound with negligible
    /// communication, for an in-memory channel transport).
    ///
    /// # Panics
    /// Panics on empty segments, a `k` length mismatch, or a stage dying
    /// during launch.
    #[must_use]
    pub fn launch(segments: Vec<Vec<Box<dyn Layer>>>, k: Vec<usize>) -> Self {
        Self::build(segments, k, RuntimeOptions::default(), None)
            .expect("PipelineTrainer::launch: stage died during launch")
    }

    /// Launches a supervised, crash-recoverable trainer: `factory()`
    /// builds the stage segments now and again on every
    /// [`recover`](Self::recover).
    ///
    /// # Errors
    /// [`ExecError::StageDied`] if a stage dies before the initial
    /// checkpoint completes (possible with a `FaultPlan`, pathological
    /// otherwise).
    ///
    /// # Panics
    /// Panics on empty segments or a `k` length mismatch (programmer
    /// errors, same contract as [`launch`](Self::launch)).
    pub fn launch_supervised(
        factory: SegmentFactory,
        k: Vec<usize>,
        opts: RuntimeOptions,
    ) -> Result<Self, ExecError> {
        let segments = factory();
        Self::build(segments, k, opts, Some(factory))
    }

    fn build(
        segments: Vec<Vec<Box<dyn Layer>>>,
        k: Vec<usize>,
        opts: RuntimeOptions,
        factory: Option<SegmentFactory>,
    ) -> Result<Self, ExecError> {
        let s_count = segments.len();
        assert!(s_count > 0, "PipelineTrainer: need at least one stage");
        assert_eq!(k.len(), s_count, "PipelineTrainer: K length mismatch");
        assert!(k.iter().all(|&x| x >= 1));

        let comm = Arc::new(Mutex::new(CommStats {
            fwd_bytes: vec![0; s_count.saturating_sub(1)],
            bwd_bytes: vec![0; s_count.saturating_sub(1)],
        }));
        let progress = Arc::new(AtomicU64::new(0));
        let deaths: DeathBoard = Arc::new(Mutex::new(Vec::new()));
        // Open the run store before spawning anything: a bad path fails
        // the launch with a typed error instead of a mid-round surprise.
        let store = match &opts.store_path {
            Some(dir) => Some(RunStore::open_or_create(dir).map_err(store_err)?),
            None => None,
        };
        let next_ckpt_seq = store
            .as_ref()
            .and_then(|s| s.checkpoint_metas().last().map(|m| m.seq + 1))
            .unwrap_or(0);
        let metrics = opts.metrics.as_ref().map(RtMetrics::new);
        let stage_metrics = opts.metrics.as_ref().map(StageMetrics::new);
        let wiring = spawn_stages(
            segments,
            &k,
            &comm,
            &progress,
            &deaths,
            &opts.fault_plan,
            stage_metrics.as_ref(),
        );

        let mut trainer = Self {
            stages: wiring.stages,
            input_tx: wiring.input_tx,
            target_tx: wiring.target_tx,
            k,
            comm,
            progress,
            deaths,
            opts,
            factory,
            round: 0,
            checkpoint: CheckpointRecord {
                seq: 0,
                round: 0,
                stage_lens: Vec::new(),
                params: Vec::new(),
            },
            next_ckpt_seq,
            store,
            failure: None,
            replaying: false,
            metrics,
            stage_metrics,
        };
        // Checkpoint 0: the pristine launch parameters, so a crash in the
        // very first round is recoverable too.
        trainer.take_checkpoint()?;
        Ok(trainer)
    }

    /// Micro-batches whose loss has been computed so far — a lock-free
    /// progress probe for monitoring threads. Monotone across recoveries
    /// and includes work from rounds later aborted by a fault.
    #[must_use]
    pub fn micro_batches_processed(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Number of stages.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Index of the next sync-round (also how many rounds completed).
    #[must_use]
    pub fn rounds_completed(&self) -> u64 {
        self.round
    }

    /// Round of the last parameter checkpoint (the round [`recover`]
    /// rewinds to).
    ///
    /// [`recover`]: Self::recover
    #[must_use]
    pub fn checkpoint_round(&self) -> u64 {
        self.checkpoint.round
    }

    /// The last parameter checkpoint, as a typed record.
    #[must_use]
    pub fn checkpoint(&self) -> &CheckpointRecord {
        &self.checkpoint
    }

    /// The stored failure, if the trainer is poisoned.
    #[must_use]
    pub fn failure(&self) -> Option<&ExecError> {
        self.failure.as_ref()
    }

    /// Builds the `StageDied` error for a wait on stage `s` that ended
    /// without a reply: the root cause is the *first* note on the death
    /// board; an empty board means the stage is alive but silent
    /// (wedged), attributed to `s` itself.
    fn death_error(&self, s: usize, during: &str) -> ExecError {
        let board = self.deaths.lock();
        if let Some(first) = board.first() {
            ExecError::StageDied {
                stage: first.stage,
                during: first.during.clone(),
            }
        } else {
            ExecError::StageDied {
                stage: s,
                during: format!("{during} (no reply within {:?})", self.opts.recv_timeout),
            }
        }
    }

    /// Bounded, disconnect-aware wait for a reply from stage `s`. With
    /// a hub attached, the wall-clock time spent blocked is recorded
    /// into `rt_recv_wait_ns` (and `rt_recv_timeouts` counts waits that
    /// exhausted [`RuntimeOptions::recv_timeout`]).
    fn recv_reply(&self, s: usize, during: &str) -> Result<Reply, ExecError> {
        let (res, waited) = self.stages[s]
            .reply_rx
            .recv_timeout_timed(self.opts.recv_timeout);
        if let Some(m) = &self.metrics {
            m.recv_wait_ns.record(waited.as_nanos() as f64);
            if matches!(res, Err(RecvTimeoutError::Timeout)) {
                m.recv_timeouts.inc(1);
            }
        }
        res.map_err(|_| self.death_error(s, during))
    }

    /// Poisons the trainer and reports the failure to the tracer.
    fn fail(&mut self, err: ExecError) -> ExecError {
        if let (Some(m), ExecError::StageDied { .. }) = (&self.metrics, &err) {
            m.stage_deaths.inc(1);
        }
        if let (Some(tr), ExecError::StageDied { stage, .. }) = (&self.opts.tracer, &err) {
            tr.event(
                Domain::Pipeline,
                EventKind::StageDied,
                *stage,
                self.round as f64,
                0.0,
            );
        }
        self.failure = Some(err.clone());
        err
    }

    /// Collects all stage parameters into a fresh checkpoint.
    fn take_checkpoint(&mut self) -> Result<(), ExecError> {
        let t0 = Instant::now();
        for (s, stage) in self.stages.iter().enumerate() {
            if stage.ctrl_tx.send(Ctrl::Collect).is_err() {
                let e = self.death_error(s, "checkpoint collect dispatch");
                return Err(self.fail(e));
            }
        }
        let mut stage_params = Vec::with_capacity(self.stages.len());
        for s in 0..self.stages.len() {
            match self.recv_reply(s, "checkpoint collect") {
                Ok(Reply::Params(p)) => stage_params.push(p),
                Ok(_) => {
                    let e = ExecError::StageDied {
                        stage: s,
                        during: "checkpoint collect (unexpected reply)".into(),
                    };
                    return Err(self.fail(e));
                }
                Err(e) => return Err(self.fail(e)),
            }
        }
        let stage_lens: Vec<usize> = stage_params.iter().map(Vec::len).collect();
        let params: Vec<f32> = stage_params.into_iter().flatten().collect();
        self.checkpoint = CheckpointRecord {
            seq: self.next_ckpt_seq,
            round: self.round,
            stage_lens,
            params,
        };
        self.next_ckpt_seq += 1;
        if let Some(store) = &mut self.store {
            // Durability point: append_checkpoint seals the segment, so
            // the snapshot survives a portal crash from here on.
            let payload = self.checkpoint.encode();
            if let Err(e) = store.append_checkpoint(self.checkpoint.seq, self.round, &payload) {
                return Err(self.fail(store_err(e)));
            }
        }
        if let Some(tr) = &self.opts.tracer {
            tr.event(
                Domain::Pipeline,
                EventKind::CheckpointTaken,
                0,
                self.round as f64,
                self.round as f64,
            );
        }
        if let Some(m) = &self.metrics {
            m.checkpoints.inc(1);
            m.checkpoint_ns.record(t0.elapsed().as_nanos() as f64);
        }
        Ok(())
    }

    /// Trains one sync-round over `micro_batches` and flushes with plain
    /// SGD at `lr` (gradients averaged over the micro-batch count), then
    /// checkpoints the post-flush parameters. Returns the mean
    /// micro-batch loss, computed from the last stage's per-micro-batch
    /// losses.
    ///
    /// # Errors
    /// [`ExecError::StageDied`] if any stage dies (or stops replying for
    /// longer than [`RuntimeOptions::recv_timeout`]) during the round;
    /// the trainer is then poisoned until [`recover`](Self::recover).
    ///
    /// # Panics
    /// Panics if `micro_batches` is empty (programmer error, not a
    /// runtime disturbance).
    pub fn train_round(
        &mut self,
        micro_batches: &[(Tensor, Vec<usize>)],
        lr: f32,
    ) -> Result<f32, ExecError> {
        if let Some(e) = &self.failure {
            return Err(e.clone());
        }
        let m = micro_batches.len();
        assert!(m > 0, "train_round: need at least one micro-batch");
        let t0 = Instant::now();
        let round = self.round;
        for (s, stage) in self.stages.iter().enumerate() {
            if stage
                .ctrl_tx
                .send(Ctrl::Round {
                    m,
                    k: self.k[s],
                    round,
                    sched: self.opts.schedule,
                })
                .is_err()
            {
                let e = self.death_error(s, "round dispatch");
                return Err(self.fail(e));
            }
        }
        let last = self.stages.len() - 1;
        for (x, targets) in micro_batches {
            if self.input_tx.send(encode_tensor(x)).is_err() {
                let e = self.death_error(0, "input feed");
                return Err(self.fail(e));
            }
            if self.target_tx.send(targets.clone()).is_err() {
                let e = self.death_error(last, "target feed");
                return Err(self.fail(e));
            }
        }
        let mut mean_loss = 0.0f32;
        for s in 0..self.stages.len() {
            match self.recv_reply(s, "round execution") {
                Ok(Reply::RoundDone { losses }) => {
                    if s == last {
                        assert_eq!(
                            losses.len(),
                            m,
                            "last stage must report one loss per micro-batch"
                        );
                        mean_loss = losses.iter().sum::<f32>() / losses.len() as f32;
                    } else {
                        assert!(
                            losses.is_empty(),
                            "only the last stage computes losses (stage {s} reported {})",
                            losses.len()
                        );
                    }
                }
                Ok(_) => {
                    let e = ExecError::StageDied {
                        stage: s,
                        during: "round execution (unexpected reply)".into(),
                    };
                    return Err(self.fail(e));
                }
                Err(e) => return Err(self.fail(e)),
            }
        }
        // Pipeline flush: synchronized update with 1/M gradient scaling.
        let scale = 1.0 / m as f32;
        for (s, stage) in self.stages.iter().enumerate() {
            if stage.ctrl_tx.send(Ctrl::Apply { lr, scale }).is_err() {
                let e = self.death_error(s, "apply dispatch");
                return Err(self.fail(e));
            }
        }
        for s in 0..self.stages.len() {
            match self.recv_reply(s, "apply") {
                Ok(Reply::Applied) => {}
                Ok(_) => {
                    let e = ExecError::StageDied {
                        stage: s,
                        during: "apply (unexpected reply)".into(),
                    };
                    return Err(self.fail(e));
                }
                Err(e) => return Err(self.fail(e)),
            }
        }
        self.round += 1;
        self.take_checkpoint()?;
        if let Some(mx) = &self.metrics {
            mx.round_ns.record(t0.elapsed().as_nanos() as f64);
        }
        if self.replaying {
            self.replaying = false;
            if let Some(tr) = &self.opts.tracer {
                tr.event(
                    Domain::Pipeline,
                    EventKind::RoundReplayed,
                    0,
                    round as f64,
                    round as f64,
                );
            }
        }
        Ok(mean_loss)
    }

    /// Rebuilds the pipeline after a failure: tears down every surviving
    /// stage thread (all waits are disconnect-bounded, so teardown
    /// cannot hang on our code), relaunches all stages from the segment
    /// factory, restores the last checkpoint and rewinds the round
    /// counter to it. Replaying the interrupted round with the same data
    /// then yields parameters bit-identical to an uninterrupted run.
    /// Returns the checkpoint round now current. Injected [`FaultPlan`]
    /// kills scheduled in or before the replayed round are disarmed —
    /// faults model transient disturbances, so replay must be able to
    /// make progress; kills in later rounds stay armed.
    ///
    /// Calling `recover` on a healthy trainer is allowed and simply
    /// rolls back to the last checkpoint (which a healthy trainer takes
    /// after every round, so this is a no-op parameter-wise).
    ///
    /// # Errors
    /// [`ExecError::RecoveryUnsupported`] without a segment factory;
    /// [`ExecError::StageDied`] / [`ExecError::ParamLenMismatch`] if the
    /// relaunched stages die or the factory returns a different
    /// architecture.
    pub fn recover(&mut self) -> Result<u64, ExecError> {
        if self.factory.is_none() {
            return Err(ExecError::RecoveryUnsupported);
        }
        let t0 = Instant::now();
        // With a store configured, restore from its newest durable
        // checkpoint (the same snapshot take_checkpoint persisted, so
        // replay stays bit-identical to the in-memory path); this is
        // what makes recovery survive portal restarts, not just stage
        // deaths. Without one, use the in-memory snapshot.
        if let Some(store) = &self.store {
            match store.latest_checkpoint().map_err(store_err)? {
                Some((_, payload)) => self.checkpoint = CheckpointRecord::decode(&payload)?,
                None => {
                    return Err(ExecError::CheckpointStore {
                        detail: "store has no checkpoint to recover from".into(),
                    })
                }
            }
        }
        // Tear down: replace the data feeds (dropping the old senders so
        // a stage blocked in `recv` wakes), drop every control sender,
        // then join. Death-cascade disconnects unblock everything else.
        let mut old = std::mem::take(&mut self.stages);
        for stage in &old {
            let _ = stage.ctrl_tx.send(Ctrl::Shutdown);
        }
        let handles: Vec<JoinHandle<()>> = old.iter_mut().filter_map(|s| s.handle.take()).collect();
        let segments = self.factory.as_ref().expect("factory checked above")();
        assert_eq!(
            segments.len(),
            self.k.len(),
            "segment factory changed the stage count"
        );
        // Injected faults model *transient* disturbances: kills scheduled
        // in or before the round being replayed are disarmed, otherwise
        // the relaunched pipeline would re-fire the same kill on replay
        // and never make progress. Kills in later rounds stay armed.
        self.opts
            .fault_plan
            .kills
            .retain(|kp| kp.round > self.checkpoint.round);
        self.deaths = Arc::new(Mutex::new(Vec::new()));
        let wiring = spawn_stages(
            segments,
            &self.k,
            &self.comm,
            &self.progress,
            &self.deaths,
            &self.opts.fault_plan,
            self.stage_metrics.as_ref(),
        );
        self.stages = wiring.stages;
        drop(std::mem::replace(&mut self.input_tx, wiring.input_tx));
        drop(std::mem::replace(&mut self.target_tx, wiring.target_tx));
        drop(old); // disconnects the dead pipeline's ctrl/reply channels
        for h in handles {
            let _ = h.join();
        }
        self.failure = None;
        self.round = self.checkpoint.round;
        self.replaying = true;
        // Restore the checkpoint into the fresh stages.
        for (s, params) in self.checkpoint.stage_params().into_iter().enumerate() {
            if self.stages[s]
                .ctrl_tx
                .send(Ctrl::SetParams(params))
                .is_err()
            {
                let e = self.death_error(s, "checkpoint restore dispatch");
                return Err(self.fail(e));
            }
        }
        for s in 0..self.stages.len() {
            match self.recv_reply(s, "checkpoint restore") {
                Ok(Reply::SetDone { expected, got }) if expected == got => {}
                Ok(Reply::SetDone { expected, got }) => {
                    let e = ExecError::ParamLenMismatch {
                        stage: s,
                        expected,
                        got,
                    };
                    return Err(self.fail(e));
                }
                Ok(_) => {
                    let e = ExecError::StageDied {
                        stage: s,
                        during: "checkpoint restore (unexpected reply)".into(),
                    };
                    return Err(self.fail(e));
                }
                Err(e) => return Err(self.fail(e)),
            }
        }
        if let Some(m) = &self.metrics {
            m.restores.inc(1);
            m.restore_ns.record(t0.elapsed().as_nanos() as f64);
        }
        Ok(self.round)
    }

    /// Collects the full flat parameter vector (stage order).
    ///
    /// # Errors
    /// [`ExecError::StageDied`] if a stage died (the trainer is then
    /// poisoned), or the stored failure if already poisoned.
    pub fn params(&mut self) -> Result<Vec<f32>, ExecError> {
        if let Some(e) = &self.failure {
            return Err(e.clone());
        }
        for (s, stage) in self.stages.iter().enumerate() {
            if stage.ctrl_tx.send(Ctrl::Collect).is_err() {
                let e = self.death_error(s, "params collect dispatch");
                return Err(self.fail(e));
            }
        }
        let mut all = Vec::new();
        for s in 0..self.stages.len() {
            match self.recv_reply(s, "params collect") {
                Ok(Reply::Params(p)) => all.extend(p),
                Ok(_) => {
                    let e = ExecError::StageDied {
                        stage: s,
                        during: "params collect (unexpected reply)".into(),
                    };
                    return Err(self.fail(e));
                }
                Err(e) => return Err(self.fail(e)),
            }
        }
        Ok(all)
    }

    /// Overwrites the full flat parameter vector (stage order), acked by
    /// every stage. Each stage hard-checks the slice length against its
    /// own parameter count and refuses to apply a mismatched vector, so
    /// a short vector can never leave tail parameters silently stale.
    ///
    /// # Errors
    /// [`ExecError::ParamVecLen`] if `params.len()` differs from the sum
    /// of `stage_lens` (nothing is sent); [`ExecError::ParamLenMismatch`]
    /// if a stage's slice does not match its actual layout (stages with
    /// matching lengths have applied theirs — fix `stage_lens` and
    /// retry); [`ExecError::StageDied`] if a stage died.
    ///
    /// # Panics
    /// Panics if `stage_lens` does not have one entry per stage
    /// (programmer error).
    pub fn set_params(&mut self, params: &[f32], stage_lens: &[usize]) -> Result<(), ExecError> {
        if let Some(e) = &self.failure {
            return Err(e.clone());
        }
        assert_eq!(
            stage_lens.len(),
            self.stages.len(),
            "set_params: need one length per stage"
        );
        let total: usize = stage_lens.iter().sum();
        if total != params.len() {
            return Err(ExecError::ParamVecLen {
                expected: total,
                got: params.len(),
            });
        }
        let mut offset = 0;
        for (s, &len) in stage_lens.iter().enumerate() {
            if self.stages[s]
                .ctrl_tx
                .send(Ctrl::SetParams(params[offset..offset + len].to_vec()))
                .is_err()
            {
                let e = self.death_error(s, "set-params dispatch");
                return Err(self.fail(e));
            }
            offset += len;
        }
        // Drain every ack (keeping the reply protocol in sync) before
        // reporting the first mismatch.
        let mut first_mismatch = None;
        for s in 0..self.stages.len() {
            match self.recv_reply(s, "set-params ack") {
                Ok(Reply::SetDone { expected, got }) => {
                    if expected != got && first_mismatch.is_none() {
                        first_mismatch = Some(ExecError::ParamLenMismatch {
                            stage: s,
                            expected,
                            got,
                        });
                    }
                }
                Ok(_) => {
                    let e = ExecError::StageDied {
                        stage: s,
                        during: "set-params ack (unexpected reply)".into(),
                    };
                    return Err(self.fail(e));
                }
                Err(e) => return Err(self.fail(e)),
            }
        }
        match first_mismatch {
            // A rejected vector leaves the stages healthy: not poisoned.
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Snapshot of cross-boundary traffic so far.
    #[must_use]
    pub fn comm_stats(&self) -> (Vec<u64>, Vec<u64>) {
        let c = self.comm.lock();
        (c.fwd_bytes.clone(), c.bwd_bytes.clone())
    }

    /// Unblocks and joins every stage thread: sends `Shutdown`, drops
    /// the portal-side data feeds (so a stage stuck waiting for an input
    /// that never came observes the disconnect), then joins.
    fn teardown(&mut self) {
        for stage in &self.stages {
            let _ = stage.ctrl_tx.send(Ctrl::Shutdown);
        }
        let (dummy_in, _) = unbounded::<Bytes>();
        let (dummy_tg, _) = unbounded::<Vec<usize>>();
        drop(std::mem::replace(&mut self.input_tx, dummy_in));
        drop(std::mem::replace(&mut self.target_tx, dummy_tg));
        for stage in &mut self.stages {
            if let Some(h) = stage.handle.take() {
                let _ = h.join();
            }
        }
    }

    /// Stops all stage threads.
    pub fn shutdown(mut self) {
        self.teardown();
    }
}

impl Drop for PipelineTrainer {
    fn drop(&mut self) {
        self.teardown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofl_tensor::{Linear, Network, ReLU};
    use ecofl_util::Rng;

    type Segments = Vec<Vec<Box<dyn Layer>>>;

    /// Builds identical layer stacks twice: once as pipeline segments,
    /// once as a monolithic network.
    fn build(seed: u64) -> (Segments, Network, Vec<usize>) {
        let mk = |rng: &mut Rng| -> Vec<Vec<Box<dyn Layer>>> {
            vec![
                vec![
                    Box::new(Linear::new(8, 16, rng)) as Box<dyn Layer>,
                    Box::new(ReLU::new()),
                ],
                vec![
                    Box::new(Linear::new(16, 12, rng)) as Box<dyn Layer>,
                    Box::new(ReLU::new()),
                ],
                vec![Box::new(Linear::new(12, 4, rng)) as Box<dyn Layer>],
            ]
        };
        let mut rng1 = Rng::new(seed);
        let segments = mk(&mut rng1);
        let mut rng2 = Rng::new(seed);
        let reference_layers: Vec<Box<dyn Layer>> = mk(&mut rng2).into_iter().flatten().collect();
        let reference = Network::new(reference_layers);
        let stage_lens = vec![8 * 16 + 16, 16 * 12 + 12, 12 * 4 + 4];
        (segments, reference, stage_lens)
    }

    fn micro_batches(seed: u64, m: usize, bs: usize) -> Vec<(Tensor, Vec<usize>)> {
        let mut rng = Rng::new(seed);
        (0..m)
            .map(|_| {
                let x = Tensor::randn(&[bs, 8], 1.0, &mut rng);
                let y = (0..bs).map(|_| rng.range_usize(0, 4)).collect();
                (x, y)
            })
            .collect()
    }

    #[test]
    fn tensor_codec_round_trip() {
        let mut rng = Rng::new(1);
        let t = Tensor::randn(&[3, 5, 2], 1.0, &mut rng);
        let decoded = decode_tensor(encode_tensor(&t));
        assert_eq!(t, decoded);
    }

    #[test]
    fn pipeline_matches_single_device_exactly() {
        let (segments, mut reference, _) = build(77);
        let k = vec![3, 2, 1];
        let mut trainer = PipelineTrainer::launch(segments, k);
        let batches = micro_batches(5, 6, 4);
        let lr = 0.1;

        // Pipeline round.
        let pipe_loss = trainer.train_round(&batches, lr).expect("healthy round");

        // Reference: gradient accumulation then one scaled update.
        let mut ref_loss = 0.0;
        reference.zero_grads();
        for (x, y) in &batches {
            ref_loss += reference.train_step(x, y);
        }
        ref_loss /= batches.len() as f32;
        let mut params = reference.params();
        let grads = reference.grads();
        let scale = 1.0 / batches.len() as f32;
        for (p, g) in params.iter_mut().zip(&grads) {
            *p -= lr * g * scale;
        }
        reference.set_params(&params);

        assert!(
            (pipe_loss - ref_loss).abs() < 1e-6,
            "{pipe_loss} vs {ref_loss}"
        );
        let pipe_params = trainer.params().expect("healthy collect");
        assert_eq!(
            pipe_params, params,
            "1F1B-Sync must be bit-identical to gradient accumulation"
        );
        trainer.shutdown();
    }

    #[test]
    fn unit_residency_is_bit_identical_too() {
        // K_s = 1 everywhere shrinks every bounded channel to capacity 1;
        // the schedule serializes but the semantics must not move.
        let (segments, _, _) = build(31);
        let mut wide = PipelineTrainer::launch(segments, vec![3, 2, 1]);
        let (segments, _, _) = build(31);
        let mut narrow = PipelineTrainer::launch(segments, vec![1, 1, 1]);
        let batches = micro_batches(6, 5, 4);
        let lw = wide.train_round(&batches, 0.1).expect("wide round");
        let ln = narrow.train_round(&batches, 0.1).expect("narrow round");
        assert_eq!(lw, ln, "loss must not depend on residency");
        assert_eq!(
            wide.params().expect("wide params"),
            narrow.params().expect("narrow params"),
            "parameters must not depend on residency"
        );
        wide.shutdown();
        narrow.shutdown();
    }

    #[test]
    fn multiple_rounds_reduce_loss() {
        let (segments, _, _) = build(88);
        let mut trainer = PipelineTrainer::launch(segments, vec![3, 2, 1]);
        // Fixed batches make the loss monotone-ish under SGD.
        let batches = micro_batches(9, 4, 8);
        let first = trainer.train_round(&batches, 0.2).expect("round");
        let mut last = first;
        for _ in 0..30 {
            last = trainer.train_round(&batches, 0.2).expect("round");
        }
        assert!(last < first * 0.8, "loss {first} -> {last} should drop");
        trainer.shutdown();
    }

    #[test]
    fn progress_counter_tracks_micro_batches() {
        let (segments, _, _) = build(42);
        let mut trainer = PipelineTrainer::launch(segments, vec![3, 2, 1]);
        assert_eq!(trainer.micro_batches_processed(), 0);
        let _ = trainer.train_round(&micro_batches(1, 5, 4), 0.1).unwrap();
        assert_eq!(trainer.micro_batches_processed(), 5);
        let _ = trainer.train_round(&micro_batches(2, 3, 4), 0.1).unwrap();
        assert_eq!(trainer.micro_batches_processed(), 8);
        assert_eq!(trainer.rounds_completed(), 2);
        assert_eq!(trainer.checkpoint_round(), 2);
        trainer.shutdown();
    }

    #[test]
    fn comm_stats_track_boundary_traffic() {
        let (segments, _, _) = build(99);
        let mut trainer = PipelineTrainer::launch(segments, vec![3, 2, 1]);
        let batches = micro_batches(2, 3, 4);
        let _ = trainer.train_round(&batches, 0.1).unwrap();
        let (fwd, bwd) = trainer.comm_stats();
        assert_eq!(fwd.len(), 2);
        // Boundary 0 carries [4,16] activations thrice; boundary 1 [4,12].
        assert!(fwd[0] > 0 && fwd[1] > 0);
        assert!(bwd[0] > 0 && bwd[1] > 0);
        assert!(fwd[0] > fwd[1], "wider boundary moves more bytes");
        trainer.shutdown();
    }

    #[test]
    fn set_params_round_trip() {
        let (segments, _, stage_lens) = build(55);
        let mut trainer = PipelineTrainer::launch(segments, vec![3, 2, 1]);
        let mut params = trainer.params().expect("params");
        for p in params.iter_mut() {
            *p = 0.5;
        }
        trainer
            .set_params(&params, &stage_lens)
            .expect("set_params");
        assert_eq!(trainer.params().expect("params"), params);
        trainer.shutdown();
    }

    #[test]
    fn set_params_rejects_short_vector_with_typed_error() {
        let (segments, _, stage_lens) = build(56);
        let mut trainer = PipelineTrainer::launch(segments, vec![3, 2, 1]);
        let before = trainer.params().expect("params");
        let short = vec![0.5f32; before.len() - 3];
        match trainer.set_params(&short, &stage_lens) {
            Err(ExecError::ParamVecLen { expected, got }) => {
                assert_eq!(expected, before.len());
                assert_eq!(got, before.len() - 3);
            }
            other => panic!("expected ParamVecLen, got {other:?}"),
        }
        assert_eq!(
            trainer.params().expect("params"),
            before,
            "a rejected vector must not touch any parameter"
        );
        trainer.shutdown();
    }

    #[test]
    fn set_params_rejects_bad_split_and_stays_usable() {
        let (segments, _, stage_lens) = build(57);
        let mut trainer = PipelineTrainer::launch(segments, vec![3, 2, 1]);
        let params = trainer.params().expect("params");
        // Same total, wrong split: stage 0's slice is one element short.
        let mut bad = stage_lens.clone();
        bad[0] -= 1;
        bad[1] += 1;
        match trainer.set_params(&params, &bad) {
            Err(ExecError::ParamLenMismatch { stage, .. }) => assert_eq!(stage, 0),
            other => panic!("expected ParamLenMismatch, got {other:?}"),
        }
        // The stages are healthy: a correct call and a round still work.
        trainer.set_params(&params, &stage_lens).expect("set");
        let _ = trainer
            .train_round(&micro_batches(3, 2, 4), 0.1)
            .expect("round after rejected set_params");
        trainer.shutdown();
    }

    #[test]
    fn single_stage_pipeline_works() {
        let mut rng = Rng::new(3);
        let segments: Vec<Vec<Box<dyn Layer>>> = vec![vec![Box::new(Linear::new(8, 4, &mut rng))]];
        let mut trainer = PipelineTrainer::launch(segments, vec![1]);
        let batches = micro_batches(4, 2, 4);
        let loss = trainer.train_round(&batches, 0.1).expect("round");
        assert!(loss.is_finite() && loss > 0.0);
        trainer.shutdown();
    }

    #[test]
    fn unsupervised_trainer_reports_recovery_unsupported() {
        let (segments, _, _) = build(60);
        let mut trainer = PipelineTrainer::launch(segments, vec![3, 2, 1]);
        assert_eq!(trainer.recover(), Err(ExecError::RecoveryUnsupported));
        trainer.shutdown();
    }

    #[test]
    fn fault_plan_from_seed_is_deterministic_and_in_range() {
        for seed in 0..32u64 {
            let a = FaultPlan::from_seed(seed, 3, 4, 5);
            let b = FaultPlan::from_seed(seed, 3, 4, 5);
            assert_eq!(a, b);
            let k = a.kills[0];
            assert!(k.stage < 3 && k.round < 4 && k.micro < 5);
        }
    }
}
