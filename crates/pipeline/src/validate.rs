//! Plan validation — a defensive check a deployment runs before pushing a
//! pipeline configuration to real devices.
//!
//! [`validate_plan`] re-derives every invariant a
//! [`PipelinePlan`](crate::orchestrator::PipelinePlan) must satisfy
//! against the model and device list it claims to be for, returning every
//! violation rather than stopping at the first. The orchestrator always
//! produces valid plans (the tests assert it); this API exists for plans
//! that crossed a serialization boundary or were edited by hand.

use crate::orchestrator::{p_bounds, PipelinePlan};
use crate::profiler::PipelineProfile;
use ecofl_models::ModelProfile;
use ecofl_simnet::{Device, Link};

/// A single validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanViolation {
    /// `order` is not a permutation of the device indices.
    OrderNotPermutation,
    /// Stage boundaries do not cover the model's layers contiguously.
    BadBoundaries,
    /// The stage count differs from the device count.
    StageCountMismatch,
    /// The micro-batch size does not divide into the sync-round.
    MicroBatchInconsistent,
    /// `K` has the wrong length or a zero entry.
    BadResidency,
    /// Some `K_s` exceeds the Eq. 3 bound `P_s` (wasted memory, no gain).
    ResidencyAboveP {
        /// Offending stage.
        stage: usize,
    },
    /// A stage's working set exceeds its device memory at residency `K_s`.
    MemoryOverflow {
        /// Offending stage.
        stage: usize,
    },
}

/// Validates `plan` against the model and devices it targets.
///
/// Returns all violations found (empty = valid).
#[must_use]
pub fn validate_plan(
    plan: &PipelinePlan,
    model: &ModelProfile,
    devices: &[Device],
    link: &Link,
) -> Vec<PlanViolation> {
    let mut violations = Vec::new();

    // Order must be a permutation of 0..n.
    let mut seen = vec![false; devices.len()];
    let mut perm_ok = plan.order.len() == devices.len();
    for &i in &plan.order {
        if i >= devices.len() || seen[i] {
            perm_ok = false;
            break;
        }
        seen[i] = true;
    }
    if !perm_ok {
        violations.push(PlanViolation::OrderNotPermutation);
        return violations; // everything below needs a sane order
    }

    // Boundaries must cover the model contiguously.
    let b = &plan.partition.boundaries;
    let boundaries_ok = b.first() == Some(&0)
        && b.last() == Some(&model.num_layers())
        && b.windows(2).all(|w| w[0] < w[1]);
    if !boundaries_ok {
        violations.push(PlanViolation::BadBoundaries);
        return violations;
    }
    if plan.partition.num_stages() != devices.len() {
        violations.push(PlanViolation::StageCountMismatch);
        return violations;
    }
    if plan.micro_batch == 0
        || plan.micro_batches == 0
        || plan.k.len() != devices.len()
        || plan.k.contains(&0)
    {
        if plan.micro_batch == 0 || plan.micro_batches == 0 {
            violations.push(PlanViolation::MicroBatchInconsistent);
        }
        if plan.k.len() != devices.len() || plan.k.contains(&0) {
            violations.push(PlanViolation::BadResidency);
        }
        return violations;
    }

    let ordered: Vec<Device> = plan.order.iter().map(|&i| devices[i].clone()).collect();
    let profile = PipelineProfile::new(
        model,
        &plan.partition.boundaries,
        &ordered,
        link,
        plan.micro_batch,
    );
    let p = p_bounds(&profile);
    for (s, (&k, &p_s)) in plan.k.iter().zip(&p).enumerate() {
        if k > p_s {
            violations.push(PlanViolation::ResidencyAboveP { stage: s });
        }
    }
    for (s, stage) in profile.stages().iter().enumerate() {
        if stage.memory_with_residency(plan.k[s]) > stage.memory_budget_bytes {
            violations.push(PlanViolation::MemoryOverflow { stage: s });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::{search_configuration, OrchestratorConfig};
    use ecofl_models::efficientnet_at;
    use ecofl_simnet::{nano_h, tx2_q};

    fn plan_and_devices() -> (PipelinePlan, ModelProfile, Vec<Device>, Link) {
        let model = efficientnet_at(0, 224);
        let devices = vec![Device::new(tx2_q()), Device::new(nano_h())];
        let link = Link::mbps_100();
        let plan = search_configuration(
            &model,
            &devices,
            &link,
            &OrchestratorConfig {
                global_batch: 32,
                mbs_candidates: vec![8, 4],
                eval_rounds: 1,
                ..OrchestratorConfig::default()
            },
        )
        .expect("plan");
        (plan, model, devices, link)
    }

    #[test]
    fn orchestrator_plans_validate_clean() {
        let (plan, model, devices, link) = plan_and_devices();
        assert!(validate_plan(&plan, &model, &devices, &link).is_empty());
    }

    #[test]
    fn detects_corrupt_order() {
        let (mut plan, model, devices, link) = plan_and_devices();
        plan.order = vec![0, 0];
        assert_eq!(
            validate_plan(&plan, &model, &devices, &link),
            vec![PlanViolation::OrderNotPermutation]
        );
    }

    #[test]
    fn detects_bad_boundaries() {
        let (mut plan, model, devices, link) = plan_and_devices();
        *plan.partition.boundaries.last_mut().unwrap() -= 1;
        assert_eq!(
            validate_plan(&plan, &model, &devices, &link),
            vec![PlanViolation::BadBoundaries]
        );
    }

    #[test]
    fn detects_zero_residency() {
        let (mut plan, model, devices, link) = plan_and_devices();
        plan.k[0] = 0;
        assert_eq!(
            validate_plan(&plan, &model, &devices, &link),
            vec![PlanViolation::BadResidency]
        );
    }

    #[test]
    fn detects_residency_above_p() {
        let (mut plan, model, devices, link) = plan_and_devices();
        plan.k[0] += 100;
        let violations = validate_plan(&plan, &model, &devices, &link);
        assert!(violations.contains(&PlanViolation::ResidencyAboveP { stage: 0 }));
    }

    #[test]
    fn detects_memory_overflow() {
        let (mut plan, model, _, link) = plan_and_devices();
        // Shrink device memory under the plan's working set.
        let tiny = ecofl_simnet::DeviceSpec::new("tiny", 1e11, 1 << 20, 1e8);
        let devices = vec![Device::new(tiny.clone()), Device::new(tiny)];
        plan.k = vec![1, 1]; // keep residency legal so memory is the issue
        let violations = validate_plan(&plan, &model, &devices, &link);
        assert!(violations
            .iter()
            .any(|v| matches!(v, PlanViolation::MemoryOverflow { .. })));
    }
}
