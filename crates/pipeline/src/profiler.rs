//! Pipeline profiling (§4.2, "Profiling" phase).
//!
//! The paper's profiler measures, for every layer `l` on every device `d`,
//! the combined FP+BP time `T_l^d` and records activation bytes `a_l`,
//! gradient bytes `g_l` and parameter bytes `w_l`. With simulated hardware
//! those quantities derive from the analytic model profiles
//! (`ecofl-models`) and device compute rates (`ecofl-simnet`):
//!
//! `T_l^d = mbs · (flops_fwd + flops_bwd)_l / rate_d`.

use ecofl_compat::serde::{Deserialize, Serialize};
use ecofl_models::ModelProfile;
use ecofl_simnet::{Device, Link};

/// Bytes of optimizer + gradient state kept per parameter byte (params,
/// gradients, SGD momentum).
pub const PARAM_STATE_FACTOR: u64 = 3;

/// Half-saturation batch size of the GPU-efficiency curve: a kernel over
/// `b` samples sustains `b / (b + MBS_HALF_SAT)` of peak throughput.
/// Small micro-batches under-fill the GPU — the §4.3 observation that
/// "too tiny micro-batch size will result in the under-utilization of
/// computational resources".
pub const MBS_HALF_SAT: f64 = 2.0;

/// GPU efficiency factor at a given micro-batch size.
#[must_use]
pub fn batch_efficiency(micro_batch: usize) -> f64 {
    micro_batch as f64 / (micro_batch as f64 + MBS_HALF_SAT)
}

/// Profile of one pipeline stage (a contiguous layer segment bound to one
/// device) at a given micro-batch size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Index of the device executing this stage (into the pipeline's
    /// device order).
    pub device: usize,
    /// Layer range `[start, end)` of the global model.
    pub layers: std::ops::Range<usize>,
    /// Forward compute time per micro-batch, seconds (`T^s_{t,f}`).
    pub t_fwd: f64,
    /// Backward compute time per micro-batch, seconds (`T^s_{t,b}`).
    pub t_bwd: f64,
    /// Forward (activation) transfer time to the next stage per
    /// micro-batch, seconds (`T^s_{c,f}`); zero for the last stage.
    pub c_fwd: f64,
    /// Backward (gradient) transfer time from the next stage per
    /// micro-batch, seconds (`T^s_{c,b}`); zero for the last stage.
    pub c_bwd: f64,
    /// Bytes of parameters held by the stage.
    pub param_bytes: u64,
    /// Activation bytes resident per in-flight micro-batch (every layer
    /// output inside the stage is stashed for backward).
    pub activation_bytes_per_mb: u64,
    /// Activation bytes crossing the cut to the next stage per
    /// micro-batch; zero for the last stage.
    pub boundary_bytes: u64,
    /// Memory capacity of the device hosting this stage, bytes.
    pub memory_budget_bytes: u64,
    /// GPU efficiency at this profile's micro-batch size (useful compute
    /// per busy second).
    pub efficiency: f64,
}

impl StageProfile {
    /// Combined compute time per micro-batch.
    #[must_use]
    pub fn t_total(&self) -> f64 {
        self.t_fwd + self.t_bwd
    }

    /// Combined compute + communication per micro-batch — the "width" of
    /// the stage in the bubble analysis of §4.3.
    #[must_use]
    pub fn full_width(&self) -> f64 {
        self.t_fwd + self.t_bwd + self.c_fwd + self.c_bwd
    }

    /// Static memory demand: parameters + gradients + optimizer state.
    #[must_use]
    pub fn static_bytes(&self) -> u64 {
        self.param_bytes * PARAM_STATE_FACTOR
    }

    /// Peak memory when `k` micro-batches are resident.
    #[must_use]
    pub fn memory_with_residency(&self, k: usize) -> u64 {
        self.static_bytes() + self.activation_bytes_per_mb * k as u64
    }

    /// Maximum number of in-flight micro-batches the device memory can
    /// hold (`Q_s` in §4.3). Zero means even one micro-batch overflows.
    #[must_use]
    pub fn max_residency(&self, memory_bytes: u64) -> usize {
        if self.activation_bytes_per_mb == 0 {
            return usize::MAX;
        }
        let free = memory_bytes.saturating_sub(self.static_bytes());
        (free / self.activation_bytes_per_mb) as usize
    }
}

/// A fully profiled pipeline: a model partitioned over an ordered list of
/// devices with a given micro-batch size.
#[derive(Debug, Clone)]
pub struct PipelineProfile {
    stages: Vec<StageProfile>,
    micro_batch: usize,
}

impl PipelineProfile {
    /// Profiles `model` split at `cuts` over `devices` (in pipeline
    /// order) with the given `link` between adjacent devices.
    ///
    /// `cuts` are the stage boundaries: stage `s` covers
    /// `[cuts[s], cuts[s+1])` with implicit `cuts[0] = 0`,
    /// `cuts[last] = L`. The paper's assumption 2 (§4.3) — forward and
    /// backward boundary transfers have equal size — holds by
    /// construction (`g_l = a_l`).
    ///
    /// # Panics
    /// Panics if the cut vector does not describe `devices.len()`
    /// non-empty contiguous stages.
    #[must_use]
    pub fn new(
        model: &ModelProfile,
        boundaries: &[usize],
        devices: &[Device],
        link: &Link,
        micro_batch: usize,
    ) -> Self {
        assert!(
            micro_batch > 0,
            "PipelineProfile: micro-batch must be positive"
        );
        let l = model.num_layers();
        let s = devices.len();
        assert_eq!(
            boundaries.len(),
            s + 1,
            "PipelineProfile: need {s}+1 boundaries, got {}",
            boundaries.len()
        );
        assert_eq!(
            boundaries[0], 0,
            "PipelineProfile: first boundary must be 0"
        );
        assert_eq!(
            boundaries[s], l,
            "PipelineProfile: last boundary must equal layer count {l}"
        );
        let mbs = micro_batch as f64;
        let eff = batch_efficiency(micro_batch);
        let stages = (0..s)
            .map(|i| {
                let range = boundaries[i]..boundaries[i + 1];
                assert!(
                    range.start < range.end,
                    "PipelineProfile: stage {i} is empty"
                );
                let rate = devices[i].effective_flops() * eff;
                let fwd_flops: f64 = model.layers[range.clone()]
                    .iter()
                    .map(|x| x.flops_fwd)
                    .sum();
                let bwd_flops: f64 = model.layers[range.clone()]
                    .iter()
                    .map(|x| x.flops_bwd)
                    .sum();
                let act_per_mb: u64 = model.layers[range.clone()]
                    .iter()
                    .map(|x| x.train_activation_bytes)
                    .sum::<u64>()
                    * micro_batch as u64;
                let params: u64 = model.layers[range.clone()]
                    .iter()
                    .map(|x| x.param_bytes)
                    .sum();
                let (c_fwd, c_bwd, boundary) = if i + 1 < s {
                    let cut_bytes =
                        model.activation_bytes_after(range.end - 1) * micro_batch as u64;
                    let t = link.transfer_time(cut_bytes);
                    (t, t, cut_bytes)
                } else {
                    (0.0, 0.0, 0)
                };
                StageProfile {
                    device: i,
                    layers: range,
                    t_fwd: mbs * fwd_flops / rate,
                    t_bwd: mbs * bwd_flops / rate,
                    c_fwd,
                    c_bwd,
                    param_bytes: params,
                    activation_bytes_per_mb: act_per_mb,
                    boundary_bytes: boundary,
                    memory_budget_bytes: devices[i].spec().memory_bytes,
                    efficiency: eff,
                }
            })
            .collect();
        Self {
            stages,
            micro_batch,
        }
    }

    /// Builds a profile directly from pre-computed stage profiles
    /// (used by tests and the adaptive rescheduler when splicing stages).
    ///
    /// # Panics
    /// Panics if `stages` is empty or `micro_batch` is zero.
    #[must_use]
    pub fn from_stages(stages: Vec<StageProfile>, micro_batch: usize) -> Self {
        assert!(!stages.is_empty(), "from_stages: need at least one stage");
        assert!(micro_batch > 0, "from_stages: micro-batch must be positive");
        Self {
            stages,
            micro_batch,
        }
    }

    /// Per-stage profiles in pipeline order.
    #[must_use]
    pub fn stages(&self) -> &[StageProfile] {
        &self.stages
    }

    /// Number of stages.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The micro-batch size this profile was computed at.
    #[must_use]
    pub fn micro_batch(&self) -> usize {
        self.micro_batch
    }

    /// Per-micro-batch time of the slowest stage — the pipeline's
    /// steady-state bottleneck (the "lagger" of §4.2).
    #[must_use]
    pub fn bottleneck_time(&self) -> f64 {
        self.stages
            .iter()
            .map(StageProfile::t_total)
            .fold(0.0, f64::max)
    }

    /// Index of the bottleneck stage.
    #[must_use]
    pub fn bottleneck_stage(&self) -> usize {
        self.stages
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.t_total()
                    .partial_cmp(&b.1.t_total())
                    .expect("finite stage times")
            })
            .map(|(i, _)| i)
            .expect("at least one stage")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofl_models::efficientnet;
    use ecofl_simnet::{nano_h, tx2_n, Device};

    fn two_stage() -> PipelineProfile {
        let model = efficientnet(0);
        let l = model.num_layers();
        let devices = vec![Device::new(tx2_n()), Device::new(nano_h())];
        PipelineProfile::new(&model, &[0, l / 2, l], &devices, &Link::mbps_100(), 8)
    }

    #[test]
    fn stage_times_positive_and_scaled() {
        let p = two_stage();
        assert_eq!(p.num_stages(), 2);
        for s in p.stages() {
            assert!(s.t_fwd > 0.0);
            assert!(s.t_bwd > s.t_fwd, "backward ≈ 2× forward");
            assert!(s.param_bytes > 0);
        }
        // Stage 0 must communicate; last stage must not.
        assert!(p.stages()[0].c_fwd > 0.0);
        assert_eq!(p.stages()[1].c_fwd, 0.0);
        assert_eq!(p.stages()[1].boundary_bytes, 0);
    }

    #[test]
    fn micro_batch_scales_compute_linearly() {
        let model = efficientnet(0);
        let l = model.num_layers();
        let devices = vec![Device::new(tx2_n()), Device::new(nano_h())];
        let link = Link::mbps_100();
        let p8 = PipelineProfile::new(&model, &[0, l / 2, l], &devices, &link, 8);
        let p16 = PipelineProfile::new(&model, &[0, l / 2, l], &devices, &link, 16);
        let r = p16.stages()[0].t_fwd / p8.stages()[0].t_fwd;
        // Linear in samples, corrected by the GPU batch-efficiency curve:
        // doubling mbs less than doubles time because larger kernels run
        // closer to peak.
        let expected = 2.0 * batch_efficiency(8) / batch_efficiency(16);
        assert!((r - expected).abs() < 1e-9, "ratio {r} vs {expected}");
        assert!(r > 1.0 && r < 2.0);
    }

    #[test]
    fn bottleneck_detection() {
        let p = two_stage();
        let b = p.bottleneck_stage();
        assert_eq!(p.stages()[b].t_total(), p.bottleneck_time());
        // Even front split on a fast + slow pair: the slow Nano holding the
        // same layer count should lag... unless front layers dominate
        // flops. Just check consistency between index and time.
    }

    #[test]
    fn memory_model_monotone_in_residency() {
        let p = two_stage();
        let s = &p.stages()[0];
        assert!(s.memory_with_residency(2) > s.memory_with_residency(1));
        let q = s.max_residency(s.memory_with_residency(3));
        assert_eq!(q, 3);
        // Tiny memory → zero residency.
        assert_eq!(s.max_residency(s.static_bytes()), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_stage() {
        let model = efficientnet(0);
        let l = model.num_layers();
        let devices = vec![Device::new(tx2_n()), Device::new(nano_h())];
        let _ = PipelineProfile::new(&model, &[0, 0, l], &devices, &Link::mbps_100(), 8);
    }

    #[test]
    fn external_load_slows_stage() {
        let model = efficientnet(0);
        let l = model.num_layers();
        let mut d0 = Device::new(tx2_n());
        d0.set_external_load(0.5);
        let devices = vec![d0, Device::new(nano_h())];
        let loaded = PipelineProfile::new(&model, &[0, l / 2, l], &devices, &Link::mbps_100(), 8);
        let clean = two_stage();
        assert!(loaded.stages()[0].t_fwd > clean.stages()[0].t_fwd * 1.9);
    }
}
