//! Discrete-event execution of pipeline-training schedules.
//!
//! The executor is schedule-agnostic: it instantiates the
//! [`PipelineSchedule`] trait object behind a [`SchedulePolicy`] and asks
//! it admission questions — residency bounds `K_s`, backward gating,
//! forward/backward preference, weight-version stashing, flush-freedom,
//! backward splitting — never matching on the policy itself. All five
//! registered schedules (1F1B-Sync, BAF-Sync, 1F1B-Async, interleaved
//! 1F1B, zero-bubble) run through the same event loop:
//!
//! - **1F1B-Sync** (Eco-FL, §4.1): every stage prefers the earliest ready
//!   backward task (the *early backward schedule* that releases activation
//!   memory for reuse) and admits a new forward only while fewer than
//!   `K_s` micro-batches are resident;
//! - **BAF-Sync** (Gpipe): forwards for the whole sync-round run first,
//!   backwards only begin after the last stage has forwarded every
//!   micro-batch, so all `M` activations stay resident;
//! - **1F1B-Async** (PipeDream): flush-free streaming with `K_s` stashed
//!   weight versions per stage;
//! - **interleaved 1F1B**: each device hosts `v` virtual stages of the
//!   [interleaved profile](crate::schedule::interleave_profile); a device
//!   runs one compute task at a time across its chunks, backwards first;
//! - **zero-bubble**: the backward splits into an activation-gradient
//!   task (sends the upstream gradient at `t_b/2`) and a weight-gradient
//!   task deferred into bubble time.
//!
//! Memory is *accounted, not assumed*: each forward allocates the stage's
//! per-micro-batch activation bytes on the simulated device and each
//! backward releases them; exceeding capacity aborts the run with
//! [`ExecError::Oom`] — which is exactly how the Gpipe rows of Table 2
//! fail while 1F1B-Sync fits.
//!
//! Devices execute one compute task at a time; links serialize transfers
//! per direction. A fixed per-task dispatch overhead models kernel-launch
//! and synchronization costs, making "GPU utilization" (useful compute ÷
//! makespan) improve with micro-batch size the way Table 2 reports.

use crate::profiler::PipelineProfile;
use crate::schedule::{interleave_profile, PipelineSchedule};
use ecofl_compat::serde::{Deserialize, Serialize};
use ecofl_obs::{Counter, Domain, Histogram, MetricsHub, SpanKind, TraceView, Tracer};
use ecofl_simnet::{BusyTracker, Device, EventQueue, ThroughputTracker};
use std::collections::VecDeque;

pub use crate::schedule::SchedulePolicy;

/// Default per-compute-task dispatch overhead in seconds (kernel launch,
/// synchronization, scheduler hop).
pub const DEFAULT_TASK_OVERHEAD: f64 = 0.002;

/// Why a run aborted.
///
/// The simulated executor produces [`ExecError::Oom`] and the
/// configuration errors ([`ExecError::ResidencyLen`],
/// [`ExecError::ResidencyZero`], [`ExecError::Schedule`]); the real
/// threaded runtime ([`crate::runtime`]) produces the remaining
/// variants, which together form its never-panic contract: every
/// runtime disturbance (stage death, shape mismatch, unrecoverable
/// trainer) surfaces as one of these in bounded time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecError {
    /// Stage `stage` exceeded its device memory at micro-batch `micro`.
    Oom {
        /// Stage index that overflowed.
        stage: usize,
        /// Micro-batch whose forward allocation failed.
        micro: usize,
    },
    /// A schedule's residency vector does not have one entry per
    /// (virtual) stage.
    ResidencyLen {
        /// Stages the profile (after interleaving) actually has.
        expected: usize,
        /// Length of the supplied `k` vector.
        got: usize,
    },
    /// A residency entry is zero — no stage can run with no admitted
    /// micro-batches.
    ResidencyZero {
        /// Stage whose `K_s` is zero.
        stage: usize,
    },
    /// The schedule configuration itself is invalid (e.g. an
    /// interleaving depth of zero).
    Schedule {
        /// What was wrong.
        detail: String,
    },
    /// A stage thread of the real runtime died (panic, injected fault,
    /// or channel disconnect cascade). `stage` is the *first* stage to
    /// die — neighbours that fail afterwards from the resulting channel
    /// disconnects are not reported.
    StageDied {
        /// First stage that died.
        stage: usize,
        /// What the stage was doing when it died.
        during: String,
    },
    /// `SetParams` carried a vector whose length does not match the
    /// stage's parameter count; the stage refused to apply it (no
    /// partial/stale-tail write happens).
    ParamLenMismatch {
        /// Stage that rejected the vector.
        stage: usize,
        /// The stage's own flat parameter count.
        expected: usize,
        /// Length of the rejected vector.
        got: usize,
    },
    /// The full flat parameter vector handed to `set_params` does not
    /// match the sum of the per-stage lengths.
    ParamVecLen {
        /// Sum of the per-stage lengths.
        expected: usize,
        /// Length of the supplied vector.
        got: usize,
    },
    /// `recover()` was called on a trainer launched without a segment
    /// factory (plain `launch`), which cannot rebuild dead stages.
    RecoveryUnsupported,
    /// The configured run store failed: the checkpoint segment could
    /// not be opened, written, or decoded.
    CheckpointStore {
        /// Underlying store or codec failure.
        detail: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Oom { stage, micro } => {
                write!(f, "OOM on stage {stage} at micro-batch {micro}")
            }
            ExecError::ResidencyLen { expected, got } => {
                write!(
                    f,
                    "residency vector length {got} does not match the stage count {expected}"
                )
            }
            ExecError::ResidencyZero { stage } => {
                write!(f, "residency K must be ≥ 1, but stage {stage} has K = 0")
            }
            ExecError::Schedule { detail } => {
                write!(f, "invalid schedule configuration: {detail}")
            }
            ExecError::StageDied { stage, during } => {
                write!(f, "stage {stage} died during {during}")
            }
            ExecError::ParamLenMismatch {
                stage,
                expected,
                got,
            } => {
                write!(
                    f,
                    "stage {stage} rejected a parameter vector of length {got} (expected {expected})"
                )
            }
            ExecError::ParamVecLen { expected, got } => {
                write!(
                    f,
                    "parameter vector length {got} does not match the stage layout total {expected}"
                )
            }
            ExecError::RecoveryUnsupported => {
                write!(
                    f,
                    "recovery unsupported: trainer was launched without a segment factory"
                )
            }
            ExecError::CheckpointStore { detail } => {
                write!(f, "checkpoint store: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// What phase of a micro-batch a task span executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskPhase {
    /// Forward pass.
    Forward,
    /// Full (unsplit) backward pass.
    Backward,
    /// Activation-gradient half of a split backward.
    BackwardInput,
    /// Weight-gradient half of a split backward.
    BackwardWeight,
}

/// One executed compute task, for schedule visualization and bubble
/// forensics (the Fig. 3 Gantt of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpan {
    /// Stage that executed the task (virtual stage for interleaved).
    pub stage: usize,
    /// Micro-batch index within its sync-round.
    pub micro: usize,
    /// Sync-round index.
    pub round: usize,
    /// True for a forward pass, false for any backward phase.
    pub forward: bool,
    /// Which compute phase ran.
    pub phase: TaskPhase,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds (includes dispatch overhead).
    pub end: f64,
}

/// Measured results of a pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Total simulated makespan, seconds.
    pub makespan: f64,
    /// Average sync-round time, seconds.
    pub round_time: f64,
    /// Training throughput, samples per second.
    pub throughput: f64,
    /// Busy fraction (incl. overhead) per stage over the makespan.
    pub stage_busy_utilization: Vec<f64>,
    /// Useful-compute fraction per stage over the makespan — the paper's
    /// "Avg. GPU Utilization".
    pub stage_gpu_utilization: Vec<f64>,
    /// Peak memory per stage, bytes (static + resident activations).
    pub stage_peak_memory: Vec<u64>,
    /// Idle time per stage within the makespan, seconds.
    pub stage_idle_time: Vec<f64>,
    /// Analytic bubble per sync-round for the executed schedule (Eq. 2
    /// for the synchronous schedules), seconds.
    pub ssb_per_round: f64,
    /// Measured data-dependency bubble per stage per sync-round (idle
    /// beyond the analytic SSB), seconds.
    pub ddb_per_round: Vec<f64>,
    /// Number of sync-rounds executed.
    pub rounds: usize,
    /// Micro-batches per sync-round.
    pub micro_batches: usize,
    /// Every executed compute task in dispatch order (schedule trace).
    pub task_spans: Vec<TaskSpan>,
}

impl TaskSpan {
    /// The obs-layer record equivalent of this span.
    #[must_use]
    pub fn to_record(&self) -> ecofl_obs::SpanRecord {
        ecofl_obs::SpanRecord {
            domain: Domain::Pipeline,
            kind: match self.phase {
                TaskPhase::Forward => SpanKind::Forward,
                TaskPhase::Backward => SpanKind::Backward,
                TaskPhase::BackwardInput => SpanKind::BackwardInput,
                TaskPhase::BackwardWeight => SpanKind::BackwardWeight,
            },
            entity: self.stage,
            round: self.round,
            micro: self.micro,
            t0: self.start,
            t1: self.end,
        }
    }
}

/// Lifts raw task spans into a queryable [`TraceView`] — the bridge for
/// reports produced without a [`Tracer`] attached.
#[must_use]
pub fn spans_to_view(spans: &[TaskSpan]) -> TraceView {
    TraceView::from_records(
        spans
            .iter()
            .map(|s| ecofl_obs::TraceRecord::Span(s.to_record()))
            .collect(),
    )
}

impl ExecutionReport {
    /// A [`TraceView`] over this report's compute spans.
    #[must_use]
    pub fn trace_view(&self) -> TraceView {
        spans_to_view(&self.task_spans)
    }

    /// Energy consumed per stage in joules, given each stage device's
    /// power profile (two-state model: idle draw plus load draw while
    /// executing FP/BP work).
    ///
    /// # Panics
    /// Panics if `power.len()` differs from the stage count.
    #[must_use]
    pub fn stage_energy_joules(&self, power: &[ecofl_simnet::PowerProfile]) -> Vec<f64> {
        assert_eq!(
            power.len(),
            self.stage_busy_utilization.len(),
            "stage_energy_joules: power profile count mismatch"
        );
        self.stage_busy_utilization
            .iter()
            .zip(power)
            .map(|(&busy_frac, p)| {
                let busy_time = busy_frac * self.makespan;
                p.idle_watts * self.makespan + (p.load_watts - p.idle_watts) * busy_time
            })
            .collect()
    }

    /// Samples trained per joule across the whole pipeline — the energy
    /// efficiency a battery-conscious deployment optimizes.
    ///
    /// # Panics
    /// Panics if `power.len()` differs from the stage count.
    #[must_use]
    pub fn samples_per_joule(&self, power: &[ecofl_simnet::PowerProfile]) -> f64 {
        let total: f64 = self.stage_energy_joules(power).iter().sum();
        let samples = self.throughput * self.makespan;
        samples / total.max(1e-12)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Task {
    Fp(usize),
    Bp(usize),
    /// Activation-gradient half of a split backward.
    BpIn(usize),
    /// Weight-gradient half of a split backward.
    BpW(usize),
}

#[derive(Debug)]
enum Event {
    ComputeDone { stage: usize, task: Task },
    FwdArrive { stage: usize, micro: usize },
    BwdArrive { stage: usize, micro: usize },
}

struct StageState {
    /// Next micro-batch index to forward.
    fp_next: usize,
    /// Forwards completed this round.
    fp_done: usize,
    /// Activations arrived from upstream, in arrival order.
    fp_inbox: VecDeque<usize>,
    /// Backward tasks ready to run (full backward, or the
    /// activation-gradient half under a split schedule).
    bp_ready: VecDeque<usize>,
    /// Deferred weight-gradient tasks (split schedules only).
    bpw_ready: VecDeque<usize>,
    /// Backwards completed this round.
    bp_done: usize,
    /// Micro-batches resident (FP issued, BP not finished).
    in_flight: usize,
    peak_mem: u64,
    useful_time: f64,
    /// Serialization horizon for the outgoing forward link.
    fwd_link_free: f64,
    /// Serialization horizon for the outgoing backward link.
    bwd_link_free: f64,
}

/// `exec_*` metric handles, resolved once in
/// [`PipelineExecutor::with_metrics`] so the event loop's hot path
/// never touches the hub's registry maps.
#[derive(Clone)]
struct ExecMetrics {
    /// Compute tasks dispatched (forwards, backwards and split halves).
    tasks: Counter,
    /// Virtual duration of each dispatched compute task, seconds.
    task_s: Histogram,
    /// Virtual duration of each sync-round, seconds.
    round_s: Histogram,
}

/// Event-driven pipeline executor.
pub struct PipelineExecutor<'a> {
    profile: &'a PipelineProfile,
    /// The chunked profile actually executed under an interleaved
    /// schedule (`None` for single-chunk schedules).
    virtual_profile: Option<PipelineProfile>,
    schedule: Box<dyn PipelineSchedule>,
    /// Per-compute-task dispatch overhead, seconds.
    pub task_overhead: f64,
    metrics: Option<ExecMetrics>,
}

impl<'a> PipelineExecutor<'a> {
    /// Creates an executor for `profile` under `policy`.
    ///
    /// # Errors
    /// [`ExecError::ResidencyLen`] when a residency vector does not have
    /// one entry per (virtual) stage, [`ExecError::ResidencyZero`] when an
    /// entry is zero, [`ExecError::Schedule`] when the schedule
    /// configuration itself is invalid (e.g. interleave depth 0).
    pub fn new(profile: &'a PipelineProfile, policy: SchedulePolicy) -> Result<Self, ExecError> {
        let (k, expected) = match &policy {
            SchedulePolicy::OneFOneBSync { k }
            | SchedulePolicy::OneFOneBAsync { k }
            | SchedulePolicy::ZeroBubble { k } => (Some(k), profile.num_stages()),
            SchedulePolicy::Interleaved { k, v } => {
                if *v == 0 {
                    return Err(ExecError::Schedule {
                        detail: "interleave depth v must be ≥ 1".into(),
                    });
                }
                (Some(k), profile.num_stages() * v)
            }
            SchedulePolicy::BafSync => (None, profile.num_stages()),
        };
        if let Some(k) = k {
            if k.len() != expected {
                return Err(ExecError::ResidencyLen {
                    expected,
                    got: k.len(),
                });
            }
            if let Some(stage) = k.iter().position(|&x| x == 0) {
                return Err(ExecError::ResidencyZero { stage });
            }
        }
        let virtual_profile = match &policy {
            SchedulePolicy::Interleaved { v, .. } if *v > 1 => {
                Some(interleave_profile(profile, *v))
            }
            _ => None,
        };
        Ok(Self {
            profile,
            virtual_profile,
            schedule: policy.instantiate(),
            task_overhead: DEFAULT_TASK_OVERHEAD,
            metrics: None,
        })
    }

    /// The profile the event loop actually executes: the interleaved
    /// virtual-stage profile when one exists, the physical profile
    /// otherwise.
    #[must_use]
    pub fn exec_profile(&self) -> &PipelineProfile {
        self.virtual_profile.as_ref().unwrap_or(self.profile)
    }

    /// The schedule this executor runs.
    #[must_use]
    pub fn schedule(&self) -> &dyn PipelineSchedule {
        self.schedule.as_ref()
    }

    /// Overrides the per-task dispatch overhead.
    #[must_use]
    pub fn with_task_overhead(mut self, overhead: f64) -> Self {
        assert!(overhead >= 0.0);
        self.task_overhead = overhead;
        self
    }

    /// Attaches a streaming metrics hub: every run then records
    /// `exec_tasks` (compute tasks dispatched), `exec_task_s` (virtual
    /// task durations) and `exec_round_s` (virtual round durations).
    /// The hub only *observes* — reports, traces and virtual timestamps
    /// are bit-identical with or without it (asserted by
    /// `tests/metrics_perturbation.rs`).
    #[must_use]
    pub fn with_metrics(mut self, hub: &MetricsHub) -> Self {
        self.metrics = Some(ExecMetrics {
            tasks: hub.counter("exec_tasks"),
            task_s: hub.histogram("exec_task_s"),
            round_s: hub.histogram("exec_round_s"),
        });
        self
    }

    /// Runs `rounds` sync-rounds of `micro_batches` micro-batches each.
    ///
    /// # Errors
    /// Returns [`ExecError::Oom`] when a forward's activation allocation
    /// exceeds a stage device's memory.
    pub fn run(&self, micro_batches: usize, rounds: usize) -> Result<ExecutionReport, ExecError> {
        self.run_inner(micro_batches, rounds, None)
    }

    /// [`run`](Self::run), recording forward/backward compute spans and
    /// activation/gradient transfer spans per micro-batch into `tracer`
    /// (domain [`Domain::Pipeline`]) at virtual timestamps.
    ///
    /// # Errors
    /// Returns [`ExecError::Oom`] exactly as [`run`](Self::run) does; the
    /// spans recorded up to the failing allocation stay in the trace.
    pub fn run_traced(
        &self,
        micro_batches: usize,
        rounds: usize,
        tracer: &Tracer,
    ) -> Result<ExecutionReport, ExecError> {
        self.run_inner(micro_batches, rounds, Some(tracer))
    }

    fn run_inner(
        &self,
        micro_batches: usize,
        rounds: usize,
        tracer: Option<&Tracer>,
    ) -> Result<ExecutionReport, ExecError> {
        assert!(micro_batches > 0 && rounds > 0);
        let profile = self.exec_profile();
        let s_count = profile.num_stages();
        let stages = profile.stages();

        // One simulated device per physical device; under interleaving
        // several virtual stages share one.
        let dev_count = stages.iter().map(|sp| sp.device).max().unwrap_or(0) + 1;
        let mut devices: Vec<Device> = (0..dev_count)
            .map(|d| {
                let sp = stages
                    .iter()
                    .find(|sp| sp.device == d)
                    .expect("contiguous device indices");
                Device::new(sp.clone_device_spec())
            })
            .collect();
        let mut dev_stages: Vec<Vec<usize>> = vec![Vec::new(); dev_count];
        let mut oom_setup: Option<usize> = None;
        for (i, sp) in stages.iter().enumerate() {
            dev_stages[sp.device].push(i);
            // Static footprint: params + grads + optimizer state,
            // multiplied by stashed weight versions for async 1F1B.
            let static_total = sp.static_bytes() * self.schedule.weight_versions(i);
            // Weight stashing can itself overflow the device.
            if !devices[sp.device].try_allocate(static_total) && oom_setup.is_none() {
                oom_setup = Some(i);
            }
        }
        if let Some(stage) = oom_setup {
            return Err(ExecError::Oom { stage, micro: 0 });
        }
        let state: Vec<StageState> = stages
            .iter()
            .map(|sp| StageState {
                fp_next: 0,
                fp_done: 0,
                fp_inbox: VecDeque::new(),
                bp_ready: VecDeque::new(),
                bpw_ready: VecDeque::new(),
                bp_done: 0,
                in_flight: 0,
                peak_mem: devices[sp.device].allocated_bytes(),
                useful_time: 0.0,
                fwd_link_free: 0.0,
                bwd_link_free: 0.0,
            })
            .collect();

        let mut queue: EventQueue<Event> = EventQueue::new();
        let mut engine = Engine {
            profile,
            schedule: self.schedule.as_ref(),
            task_overhead: self.task_overhead,
            state,
            devices,
            device_busy: vec![false; dev_count],
            dev_stages,
            busy_trackers: vec![BusyTracker::new(); s_count],
            completions: ThroughputTracker::new(),
            task_spans: Vec::new(),
            metrics: self.metrics.as_ref(),
        };
        let mut round_ends = Vec::with_capacity(rounds);

        // Flush-free schedules stream every micro-batch through one
        // continuous 1F1B window; synchronous schedules flush per round.
        let (outer_rounds, batch_per_round) = if self.schedule.flush_free() {
            (1, micro_batches * rounds)
        } else {
            (rounds, micro_batches)
        };
        for round in 0..outer_rounds {
            let micro_batches = batch_per_round;
            // Reset per-round counters (weights update at the flush; its
            // cost is negligible next to FP/BP and omitted, as in §4.3's
            // ideal model).
            for st in engine.state.iter_mut() {
                st.fp_next = 0;
                st.fp_done = 0;
                st.bp_done = 0;
                debug_assert!(st.fp_inbox.is_empty());
                debug_assert!(st.bp_ready.is_empty());
                debug_assert!(st.bpw_ready.is_empty());
                debug_assert_eq!(st.in_flight, 0);
            }
            let round_start = queue.now();
            // Kick stage 0's device (only stage 0 can self-start).
            let dev0 = profile.stages()[0].device;
            engine.dispatch_device(dev0, &mut queue, micro_batches, round, tracer)?;

            while let Some((now, ev)) = queue.pop() {
                match ev {
                    Event::ComputeDone { stage, task } => {
                        engine.on_compute_done(stage, task, now, &mut queue, round, tracer);
                    }
                    Event::FwdArrive { stage, micro } => {
                        engine.state[stage].fp_inbox.push_back(micro);
                    }
                    Event::BwdArrive { stage, micro } => {
                        engine.state[stage].bp_ready.push_back(micro);
                    }
                }
                let dev = match ev {
                    Event::ComputeDone { stage, .. }
                    | Event::FwdArrive { stage, .. }
                    | Event::BwdArrive { stage, .. } => profile.stages()[stage].device,
                };
                engine.dispatch_device(dev, &mut queue, micro_batches, round, tracer)?;
            }
            let round_end = queue.now();
            debug_assert!(
                engine.state.iter().all(|st| st.bp_done == micro_batches),
                "round ended with incomplete backwards"
            );
            debug_assert!(round_end > round_start);
            if let Some(m) = &self.metrics {
                m.round_s.record(round_end - round_start);
            }
            round_ends.push(round_end);
        }

        let makespan = queue.now();
        let samples = (rounds * micro_batches * profile.micro_batch()) as f64;
        let ssb = self.schedule.bubble_per_round(profile);
        let mut stage_busy = Vec::with_capacity(s_count);
        let mut stage_gpu = Vec::with_capacity(s_count);
        let mut stage_idle = Vec::with_capacity(s_count);
        let mut ddb = Vec::with_capacity(s_count);
        for (i, st) in engine.state.iter().enumerate() {
            let busy = engine.busy_trackers[i].busy_time(0.0, makespan);
            stage_busy.push(busy / makespan);
            stage_gpu.push(st.useful_time / makespan);
            let idle = makespan - busy;
            stage_idle.push(idle);
            ddb.push(((idle / rounds as f64) - ssb).max(0.0));
        }

        Ok(ExecutionReport {
            makespan,
            round_time: makespan / rounds as f64,
            throughput: samples / makespan,
            stage_busy_utilization: stage_busy,
            stage_gpu_utilization: stage_gpu,
            stage_peak_memory: engine.state.iter().map(|st| st.peak_mem).collect(),
            stage_idle_time: stage_idle,
            ssb_per_round: ssb,
            ddb_per_round: ddb,
            rounds,
            micro_batches,
            task_spans: engine.task_spans,
        })
    }
}

/// Which task class a dispatch pass scans for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pass {
    /// Ready backwards (full, or the activation-gradient half).
    Backward,
    /// Admissible forwards.
    Forward,
    /// Deferred weight-gradient halves (split schedules).
    Weight,
}

/// Mutable per-run execution state, split from [`PipelineExecutor`] so
/// the event handlers can borrow it wholesale.
struct Engine<'e> {
    profile: &'e PipelineProfile,
    schedule: &'e dyn PipelineSchedule,
    task_overhead: f64,
    state: Vec<StageState>,
    devices: Vec<Device>,
    device_busy: Vec<bool>,
    /// Stage indices hosted by each device, ascending.
    dev_stages: Vec<Vec<usize>>,
    busy_trackers: Vec<BusyTracker>,
    completions: ThroughputTracker,
    task_spans: Vec<TaskSpan>,
    metrics: Option<&'e ExecMetrics>,
}

impl Engine<'_> {
    /// Handles a finished compute task: frees the device, routes the
    /// produced activation/gradient, then re-dispatches the device.
    fn on_compute_done(
        &mut self,
        stage: usize,
        task: Task,
        now: f64,
        queue: &mut EventQueue<Event>,
        round: usize,
        tracer: Option<&Tracer>,
    ) {
        let s_count = self.state.len();
        let sp = &self.profile.stages()[stage];
        self.device_busy[sp.device] = false;
        match task {
            Task::Fp(m) => {
                self.state[stage].fp_done += 1;
                if stage + 1 < s_count {
                    // Serialize on the forward link.
                    let start = now.max(self.state[stage].fwd_link_free);
                    let done = start + sp.c_fwd;
                    self.state[stage].fwd_link_free = done;
                    if let Some(tr) = tracer {
                        tr.span(
                            Domain::Pipeline,
                            SpanKind::CommForward,
                            stage,
                            round,
                            m,
                            start,
                            done,
                        );
                    }
                    queue.schedule(
                        done,
                        Event::FwdArrive {
                            stage: stage + 1,
                            micro: m,
                        },
                    );
                } else {
                    // Last stage: its own backward becomes ready (possibly
                    // gated for BAF).
                    self.state[stage].bp_ready.push_back(m);
                }
            }
            Task::Bp(m) => {
                self.finish_backward(stage, m, sp.activation_bytes_per_mb, now);
                self.send_upstream_grad(stage, m, now, queue, round, tracer);
            }
            Task::BpIn(m) => {
                // Upstream gradient leaves now; the weight half is
                // deferred into bubble time.
                self.state[stage].bpw_ready.push_back(m);
                self.send_upstream_grad(stage, m, now, queue, round, tracer);
            }
            Task::BpW(m) => {
                self.finish_backward(stage, m, sp.activation_bytes_per_mb, now);
            }
        }
    }

    /// Books the completion of micro-batch `m`'s backward at `stage`:
    /// counter, residency, activation memory, throughput.
    fn finish_backward(&mut self, stage: usize, _m: usize, activation_bytes: u64, now: f64) {
        let dev = self.profile.stages()[stage].device;
        self.state[stage].bp_done += 1;
        self.state[stage].in_flight -= 1;
        self.devices[dev].free(activation_bytes);
        if stage == 0 {
            self.completions
                .record(now, self.profile.micro_batch() as u64);
        }
    }

    /// Serializes micro-batch `m`'s gradient onto the backward link out of
    /// `stage` (no-op at stage 0).
    fn send_upstream_grad(
        &mut self,
        stage: usize,
        m: usize,
        now: f64,
        queue: &mut EventQueue<Event>,
        round: usize,
        tracer: Option<&Tracer>,
    ) {
        if stage == 0 {
            return;
        }
        let up = &self.profile.stages()[stage - 1];
        let start = now.max(self.state[stage].bwd_link_free);
        let done = start + up.c_bwd;
        self.state[stage].bwd_link_free = done;
        if let Some(tr) = tracer {
            tr.span(
                Domain::Pipeline,
                SpanKind::CommBackward,
                stage,
                round,
                m,
                start,
                done,
            );
        }
        queue.schedule(
            done,
            Event::BwdArrive {
                stage: stage - 1,
                micro: m,
            },
        );
    }

    /// Dispatches the next admissible task on `dev` if it is idle: scans
    /// the device's stages in pass order (backwards before forwards for
    /// early-backward schedules, forwards first for BAF-Sync, deferred
    /// weight gradients last) and starts at most one task.
    fn dispatch_device(
        &mut self,
        dev: usize,
        queue: &mut EventQueue<Event>,
        micro_batches: usize,
        round: usize,
        tracer: Option<&Tracer>,
    ) -> Result<(), ExecError> {
        if self.device_busy[dev] {
            return Ok(());
        }
        let passes: &[Pass] = if self.schedule.prefer_backward() {
            &[Pass::Backward, Pass::Forward, Pass::Weight]
        } else {
            &[Pass::Forward, Pass::Backward]
        };
        for &pass in passes {
            for i in 0..self.dev_stages[dev].len() {
                let stage = self.dev_stages[dev][i];
                if let Some(task) = self.select_task(stage, pass, micro_batches)? {
                    self.start_task(stage, task, queue, round, tracer);
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Pops the next `pass`-class task on `stage` if the schedule admits
    /// one, performing the forward's activation allocation.
    fn select_task(
        &mut self,
        stage: usize,
        pass: Pass,
        micro_batches: usize,
    ) -> Result<Option<Task>, ExecError> {
        let s_count = self.state.len();
        let sp = &self.profile.stages()[stage];
        match pass {
            Pass::Backward => {
                let allowed = self.schedule.backward_allowed(
                    stage,
                    s_count,
                    self.state[stage].fp_done,
                    micro_batches,
                );
                if allowed && !self.state[stage].bp_ready.is_empty() {
                    let m = self.state[stage].bp_ready.pop_front().expect("nonempty");
                    Ok(Some(if self.schedule.split_backward() {
                        Task::BpIn(m)
                    } else {
                        Task::Bp(m)
                    }))
                } else {
                    Ok(None)
                }
            }
            Pass::Weight => Ok(self.state[stage].bpw_ready.pop_front().map(Task::BpW)),
            Pass::Forward => {
                let fp_allowed = self
                    .schedule
                    .residency(stage)
                    .is_none_or(|k| self.state[stage].in_flight < k);
                let fp_available = self.state[stage].fp_next < micro_batches
                    && (stage == 0 || {
                        // In-order arrival: the inbox head must be the next
                        // micro-batch.
                        self.state[stage].fp_inbox.front() == Some(&self.state[stage].fp_next)
                    });
                if !(fp_allowed && fp_available) {
                    return Ok(None);
                }
                let m = self.state[stage].fp_next;
                let dev = sp.device;
                if !self.devices[dev].try_allocate(sp.activation_bytes_per_mb) {
                    return Err(ExecError::Oom { stage, micro: m });
                }
                self.state[stage].in_flight += 1;
                self.state[stage].peak_mem = self.state[stage]
                    .peak_mem
                    .max(self.devices[dev].allocated_bytes());
                self.state[stage].fp_next += 1;
                if stage > 0 {
                    let head = self.state[stage].fp_inbox.pop_front();
                    debug_assert_eq!(head, Some(m));
                }
                Ok(Some(Task::Fp(m)))
            }
        }
    }

    /// Starts `task` on `stage`'s device, recording the span and
    /// scheduling its completion.
    fn start_task(
        &mut self,
        stage: usize,
        task: Task,
        queue: &mut EventQueue<Event>,
        round: usize,
        tracer: Option<&Tracer>,
    ) {
        let sp = &self.profile.stages()[stage];
        let now = queue.now();
        // Wall-clock duration is the profiled (efficiency-corrected)
        // stage time plus dispatch overhead; only the fraction of it
        // doing peak-rate arithmetic counts as "GPU-useful". A split
        // backward spends t_bwd/2 per half.
        let wall = match task {
            Task::Fp(_) => sp.t_fwd,
            Task::Bp(_) => sp.t_bwd,
            Task::BpIn(_) | Task::BpW(_) => sp.t_bwd * 0.5,
        };
        let duration = wall + self.task_overhead;
        self.device_busy[sp.device] = true;
        self.state[stage].useful_time += wall * sp.efficiency;
        self.busy_trackers[stage].record(now, now + duration);
        let (micro, phase) = match task {
            Task::Fp(m) => (m, TaskPhase::Forward),
            Task::Bp(m) => (m, TaskPhase::Backward),
            Task::BpIn(m) => (m, TaskPhase::BackwardInput),
            Task::BpW(m) => (m, TaskPhase::BackwardWeight),
        };
        self.task_spans.push(TaskSpan {
            stage,
            micro,
            round,
            forward: phase == TaskPhase::Forward,
            phase,
            start: now,
            end: now + duration,
        });
        if let Some(m) = self.metrics {
            m.tasks.inc(1);
            m.task_s.record(duration);
        }
        if let Some(tr) = tracer {
            let kind = match phase {
                TaskPhase::Forward => SpanKind::Forward,
                TaskPhase::Backward => SpanKind::Backward,
                TaskPhase::BackwardInput => SpanKind::BackwardInput,
                TaskPhase::BackwardWeight => SpanKind::BackwardWeight,
            };
            tr.span(
                Domain::Pipeline,
                kind,
                stage,
                round,
                micro,
                now,
                now + duration,
            );
        }
        queue.schedule(now + duration, Event::ComputeDone { stage, task });
    }
}

// Small helper: StageProfile carries times, not a DeviceSpec; reconstruct
// a memory-only spec for accounting. Compute rate is irrelevant here since
// stage times are pre-computed.
impl crate::profiler::StageProfile {
    fn clone_device_spec(&self) -> ecofl_simnet::DeviceSpec {
        ecofl_simnet::DeviceSpec::new(
            &format!("stage{}", self.device),
            1.0,
            self.memory_budget_bytes,
            1.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::p_bounds;
    use crate::profiler::PipelineProfile;
    use crate::schedule::DEFAULT_INTERLEAVE;
    use ecofl_models::efficientnet;
    use ecofl_simnet::{nano_h, tx2_n, Device, Link};

    fn profile(mbs: usize) -> PipelineProfile {
        let model = efficientnet(0);
        let l = model.num_layers();
        let devices = vec![Device::new(tx2_n()), Device::new(nano_h())];
        PipelineProfile::new(&model, &[0, l / 2, l], &devices, &Link::mbps_100(), mbs)
    }

    #[test]
    fn one_f_one_b_completes_all_micro_batches() {
        let p = profile(4);
        let k = p_bounds(&p);
        let exec = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k }).unwrap();
        let r = exec.run(8, 2).expect("no OOM");
        assert_eq!(r.rounds, 2);
        assert!(r.throughput > 0.0);
        assert!(r.makespan > 0.0);
        assert_eq!(r.stage_peak_memory.len(), 2);
    }

    #[test]
    fn wrong_residency_length_is_a_typed_error() {
        let p = profile(4);
        let err = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k: vec![2] })
            .err()
            .expect("must reject");
        assert_eq!(
            err,
            ExecError::ResidencyLen {
                expected: 2,
                got: 1
            }
        );
        let err = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k: vec![2, 0] })
            .err()
            .expect("must reject");
        assert_eq!(err, ExecError::ResidencyZero { stage: 1 });
        // Interleaved expects one entry per *virtual* stage.
        let err = PipelineExecutor::new(
            &p,
            SchedulePolicy::Interleaved {
                k: vec![2, 2],
                v: 2,
            },
        )
        .err()
        .expect("must reject");
        assert_eq!(
            err,
            ExecError::ResidencyLen {
                expected: 4,
                got: 2
            }
        );
        assert!(matches!(
            PipelineExecutor::new(&p, SchedulePolicy::Interleaved { k: vec![], v: 0 }),
            Err(ExecError::Schedule { .. })
        ));
    }

    #[test]
    fn traced_run_matches_untraced_and_accounts_idle() {
        let p = profile(4);
        let k = p_bounds(&p);
        let exec = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k }).unwrap();
        let tracer = Tracer::new();
        let traced = exec.run_traced(8, 2, &tracer).expect("no OOM");
        let plain = exec.run(8, 2).expect("no OOM");
        assert_eq!(traced.makespan, plain.makespan);
        assert_eq!(traced.task_spans, plain.task_spans);

        let view = tracer.view();
        assert_eq!(view.stage_count(), 2);
        assert_eq!(view.pipeline_rounds(), 2);
        // Trace-derived idle equals the report's stage idle totals.
        let report_idle: f64 = traced.stage_idle_time.iter().sum();
        assert!(
            (view.total_idle_time() - report_idle).abs() < 1e-9,
            "trace idle {} vs report idle {report_idle}",
            view.total_idle_time()
        );
        // Comm spans present in both directions.
        assert!(view
            .spans_of(Domain::Pipeline, SpanKind::CommForward)
            .next()
            .is_some());
        assert!(view
            .spans_of(Domain::Pipeline, SpanKind::CommBackward)
            .next()
            .is_some());
        // The spans_to_view bridge sees the same compute structure.
        let bridged = traced.trace_view();
        assert_eq!(bridged.stage_count(), view.stage_count());
        assert!((bridged.total_idle_time() - view.total_idle_time()).abs() < 1e-9);
    }

    #[test]
    fn throughput_grows_with_micro_batch_count() {
        // More micro-batches per round amortize the SSB.
        let p = profile(4);
        let k = p_bounds(&p);
        let exec = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k }).unwrap();
        let t4 = exec.run(4, 2).unwrap().throughput;
        let t16 = exec.run(16, 2).unwrap().throughput;
        assert!(t16 > t4, "throughput {t16} should exceed {t4}");
    }

    #[test]
    fn gpipe_holds_more_memory_than_1f1b() {
        let p = profile(4);
        let k = p_bounds(&p);
        let m = 8;
        let ours = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k })
            .unwrap()
            .run(m, 1)
            .unwrap();
        let gpipe = PipelineExecutor::new(&p, SchedulePolicy::BafSync)
            .unwrap()
            .run(m, 1)
            .unwrap();
        assert!(
            gpipe.stage_peak_memory[0] > ours.stage_peak_memory[0],
            "Gpipe peak {} must exceed 1F1B peak {}",
            gpipe.stage_peak_memory[0],
            ours.stage_peak_memory[0]
        );
    }

    #[test]
    fn equal_results_across_runs_deterministic() {
        let p = profile(8);
        let k = p_bounds(&p);
        let e1 = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k: k.clone() })
            .unwrap()
            .run(8, 3)
            .unwrap();
        let e2 = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k })
            .unwrap()
            .run(8, 3)
            .unwrap();
        assert_eq!(e1.makespan, e2.makespan);
        assert_eq!(e1.stage_peak_memory, e2.stage_peak_memory);
    }

    #[test]
    fn utilization_bounded() {
        let p = profile(8);
        let k = p_bounds(&p);
        let r = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k })
            .unwrap()
            .run(8, 2)
            .unwrap();
        for (&b, &g) in r
            .stage_busy_utilization
            .iter()
            .zip(&r.stage_gpu_utilization)
        {
            assert!((0.0..=1.0).contains(&b));
            assert!(g <= b, "useful fraction cannot exceed busy fraction");
        }
    }

    #[test]
    fn energy_accounting_two_state() {
        use ecofl_simnet::PowerProfile;
        let p = profile(4);
        let k = p_bounds(&p);
        let r = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k })
            .unwrap()
            .run(8, 1)
            .unwrap();
        let power = vec![PowerProfile::new(2.0, 10.0); 2];
        let energy = r.stage_energy_joules(&power);
        assert_eq!(energy.len(), 2);
        for (e, &u) in energy.iter().zip(&r.stage_busy_utilization) {
            let expected = 2.0 * r.makespan + 8.0 * u * r.makespan;
            assert!((e - expected).abs() < 1e-9);
        }
        assert!(r.samples_per_joule(&power) > 0.0);
    }

    #[test]
    fn async_1f1b_streams_without_flush() {
        // Flush-free streaming must beat the synchronous schedule for the
        // same total work (SSB paid once, not per round).
        let p = profile(4);
        let k = p_bounds(&p);
        let sync = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k: k.clone() })
            .unwrap()
            .run(8, 4)
            .unwrap();
        let asynchronous = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBAsync { k })
            .unwrap()
            .run(8, 4)
            .unwrap();
        assert!(
            asynchronous.throughput > sync.throughput,
            "async {} must beat sync {}",
            asynchronous.throughput,
            sync.throughput
        );
        // Same total work either way.
        let a = asynchronous.throughput * asynchronous.makespan;
        let b = sync.throughput * sync.makespan;
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn async_1f1b_stashes_weight_versions() {
        // PipeDream-style weight stashing multiplies the static footprint
        // by K_s — the §2 memory objection.
        let p = profile(4);
        let k = p_bounds(&p);
        let sync = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k: k.clone() })
            .unwrap()
            .run(4, 1)
            .unwrap();
        let asynchronous =
            PipelineExecutor::new(&p, SchedulePolicy::OneFOneBAsync { k: k.clone() })
                .unwrap()
                .run(4, 1)
                .unwrap();
        assert!(
            asynchronous.stage_peak_memory[0] > sync.stage_peak_memory[0],
            "stage 0 must hold {} weight versions",
            k[0]
        );
    }

    #[test]
    fn async_weight_stashing_can_oom_where_sync_fits() {
        // Shrink the stage-0 budget until K weight copies overflow but a
        // single copy plus activations still fits.
        let p = profile(4);
        let k = p_bounds(&p);
        let mut stages = p.stages().to_vec();
        let s0 = &mut stages[0];
        // One byte under the async peak (K weight copies + K resident
        // activations) but comfortably above the sync peak (one copy).
        s0.memory_budget_bytes = (s0.static_bytes() + s0.activation_bytes_per_mb) * k[0] as u64 - 1;
        let tight = PipelineProfile::from_stages(stages, p.micro_batch());
        assert!(
            PipelineExecutor::new(&tight, SchedulePolicy::OneFOneBSync { k: k.clone() })
                .unwrap()
                .run(4, 1)
                .is_ok()
        );
        assert!(matches!(
            PipelineExecutor::new(&tight, SchedulePolicy::OneFOneBAsync { k })
                .unwrap()
                .run(4, 1),
            Err(ExecError::Oom { stage: 0, .. })
        ));
    }

    #[test]
    fn small_k_creates_ddb() {
        // Starving the first stage with K=1 forces dependency bubbles
        // downstream relative to the proper P bounds.
        let p = profile(4);
        let proper = p_bounds(&p);
        let starved = vec![1; p.num_stages()];
        let good = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k: proper })
            .unwrap()
            .run(12, 1)
            .unwrap();
        let bad = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k: starved })
            .unwrap()
            .run(12, 1)
            .unwrap();
        assert!(
            bad.makespan > good.makespan,
            "starved pipeline {} should be slower than {}",
            bad.makespan,
            good.makespan
        );
    }

    #[test]
    fn zero_bubble_completes_and_splits_backward() {
        let p = profile(4);
        let k = p_bounds(&p);
        let m = 8;
        let zb = PipelineExecutor::new(&p, SchedulePolicy::ZeroBubble { k: k.clone() })
            .unwrap()
            .run(m, 2)
            .unwrap();
        // Per round and stage: m forwards + m input halves + m weight halves.
        assert_eq!(zb.task_spans.len(), 2 * 3 * m * p.num_stages());
        let inputs = zb
            .task_spans
            .iter()
            .filter(|s| s.phase == TaskPhase::BackwardInput)
            .count();
        let weights = zb
            .task_spans
            .iter()
            .filter(|s| s.phase == TaskPhase::BackwardWeight)
            .count();
        assert_eq!(inputs, 2 * m * p.num_stages());
        assert_eq!(weights, 2 * m * p.num_stages());
        // The analytic bubble must undercut Eq. 2.
        let sync = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k })
            .unwrap()
            .run(m, 2)
            .unwrap();
        assert!(zb.ssb_per_round < sync.ssb_per_round);
    }

    #[test]
    fn interleaved_runs_virtual_stages_per_device() {
        use crate::orchestrator::k_bounds;
        let p = profile(4);
        let vp = crate::schedule::interleave_profile(&p, DEFAULT_INTERLEAVE);
        let k = k_bounds(&vp).expect("virtual stages fit");
        let exec = PipelineExecutor::new(
            &p,
            SchedulePolicy::Interleaved {
                k,
                v: DEFAULT_INTERLEAVE,
            },
        )
        .unwrap();
        let m = 8;
        let r = exec.run(m, 1).unwrap();
        // Report is per *virtual* stage.
        assert_eq!(r.stage_peak_memory.len(), 2 * DEFAULT_INTERLEAVE);
        assert_eq!(r.task_spans.len(), 2 * m * 2 * DEFAULT_INTERLEAVE);
        // One compute at a time per device: spans of virtual stages sharing
        // a device never overlap.
        for (i, a) in r.task_spans.iter().enumerate() {
            for b in &r.task_spans[i + 1..] {
                if vp.stages()[a.stage].device == vp.stages()[b.stage].device {
                    assert!(
                        a.end <= b.start + 1e-12 || b.end <= a.start + 1e-12,
                        "device-sharing spans overlap: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }
}
