//! Discrete-event execution of pipeline-training schedules.
//!
//! One executor runs both schedule policies the paper compares:
//!
//! - **1F1B-Sync** (Eco-FL, §4.1): every stage prefers the earliest ready
//!   backward task (the *early backward schedule* that releases activation
//!   memory for reuse) and admits a new forward only while fewer than
//!   `K_s` micro-batches are resident;
//! - **BAF-Sync** (Gpipe): forwards for the whole sync-round run first,
//!   backwards only begin after the last stage has forwarded every
//!   micro-batch, so all `M` activations stay resident.
//!
//! Memory is *accounted, not assumed*: each forward allocates the stage's
//! per-micro-batch activation bytes on the simulated device and each
//! backward releases them; exceeding capacity aborts the run with
//! [`ExecError::Oom`] — which is exactly how the Gpipe rows of Table 2
//! fail while 1F1B-Sync fits.
//!
//! Devices execute one compute task at a time; links serialize transfers
//! per direction. A fixed per-task dispatch overhead models kernel-launch
//! and synchronization costs, making "GPU utilization" (useful compute ÷
//! makespan) improve with micro-batch size the way Table 2 reports.

use crate::profiler::PipelineProfile;
use ecofl_compat::serde::{Deserialize, Serialize};
use ecofl_obs::{Domain, SpanKind, TraceView, Tracer};
use ecofl_simnet::{BusyTracker, Device, EventQueue, ThroughputTracker};
use std::collections::VecDeque;

/// Default per-compute-task dispatch overhead in seconds (kernel launch,
/// synchronization, scheduler hop).
pub const DEFAULT_TASK_OVERHEAD: f64 = 0.002;

/// Which pipeline schedule to run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchedulePolicy {
    /// Eco-FL's memory-efficient synchronous 1F1B with per-stage
    /// residency limits `K_s`.
    OneFOneBSync {
        /// Max forwards resident per stage (`K_s = min(P_s, Q_s)`).
        k: Vec<usize>,
    },
    /// Gpipe's backward-after-forward synchronous schedule: all `M`
    /// forwards precede any backward.
    BafSync,
    /// PipeDream's asynchronous 1F1B: same per-stage ordering as
    /// 1F1B-Sync but no pipeline flush — micro-batches stream across
    /// sync-round boundaries, which removes the SSB but requires each
    /// stage to stash one weight version per in-flight micro-batch
    /// (`K_s` copies of its parameters). That weight-stashing memory is
    /// the reason §2 rules PipeDream out for memory-limited IoT devices.
    OneFOneBAsync {
        /// Max forwards resident per stage.
        k: Vec<usize>,
    },
}

impl SchedulePolicy {
    /// Per-stage residency limit, if the policy bounds one.
    fn residency(&self, stage: usize) -> Option<usize> {
        match self {
            SchedulePolicy::OneFOneBSync { k } | SchedulePolicy::OneFOneBAsync { k } => {
                Some(k[stage])
            }
            SchedulePolicy::BafSync => None,
        }
    }

    /// Weight versions stashed per stage (1 unless weight-stashing async).
    fn weight_versions(&self, stage: usize) -> u64 {
        match self {
            SchedulePolicy::OneFOneBAsync { k } => k[stage] as u64,
            _ => 1,
        }
    }

    /// Whether micro-batches stream across round boundaries (no flush).
    fn flush_free(&self) -> bool {
        matches!(self, SchedulePolicy::OneFOneBAsync { .. })
    }
}

/// Why a run aborted.
///
/// The simulated executor only produces [`ExecError::Oom`]; the real
/// threaded runtime ([`crate::runtime`]) produces the remaining
/// variants, which together form its never-panic contract: every
/// runtime disturbance (stage death, shape mismatch, unrecoverable
/// trainer) surfaces as one of these in bounded time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecError {
    /// Stage `stage` exceeded its device memory at micro-batch `micro`.
    Oom {
        /// Stage index that overflowed.
        stage: usize,
        /// Micro-batch whose forward allocation failed.
        micro: usize,
    },
    /// A stage thread of the real runtime died (panic, injected fault,
    /// or channel disconnect cascade). `stage` is the *first* stage to
    /// die — neighbours that fail afterwards from the resulting channel
    /// disconnects are not reported.
    StageDied {
        /// First stage that died.
        stage: usize,
        /// What the stage was doing when it died.
        during: String,
    },
    /// `SetParams` carried a vector whose length does not match the
    /// stage's parameter count; the stage refused to apply it (no
    /// partial/stale-tail write happens).
    ParamLenMismatch {
        /// Stage that rejected the vector.
        stage: usize,
        /// The stage's own flat parameter count.
        expected: usize,
        /// Length of the rejected vector.
        got: usize,
    },
    /// The full flat parameter vector handed to `set_params` does not
    /// match the sum of the per-stage lengths.
    ParamVecLen {
        /// Sum of the per-stage lengths.
        expected: usize,
        /// Length of the supplied vector.
        got: usize,
    },
    /// `recover()` was called on a trainer launched without a segment
    /// factory (plain `launch`), which cannot rebuild dead stages.
    RecoveryUnsupported,
    /// The configured run store failed: the checkpoint segment could
    /// not be opened, written, or decoded.
    CheckpointStore {
        /// Underlying store or codec failure.
        detail: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Oom { stage, micro } => {
                write!(f, "OOM on stage {stage} at micro-batch {micro}")
            }
            ExecError::StageDied { stage, during } => {
                write!(f, "stage {stage} died during {during}")
            }
            ExecError::ParamLenMismatch {
                stage,
                expected,
                got,
            } => {
                write!(
                    f,
                    "stage {stage} rejected a parameter vector of length {got} (expected {expected})"
                )
            }
            ExecError::ParamVecLen { expected, got } => {
                write!(
                    f,
                    "parameter vector length {got} does not match the stage layout total {expected}"
                )
            }
            ExecError::RecoveryUnsupported => {
                write!(
                    f,
                    "recovery unsupported: trainer was launched without a segment factory"
                )
            }
            ExecError::CheckpointStore { detail } => {
                write!(f, "checkpoint store: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// One executed compute task, for schedule visualization and bubble
/// forensics (the Fig. 3 Gantt of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpan {
    /// Stage that executed the task.
    pub stage: usize,
    /// Micro-batch index within its sync-round.
    pub micro: usize,
    /// Sync-round index.
    pub round: usize,
    /// True for a forward pass, false for a backward pass.
    pub forward: bool,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds (includes dispatch overhead).
    pub end: f64,
}

/// Measured results of a pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Total simulated makespan, seconds.
    pub makespan: f64,
    /// Average sync-round time, seconds.
    pub round_time: f64,
    /// Training throughput, samples per second.
    pub throughput: f64,
    /// Busy fraction (incl. overhead) per stage over the makespan.
    pub stage_busy_utilization: Vec<f64>,
    /// Useful-compute fraction per stage over the makespan — the paper's
    /// "Avg. GPU Utilization".
    pub stage_gpu_utilization: Vec<f64>,
    /// Peak memory per stage, bytes (static + resident activations).
    pub stage_peak_memory: Vec<u64>,
    /// Idle time per stage within the makespan, seconds.
    pub stage_idle_time: Vec<f64>,
    /// Analytic synchronous static bubble per sync-round (Eq. 2), seconds.
    pub ssb_per_round: f64,
    /// Measured data-dependency bubble per stage per sync-round (idle
    /// beyond the analytic SSB), seconds.
    pub ddb_per_round: Vec<f64>,
    /// Number of sync-rounds executed.
    pub rounds: usize,
    /// Micro-batches per sync-round.
    pub micro_batches: usize,
    /// Every executed compute task in dispatch order (schedule trace).
    pub task_spans: Vec<TaskSpan>,
}

impl TaskSpan {
    /// The obs-layer record equivalent of this span.
    #[must_use]
    pub fn to_record(&self) -> ecofl_obs::SpanRecord {
        ecofl_obs::SpanRecord {
            domain: Domain::Pipeline,
            kind: if self.forward {
                SpanKind::Forward
            } else {
                SpanKind::Backward
            },
            entity: self.stage,
            round: self.round,
            micro: self.micro,
            t0: self.start,
            t1: self.end,
        }
    }
}

/// Lifts raw task spans into a queryable [`TraceView`] — the bridge for
/// reports produced without a [`Tracer`] attached.
#[must_use]
pub fn spans_to_view(spans: &[TaskSpan]) -> TraceView {
    TraceView::from_records(
        spans
            .iter()
            .map(|s| ecofl_obs::TraceRecord::Span(s.to_record()))
            .collect(),
    )
}

impl ExecutionReport {
    /// A [`TraceView`] over this report's compute spans.
    #[must_use]
    pub fn trace_view(&self) -> TraceView {
        spans_to_view(&self.task_spans)
    }

    /// Energy consumed per stage in joules, given each stage device's
    /// power profile (two-state model: idle draw plus load draw while
    /// executing FP/BP work).
    ///
    /// # Panics
    /// Panics if `power.len()` differs from the stage count.
    #[must_use]
    pub fn stage_energy_joules(&self, power: &[ecofl_simnet::PowerProfile]) -> Vec<f64> {
        assert_eq!(
            power.len(),
            self.stage_busy_utilization.len(),
            "stage_energy_joules: power profile count mismatch"
        );
        self.stage_busy_utilization
            .iter()
            .zip(power)
            .map(|(&busy_frac, p)| {
                let busy_time = busy_frac * self.makespan;
                p.idle_watts * self.makespan + (p.load_watts - p.idle_watts) * busy_time
            })
            .collect()
    }

    /// Samples trained per joule across the whole pipeline — the energy
    /// efficiency a battery-conscious deployment optimizes.
    ///
    /// # Panics
    /// Panics if `power.len()` differs from the stage count.
    #[must_use]
    pub fn samples_per_joule(&self, power: &[ecofl_simnet::PowerProfile]) -> f64 {
        let total: f64 = self.stage_energy_joules(power).iter().sum();
        let samples = self.throughput * self.makespan;
        samples / total.max(1e-12)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Task {
    Fp(usize),
    Bp(usize),
}

#[derive(Debug)]
enum Event {
    ComputeDone { stage: usize, task: Task },
    FwdArrive { stage: usize, micro: usize },
    BwdArrive { stage: usize, micro: usize },
}

struct StageState {
    device: Device,
    /// Next micro-batch index to forward.
    fp_next: usize,
    /// Forwards completed this round.
    fp_done: usize,
    /// Activations arrived from upstream, in arrival order.
    fp_inbox: VecDeque<usize>,
    /// Backward tasks ready to run.
    bp_ready: VecDeque<usize>,
    /// Backwards completed this round.
    bp_done: usize,
    /// Micro-batches resident (FP issued, BP not finished).
    in_flight: usize,
    busy: bool,
    peak_mem: u64,
    useful_time: f64,
    /// Serialization horizon for the outgoing forward link.
    fwd_link_free: f64,
    /// Serialization horizon for the outgoing backward link.
    bwd_link_free: f64,
}

/// Event-driven pipeline executor.
pub struct PipelineExecutor<'a> {
    profile: &'a PipelineProfile,
    policy: SchedulePolicy,
    /// Per-compute-task dispatch overhead, seconds.
    pub task_overhead: f64,
}

impl<'a> PipelineExecutor<'a> {
    /// Creates an executor for `profile` under `policy`.
    ///
    /// # Panics
    /// Panics if a `OneFOneBSync` residency vector has the wrong length or
    /// a zero entry.
    #[must_use]
    pub fn new(profile: &'a PipelineProfile, policy: SchedulePolicy) -> Self {
        if let SchedulePolicy::OneFOneBSync { k } | SchedulePolicy::OneFOneBAsync { k } = &policy {
            assert_eq!(
                k.len(),
                profile.num_stages(),
                "executor: K vector length mismatch"
            );
            assert!(k.iter().all(|&x| x > 0), "executor: K entries must be ≥ 1");
        }
        Self {
            profile,
            policy,
            task_overhead: DEFAULT_TASK_OVERHEAD,
        }
    }

    /// Overrides the per-task dispatch overhead.
    #[must_use]
    pub fn with_task_overhead(mut self, overhead: f64) -> Self {
        assert!(overhead >= 0.0);
        self.task_overhead = overhead;
        self
    }

    /// Runs `rounds` sync-rounds of `micro_batches` micro-batches each.
    ///
    /// # Errors
    /// Returns [`ExecError::Oom`] when a forward's activation allocation
    /// exceeds a stage device's memory.
    pub fn run(&self, micro_batches: usize, rounds: usize) -> Result<ExecutionReport, ExecError> {
        self.run_inner(micro_batches, rounds, None)
    }

    /// [`run`](Self::run), recording forward/backward compute spans and
    /// activation/gradient transfer spans per micro-batch into `tracer`
    /// (domain [`Domain::Pipeline`]) at virtual timestamps.
    ///
    /// # Errors
    /// Returns [`ExecError::Oom`] exactly as [`run`](Self::run) does; the
    /// spans recorded up to the failing allocation stay in the trace.
    pub fn run_traced(
        &self,
        micro_batches: usize,
        rounds: usize,
        tracer: &Tracer,
    ) -> Result<ExecutionReport, ExecError> {
        self.run_inner(micro_batches, rounds, Some(tracer))
    }

    fn run_inner(
        &self,
        micro_batches: usize,
        rounds: usize,
        tracer: Option<&Tracer>,
    ) -> Result<ExecutionReport, ExecError> {
        assert!(micro_batches > 0 && rounds > 0);
        let s_count = self.profile.num_stages();
        let stages = self.profile.stages();

        let mut oom_setup: Option<usize> = None;
        let mut state: Vec<StageState> = stages
            .iter()
            .map(|sp| {
                let mut device = Device::new(sp.clone_device_spec());
                // Static footprint: params + grads + optimizer state,
                // multiplied by stashed weight versions for async 1F1B.
                let static_total = sp.static_bytes() * self.policy.weight_versions(sp.device);
                let ok = device.try_allocate(static_total);
                // Weight stashing can itself overflow the device.
                if !ok {
                    oom_setup = Some(sp.device);
                }
                let peak_mem = device.allocated_bytes();
                StageState {
                    device,
                    fp_next: 0,
                    fp_done: 0,
                    fp_inbox: VecDeque::new(),
                    bp_ready: VecDeque::new(),
                    bp_done: 0,
                    in_flight: 0,
                    busy: false,
                    peak_mem,
                    useful_time: 0.0,
                    fwd_link_free: 0.0,
                    bwd_link_free: 0.0,
                }
            })
            .collect();

        if let Some(stage) = oom_setup {
            return Err(ExecError::Oom { stage, micro: 0 });
        }
        let mut queue: EventQueue<Event> = EventQueue::new();
        let mut busy_trackers = vec![BusyTracker::new(); s_count];
        let mut completions = ThroughputTracker::new();
        let mut round_ends = Vec::with_capacity(rounds);
        let mut task_spans: Vec<TaskSpan> = Vec::new();
        #[allow(unused_assignments)]
        let mut current_round = 0usize;

        // Flush-free schedules stream every micro-batch through one
        // continuous 1F1B window; synchronous schedules flush per round.
        let (outer_rounds, batch_per_round) = if self.policy.flush_free() {
            (1, micro_batches * rounds)
        } else {
            (rounds, micro_batches)
        };
        for round in 0..outer_rounds {
            current_round = round;
            let micro_batches = batch_per_round;
            // Reset per-round counters (weights update at the flush; its
            // cost is negligible next to FP/BP and omitted, as in §4.3's
            // ideal model).
            for st in state.iter_mut() {
                st.fp_next = 0;
                st.fp_done = 0;
                st.bp_done = 0;
                debug_assert!(st.fp_inbox.is_empty());
                debug_assert!(st.bp_ready.is_empty());
                debug_assert_eq!(st.in_flight, 0);
            }
            let round_start = queue.now();
            // Kick stage 0 (and any stage that can self-start — only 0).
            self.try_dispatch(
                0,
                &mut state,
                &mut queue,
                micro_batches,
                &mut busy_trackers,
                &mut task_spans,
                current_round,
                tracer,
            )?;

            while let Some((now, ev)) = queue.pop() {
                match ev {
                    Event::ComputeDone { stage, task } => {
                        let done = self.on_compute_done(
                            stage,
                            task,
                            now,
                            &mut state,
                            &mut queue,
                            micro_batches,
                            &mut completions,
                            current_round,
                            tracer,
                        );
                        if done {
                            // Last backward of the round at stage 0.
                        }
                        self.try_dispatch(
                            stage,
                            &mut state,
                            &mut queue,
                            micro_batches,
                            &mut busy_trackers,
                            &mut task_spans,
                            current_round,
                            tracer,
                        )?;
                    }
                    Event::FwdArrive { stage, micro } => {
                        state[stage].fp_inbox.push_back(micro);
                        self.try_dispatch(
                            stage,
                            &mut state,
                            &mut queue,
                            micro_batches,
                            &mut busy_trackers,
                            &mut task_spans,
                            current_round,
                            tracer,
                        )?;
                    }
                    Event::BwdArrive { stage, micro } => {
                        state[stage].bp_ready.push_back(micro);
                        self.try_dispatch(
                            stage,
                            &mut state,
                            &mut queue,
                            micro_batches,
                            &mut busy_trackers,
                            &mut task_spans,
                            current_round,
                            tracer,
                        )?;
                    }
                }
            }
            let round_end = queue.now();
            debug_assert!(
                state.iter().all(|st| st.bp_done == micro_batches),
                "round ended with incomplete backwards"
            );
            debug_assert!(round_end > round_start);
            round_ends.push(round_end);
        }

        let makespan = queue.now();
        let samples = (rounds * micro_batches * self.profile.micro_batch()) as f64;
        let ssb = stages[..s_count.saturating_sub(1)]
            .iter()
            .map(|sp| sp.full_width())
            .sum::<f64>();
        let mut stage_busy = Vec::with_capacity(s_count);
        let mut stage_gpu = Vec::with_capacity(s_count);
        let mut stage_idle = Vec::with_capacity(s_count);
        let mut ddb = Vec::with_capacity(s_count);
        for (i, st) in state.iter().enumerate() {
            let busy = busy_trackers[i].busy_time(0.0, makespan);
            stage_busy.push(busy / makespan);
            stage_gpu.push(st.useful_time / makespan);
            let idle = makespan - busy;
            stage_idle.push(idle);
            ddb.push(((idle / rounds as f64) - ssb).max(0.0));
        }

        Ok(ExecutionReport {
            makespan,
            round_time: makespan / rounds as f64,
            throughput: samples / makespan,
            stage_busy_utilization: stage_busy,
            stage_gpu_utilization: stage_gpu,
            stage_peak_memory: state.iter().map(|st| st.peak_mem).collect(),
            stage_idle_time: stage_idle,
            ssb_per_round: ssb,
            ddb_per_round: ddb,
            rounds,
            micro_batches,
            task_spans,
        })
    }

    /// Handles a finished compute task; returns true when the round's last
    /// backward at stage 0 completed.
    #[allow(clippy::too_many_arguments)]
    fn on_compute_done(
        &self,
        stage: usize,
        task: Task,
        now: f64,
        state: &mut [StageState],
        queue: &mut EventQueue<Event>,
        micro_batches: usize,
        completions: &mut ThroughputTracker,
        round: usize,
        tracer: Option<&Tracer>,
    ) -> bool {
        let s_count = state.len();
        let sp = &self.profile.stages()[stage];
        state[stage].busy = false;
        match task {
            Task::Fp(m) => {
                state[stage].fp_done += 1;
                if stage + 1 < s_count {
                    // Serialize on the forward link.
                    let start = now.max(state[stage].fwd_link_free);
                    let done = start + sp.c_fwd;
                    state[stage].fwd_link_free = done;
                    if let Some(tr) = tracer {
                        tr.span(
                            Domain::Pipeline,
                            SpanKind::CommForward,
                            stage,
                            round,
                            m,
                            start,
                            done,
                        );
                    }
                    queue.schedule(
                        done,
                        Event::FwdArrive {
                            stage: stage + 1,
                            micro: m,
                        },
                    );
                } else {
                    // Last stage: its own backward becomes ready (possibly
                    // gated for BAF).
                    state[stage].bp_ready.push_back(m);
                }
            }
            Task::Bp(m) => {
                state[stage].bp_done += 1;
                state[stage].in_flight -= 1;
                state[stage].device.free(sp.activation_bytes_per_mb);
                if stage > 0 {
                    let up = &self.profile.stages()[stage - 1];
                    let start = now.max(state[stage].bwd_link_free);
                    let done = start + up.c_bwd;
                    state[stage].bwd_link_free = done;
                    if let Some(tr) = tracer {
                        tr.span(
                            Domain::Pipeline,
                            SpanKind::CommBackward,
                            stage,
                            round,
                            m,
                            start,
                            done,
                        );
                    }
                    queue.schedule(
                        done,
                        Event::BwdArrive {
                            stage: stage - 1,
                            micro: m,
                        },
                    );
                } else {
                    completions.record(now, self.profile.micro_batch() as u64);
                    if state[0].bp_done == micro_batches {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Dispatches the next task on `stage` if the device is idle and the
    /// policy admits one.
    #[allow(clippy::too_many_arguments)]
    fn try_dispatch(
        &self,
        stage: usize,
        state: &mut [StageState],
        queue: &mut EventQueue<Event>,
        micro_batches: usize,
        busy_trackers: &mut [BusyTracker],
        task_spans: &mut Vec<TaskSpan>,
        round: usize,
        tracer: Option<&Tracer>,
    ) -> Result<(), ExecError> {
        {
            if state[stage].busy {
                return Ok(());
            }
            let sp = &self.profile.stages()[stage];
            let s_count = state.len();
            let now = queue.now();

            let bp_allowed = match &self.policy {
                SchedulePolicy::OneFOneBSync { .. } | SchedulePolicy::OneFOneBAsync { .. } => true,
                SchedulePolicy::BafSync => {
                    // Gpipe: the last stage flips to backwards only after
                    // forwarding everything; upstream stages receive
                    // gradients late enough that this gate only matters at
                    // the last stage.
                    stage != s_count - 1 || state[stage].fp_done == micro_batches
                }
            };
            let fp_allowed = self
                .policy
                .residency(stage)
                .is_none_or(|k| state[stage].in_flight < k);
            let fp_available = state[stage].fp_next < micro_batches
                && (stage == 0 || {
                    // In-order arrival: the inbox head must be the next
                    // micro-batch.
                    state[stage].fp_inbox.front() == Some(&state[stage].fp_next)
                });

            // 1F1B prefers backward (early backward schedule); BAF prefers
            // forward.
            let prefer_bp = !matches!(self.policy, SchedulePolicy::BafSync);
            let run_bp = bp_allowed && !state[stage].bp_ready.is_empty();
            let run_fp = fp_allowed && fp_available;

            let task = if run_bp && (prefer_bp || !run_fp) {
                let m = state[stage].bp_ready.pop_front().expect("nonempty");
                Task::Bp(m)
            } else if run_fp {
                let m = state[stage].fp_next;
                if !state[stage].device.try_allocate(sp.activation_bytes_per_mb) {
                    return Err(ExecError::Oom { stage, micro: m });
                }
                state[stage].in_flight += 1;
                state[stage].peak_mem = state[stage]
                    .peak_mem
                    .max(state[stage].device.allocated_bytes());
                state[stage].fp_next += 1;
                if stage > 0 {
                    let head = state[stage].fp_inbox.pop_front();
                    debug_assert_eq!(head, Some(m));
                }
                Task::Fp(m)
            } else {
                return Ok(());
            };

            // Wall-clock duration is the profiled (efficiency-corrected)
            // stage time plus dispatch overhead; only the fraction of it
            // doing peak-rate arithmetic counts as "GPU-useful".
            let wall = match task {
                Task::Fp(_) => sp.t_fwd,
                Task::Bp(_) => sp.t_bwd,
            };
            let duration = wall + self.task_overhead;
            state[stage].busy = true;
            state[stage].useful_time += wall * sp.efficiency;
            busy_trackers[stage].record(now, now + duration);
            let (micro, forward) = match task {
                Task::Fp(m) => (m, true),
                Task::Bp(m) => (m, false),
            };
            task_spans.push(TaskSpan {
                stage,
                micro,
                round,
                forward,
                start: now,
                end: now + duration,
            });
            if let Some(tr) = tracer {
                let kind = if forward {
                    SpanKind::Forward
                } else {
                    SpanKind::Backward
                };
                tr.span(
                    Domain::Pipeline,
                    kind,
                    stage,
                    round,
                    micro,
                    now,
                    now + duration,
                );
            }
            queue.schedule(now + duration, Event::ComputeDone { stage, task });
            Ok(())
        }
    }
}

// Small helper: StageProfile carries times, not a DeviceSpec; reconstruct
// a memory-only spec for accounting. Compute rate is irrelevant here since
// stage times are pre-computed.
impl crate::profiler::StageProfile {
    fn clone_device_spec(&self) -> ecofl_simnet::DeviceSpec {
        ecofl_simnet::DeviceSpec::new(
            &format!("stage{}", self.device),
            1.0,
            self.memory_budget_bytes,
            1.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orchestrator::p_bounds;
    use crate::profiler::PipelineProfile;
    use ecofl_models::efficientnet;
    use ecofl_simnet::{nano_h, tx2_n, Device, Link};

    fn profile(mbs: usize) -> PipelineProfile {
        let model = efficientnet(0);
        let l = model.num_layers();
        let devices = vec![Device::new(tx2_n()), Device::new(nano_h())];
        PipelineProfile::new(&model, &[0, l / 2, l], &devices, &Link::mbps_100(), mbs)
    }

    #[test]
    fn one_f_one_b_completes_all_micro_batches() {
        let p = profile(4);
        let k = p_bounds(&p);
        let exec = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k });
        let r = exec.run(8, 2).expect("no OOM");
        assert_eq!(r.rounds, 2);
        assert!(r.throughput > 0.0);
        assert!(r.makespan > 0.0);
        assert_eq!(r.stage_peak_memory.len(), 2);
    }

    #[test]
    fn traced_run_matches_untraced_and_accounts_idle() {
        let p = profile(4);
        let k = p_bounds(&p);
        let exec = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k });
        let tracer = Tracer::new();
        let traced = exec.run_traced(8, 2, &tracer).expect("no OOM");
        let plain = exec.run(8, 2).expect("no OOM");
        assert_eq!(traced.makespan, plain.makespan);
        assert_eq!(traced.task_spans, plain.task_spans);

        let view = tracer.view();
        assert_eq!(view.stage_count(), 2);
        assert_eq!(view.pipeline_rounds(), 2);
        // Trace-derived idle equals the report's stage idle totals.
        let report_idle: f64 = traced.stage_idle_time.iter().sum();
        assert!(
            (view.total_idle_time() - report_idle).abs() < 1e-9,
            "trace idle {} vs report idle {report_idle}",
            view.total_idle_time()
        );
        // Comm spans present in both directions.
        assert!(view
            .spans_of(Domain::Pipeline, SpanKind::CommForward)
            .next()
            .is_some());
        assert!(view
            .spans_of(Domain::Pipeline, SpanKind::CommBackward)
            .next()
            .is_some());
        // The spans_to_view bridge sees the same compute structure.
        let bridged = traced.trace_view();
        assert_eq!(bridged.stage_count(), view.stage_count());
        assert!((bridged.total_idle_time() - view.total_idle_time()).abs() < 1e-9);
    }

    #[test]
    fn throughput_grows_with_micro_batch_count() {
        // More micro-batches per round amortize the SSB.
        let p = profile(4);
        let k = p_bounds(&p);
        let exec = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k });
        let t4 = exec.run(4, 2).unwrap().throughput;
        let t16 = exec.run(16, 2).unwrap().throughput;
        assert!(t16 > t4, "throughput {t16} should exceed {t4}");
    }

    #[test]
    fn gpipe_holds_more_memory_than_1f1b() {
        let p = profile(4);
        let k = p_bounds(&p);
        let m = 8;
        let ours = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k })
            .run(m, 1)
            .unwrap();
        let gpipe = PipelineExecutor::new(&p, SchedulePolicy::BafSync)
            .run(m, 1)
            .unwrap();
        assert!(
            gpipe.stage_peak_memory[0] > ours.stage_peak_memory[0],
            "Gpipe peak {} must exceed 1F1B peak {}",
            gpipe.stage_peak_memory[0],
            ours.stage_peak_memory[0]
        );
    }

    #[test]
    fn equal_results_across_runs_deterministic() {
        let p = profile(8);
        let k = p_bounds(&p);
        let e1 = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k: k.clone() })
            .run(8, 3)
            .unwrap();
        let e2 = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k })
            .run(8, 3)
            .unwrap();
        assert_eq!(e1.makespan, e2.makespan);
        assert_eq!(e1.stage_peak_memory, e2.stage_peak_memory);
    }

    #[test]
    fn utilization_bounded() {
        let p = profile(8);
        let k = p_bounds(&p);
        let r = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k })
            .run(8, 2)
            .unwrap();
        for (&b, &g) in r
            .stage_busy_utilization
            .iter()
            .zip(&r.stage_gpu_utilization)
        {
            assert!((0.0..=1.0).contains(&b));
            assert!(g <= b, "useful fraction cannot exceed busy fraction");
        }
    }

    #[test]
    fn energy_accounting_two_state() {
        use ecofl_simnet::PowerProfile;
        let p = profile(4);
        let k = p_bounds(&p);
        let r = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k })
            .run(8, 1)
            .unwrap();
        let power = vec![PowerProfile::new(2.0, 10.0); 2];
        let energy = r.stage_energy_joules(&power);
        assert_eq!(energy.len(), 2);
        for (e, &u) in energy.iter().zip(&r.stage_busy_utilization) {
            let expected = 2.0 * r.makespan + 8.0 * u * r.makespan;
            assert!((e - expected).abs() < 1e-9);
        }
        assert!(r.samples_per_joule(&power) > 0.0);
    }

    #[test]
    fn async_1f1b_streams_without_flush() {
        // Flush-free streaming must beat the synchronous schedule for the
        // same total work (SSB paid once, not per round).
        let p = profile(4);
        let k = p_bounds(&p);
        let sync = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k: k.clone() })
            .run(8, 4)
            .unwrap();
        let asynchronous = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBAsync { k })
            .run(8, 4)
            .unwrap();
        assert!(
            asynchronous.throughput > sync.throughput,
            "async {} must beat sync {}",
            asynchronous.throughput,
            sync.throughput
        );
        // Same total work either way.
        let a = asynchronous.throughput * asynchronous.makespan;
        let b = sync.throughput * sync.makespan;
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn async_1f1b_stashes_weight_versions() {
        // PipeDream-style weight stashing multiplies the static footprint
        // by K_s — the §2 memory objection.
        let p = profile(4);
        let k = p_bounds(&p);
        let sync = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k: k.clone() })
            .run(4, 1)
            .unwrap();
        let asynchronous =
            PipelineExecutor::new(&p, SchedulePolicy::OneFOneBAsync { k: k.clone() })
                .run(4, 1)
                .unwrap();
        assert!(
            asynchronous.stage_peak_memory[0] > sync.stage_peak_memory[0],
            "stage 0 must hold {} weight versions",
            k[0]
        );
    }

    #[test]
    fn async_weight_stashing_can_oom_where_sync_fits() {
        // Shrink the stage-0 budget until K weight copies overflow but a
        // single copy plus activations still fits.
        let p = profile(4);
        let k = p_bounds(&p);
        let mut stages = p.stages().to_vec();
        let s0 = &mut stages[0];
        // One byte under the async peak (K weight copies + K resident
        // activations) but comfortably above the sync peak (one copy).
        s0.memory_budget_bytes = (s0.static_bytes() + s0.activation_bytes_per_mb) * k[0] as u64 - 1;
        let tight = PipelineProfile::from_stages(stages, p.micro_batch());
        assert!(
            PipelineExecutor::new(&tight, SchedulePolicy::OneFOneBSync { k: k.clone() })
                .run(4, 1)
                .is_ok()
        );
        assert!(matches!(
            PipelineExecutor::new(&tight, SchedulePolicy::OneFOneBAsync { k }).run(4, 1),
            Err(ExecError::Oom { stage: 0, .. })
        ));
    }

    #[test]
    fn small_k_creates_ddb() {
        // Starving the first stage with K=1 forces dependency bubbles
        // downstream relative to the proper P bounds.
        let p = profile(4);
        let proper = p_bounds(&p);
        let starved = vec![1; p.num_stages()];
        let good = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k: proper })
            .run(12, 1)
            .unwrap();
        let bad = PipelineExecutor::new(&p, SchedulePolicy::OneFOneBSync { k: starved })
            .run(12, 1)
            .unwrap();
        assert!(
            bad.makespan > good.makespan,
            "starved pipeline {} should be slower than {}",
            bad.makespan,
            good.makespan
        );
    }
}
