//! Pipeline orchestration (§4.3): bubble bounds, residency limits, and the
//! device-order / micro-batch-size search.
//!
//! - [`p_bounds`] — the per-stage in-flight forward bounds `P_s` of Eq. 3,
//!   the smallest residency that avoids data-dependency bubbles (DDB),
//! - [`q_bounds`] — memory-feasible residency `Q_s` per stage,
//! - [`search_configuration`] — the paper's search: start from a large
//!   micro-batch size; if no device order can hold `K_s = P_s` forwards on
//!   every stage, shrink the micro-batch until one does, and pick the
//!   order with the best simulated throughput (Fig. 5's Config A vs B/C).

use crate::executor::{ExecutionReport, PipelineExecutor};
use crate::partition::{partition_dp, Partition};
use crate::profiler::PipelineProfile;
use crate::schedule::ScheduleKind;
use ecofl_compat::serde::{Deserialize, Serialize};
use ecofl_models::ModelProfile;
use ecofl_simnet::{Device, Link};

/// Computes the Eq. 3 residency bounds `P_s`.
///
/// Iterating from the last stage (`P_{S-1} = 1`):
///
/// ```text
/// P_{s-1} = P_s + ⌈ (T_{t,f}^{s-1} + T_{t,b}^{s-1} + T_{c,f}^{s-1} + T_{c,b}^{s-1})
///                   / (T_{t,f}^s + T_{t,b}^s) ⌉
/// ```
///
/// For balanced stages this reduces to the paper's closed forms:
/// `P_s = S − s` when communication is negligible and
/// `P_s = 2(S−s) − 1` when boundary transfers cost about as much as
/// compute.
#[must_use]
pub fn p_bounds(profile: &PipelineProfile) -> Vec<usize> {
    let stages = profile.stages();
    let s_count = stages.len();
    let mut p = vec![1usize; s_count];
    for s in (1..s_count).rev() {
        let width = stages[s - 1].full_width();
        let pace = stages[s].t_total();
        let extra = if pace > 0.0 {
            (width / pace).ceil() as usize
        } else {
            1
        };
        p[s - 1] = p[s] + extra.max(1);
    }
    p
}

/// Memory-feasible residency `Q_s` for every stage.
#[must_use]
pub fn q_bounds(profile: &PipelineProfile) -> Vec<usize> {
    profile
        .stages()
        .iter()
        .map(|sp| sp.max_residency(sp.memory_budget_bytes))
        .collect()
}

/// `K_s = min(P_s, Q_s)` — the actual residency the runtime enforces.
///
/// Returns `None` when some stage cannot hold even one micro-batch.
#[must_use]
pub fn k_bounds(profile: &PipelineProfile) -> Option<Vec<usize>> {
    let p = p_bounds(profile);
    let q = q_bounds(profile);
    let k: Vec<usize> = p.iter().zip(&q).map(|(&a, &b)| a.min(b)).collect();
    if k.contains(&0) {
        None
    } else {
        Some(k)
    }
}

/// Analytic sync-round time under the §4.3 ideal model: `M` micro-batches
/// paced by the bottleneck stage plus the synchronous static bubble of
/// Eq. 2 (the leading/trailing trapezoid). Valid for DDB-free pipelines
/// (`K_s = P_s`); the executor should land close to this, which the tests
/// verify — a strong cross-check between the formula the paper reasons
/// with and the event-driven engine we measure with.
#[must_use]
pub fn analytic_round_time(profile: &PipelineProfile, micro_batches: usize) -> f64 {
    let stages = profile.stages();
    let bottleneck = stages
        .iter()
        .map(crate::profiler::StageProfile::t_total)
        .fold(0.0, f64::max);
    let ssb: f64 = stages[..stages.len().saturating_sub(1)]
        .iter()
        .map(crate::profiler::StageProfile::full_width)
        .sum();
    micro_batches as f64 * bottleneck + ssb
}

/// Search-space configuration for [`search_configuration`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrchestratorConfig {
    /// Global mini-batch size per sync-round.
    pub global_batch: usize,
    /// Candidate micro-batch sizes, tried largest-first.
    pub mbs_candidates: Vec<usize>,
    /// Sync-rounds simulated when scoring a candidate.
    pub eval_rounds: usize,
    /// Pipeline schedule evaluated for every candidate; the cost model
    /// queries the schedule for its bubble/memory profile rather than
    /// assuming Eq. 2.
    pub schedule: ScheduleKind,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        Self {
            global_batch: 128,
            mbs_candidates: vec![32, 16, 8, 4, 2, 1],
            eval_rounds: 2,
            schedule: ScheduleKind::OneFOneBSync,
        }
    }
}

/// A fully resolved pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelinePlan {
    /// Device order: `order[s]` is the index (into the search's device
    /// list) of the device running stage `s`.
    pub order: Vec<usize>,
    /// Stage boundaries.
    pub partition: Partition,
    /// Chosen micro-batch size.
    pub micro_batch: usize,
    /// Micro-batches per sync-round (`M = global_batch / mbs`).
    pub micro_batches: usize,
    /// Residency limits `K_s`.
    pub k: Vec<usize>,
    /// Whether every stage satisfies `K_s = P_s` (no DDB expected).
    pub ddb_free: bool,
    /// Simulated execution report for this plan.
    pub report: ExecutionReport,
}

/// Generates all permutations of `0..n` (n ≤ 8 kept sane by assertion).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    assert!(
        n <= 8,
        "permutation search is factorial; {n} devices is too many"
    );
    let mut result = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    fn heap_rec(k: usize, arr: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k == 1 {
            out.push(arr.clone());
            return;
        }
        for i in 0..k {
            heap_rec(k - 1, arr, out);
            if k.is_multiple_of(2) {
                arr.swap(i, k - 1);
            } else {
                arr.swap(0, k - 1);
            }
        }
    }
    heap_rec(n, &mut current, &mut result);
    result
}

/// Runs the §4.3 configuration search.
///
/// Tries micro-batch sizes largest-first; within one size, evaluates every
/// device order via the Eq. 1 partitioner and the event-driven executor.
/// Prefers DDB-free plans (`K_s = P_s` everywhere); if a size admits none,
/// it falls to the next smaller size, and only if *no* size is DDB-free
/// does it return the best feasible plan with `K_s = min(P_s, Q_s)`.
///
/// Returns `None` when no order/size combination is executable at all.
#[must_use]
pub fn search_configuration(
    model: &ModelProfile,
    devices: &[Device],
    link: &Link,
    config: &OrchestratorConfig,
) -> Option<PipelinePlan> {
    let orders = permutations(devices.len());
    let mut best_fallback: Option<PipelinePlan> = None;
    let mut best_ddb_free: Option<PipelinePlan> = None;

    for &mbs in &config.mbs_candidates {
        if mbs == 0 || mbs > config.global_batch {
            continue;
        }
        let m = config.global_batch / mbs;
        if m == 0 {
            continue;
        }
        for order in &orders {
            let ordered: Vec<Device> = order.iter().map(|&i| devices[i].clone()).collect();
            let Some(partition) = partition_dp(model, &ordered, link, mbs) else {
                continue;
            };
            let profile = PipelineProfile::new(model, &partition.boundaries, &ordered, link, mbs);
            let p = p_bounds(&profile);
            let Some(k) = k_bounds(&profile) else {
                continue;
            };
            let ddb_free = k == p && m >= *p.iter().max().unwrap_or(&1);
            let Some(policy) = config.schedule.policy_for(&profile) else {
                continue;
            };
            let Ok(exec) = PipelineExecutor::new(&profile, policy) else {
                continue;
            };
            let Ok(report) = exec.run(m, config.eval_rounds) else {
                continue;
            };
            let plan = PipelinePlan {
                order: order.clone(),
                partition: partition.clone(),
                micro_batch: mbs,
                micro_batches: m,
                k,
                ddb_free,
                report,
            };
            if ddb_free {
                if best_ddb_free
                    .as_ref()
                    .is_none_or(|b| plan.report.throughput > b.report.throughput)
                {
                    best_ddb_free = Some(plan);
                }
            } else if best_fallback
                .as_ref()
                .is_none_or(|b| plan.report.throughput > b.report.throughput)
            {
                best_fallback = Some(plan);
            }
        }
    }
    // Prefer the best-throughput DDB-free plan across all admissible
    // micro-batch sizes; the paper stops at the largest feasible size, but
    // scoring by simulated sync-round time is strictly consistent with its
    // stated goal ("pick up a devices' order resulting in the least
    // sync-round time") and never worse.
    best_ddb_free.or(best_fallback)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SchedulePolicy;
    use ecofl_models::efficientnet;
    use ecofl_simnet::{nano_h, tx2_q, Device};

    fn profile3(mbs: usize) -> PipelineProfile {
        let model = efficientnet(0);
        let devices = vec![
            Device::new(tx2_q()),
            Device::new(nano_h()),
            Device::new(nano_h()),
        ];
        let partition = partition_dp(&model, &devices, &Link::mbps_100(), mbs).expect("feasible");
        PipelineProfile::new(
            &model,
            &partition.boundaries,
            &devices,
            &Link::mbps_100(),
            mbs,
        )
    }

    #[test]
    fn p_bounds_decrease_along_pipeline() {
        let p = profile3(8);
        let bounds = p_bounds(&p);
        assert_eq!(*bounds.last().unwrap(), 1, "last stage holds exactly one");
        for w in bounds.windows(2) {
            assert!(w[0] > w[1], "P must strictly decrease: {bounds:?}");
        }
    }

    #[test]
    fn p_bounds_closed_forms() {
        // Balanced synthetic stages: equal compute, no comm → P_s = S - s;
        // comm equal to compute → P_s = 2(S-s)-1.
        use crate::profiler::StageProfile;
        fn synthetic(c: f64) -> PipelineProfile {
            let stages: Vec<StageProfile> = (0..4)
                .map(|s| StageProfile {
                    device: s,
                    layers: s..s + 1,
                    t_fwd: 0.5,
                    t_bwd: 0.5,
                    c_fwd: if s < 3 { c / 2.0 } else { 0.0 },
                    c_bwd: if s < 3 { c / 2.0 } else { 0.0 },
                    param_bytes: 1,
                    activation_bytes_per_mb: 1,
                    boundary_bytes: 1,
                    memory_budget_bytes: 1 << 30,
                    efficiency: 1.0,
                })
                .collect();
            PipelineProfile::from_stages(stages, 1)
        }
        assert_eq!(p_bounds(&synthetic(0.0)), vec![4, 3, 2, 1]);
        assert_eq!(p_bounds(&synthetic(1.0)), vec![7, 5, 3, 1]);
    }

    #[test]
    fn q_bounds_reflect_memory() {
        let p = profile3(8);
        let q = q_bounds(&p);
        assert_eq!(q.len(), 3);
        assert!(
            q.iter().all(|&x| x >= 1),
            "all stages should fit ≥1 mb: {q:?}"
        );
    }

    #[test]
    fn search_finds_a_plan() {
        let model = efficientnet(0);
        let devices = vec![
            Device::new(tx2_q()),
            Device::new(nano_h()),
            Device::new(nano_h()),
        ];
        let cfg = OrchestratorConfig {
            global_batch: 64,
            mbs_candidates: vec![16, 8, 4],
            eval_rounds: 1,
            ..OrchestratorConfig::default()
        };
        let plan = search_configuration(&model, &devices, &Link::mbps_100(), &cfg).expect("plan");
        assert_eq!(plan.order.len(), 3);
        assert_eq!(plan.micro_batches, 64 / plan.micro_batch);
        assert!(plan.report.throughput > 0.0);
    }

    #[test]
    fn search_prefers_fast_device_first_for_activation_heavy_model() {
        // EfficientNet's front layers carry the largest activations and
        // most work; the search should not leave the TX2 idle at the back.
        let model = efficientnet(1);
        let devices = vec![
            Device::new(nano_h()),
            Device::new(nano_h()),
            Device::new(tx2_q()),
        ];
        let cfg = OrchestratorConfig {
            global_batch: 64,
            mbs_candidates: vec![16, 8],
            eval_rounds: 1,
            ..OrchestratorConfig::default()
        };
        let plan = search_configuration(&model, &devices, &Link::mbps_100(), &cfg).expect("plan");
        // Whatever the order, throughput must beat the worst order.
        let worst_order = vec![
            Device::new(nano_h()),
            Device::new(nano_h()),
            Device::new(tx2_q()),
        ];
        let worst_partition =
            partition_dp(&model, &worst_order, &Link::mbps_100(), plan.micro_batch).unwrap();
        let worst_profile = PipelineProfile::new(
            &model,
            &worst_partition.boundaries,
            &worst_order,
            &Link::mbps_100(),
            plan.micro_batch,
        );
        let worst_k = k_bounds(&worst_profile).unwrap();
        let worst =
            PipelineExecutor::new(&worst_profile, SchedulePolicy::OneFOneBSync { k: worst_k })
                .expect("valid")
                .run(plan.micro_batches, 1)
                .unwrap();
        assert!(plan.report.throughput >= worst.throughput * 0.999);
    }

    #[test]
    fn executor_matches_analytic_round_time_when_ddb_free() {
        let model = efficientnet(0);
        let devices = vec![
            Device::new(tx2_q()),
            Device::new(nano_h()),
            Device::new(nano_h()),
        ];
        let link = Link::mbps_100();
        for (mbs, m) in [(4usize, 16usize), (8, 12), (8, 24)] {
            let partition = partition_dp(&model, &devices, &link, mbs).expect("feasible");
            let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, mbs);
            let p = p_bounds(&profile);
            let report = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k: p })
                .expect("valid")
                .with_task_overhead(0.0)
                .run(m, 1)
                .expect("runs");
            let analytic = analytic_round_time(&profile, m);
            let rel = (report.round_time - analytic).abs() / analytic;
            assert!(
                rel < 0.15,
                "mbs {mbs}, M {m}: measured {:.4} vs analytic {analytic:.4} ({:.1}% off)",
                report.round_time,
                rel * 100.0
            );
        }
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(1).len(), 1);
        let perms = permutations(4);
        assert_eq!(perms.len(), 24);
        let mut unique = perms.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 24);
    }
}
