//! ASCII Gantt rendering of executed pipeline schedules.
//!
//! Turns a recorded pipeline trace into the schedule pictures of the
//! paper's Figs. 3–4: one row per stage, forward passes as the
//! micro-batch digit, backward passes as the digit in brackets-free
//! lowercase band (distinguished by style), idle time as dots. Useful
//! for eyeballing SSB/DDB structure and for docs.
//!
//! The renderer consumes the obs layer's [`TraceView`] (compute spans of
//! [`Domain::Pipeline`]); [`render_round`] keeps the original
//! span-slice entry point by lifting the spans through
//! [`spans_to_view`](crate::executor::spans_to_view).

use crate::executor::{spans_to_view, TaskSpan};
use ecofl_obs::{SpanKind, TraceView};

/// Renders one sync-round of a pipeline trace as an ASCII Gantt chart.
///
/// `width` is the number of character columns the round's duration maps
/// onto. Forward tasks paint the micro-batch digit (mod 10); full
/// backwards and the activation-gradient halves of split backwards paint
/// lowercase `a–j`; the deferred weight-gradient halves paint uppercase
/// `A–J`; idle time is `·`.
///
/// Returns one line per stage, prefixed with the stage index.
///
/// # Panics
/// Panics if `width < 10`.
#[must_use]
pub fn render_view(view: &TraceView, round: usize, width: usize) -> Vec<String> {
    render_view_virtual(view, round, width, 1)
}

/// [`render_view`] for interleaved schedules: `virtual_per_device` > 1
/// labels each row with its physical device and chunk (`dev d.c`) so the
/// `v` virtual stages a device hosts are visually grouped. With
/// `virtual_per_device == 1` rows keep the plain `stage s` labels.
///
/// # Panics
/// Panics if `width < 10`, or if the stage count is not divisible by
/// `virtual_per_device`.
#[must_use]
pub fn render_view_virtual(
    view: &TraceView,
    round: usize,
    width: usize,
    virtual_per_device: usize,
) -> Vec<String> {
    assert!(width >= 10, "render_view: width too small");
    assert!(virtual_per_device >= 1);
    let Some((t0, t1)) = view.round_window(round) else {
        return Vec::new();
    };
    let stages = view
        .compute_spans(round)
        .map(|s| s.entity)
        .max()
        .unwrap_or(0)
        + 1;
    let scale = width as f64 / (t1 - t0).max(1e-12);

    let mut rows = vec![vec!['·'; width]; stages];
    for span in view.compute_spans(round) {
        let a = (((span.t0 - t0) * scale) as usize).min(width - 1);
        let b = (((span.t1 - t0) * scale).ceil() as usize).clamp(a + 1, width);
        let n = (span.micro % 10) as u8;
        let cell = match span.kind {
            SpanKind::Forward => char::from(b'0' + n),
            // Weight-gradient halves render uppercase so the two split
            // phases stay distinct; full backwards and activation-gradient
            // halves render as the familiar lowercase band.
            SpanKind::BackwardWeight => char::from(b'A' + n),
            _ => char::from(b'a' + n),
        };
        for c in rows[span.entity].iter_mut().take(b).skip(a) {
            *c = cell;
        }
    }
    assert!(
        stages.is_multiple_of(virtual_per_device) || virtual_per_device == 1,
        "stage count {stages} not divisible by v={virtual_per_device}"
    );
    let phys = stages / virtual_per_device;
    rows.into_iter()
        .enumerate()
        .map(|(s, row)| {
            let bar: String = row.into_iter().collect();
            if virtual_per_device > 1 {
                // Chunk-major virtual stage j = chunk * phys + device.
                format!("dev {}.{} |{bar}|", s % phys, s / phys)
            } else {
                format!("stage {s} |{bar}|")
            }
        })
        .collect()
}

/// [`render_view`] over a raw task-span slice (kept for callers holding
/// an [`ExecutionReport`](crate::executor::ExecutionReport)).
///
/// # Panics
/// Panics if `width < 10`.
#[must_use]
pub fn render_round(spans: &[TaskSpan], round: usize, width: usize) -> Vec<String> {
    render_view(&spans_to_view(spans), round, width)
}

/// [`render_round`] with virtual-stage labels — see
/// [`render_view_virtual`].
///
/// # Panics
/// Panics if `width < 10` or the stage count is not divisible by
/// `virtual_per_device`.
#[must_use]
pub fn render_round_virtual(
    spans: &[TaskSpan],
    round: usize,
    width: usize,
    virtual_per_device: usize,
) -> Vec<String> {
    render_view_virtual(&spans_to_view(spans), round, width, virtual_per_device)
}

/// Renders a compact legend for [`render_round`] output.
#[must_use]
pub fn legend() -> &'static str {
    "digits = forward pass of micro-batch n, letters a–j = backward pass \
     (or its activation-gradient half) of micro-batch n, letters A–J = \
     deferred weight-gradient half, · = idle; interleaved rows are \
     labeled dev d.chunk"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{PipelineExecutor, SchedulePolicy};
    use crate::orchestrator::p_bounds;
    use crate::partition::partition_dp;
    use crate::profiler::PipelineProfile;
    use ecofl_models::efficientnet_at;
    use ecofl_obs::Tracer;
    use ecofl_simnet::{nano_h, tx2_q, Device, Link};

    fn trace() -> crate::executor::ExecutionReport {
        let model = efficientnet_at(0, 224);
        let devices = vec![
            Device::new(tx2_q()),
            Device::new(nano_h()),
            Device::new(nano_h()),
        ];
        let link = Link::mbps_100();
        let partition = partition_dp(&model, &devices, &link, 8).expect("feasible");
        let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 8);
        let k = p_bounds(&profile);
        PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
            .expect("valid")
            .run(6, 2)
            .expect("runs")
    }

    #[test]
    fn renders_one_row_per_stage() {
        let report = trace();
        let rows = render_round(&report.task_spans, 0, 80);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.starts_with("stage "));
            assert!(row.len() > 80);
        }
    }

    #[test]
    fn render_from_live_tracer_matches_span_slice() {
        // The TraceView produced by an actual traced run renders the
        // same picture as the span-slice path (comm spans are ignored
        // by the renderer).
        let model = efficientnet_at(0, 224);
        let devices = vec![Device::new(tx2_q()), Device::new(nano_h())];
        let link = Link::mbps_100();
        let partition = partition_dp(&model, &devices, &link, 8).expect("feasible");
        let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 8);
        let k = p_bounds(&profile);
        let exec =
            PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k }).expect("valid");
        let tracer = Tracer::new();
        let report = exec.run_traced(6, 1, &tracer).expect("runs");
        assert_eq!(
            render_view(&tracer.view(), 0, 90),
            render_round(&report.task_spans, 0, 90)
        );
    }

    #[test]
    fn every_micro_batch_appears_forward_and_backward() {
        let report = trace();
        let spans: Vec<_> = report.task_spans.iter().filter(|s| s.round == 0).collect();
        for stage in 0..3 {
            for micro in 0..6 {
                assert!(
                    spans
                        .iter()
                        .any(|s| s.stage == stage && s.micro == micro && s.forward),
                    "missing FP({micro}) at stage {stage}"
                );
                assert!(
                    spans
                        .iter()
                        .any(|s| s.stage == stage && s.micro == micro && !s.forward),
                    "missing BP({micro}) at stage {stage}"
                );
            }
        }
    }

    #[test]
    fn spans_are_serial_per_stage() {
        let report = trace();
        for stage in 0..3 {
            let mut spans: Vec<_> = report
                .task_spans
                .iter()
                .filter(|s| s.stage == stage)
                .collect();
            spans.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
            for w in spans.windows(2) {
                assert!(
                    w[1].start >= w[0].end - 1e-9,
                    "device must execute one task at a time"
                );
            }
        }
    }

    #[test]
    fn forward_precedes_backward_per_micro_batch() {
        let report = trace();
        for stage in 0..3 {
            for micro in 0..6 {
                let fp = report
                    .task_spans
                    .iter()
                    .find(|s| s.round == 0 && s.stage == stage && s.micro == micro && s.forward)
                    .unwrap();
                let bp = report
                    .task_spans
                    .iter()
                    .find(|s| s.round == 0 && s.stage == stage && s.micro == micro && !s.forward)
                    .unwrap();
                assert!(bp.start >= fp.end - 1e-9);
            }
        }
    }

    #[test]
    fn interleaved_round_matches_golden() {
        // One interleaved (v = 2) round on the 2-device mix, pinned to
        // the exact rendering: rows are labeled dev d.chunk and grouped
        // chunk-major, forwards paint digits, backwards the lowercase
        // band. A diff here means either the executor's dispatch order
        // or the renderer's layout changed — both are contract surface.
        use crate::schedule::{interleave_profile, SchedulePolicy};
        use ecofl_models::efficientnet;
        use ecofl_simnet::tx2_n;

        let model = efficientnet(0);
        let l = model.num_layers();
        let devices = vec![Device::new(tx2_n()), Device::new(nano_h())];
        let profile = PipelineProfile::new(&model, &[0, l / 2, l], &devices, &Link::mbps_100(), 4);
        let vp = interleave_profile(&profile, 2);
        let k = p_bounds(&vp);
        let report = PipelineExecutor::new(&profile, SchedulePolicy::Interleaved { k, v: 2 })
            .expect("valid")
            .run(4, 1)
            .expect("runs");
        let rows = render_round_virtual(&report.task_spans, 0, 72, 2);
        // '.' stands in for the idle dot U+00B7.
        let golden = [
            "dev 0.0 |1233.................................aaa.....bbb...............ccc....dd|",
            "dev 1.0 |...000111223333...............aaaaaa.bbbbbb............cccccc.dddddd....|",
            "dev 0.1 |.........0.11.22.........a33....bbb...............ccc.....dd............|",
            "dev 1.1 |..............000aaaaa11bbbbbbb....222....cccccc33dddddd................|",
        ];
        for (row, want) in rows.iter().zip(&golden) {
            let want: String = want
                .char_indices()
                .map(|(i, c)| if c == '.' && i > 8 { '\u{b7}' } else { c })
                .collect();
            assert_eq!(row, &want);
        }
        assert_eq!(rows.len(), golden.len());
    }

    #[test]
    fn split_backward_halves_render_distinctly() {
        use crate::schedule::SchedulePolicy;
        let model = efficientnet_at(0, 224);
        let devices = vec![Device::new(tx2_q()), Device::new(nano_h())];
        let link = Link::mbps_100();
        let partition = partition_dp(&model, &devices, &link, 8).expect("feasible");
        let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 8);
        let k = p_bounds(&profile);
        let report = PipelineExecutor::new(&profile, SchedulePolicy::ZeroBubble { k })
            .expect("valid")
            .run(4, 1)
            .expect("runs");
        let rows = render_round(&report.task_spans, 0, 80);
        let flat: String = rows.concat();
        assert!(
            flat.chars().any(|c| c.is_ascii_uppercase()),
            "weight-gradient halves must paint A-J"
        );
        assert!(
            flat.chars().any(|c| ('a'..='j').contains(&c)),
            "activation-gradient halves must paint a-j"
        );
    }

    #[test]
    fn empty_round_renders_nothing() {
        let report = trace();
        assert!(render_round(&report.task_spans, 99, 40).is_empty());
    }
}
