//! # ecofl-pipeline
//!
//! The edge collaborative pipeline-training engine of Eco-FL (§4 of the
//! paper), plus every baseline it is compared against.
//!
//! ## Simulation side (drives Figs. 4, 5, 11, 12, 13 and Table 2)
//!
//! - [`profiler`] — per-stage forward/backward compute and communication
//!   times from analytic model profiles and device specs (§4.2 profiling),
//! - [`partition`] — the heterogeneity-aware dynamic-programming workload
//!   partitioner of Eq. 1, with memory-capacity constraints, and the
//!   PipeDream-style homogeneous splitter used as the Fig. 12 baseline,
//! - [`orchestrator`] — bubble analysis (SSB of Eq. 2, DDB), the in-flight
//!   forward bounds `P_s` of Eq. 3, memory bounds `Q_s`, `K_s = min(P_s,
//!   Q_s)`, and the device-order / micro-batch-size search of §4.3,
//! - [`schedule`] — the pluggable [`schedule::PipelineSchedule`] trait and
//!   its five implementations (1F1B-Sync, BAF-Sync, 1F1B-Async,
//!   interleaved 1F1B, zero-bubble), each emitting a deterministic
//!   per-stage task stream with residency bounds `K_s`,
//! - [`executor`] — a discrete-event executor that runs any registered
//!   schedule over simulated devices and links, with per-stage memory
//!   accounting (OOM detection), busy traces and bubble measurement,
//! - [`baselines`] — data-parallel and single-device training cost models
//!   (the Fig. 10/11 comparison points),
//! - [`adaptive`] — the §4.4 runtime: periodic stage-time reports, lagger
//!   detection, repartitioning, workload migration and pipeline restart
//!   (Fig. 13).
//!
//! ## Prototype side
//!
//! - [`runtime`] — a real multi-threaded 1F1B-Sync pipeline: each stage is
//!   an OS thread owning a segment of a genuine `ecofl-tensor` network,
//!   connected by bounded MPMC channels. Its updates are bit-identical
//!   to single-device gradient-accumulation training, which the tests
//!   assert — the 1F1B-Sync schedule changes execution order, never
//!   semantics.

pub mod adaptive;
pub mod baselines;
pub mod executor;
pub mod gantt;
pub mod orchestrator;
pub mod partition;
pub mod profiler;
pub mod runtime;
pub mod schedule;
pub mod validate;

pub use adaptive::{AdaptiveScheduler, RescheduleEvent, SpikeError};
pub use baselines::{data_parallel_epoch, single_device_epoch, DataParallelReport};
pub use executor::{ExecutionReport, PipelineExecutor, SchedulePolicy, TaskSpan};
pub use orchestrator::{
    analytic_round_time, search_configuration, OrchestratorConfig, PipelinePlan,
};
pub use partition::{partition_dp, partition_even, Partition};
pub use profiler::{PipelineProfile, StageProfile};
pub use runtime::{
    load_checkpoint_at_or_before, load_latest_checkpoint, stored_checkpoints, CheckpointRecord,
    FaultPlan, KillPoint, PipelineTrainer, RuntimeOptions,
};
pub use schedule::{
    interleave_profile, PipelineSchedule, RtStep, ScheduleKind, StageTask, DEFAULT_INTERLEAVE,
};
pub use validate::{validate_plan, PlanViolation};
