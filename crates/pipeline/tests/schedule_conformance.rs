//! Schedule-conformance gate: every registered [`ScheduleKind`] must
//! pass the PR-5 fault-injection/recovery contract and the determinism
//! contract — on both engines.
//!
//! `scripts/ci.sh` runs this suite at `ECOFL_THREADS=1/2/8` under a
//! watchdog, so a schedule whose step program deadlocks the threaded
//! runtime (or drifts between runs) fails CI instead of wedging it.
//!
//! The threaded runtime is round-synchronous: every schedule collapses
//! to its round-synchronous step program, which accumulates the same
//! gradients in the same micro-batch order — so beyond per-schedule
//! recovery, final parameters must agree bit for bit *across* schedules.

use ecofl_models::efficientnet_at;
use ecofl_pipeline::executor::{ExecError, ExecutionReport, PipelineExecutor};
use ecofl_pipeline::profiler::PipelineProfile;
use ecofl_pipeline::runtime::{FaultPlan, PipelineTrainer, RuntimeOptions, SegmentFactory};
use ecofl_pipeline::schedule::ScheduleKind;
use ecofl_simnet::{nano_h, tx2_q, Device, Link};
use ecofl_tensor::{Layer, Linear, ReLU, Tensor};
use ecofl_util::Rng;
use std::time::Duration;

/// A 3-segment MLP factory, deterministic in `seed`.
fn factory(seed: u64) -> SegmentFactory {
    Box::new(move || {
        let mut rng = Rng::new(seed);
        vec![
            vec![
                Box::new(Linear::new(8, 12, &mut rng)) as Box<dyn Layer>,
                Box::new(ReLU::new()),
            ],
            vec![
                Box::new(Linear::new(12, 10, &mut rng)) as Box<dyn Layer>,
                Box::new(ReLU::new()),
            ],
            vec![Box::new(Linear::new(10, 4, &mut rng)) as Box<dyn Layer>],
        ]
    })
}

fn round_data(seed: u64, rounds: usize, m: usize) -> Vec<Vec<(Tensor, Vec<usize>)>> {
    let mut rng = Rng::new(seed ^ 0xDA7A);
    (0..rounds)
        .map(|_| {
            (0..m)
                .map(|_| {
                    let x = Tensor::randn(&[5, 8], 1.0, &mut rng);
                    let y = (0..5).map(|_| rng.range_usize(0, 4)).collect();
                    (x, y)
                })
                .collect()
        })
        .collect()
}

/// Trains `data` to completion under `kind`, recovering from any
/// injected fault; returns the final parameters.
fn train_with(
    kind: ScheduleKind,
    fault: FaultPlan,
    data: &[Vec<(Tensor, Vec<usize>)>],
    expect_fault: bool,
) -> Vec<f32> {
    let opts = RuntimeOptions {
        recv_timeout: Duration::from_secs(10),
        fault_plan: fault,
        schedule: kind,
        ..RuntimeOptions::default()
    };
    let mut trainer = PipelineTrainer::launch_supervised(factory(3), vec![3, 2, 1], opts)
        .unwrap_or_else(|e| panic!("{}: launch: {e}", kind.name()));
    let mut r = 0usize;
    let mut recoveries = 0usize;
    while r < data.len() {
        match trainer.train_round(&data[r], 0.1) {
            Ok(_) => r += 1,
            Err(e) => {
                assert!(
                    matches!(e, ExecError::StageDied { .. }),
                    "{}: expected StageDied, got {e:?}",
                    kind.name()
                );
                recoveries += 1;
                assert!(recoveries <= 1, "{}: kill fires once", kind.name());
                r = trainer
                    .recover()
                    .unwrap_or_else(|e| panic!("{}: recovery: {e}", kind.name()))
                    as usize;
            }
        }
    }
    assert_eq!(
        recoveries,
        usize::from(expect_fault),
        "{}: scheduled kill must fire iff planned",
        kind.name()
    );
    let params = trainer
        .params()
        .unwrap_or_else(|e| panic!("{}: collect: {e}", kind.name()));
    trainer.shutdown();
    params
}

/// Fault-injection conformance on the threaded runtime: for every
/// schedule, kill → typed error → recover → replay lands bit-identically
/// on that schedule's uninterrupted twin — and all five twins agree.
#[test]
fn every_schedule_recovers_bit_identically() {
    let data = round_data(17, 3, 4);
    let reference = train_with(ScheduleKind::OneFOneBSync, FaultPlan::none(), &data, false);
    for kind in ScheduleKind::all() {
        let clean = train_with(kind, FaultPlan::none(), &data, false);
        assert_eq!(
            clean,
            reference,
            "{}: round-synchronous runtime must be schedule-invariant",
            kind.name()
        );
        let replayed = train_with(kind, FaultPlan::kill_at(1, 1, 2), &data, true);
        assert_eq!(
            replayed,
            clean,
            "{}: replay diverged from the uninterrupted twin",
            kind.name()
        );
    }
}

fn span_fingerprint(r: &ExecutionReport) -> Vec<u64> {
    let mut out = vec![
        r.makespan.to_bits(),
        r.throughput.to_bits(),
        r.ssb_per_round.to_bits(),
    ];
    for s in &r.task_spans {
        out.extend([
            s.stage as u64,
            s.micro as u64,
            s.round as u64,
            s.start.to_bits(),
            s.end.to_bits(),
        ]);
    }
    out.extend(r.stage_peak_memory.iter().copied());
    out
}

/// Determinism conformance on the virtual-time executor: two runs of the
/// same schedule produce byte-identical reports and span streams.
#[test]
fn every_schedule_is_deterministic_in_the_executor() {
    let model = efficientnet_at(0, 224);
    let devices = vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ];
    let l = model.num_layers();
    let profile = PipelineProfile::new(
        &model,
        &[0, l / 3, 2 * l / 3, l],
        &devices,
        &Link::mbps_100(),
        4,
    );
    for kind in ScheduleKind::all() {
        let policy = kind
            .policy_for(&profile)
            .unwrap_or_else(|| panic!("{}: no feasible residency", kind.name()));
        let run = || {
            PipelineExecutor::new(&profile, policy.clone())
                .expect("valid policy")
                .run(6, 2)
                .expect("no OOM")
        };
        let (a, b) = (run(), run());
        assert_eq!(
            span_fingerprint(&a),
            span_fingerprint(&b),
            "{}: executor drifted between identical runs",
            kind.name()
        );
    }
}
