//! Bit-identity goldens for the schedule-trait refactor.
//!
//! The three legacy schedules (1F1B-Sync, BAF-Sync, 1F1B-Async) ran
//! through the pre-refactor `SchedulePolicy` enum paths on two device
//! mixes; every golden below is the exact bit pattern (`f64::to_bits`)
//! or FNV-1a checksum captured from those runs. The same policies now
//! instantiate `PipelineSchedule` trait objects — these tests prove the
//! trait paths reproduce the enum paths bit for bit: report scalars,
//! task-span streams, tracer streams, and peak memory.

use ecofl_models::{efficientnet, efficientnet_at};
use ecofl_obs::Tracer;
use ecofl_pipeline::executor::{ExecutionReport, PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::orchestrator::k_bounds;
use ecofl_pipeline::partition::partition_dp;
use ecofl_pipeline::profiler::PipelineProfile;
use ecofl_simnet::{nano_h, tx2_n, tx2_q, Device, Link};

struct Golden {
    label: &'static str,
    makespan: u64,
    throughput: u64,
    ssb: u64,
    spans: usize,
    span_ck: u64,
    trace_ck: u64,
    peak0: u64,
}

const GOLDENS: [Golden; 6] = [
    Golden {
        label: "mixA_1f1b",
        makespan: 0x3ff9796760dd4e55,
        throughput: 0x403e25ea8a0b53eb,
        ssb: 0x3fb28ee91b6553f6,
        spans: 48,
        span_ck: 0x930f831094e23736,
        trace_ck: 0xabace989eeadf342,
        peak0: 174451072,
    },
    Golden {
        label: "mixA_gpipe",
        makespan: 0x3ff9796760dd4e55,
        throughput: 0x403e25ea8a0b53eb,
        ssb: 0x3fb28ee91b6553f6,
        spans: 48,
        span_ck: 0xca110928663bc818,
        trace_ck: 0xb93886da5c97c1d0,
        peak0: 517454208,
    },
    Golden {
        label: "mixA_async",
        makespan: 0x3ff840168154076b,
        throughput: 0x403fab6e7c3c6ea4,
        ssb: 0x3fb28ee91b6553f6,
        spans: 48,
        span_ck: 0x9dd1ff48578bf533,
        trace_ck: 0x92d496e96f67b6e0,
        peak0: 177400576,
    },
    Golden {
        label: "mixB_1f1b",
        makespan: 0x40054c047d4c789c,
        throughput: 0x404207dfa67820e8,
        ssb: 0x3fdea6cfbd375887,
        spans: 72,
        span_ck: 0x0f9bc012f389d9c2,
        trace_ck: 0xcabea09b75b8fc79,
        peak0: 1314394304,
    },
    Golden {
        label: "mixB_gpipe",
        makespan: 0x40075af8ec694f0c,
        throughput: 0x4040710e1a0253e8,
        ssb: 0x3fdea6cfbd375887,
        spans: 72,
        span_ck: 0xa5d7399f5066d396,
        trace_ck: 0xa900eb11e6617dd2,
        peak0: 1575460032,
    },
    Golden {
        label: "mixB_async",
        makespan: 0x40023958a1b93f6e,
        throughput: 0x40451233efe41859,
        ssb: 0x3fdea6cfbd375887,
        spans: 72,
        span_ck: 0x0b743d6ef739b7e4,
        trace_ck: 0x0c348f9544bd673f,
        peak0: 1350656960,
    },
];

fn span_checksum(r: &ExecutionReport) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    for s in &r.task_spans {
        mix(s.stage as u64);
        mix(s.micro as u64);
        mix(s.round as u64);
        mix(u64::from(s.forward));
        mix(s.start.to_bits());
        mix(s.end.to_bits());
    }
    h
}

fn trace_checksum(tracer: &Tracer) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    for rec in tracer.view().records() {
        if let ecofl_obs::TraceRecord::Span(s) = rec {
            mix(s.entity as u64);
            mix(s.round as u64);
            mix(s.micro as u64);
            mix(s.t0.to_bits());
            mix(s.t1.to_bits());
        }
    }
    h
}

fn check(golden: &Golden, profile: &PipelineProfile, policy: SchedulePolicy) {
    let exec = PipelineExecutor::new(profile, policy.clone()).expect("valid policy");
    let r = exec.run(6, 2).expect("no OOM");
    let tracer = Tracer::new();
    let exec2 = PipelineExecutor::new(profile, policy).expect("valid policy");
    let _ = exec2.run_traced(6, 2, &tracer).expect("no OOM");
    let label = golden.label;
    assert_eq!(
        r.makespan.to_bits(),
        golden.makespan,
        "{label}: makespan bits"
    );
    assert_eq!(
        r.throughput.to_bits(),
        golden.throughput,
        "{label}: throughput bits"
    );
    assert_eq!(r.ssb_per_round.to_bits(), golden.ssb, "{label}: ssb bits");
    assert_eq!(r.task_spans.len(), golden.spans, "{label}: span count");
    assert_eq!(span_checksum(&r), golden.span_ck, "{label}: span checksum");
    assert_eq!(
        trace_checksum(&tracer),
        golden.trace_ck,
        "{label}: trace checksum"
    );
    assert_eq!(
        r.stage_peak_memory[0], golden.peak0,
        "{label}: stage-0 peak memory"
    );
}

#[test]
fn legacy_schedules_are_bit_identical_through_the_trait() {
    // Mix A: 2-stage TX2-N + Nano-H, EfficientNet-B0, even split, mbs 4.
    let model = efficientnet(0);
    let l = model.num_layers();
    let devices = vec![Device::new(tx2_n()), Device::new(nano_h())];
    let p2 = PipelineProfile::new(&model, &[0, l / 2, l], &devices, &Link::mbps_100(), 4);
    let k2 = k_bounds(&p2).expect("fits");

    // Mix B: 3-stage TX2-Q + 2x Nano-H, EfficientNet-B2 @224, DP split, mbs 8.
    let model3 = efficientnet_at(2, 224);
    let devices3 = vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ];
    let link = Link::mbps_100();
    let part = partition_dp(&model3, &devices3, &link, 8).expect("feasible");
    let p3 = PipelineProfile::new(&model3, &part.boundaries, &devices3, &link, 8);
    let k3 = k_bounds(&p3).expect("fits");

    for (i, (profile, k)) in [(&p2, &k2), (&p3, &k3)].into_iter().enumerate() {
        check(
            &GOLDENS[i * 3],
            profile,
            SchedulePolicy::OneFOneBSync { k: k.clone() },
        );
        check(&GOLDENS[i * 3 + 1], profile, SchedulePolicy::BafSync);
        check(
            &GOLDENS[i * 3 + 2],
            profile,
            SchedulePolicy::OneFOneBAsync { k: k.clone() },
        );
    }
}
