//! Crash-path coverage for the supervised 1F1B runtime (§4.4 on real
//! threads): killing any stage mid-round must surface a typed
//! `StageDied` error in bounded time — never a panic, never a hang —
//! and checkpoint → crash → recover → replay must be bit-identical to
//! an uninterrupted run.
//!
//! `scripts/ci.sh` runs this suite under a watchdog at
//! `ECOFL_THREADS=1/2/8` so a reintroduced deadlock fails CI instead of
//! wedging it.

use ecofl_compat::check::{forall, pair, quad, triple, usize_in, vec_in};
use ecofl_obs::{EventKind, Tracer};
use ecofl_pipeline::executor::ExecError;
use ecofl_pipeline::runtime::{
    load_checkpoint_at_or_before, load_latest_checkpoint, stored_checkpoints, FaultPlan,
    PipelineTrainer, RuntimeOptions, SegmentFactory,
};
use ecofl_tensor::{Layer, Linear, ReLU, Tensor};
use ecofl_util::Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A unique per-test store directory under the system temp dir.
fn temp_store(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ecofl-fault-store-{tag}-{}-{n}",
        std::process::id()
    ))
}

/// Layer widths for a 4-linear MLP: in → h1 → h2 → h3 → out.
fn widths(seed: u64) -> [usize; 5] {
    let mut rng = Rng::new(seed);
    [
        rng.range_usize(2, 10),
        rng.range_usize(2, 16),
        rng.range_usize(2, 16),
        rng.range_usize(2, 16),
        rng.range_usize(2, 6),
    ]
}

/// The 7 layers (4 linear + 3 ReLU), deterministic in `seed`.
fn build_layers(seed: u64) -> Vec<Box<dyn Layer>> {
    let w = widths(seed);
    let mut rng = Rng::new(seed ^ 0xBEEF);
    vec![
        Box::new(Linear::new(w[0], w[1], &mut rng)) as Box<dyn Layer>,
        Box::new(ReLU::new()),
        Box::new(Linear::new(w[1], w[2], &mut rng)),
        Box::new(ReLU::new()),
        Box::new(Linear::new(w[2], w[3], &mut rng)),
        Box::new(ReLU::new()),
        Box::new(Linear::new(w[3], w[4], &mut rng)),
    ]
}

/// A factory splitting the 7 layers at the given cut positions (each
/// mapped into 1..7, deduplicated) — same split every call, as the
/// recovery contract requires.
fn factory(seed: u64, cuts: &[usize]) -> SegmentFactory {
    let cuts = cuts.to_vec();
    Box::new(move || {
        let mut layers = build_layers(seed);
        let mut cuts: Vec<usize> = cuts.iter().map(|c| 1 + c % 6).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut segments = Vec::new();
        let mut taken = 0;
        for &c in &cuts {
            if c <= taken {
                continue;
            }
            let rest = layers.split_off(c - taken);
            taken = c;
            segments.push(std::mem::replace(&mut layers, rest));
        }
        segments.push(layers);
        segments.retain(|s| !s.is_empty());
        segments
    })
}

fn round_data(
    seed: u64,
    rounds: usize,
    m: usize,
    bs: usize,
    in_dim: usize,
    classes: usize,
) -> Vec<Vec<(Tensor, Vec<usize>)>> {
    let mut rng = Rng::new(seed ^ 0xDA7A);
    (0..rounds)
        .map(|_| {
            (0..m)
                .map(|_| {
                    let x = Tensor::randn(&[bs, in_dim], 1.0, &mut rng);
                    let y = (0..bs).map(|_| rng.range_usize(0, classes)).collect();
                    (x, y)
                })
                .collect()
        })
        .collect()
}

/// Runs `data` to completion on a fault-free twin; returns final params.
fn uninterrupted_params(
    seed: u64,
    cuts: &[usize],
    k: &[usize],
    data: &[Vec<(Tensor, Vec<usize>)>],
    lr: f32,
) -> Vec<f32> {
    let mut twin = PipelineTrainer::launch_supervised(
        factory(seed, cuts),
        k.to_vec(),
        RuntimeOptions::default(),
    )
    .expect("fault-free launch");
    for batch in data {
        twin.train_round(batch, lr).expect("fault-free round");
    }
    let params = twin.params().expect("fault-free collect");
    twin.shutdown();
    params
}

#[test]
fn killing_any_stage_is_a_bounded_typed_error_and_recoverable() {
    // First, middle and last stage: the wait chains differ (stage 0
    // blocks the portal's input feed, the last stage owes the losses),
    // so each kill position exercises a different cascade.
    let seed = 11u64;
    let cuts = [2usize, 4]; // 3 stages
    let k = vec![3usize, 2, 1];
    let w = widths(seed);
    let data = round_data(seed, 3, 4, 5, w[0], w[4]);
    let lr = 0.1f32;
    let expect = uninterrupted_params(seed, &cuts, &k, &data, lr);

    for kill_stage in 0..3usize {
        let opts = RuntimeOptions {
            recv_timeout: Duration::from_secs(10),
            fault_plan: FaultPlan::kill_at(kill_stage, 1, 2),
            ..RuntimeOptions::default()
        };
        let mut trainer = PipelineTrainer::launch_supervised(factory(seed, &cuts), k.clone(), opts)
            .expect("launch");
        trainer.train_round(&data[0], lr).expect("round 0 is clean");

        let start = Instant::now();
        let err = trainer
            .train_round(&data[1], lr)
            .expect_err("round 1 must hit the injected kill");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "death of stage {kill_stage} must surface in bounded time"
        );
        match &err {
            ExecError::StageDied { stage, during } => {
                assert_eq!(*stage, kill_stage, "root cause must name the killed stage");
                assert!(
                    during.contains("injected kill"),
                    "attribution must be the kill, not a cascade disconnect: {during}"
                );
            }
            other => panic!("expected StageDied, got {other:?}"),
        }

        // Poisoned until recovery: every op returns the stored error.
        assert_eq!(trainer.params().unwrap_err(), err);
        assert_eq!(trainer.train_round(&data[1], lr).unwrap_err(), err);
        assert_eq!(trainer.failure(), Some(&err));

        // Recover rewinds to the post-round-0 checkpoint; replaying
        // rounds 1..3 must land exactly on the uninterrupted twin.
        let resumed = trainer.recover().expect("recovery");
        assert_eq!(resumed, 1, "checkpoint was taken after round 0");
        assert!(trainer.failure().is_none());
        for batch in &data[resumed as usize..] {
            trainer.train_round(batch, lr).expect("replayed round");
        }
        assert_eq!(
            trainer.params().expect("post-recovery collect"),
            expect,
            "kill stage {kill_stage}: replay must be bit-identical to the uninterrupted run"
        );
        trainer.shutdown();
    }
}

#[test]
fn crash_in_the_first_round_recovers_from_the_launch_checkpoint() {
    let seed = 23u64;
    let cuts = [3usize];
    let k = vec![2usize, 1];
    let w = widths(seed);
    let data = round_data(seed, 2, 3, 4, w[0], w[4]);
    let expect = uninterrupted_params(seed, &cuts, &k, &data, 0.1);

    let opts = RuntimeOptions {
        recv_timeout: Duration::from_secs(10),
        fault_plan: FaultPlan::kill_at(1, 0, 0),
        ..RuntimeOptions::default()
    };
    let mut trainer =
        PipelineTrainer::launch_supervised(factory(seed, &cuts), k, opts).expect("launch");
    let err = trainer
        .train_round(&data[0], 0.1)
        .expect_err("kill at round 0");
    assert!(matches!(err, ExecError::StageDied { stage: 1, .. }));
    assert_eq!(trainer.recover().expect("recovery"), 0);
    for batch in &data {
        trainer.train_round(batch, 0.1).expect("replayed round");
    }
    assert_eq!(trainer.params().expect("collect"), expect);
    trainer.shutdown();
}

#[test]
fn a_real_panic_in_layer_code_is_supervised_too() {
    /// A layer that panics on its `n`-th forward call.
    struct PanicOnForward {
        calls: usize,
        at: usize,
    }
    impl Layer for PanicOnForward {
        fn name(&self) -> &'static str {
            "panic-on-forward"
        }
        fn forward(&mut self, input: &Tensor) -> Tensor {
            self.calls += 1;
            assert!(self.calls != self.at, "synthetic layer fault");
            input.clone()
        }
        fn backward(&mut self, grad_out: &Tensor) -> Tensor {
            grad_out.clone()
        }
    }

    let mut rng = Rng::new(7);
    let segments: Vec<Vec<Box<dyn Layer>>> = vec![
        vec![
            Box::new(Linear::new(6, 8, &mut rng)) as Box<dyn Layer>,
            Box::new(ReLU::new()),
        ],
        vec![
            Box::new(PanicOnForward { calls: 0, at: 4 }),
            Box::new(Linear::new(8, 3, &mut rng)),
        ],
    ];
    let mut trainer = PipelineTrainer::launch(segments, vec![2, 1]);
    let data = round_data(7, 2, 3, 4, 6, 3);
    trainer
        .train_round(&data[0], 0.1)
        .expect("first round: 3 forwards");
    let start = Instant::now();
    let err = trainer
        .train_round(&data[1], 0.1)
        .expect_err("4th forward panics");
    assert!(start.elapsed() < Duration::from_secs(10));
    match err {
        ExecError::StageDied { stage, during } => {
            assert_eq!(stage, 1);
            assert!(during.contains("panic"), "got: {during}");
            assert!(during.contains("synthetic layer fault"), "got: {during}");
        }
        other => panic!("expected StageDied, got {other:?}"),
    }
    // No factory — recovery is a typed refusal, not a panic.
    assert_eq!(trainer.recover(), Err(ExecError::RecoveryUnsupported));
    trainer.shutdown();
}

#[test]
fn recovery_emits_the_full_event_timeline() {
    let seed = 41u64;
    let cuts = [2usize, 5];
    let k = vec![3usize, 2, 1];
    let w = widths(seed);
    let data = round_data(seed, 3, 4, 4, w[0], w[4]);
    let tracer = Tracer::new();
    let opts = RuntimeOptions {
        recv_timeout: Duration::from_secs(10),
        fault_plan: FaultPlan::kill_at(2, 1, 1),
        tracer: Some(tracer.clone()),
        ..RuntimeOptions::default()
    };
    let mut trainer =
        PipelineTrainer::launch_supervised(factory(seed, &cuts), k, opts).expect("launch");
    let mut r = 0usize;
    while r < data.len() {
        match trainer.train_round(&data[r], 0.1) {
            Ok(_) => r += 1,
            Err(_) => {
                r = trainer.recover().expect("recovery") as usize;
            }
        }
    }
    trainer.shutdown();

    let view = tracer.view();
    let died = view.events_of(EventKind::StageDied);
    assert_eq!(died.len(), 1, "exactly one injected death");
    assert_eq!(died[0].entity, 2);
    // Checkpoints: one at launch, one per completed round (round 1
    // completes once — on replay).
    let checkpoints = view.events_of(EventKind::CheckpointTaken);
    assert_eq!(checkpoints.len(), 1 + data.len());
    let replays = view.events_of(EventKind::RoundReplayed);
    assert_eq!(replays.len(), 1, "round 1 was replayed exactly once");
    assert!(
        (replays[0].time - 1.0).abs() < 1e-12,
        "the replayed round is round 1"
    );
}

#[test]
fn store_backed_recovery_is_bit_identical_to_in_memory() {
    // The same crash scenario twice — once with checkpoints only in
    // memory, once restored from the durable run store — must land on
    // identical parameters (and both on the uninterrupted twin).
    // `scripts/ci.sh` runs this suite at ECOFL_THREADS=1/2/8.
    let seed = 67u64;
    let cuts = [2usize, 4];
    let k = vec![3usize, 2, 1];
    let w = widths(seed);
    let data = round_data(seed, 3, 4, 4, w[0], w[4]);
    let lr = 0.1f32;
    let expect = uninterrupted_params(seed, &cuts, &k, &data, lr);

    let run = |store_path: Option<PathBuf>| -> Vec<f32> {
        let opts = RuntimeOptions {
            recv_timeout: Duration::from_secs(10),
            fault_plan: FaultPlan::kill_at(1, 1, 2),
            store_path,
            ..RuntimeOptions::default()
        };
        let mut trainer = PipelineTrainer::launch_supervised(factory(seed, &cuts), k.clone(), opts)
            .expect("launch");
        let mut r = 0usize;
        while r < data.len() {
            match trainer.train_round(&data[r], lr) {
                Ok(_) => r += 1,
                Err(_) => r = trainer.recover().expect("recovery") as usize,
            }
        }
        let params = trainer.params().expect("collect");
        trainer.shutdown();
        params
    };

    let dir = temp_store("bitident");
    let in_memory = run(None);
    let store_backed = run(Some(dir.clone()));
    assert_eq!(
        store_backed, in_memory,
        "store-restored replay must be bit-identical to the in-memory path"
    );
    assert_eq!(store_backed, expect, "and to the uninterrupted twin");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stored_checkpoints_have_monotone_seqs_and_load_by_seq() {
    let seed = 91u64;
    let cuts = [3usize];
    let k = vec![2usize, 1];
    let w = widths(seed);
    let data = round_data(seed, 3, 3, 4, w[0], w[4]);
    let dir = temp_store("seqs");

    let opts = RuntimeOptions {
        store_path: Some(dir.clone()),
        ..RuntimeOptions::default()
    };
    let mut trainer =
        PipelineTrainer::launch_supervised(factory(seed, &cuts), k.clone(), opts).expect("launch");
    let mut per_round_params = vec![trainer.checkpoint().params.clone()];
    for batch in &data {
        trainer.train_round(batch, 0.1).expect("round");
        per_round_params.push(trainer.checkpoint().params.clone());
    }
    trainer.shutdown();

    // One checkpoint at launch + one per round, seqs 0,1,2,...
    let metas = stored_checkpoints(&dir).expect("list");
    assert_eq!(metas.len(), 1 + data.len());
    for (i, m) in metas.iter().enumerate() {
        assert_eq!(m.seq, i as u64, "seqs must be dense and monotone");
        assert_eq!(m.round, i as u64, "one checkpoint per completed round");
    }

    // Point-in-time: seq s restores the exact post-round-s snapshot;
    // a probe between stored seqs resolves to the latest ≤ it.
    for (s, want) in per_round_params.iter().enumerate() {
        let rec = load_checkpoint_at_or_before(&dir, s as u64)
            .expect("load")
            .expect("present");
        assert_eq!(rec.seq, s as u64);
        assert_eq!(&rec.params, want, "seq {s} must restore its own snapshot");
    }
    let latest = load_latest_checkpoint(&dir)
        .expect("load")
        .expect("present");
    assert_eq!(latest.seq, data.len() as u64);
    assert_eq!(&latest.params, per_round_params.last().unwrap());
    assert!(
        load_checkpoint_at_or_before(&dir, u64::MAX)
            .expect("load")
            .expect("present")
            .seq
            == latest.seq
    );

    // A second run against the same store continues the numbering —
    // the cross-run half of the versioned-checkpoint contract.
    let opts = RuntimeOptions {
        store_path: Some(dir.clone()),
        ..RuntimeOptions::default()
    };
    let trainer =
        PipelineTrainer::launch_supervised(factory(seed, &cuts), k, opts).expect("relaunch");
    assert_eq!(trainer.checkpoint().seq, (1 + data.len()) as u64);
    trainer.shutdown();
    let metas = stored_checkpoints(&dir).expect("list");
    assert_eq!(metas.len(), 2 + data.len());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_crash_recover_replay_is_bit_identical() {
    // The §4.4 property, over random architectures, splits, micro-batch
    // counts and kill points: recovery + replay always converges to the
    // uninterrupted twin, bit for bit.
    let input = pair(
        pair(usize_in(0, 1_000_000), vec_in(usize_in(0, 6), 0, 3)),
        quad(
            usize_in(1, 5),                                         // m
            usize_in(1, 3),                                         // rounds
            triple(usize_in(0, 9), usize_in(0, 9), usize_in(0, 9)), // kill point (mod-mapped)
            usize_in(1, 4),                                         // batch size
        ),
    );
    forall(
        "checkpoint_crash_recover_replay_is_bit_identical",
        12,
        &input,
        |((seed, cuts), (m, rounds, (ks, kr, kn), bs))| {
            let (seed, m, rounds, bs) = (*seed as u64, *m, *rounds, *bs);
            let w = widths(seed);
            let probe = factory(seed, cuts)();
            let s_count = probe.len();
            drop(probe);
            let k: Vec<usize> = (0..s_count).map(|s| s_count - s).collect();
            let data = round_data(seed, rounds, m, bs, w[0], w[4]);
            let lr = 0.1f32;
            let expect = uninterrupted_params(seed, cuts, &k, &data, lr);

            let kill = FaultPlan::kill_at(ks % s_count, (kr % rounds) as u64, kn % m);
            let opts = RuntimeOptions {
                recv_timeout: Duration::from_secs(10),
                fault_plan: kill,
                ..RuntimeOptions::default()
            };
            let mut trainer =
                PipelineTrainer::launch_supervised(factory(seed, cuts), k, opts).expect("launch");
            let mut r = 0usize;
            let mut recoveries = 0usize;
            while r < rounds {
                match trainer.train_round(&data[r], lr) {
                    Ok(_) => r += 1,
                    Err(e) => {
                        assert!(matches!(e, ExecError::StageDied { .. }), "got {e:?}");
                        recoveries += 1;
                        assert!(recoveries <= 1, "a single transient kill fires once");
                        r = trainer.recover().expect("recovery") as usize;
                    }
                }
            }
            assert_eq!(recoveries, 1, "the scheduled kill must actually fire");
            assert_eq!(
                trainer.params().expect("collect"),
                expect,
                "replay diverged from the uninterrupted twin"
            );
            trainer.shutdown();
        },
    );
}
