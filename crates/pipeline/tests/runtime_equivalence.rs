//! Property test: the multi-threaded 1F1B-Sync runtime is semantically
//! identical to single-device gradient accumulation for *arbitrary* stage
//! splits, micro-batch counts and residency vectors — the strongest
//! statement of the paper's claim that 1F1B-Sync changes execution order,
//! never training semantics.

use ecofl_compat::check::{any_u64, forall, pair, quad, usize_in, vec_in};
use ecofl_pipeline::runtime::PipelineTrainer;
use ecofl_tensor::{Layer, Linear, Network, ReLU, Tensor};
use ecofl_util::Rng;

const CASES: usize = 24;

/// Layer widths for a 4-linear-layer MLP: in → h1 → h2 → h3 → out.
fn widths(seed: u64) -> [usize; 5] {
    let mut rng = Rng::new(seed);
    [
        rng.range_usize(2, 10),
        rng.range_usize(2, 16),
        rng.range_usize(2, 16),
        rng.range_usize(2, 16),
        rng.range_usize(2, 6),
    ]
}

/// Builds the 7 layers (4 linear + 3 ReLU) deterministically.
fn build_layers(seed: u64) -> Vec<Box<dyn Layer>> {
    let w = widths(seed);
    let mut rng = Rng::new(seed ^ 0xBEEF);
    vec![
        Box::new(Linear::new(w[0], w[1], &mut rng)) as Box<dyn Layer>,
        Box::new(ReLU::new()),
        Box::new(Linear::new(w[1], w[2], &mut rng)),
        Box::new(ReLU::new()),
        Box::new(Linear::new(w[2], w[3], &mut rng)),
        Box::new(ReLU::new()),
        Box::new(Linear::new(w[3], w[4], &mut rng)),
    ]
}

/// Splits 7 layers into segments at the given cut positions (each in
/// 1..7, deduplicated and sorted).
fn split(seed: u64, cuts: &[usize]) -> Vec<Vec<Box<dyn Layer>>> {
    let mut layers = build_layers(seed);
    let mut cuts: Vec<usize> = cuts.iter().map(|c| 1 + c % 6).collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut segments = Vec::new();
    let mut taken = 0;
    for &c in &cuts {
        if c <= taken {
            continue;
        }
        let rest = layers.split_off(c - taken);
        taken = c;
        segments.push(std::mem::replace(&mut layers, rest));
    }
    segments.push(layers);
    segments.retain(|s| !s.is_empty());
    segments
}

#[test]
fn pipelined_training_equals_reference() {
    let input = pair(
        any_u64(),
        quad(
            vec_in(usize_in(0, 6), 0, 3),
            usize_in(1, 6),
            usize_in(1, 5),
            usize_in(1, 4),
        ),
    );
    forall(
        "pipelined_training_equals_reference",
        CASES,
        &input,
        |(seed, (cuts, m, bs, rounds))| {
            let (seed, m, bs, rounds) = (*seed, *m, *bs, *rounds);
            let w = widths(seed);
            let segments = split(seed, cuts);
            let s_count = segments.len();
            // Residency: the classic S − s warmup depth.
            let k: Vec<usize> = (0..s_count).map(|s| s_count - s).collect();
            let mut trainer = PipelineTrainer::launch(segments, k);

            let mut reference = Network::new(build_layers(seed));
            let lr = 0.1f32;

            let mut data_rng = Rng::new(seed ^ 0xDA7A);
            for _ in 0..rounds {
                let batches: Vec<(Tensor, Vec<usize>)> = (0..m)
                    .map(|_| {
                        let x = Tensor::randn(&[bs, w[0]], 1.0, &mut data_rng);
                        let y = (0..bs).map(|_| data_rng.range_usize(0, w[4])).collect();
                        (x, y)
                    })
                    .collect();

                let pipe_loss = trainer.train_round(&batches, lr).expect("healthy round");

                reference.zero_grads();
                let mut ref_loss = 0.0f32;
                for (x, y) in &batches {
                    ref_loss += reference.train_step(x, y);
                }
                ref_loss /= m as f32;
                let mut params = reference.params();
                let grads = reference.grads();
                let scale = 1.0 / m as f32;
                for (p, g) in params.iter_mut().zip(&grads) {
                    *p -= lr * g * scale;
                }
                reference.set_params(&params);

                assert!(
                    (pipe_loss - ref_loss).abs() < 1e-5,
                    "loss mismatch: {pipe_loss} vs {ref_loss}"
                );
                assert_eq!(
                    trainer.params().expect("healthy collect"),
                    reference.params(),
                    "parameters diverged after a round"
                );
            }
            trainer.shutdown();
        },
    );
}
