//! Validation of the §4.1 claim that pipeline parallelism "can effectively
//! hide the transmission overhead by overlapping communication with
//! computation" — and of its stated limit ("we will not choose pipeline
//! parallelism to train the DNN models with huge inter-stage
//! activations").

use ecofl_models::efficientnet_at;
use ecofl_pipeline::executor::{PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::orchestrator::k_bounds;
use ecofl_pipeline::partition::partition_dp;
use ecofl_pipeline::profiler::PipelineProfile;
use ecofl_simnet::{nano_h, tx2_q, Device, Link};

fn throughput_with_link(link: Link, mbs: usize) -> f64 {
    let model = efficientnet_at(1, 224);
    let devices = vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ];
    // Partition against the *realistic* link so both runs use the same
    // stage map; only transfer times differ.
    let realistic = Link::mbps_100();
    let partition = partition_dp(&model, &devices, &realistic, mbs).expect("feasible");
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, mbs);
    let k = k_bounds(&profile).expect("fits");
    PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
        .expect("valid schedule")
        .run(16, 3)
        .expect("runs")
        .throughput
}

#[test]
fn transmission_overhead_is_mostly_hidden() {
    // With the Eq. 3 residency bounds, 100 Mbps transfers should cost only
    // a small fraction of throughput relative to an infinitely fast link.
    let realistic = throughput_with_link(Link::mbps_100(), 8);
    let infinite = throughput_with_link(Link::new(1e15, 0.0), 8);
    let hidden_fraction = realistic / infinite;
    assert!(
        hidden_fraction > 0.85,
        "pipelining should hide most of the 100 Mbps transfer cost: \
         {realistic:.2} vs {infinite:.2} samples/s ({:.0}%)",
        hidden_fraction * 100.0
    );
}

#[test]
fn slow_links_do_bottleneck_eventually() {
    // The §4.1 caveat: on a sufficiently slow link, transfers stop being
    // hideable and throughput collapses — which is why the DP's Eq. 1
    // includes the communication term at all.
    let realistic = throughput_with_link(Link::mbps_100(), 8);
    let crawling = throughput_with_link(
        Link::new(ecofl_util::units::mbps_to_bytes_per_sec(2.0), 0.002),
        8,
    );
    assert!(
        crawling < realistic * 0.6,
        "a 2 Mbps link must visibly bottleneck: {crawling:.2} vs {realistic:.2}"
    );
}

#[test]
fn dp_partitioner_avoids_communication_heavy_cuts() {
    // At equal compute balance, the Eq. 1 objective must never pick a cut
    // whose transfer time exceeds the resulting lagger.
    let model = efficientnet_at(2, 224);
    let devices = vec![Device::new(tx2_q()), Device::new(nano_h())];
    let link = Link::mbps_100();
    for mbs in [4usize, 8, 16] {
        let Some(partition) = partition_dp(&model, &devices, &link, mbs) else {
            continue;
        };
        let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, mbs);
        let lagger = profile.bottleneck_time();
        for stage in &profile.stages()[..profile.num_stages() - 1] {
            let comm = stage.c_fwd + stage.c_bwd;
            assert!(
                comm <= lagger + 1e-9,
                "mbs {mbs}: cut transfer {comm} exceeds the lagger {lagger}"
            );
        }
    }
}
