//! Property-based tests for partitioning, orchestration and execution.

use ecofl_compat::check::{f64_in, forall, pair, quad, triple, usize_in, vec_exact, vec_in};
use ecofl_models::{efficientnet_at, ModelProfile};
use ecofl_pipeline::executor::{PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::orchestrator::{k_bounds, p_bounds};
use ecofl_pipeline::partition::{
    partition_dp, partition_even, partition_feasible, partition_objective,
};
use ecofl_pipeline::profiler::{PipelineProfile, StageProfile};
use ecofl_simnet::{Device, DeviceSpec, Link};

const CASES: usize = 48;

/// Small synthetic model with arbitrary layer weights.
fn tiny_model(flops: &[f64]) -> ModelProfile {
    ModelProfile {
        name: "tiny".into(),
        layers: flops
            .iter()
            .enumerate()
            .map(|(i, &f)| ecofl_models::LayerProfile {
                name: format!("l{i}"),
                flops_fwd: f,
                flops_bwd: 2.0 * f,
                activation_bytes: 1000,
                train_activation_bytes: 4000,
                param_bytes: 500,
            })
            .collect(),
        input_bytes: 1000,
    }
}

fn device(rate: f64) -> Device {
    Device::new(DeviceSpec::new("d", rate, 1 << 32, 1e8))
}

/// Exhaustive optimum for 2-device partitions.
fn brute_force_2dev(
    model: &ModelProfile,
    devices: &[Device],
    link: &Link,
    mbs: usize,
) -> Option<f64> {
    let l = model.num_layers();
    let mut best: Option<f64> = None;
    for cut in 1..l {
        let p = ecofl_pipeline::partition::Partition {
            boundaries: vec![0, cut, l],
        };
        if !partition_feasible(model, &p, devices, mbs) {
            continue;
        }
        let obj = partition_objective(model, &p, devices, link, mbs);
        if best.is_none_or(|b| obj < b) {
            best = Some(obj);
        }
    }
    best
}

#[test]
fn dp_matches_brute_force_on_random_models() {
    let input = quad(
        vec_in(f64_in(1e6, 1e9), 2, 14),
        f64_in(1e9, 1e11),
        f64_in(1e9, 1e11),
        usize_in(1, 16),
    );
    forall(
        "dp_matches_brute_force_on_random_models",
        CASES,
        &input,
        |(flops, r0, r1, mbs)| {
            let model = tiny_model(flops);
            let devices = vec![device(*r0), device(*r1)];
            let link = Link::mbps_100();
            let dp = partition_dp(&model, &devices, &link, *mbs);
            let bf = brute_force_2dev(&model, &devices, &link, *mbs);
            match (dp, bf) {
                (Some(p), Some(best)) => {
                    let obj = partition_objective(&model, &p, &devices, &link, *mbs);
                    assert!((obj - best).abs() < 1e-9, "dp {obj} vs brute {best}");
                }
                (None, None) => {}
                (a, b) => panic!("feasibility disagreement: {a:?} vs {b:?}"),
            }
        },
    );
}

#[test]
fn dp_boundaries_well_formed() {
    let input = triple(
        vec_in(f64_in(1e6, 1e9), 3, 20),
        vec_in(f64_in(1e9, 1e11), 1, 4),
        usize_in(1, 16),
    );
    forall(
        "dp_boundaries_well_formed",
        CASES,
        &input,
        |(flops, rates, mbs)| {
            let model = tiny_model(flops);
            let devices: Vec<Device> = rates.iter().map(|&r| device(r)).collect();
            if let Some(p) = partition_dp(&model, &devices, &Link::mbps_100(), *mbs) {
                assert_eq!(p.num_stages(), devices.len());
                assert_eq!(p.boundaries[0], 0);
                assert_eq!(*p.boundaries.last().unwrap(), model.num_layers());
                for w in p.boundaries.windows(2) {
                    assert!(w[0] < w[1], "stages must be non-empty");
                }
            }
        },
    );
}

#[test]
fn even_partition_covers_all_layers() {
    let input = pair(vec_in(f64_in(1e6, 1e9), 2, 30), usize_in(1, 6));
    forall(
        "even_partition_covers_all_layers",
        CASES,
        &input,
        |(flops, stages)| {
            let model = tiny_model(flops);
            let stages = *stages;
            if let Some(p) = partition_even(&model, stages) {
                assert_eq!(p.num_stages(), stages);
                let covered: usize = (0..stages).map(|s| p.stage_range(s).len()).sum();
                assert_eq!(covered, model.num_layers());
            } else {
                assert!(model.num_layers() < stages);
            }
        },
    );
}

#[test]
fn p_bounds_strictly_decreasing_and_end_at_one() {
    let widths = vec_in(f64_in(0.1, 4.0), 2, 6);
    forall(
        "p_bounds_strictly_decreasing_and_end_at_one",
        CASES,
        &widths,
        |widths| {
            let stages: Vec<StageProfile> = widths
                .iter()
                .enumerate()
                .map(|(s, &w)| StageProfile {
                    device: s,
                    layers: s..s + 1,
                    t_fwd: w / 3.0,
                    t_bwd: 2.0 * w / 3.0,
                    c_fwd: if s + 1 < widths.len() { 0.1 } else { 0.0 },
                    c_bwd: if s + 1 < widths.len() { 0.1 } else { 0.0 },
                    param_bytes: 1,
                    activation_bytes_per_mb: 1,
                    boundary_bytes: 1,
                    memory_budget_bytes: 1 << 30,
                    efficiency: 1.0,
                })
                .collect();
            let profile = PipelineProfile::from_stages(stages, 1);
            let p = p_bounds(&profile);
            assert_eq!(*p.last().unwrap(), 1);
            for w in p.windows(2) {
                assert!(w[0] > w[1], "P must strictly decrease: {p:?}");
            }
        },
    );
}

#[test]
fn executor_completes_for_any_valid_k() {
    let input = triple(
        vec_exact(usize_in(1, 6), 3),
        usize_in(1, 12),
        usize_in(1, 9),
    );
    forall(
        "executor_completes_for_any_valid_k",
        CASES,
        &input,
        |(seed_k, m, mbs)| {
            let (m, mbs) = (*m, *mbs);
            let model = efficientnet_at(0, 224);
            let devices = vec![device(2e11), device(1e11), device(0.5e11)];
            let link = Link::mbps_100();
            let Some(part) = partition_dp(&model, &devices, &link, mbs) else {
                return;
            };
            let profile = PipelineProfile::new(&model, &part.boundaries, &devices, &link, mbs);
            let exec =
                PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k: seed_k.clone() })
                    .expect("valid schedule");
            let r = exec.run(m, 1).expect("memory is ample here");
            // Liveness: every micro-batch completed, makespan finite and at
            // least the serial lower bound of the slowest stage.
            assert!(r.makespan.is_finite() && r.makespan > 0.0);
            let serial_bound = profile
                .stages()
                .iter()
                .map(|s| (s.t_fwd + s.t_bwd) * m as f64)
                .fold(0.0, f64::max);
            assert!(r.makespan + 1e-9 >= serial_bound);
            // Work conservation: throughput × makespan = samples.
            let samples = (m * mbs) as f64;
            assert!((r.throughput * r.makespan - samples).abs() < 1e-6);
        },
    );
}

#[test]
fn k_bounds_never_exceed_p() {
    forall("k_bounds_never_exceed_p", CASES, &usize_in(1, 17), |&mbs| {
        let model = efficientnet_at(2, 224);
        let devices = vec![device(2e11), device(1e11)];
        let link = Link::mbps_100();
        let Some(part) = partition_dp(&model, &devices, &link, mbs) else {
            return;
        };
        let profile = PipelineProfile::new(&model, &part.boundaries, &devices, &link, mbs);
        if let Some(k) = k_bounds(&profile) {
            let p = p_bounds(&profile);
            for (a, b) in k.iter().zip(&p) {
                assert!(a <= b);
            }
        }
    });
}

#[test]
fn gpipe_vs_ours_same_total_work() {
    forall(
        "gpipe_vs_ours_same_total_work",
        CASES,
        &usize_in(2, 10),
        |&m| {
            // Both schedules process identical work; throughput may differ but
            // total samples must match.
            let model = efficientnet_at(0, 224);
            let devices = vec![device(2e11), device(1e11)];
            let link = Link::mbps_100();
            let part = partition_dp(&model, &devices, &link, 4).expect("feasible");
            let profile = PipelineProfile::new(&model, &part.boundaries, &devices, &link, 4);
            let k = k_bounds(&profile).expect("fits");
            let ours = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
                .expect("valid schedule")
                .run(m, 1)
                .expect("runs");
            let gpipe = PipelineExecutor::new(&profile, SchedulePolicy::BafSync)
                .expect("valid schedule")
                .run(m, 1)
                .expect("runs");
            let ours_samples = ours.throughput * ours.makespan;
            let gpipe_samples = gpipe.throughput * gpipe.makespan;
            assert!((ours_samples - gpipe_samples).abs() < 1e-6);
        },
    );
}
