//! Property-based tests for partitioning, orchestration and execution.

use ecofl_models::{efficientnet_at, ModelProfile};
use ecofl_pipeline::executor::{PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::orchestrator::{k_bounds, p_bounds};
use ecofl_pipeline::partition::{
    partition_dp, partition_even, partition_feasible, partition_objective,
};
use ecofl_pipeline::profiler::{PipelineProfile, StageProfile};
use ecofl_simnet::{Device, DeviceSpec, Link};
use proptest::prelude::*;

/// Small synthetic model with arbitrary layer weights.
fn tiny_model(flops: Vec<f64>) -> ModelProfile {
    ModelProfile {
        name: "tiny".into(),
        layers: flops
            .iter()
            .enumerate()
            .map(|(i, &f)| ecofl_models::LayerProfile {
                name: format!("l{i}"),
                flops_fwd: f,
                flops_bwd: 2.0 * f,
                activation_bytes: 1000,
                train_activation_bytes: 4000,
                param_bytes: 500,
            })
            .collect(),
        input_bytes: 1000,
    }
}

fn device(rate: f64) -> Device {
    Device::new(DeviceSpec::new("d", rate, 1 << 32, 1e8))
}

/// Exhaustive optimum for 2-device partitions.
fn brute_force_2dev(
    model: &ModelProfile,
    devices: &[Device],
    link: &Link,
    mbs: usize,
) -> Option<f64> {
    let l = model.num_layers();
    let mut best: Option<f64> = None;
    for cut in 1..l {
        let p = ecofl_pipeline::partition::Partition {
            boundaries: vec![0, cut, l],
        };
        if !partition_feasible(model, &p, devices, mbs) {
            continue;
        }
        let obj = partition_objective(model, &p, devices, link, mbs);
        if best.is_none_or(|b| obj < b) {
            best = Some(obj);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dp_matches_brute_force_on_random_models(
        flops in proptest::collection::vec(1e6f64..1e9, 2..14),
        r0 in 1e9f64..1e11,
        r1 in 1e9f64..1e11,
        mbs in 1usize..16,
    ) {
        let model = tiny_model(flops);
        let devices = vec![device(r0), device(r1)];
        let link = Link::mbps_100();
        let dp = partition_dp(&model, &devices, &link, mbs);
        let bf = brute_force_2dev(&model, &devices, &link, mbs);
        match (dp, bf) {
            (Some(p), Some(best)) => {
                let obj = partition_objective(&model, &p, &devices, &link, mbs);
                prop_assert!((obj - best).abs() < 1e-9, "dp {obj} vs brute {best}");
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "feasibility disagreement: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn dp_boundaries_well_formed(
        flops in proptest::collection::vec(1e6f64..1e9, 3..20),
        rates in proptest::collection::vec(1e9f64..1e11, 1..4),
        mbs in 1usize..16,
    ) {
        let model = tiny_model(flops);
        let devices: Vec<Device> = rates.iter().map(|&r| device(r)).collect();
        if let Some(p) = partition_dp(&model, &devices, &Link::mbps_100(), mbs) {
            prop_assert_eq!(p.num_stages(), devices.len());
            prop_assert_eq!(p.boundaries[0], 0);
            prop_assert_eq!(*p.boundaries.last().unwrap(), model.num_layers());
            for w in p.boundaries.windows(2) {
                prop_assert!(w[0] < w[1], "stages must be non-empty");
            }
        }
    }

    #[test]
    fn even_partition_covers_all_layers(
        flops in proptest::collection::vec(1e6f64..1e9, 2..30),
        stages in 1usize..6,
    ) {
        let model = tiny_model(flops);
        if let Some(p) = partition_even(&model, stages) {
            prop_assert_eq!(p.num_stages(), stages);
            let covered: usize = (0..stages).map(|s| p.stage_range(s).len()).sum();
            prop_assert_eq!(covered, model.num_layers());
        } else {
            prop_assert!(model.num_layers() < stages);
        }
    }

    #[test]
    fn p_bounds_strictly_decreasing_and_end_at_one(
        widths in proptest::collection::vec(0.1f64..4.0, 2..6),
    ) {
        let stages: Vec<StageProfile> = widths
            .iter()
            .enumerate()
            .map(|(s, &w)| StageProfile {
                device: s,
                layers: s..s + 1,
                t_fwd: w / 3.0,
                t_bwd: 2.0 * w / 3.0,
                c_fwd: if s + 1 < widths.len() { 0.1 } else { 0.0 },
                c_bwd: if s + 1 < widths.len() { 0.1 } else { 0.0 },
                param_bytes: 1,
                activation_bytes_per_mb: 1,
                boundary_bytes: 1,
                memory_budget_bytes: 1 << 30,
                efficiency: 1.0,
            })
            .collect();
        let profile = PipelineProfile::from_stages(stages, 1);
        let p = p_bounds(&profile);
        prop_assert_eq!(*p.last().unwrap(), 1);
        for w in p.windows(2) {
            prop_assert!(w[0] > w[1], "P must strictly decrease: {:?}", p);
        }
    }

    #[test]
    fn executor_completes_for_any_valid_k(
        seed_k in proptest::collection::vec(1usize..6, 3),
        m in 1usize..12,
        mbs in 1usize..9,
    ) {
        let model = efficientnet_at(0, 224);
        let devices = vec![
            device(2e11),
            device(1e11),
            device(0.5e11),
        ];
        let link = Link::mbps_100();
        let Some(part) = partition_dp(&model, &devices, &link, mbs) else {
            return Ok(());
        };
        let profile = PipelineProfile::new(&model, &part.boundaries, &devices, &link, mbs);
        let exec = PipelineExecutor::new(
            &profile,
            SchedulePolicy::OneFOneBSync { k: seed_k.clone() },
        );
        let r = exec.run(m, 1).expect("memory is ample here");
        // Liveness: every micro-batch completed, makespan finite and at
        // least the serial lower bound of the slowest stage.
        prop_assert!(r.makespan.is_finite() && r.makespan > 0.0);
        let serial_bound = profile
            .stages()
            .iter()
            .map(|s| (s.t_fwd + s.t_bwd) * m as f64)
            .fold(0.0, f64::max);
        prop_assert!(r.makespan + 1e-9 >= serial_bound);
        // Work conservation: throughput × makespan = samples.
        let samples = (m * mbs) as f64;
        prop_assert!((r.throughput * r.makespan - samples).abs() < 1e-6);
    }

    #[test]
    fn k_bounds_never_exceed_p(mbs in 1usize..17) {
        let model = efficientnet_at(2, 224);
        let devices = vec![device(2e11), device(1e11)];
        let link = Link::mbps_100();
        let Some(part) = partition_dp(&model, &devices, &link, mbs) else {
            return Ok(());
        };
        let profile = PipelineProfile::new(&model, &part.boundaries, &devices, &link, mbs);
        if let Some(k) = k_bounds(&profile) {
            let p = p_bounds(&profile);
            for (a, b) in k.iter().zip(&p) {
                prop_assert!(a <= b);
            }
        }
    }

    #[test]
    fn gpipe_vs_ours_same_total_work(m in 2usize..10) {
        // Both schedules process identical work; throughput may differ but
        // total samples must match.
        let model = efficientnet_at(0, 224);
        let devices = vec![device(2e11), device(1e11)];
        let link = Link::mbps_100();
        let part = partition_dp(&model, &devices, &link, 4).expect("feasible");
        let profile = PipelineProfile::new(&model, &part.boundaries, &devices, &link, 4);
        let k = k_bounds(&profile).expect("fits");
        let ours = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
            .run(m, 1)
            .expect("runs");
        let gpipe = PipelineExecutor::new(&profile, SchedulePolicy::BafSync)
            .run(m, 1)
            .expect("runs");
        let ours_samples = ours.throughput * ours.makespan;
        let gpipe_samples = gpipe.throughput * gpipe.makespan;
        prop_assert!((ours_samples - gpipe_samples).abs() < 1e-6);
    }
}
