//! Edge-case coverage for the pipeline crate: degenerate pipelines,
//! orchestrator fallback, baseline memory paths, and adaptive scheduling
//! corner scenarios.

use ecofl_models::{efficientnet_at, ModelProfile};
use ecofl_pipeline::adaptive::{simulate_load_spike, LoadSpike};
use ecofl_pipeline::baselines::single_device_epoch;
use ecofl_pipeline::executor::{PipelineExecutor, SchedulePolicy};
use ecofl_pipeline::orchestrator::{k_bounds, p_bounds, search_configuration, OrchestratorConfig};
use ecofl_pipeline::partition::partition_dp;
use ecofl_pipeline::profiler::PipelineProfile;
use ecofl_simnet::{nano_h, tx2_q, Device, DeviceSpec, Link};

#[test]
fn single_stage_pipeline_has_no_bubbles() {
    let model = efficientnet_at(0, 224);
    let devices = vec![Device::new(tx2_q())];
    let link = Link::mbps_100();
    let partition = partition_dp(&model, &devices, &link, 8).expect("feasible");
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 8);
    assert_eq!(p_bounds(&profile), vec![1]);
    let report = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k: vec![1] })
        .expect("valid schedule")
        .run(8, 2)
        .expect("runs");
    assert_eq!(
        report.ssb_per_round, 0.0,
        "one stage has no flush trapezoid"
    );
    // Busy the whole time apart from dispatch overhead.
    assert!(report.stage_busy_utilization[0] > 0.99);
}

#[test]
fn gpipe_single_stage_equals_1f1b() {
    let model = efficientnet_at(0, 224);
    let devices = vec![Device::new(tx2_q())];
    let link = Link::mbps_100();
    let partition = partition_dp(&model, &devices, &link, 8).expect("feasible");
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 8);
    let ours = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k: vec![1] })
        .expect("valid schedule")
        .run(6, 1)
        .unwrap();
    let gpipe = PipelineExecutor::new(&profile, SchedulePolicy::BafSync)
        .expect("valid schedule")
        .run(6, 1)
        .unwrap();
    // With one stage both schedules serialize identically.
    assert!((ours.makespan - gpipe.makespan).abs() < 1e-9);
}

#[test]
fn one_micro_batch_round_works() {
    let model = efficientnet_at(0, 224);
    let devices = vec![Device::new(tx2_q()), Device::new(nano_h())];
    let link = Link::mbps_100();
    let partition = partition_dp(&model, &devices, &link, 4).expect("feasible");
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 4);
    let k = k_bounds(&profile).unwrap();
    let report = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
        .expect("valid schedule")
        .run(1, 3)
        .expect("runs");
    assert_eq!(report.micro_batches, 1);
    // M = 1 pipelines serialize completely; throughput still positive.
    assert!(report.throughput > 0.0);
}

#[test]
fn orchestrator_falls_back_when_no_ddb_free_plan_exists() {
    // Devices whose memory holds one micro-batch but never P_s of them:
    // the search must return a fallback plan with K < P, flagged.
    let model = efficientnet_at(4, 224);
    // Calibrate the budget: enough for statics + ~1.2 resident mbs of a
    // front stage at mbs 4.
    let tight = DeviceSpec::new("tight", 1.3e11, 1_400_000_000, 1e8);
    let devices = vec![Device::new(tight.clone()), Device::new(tight)];
    let plan = search_configuration(
        &model,
        &devices,
        &Link::mbps_100(),
        &OrchestratorConfig {
            global_batch: 32,
            mbs_candidates: vec![8, 4],
            eval_rounds: 1,
            ..OrchestratorConfig::default()
        },
    );
    if let Some(plan) = plan {
        if !plan.ddb_free {
            let profile_k_max = plan.k.iter().max().copied().unwrap();
            assert!(profile_k_max >= 1);
        }
        assert!(plan.report.throughput > 0.0);
    }
    // (If even the fallback is infeasible, None is acceptable — the point
    // is no panic and no bogus plan.)
}

#[test]
fn search_handles_single_device_home() {
    let model = efficientnet_at(0, 224);
    let devices = vec![Device::new(nano_h())];
    let plan = search_configuration(
        &model,
        &devices,
        &Link::mbps_100(),
        &OrchestratorConfig {
            global_batch: 32,
            mbs_candidates: vec![8, 4],
            eval_rounds: 1,
            ..OrchestratorConfig::default()
        },
    )
    .expect("single-device plan");
    assert_eq!(plan.order, vec![0]);
    assert_eq!(plan.partition.num_stages(), 1);
}

#[test]
fn single_device_reduces_batch_under_memory_pressure() {
    // A device that can only hold a few samples' activations must still
    // train by shrinking its effective batch.
    let model = efficientnet_at(4, 224);
    let act_per_sample: u64 = model.layers.iter().map(|l| l.train_activation_bytes).sum();
    let params = model.total_param_bytes();
    let budget = params * 3 + act_per_sample * 3; // fits exactly 3 samples
    let dev = Device::new(DeviceSpec::new("small", 1e11, budget, 1e8));
    let report = single_device_epoch(&model, &dev, 64, 640).expect("feasible at batch 3");
    assert!(report.max_batch >= 1 && report.max_batch <= 3);
    assert!(report.epoch_time > 0.0);
}

#[test]
fn spike_on_the_fast_stage_also_recovers() {
    // Fig. 13 spikes device 1; the scheduler must work wherever the spike
    // lands, including the fast portal device (stage 0).
    let model = efficientnet_at(4, 224);
    let devices = vec![
        Device::new(tx2_q()),
        Device::new(nano_h()),
        Device::new(nano_h()),
    ];
    let link = Link::mbps_100();
    let spike = LoadSpike {
        device: 0,
        at: 60.0,
        load: 0.5,
    };
    let with = simulate_load_spike(&model, &devices, &link, 8, 8, spike, 200.0, true)
        .expect("feasible spike scenario");
    let without = simulate_load_spike(&model, &devices, &link, 8, 8, spike, 200.0, false)
        .expect("feasible spike scenario");
    assert!(with.post_spike_throughput >= without.post_spike_throughput);
    assert!(
        !with.events.is_empty(),
        "a 2x slowdown on stage 0 must trigger migration"
    );
}

#[test]
fn empty_model_rejected_by_partitioner() {
    let empty = ModelProfile {
        name: "empty".into(),
        layers: Vec::new(),
        input_bytes: 0,
    };
    let devices = vec![Device::new(nano_h())];
    assert!(partition_dp(&empty, &devices, &Link::mbps_100(), 4).is_none());
}

#[test]
fn task_overhead_slows_but_never_blocks() {
    let model = efficientnet_at(0, 224);
    let devices = vec![Device::new(tx2_q()), Device::new(nano_h())];
    let link = Link::mbps_100();
    let partition = partition_dp(&model, &devices, &link, 8).expect("feasible");
    let profile = PipelineProfile::new(&model, &partition.boundaries, &devices, &link, 8);
    let k = k_bounds(&profile).unwrap();
    let cheap = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k: k.clone() })
        .expect("valid schedule")
        .with_task_overhead(0.0)
        .run(8, 1)
        .unwrap();
    let costly = PipelineExecutor::new(&profile, SchedulePolicy::OneFOneBSync { k })
        .expect("valid schedule")
        .with_task_overhead(0.1)
        .run(8, 1)
        .unwrap();
    assert!(costly.makespan > cheap.makespan);
    assert!(costly.throughput > 0.0);
}
