//! # ecofl-util
//!
//! Shared foundations for the Eco-FL reproduction: a small deterministic
//! random-number generator, streaming statistics, probability-distribution
//! divergences (KL / Jensen-Shannon, used by the grouping cost of the paper's
//! Eq. 4), time-series utilities for accuracy-vs-time traces, and unit
//! formatting helpers.
//!
//! Everything in this crate is deterministic and allocation-conscious: the
//! simulator and the federated-learning engine both sit in hot loops on top
//! of these primitives.

pub mod divergence;
pub mod rng;
pub mod series;
pub mod stats;
pub mod units;

pub use divergence::{entropy, js_divergence, kl_divergence, normalize_distribution};
pub use rng::Rng;
pub use series::TimeSeries;
pub use stats::{mean, percentile, stddev, variance, Histogram, RunningStats};
