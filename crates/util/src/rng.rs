//! Deterministic pseudo-random number generation.
//!
//! The whole reproduction is seeded: the same seed must produce bit-identical
//! experiment traces on every run and every platform. We therefore avoid
//! platform entropy entirely and build on the SplitMix64 generator
//! (Steele, Lea & Flood, OOPSLA 2014), which has a full 2^64 period, passes
//! BigCrush, and whose stream is trivially splittable for spawning
//! independent per-client / per-device generators.

/// A deterministic, splittable pseudo-random number generator.
///
/// Internally a SplitMix64 stream. Cheap to copy (16 bytes), `Send + Sync`
/// free of interior mutability, and suitable for seeding thousands of
/// independent client streams via [`Rng::split`].
///
/// # Examples
///
/// ```
/// use ecofl_util::Rng;
/// let mut rng = Rng::new(42);
/// let x = rng.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// let mut rng2 = Rng::new(42);
/// assert_eq!(x, rng2.next_f64(), "same seed, same stream");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng {
    state: u64,
    /// Odd "gamma" increment; distinct gammas give independent streams.
    gamma: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn mix_gamma(z: u64) -> u64 {
    let z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    let z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    let z = (z ^ (z >> 33)) | 1; // gamma must be odd
    if z.count_ones() < 24 {
        z ^ 0xAAAA_AAAA_AAAA_AAAA
    } else {
        z
    }
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: mix64(seed),
            gamma: GOLDEN_GAMMA,
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child's stream is statistically independent from the parent's
    /// subsequent output; use this to hand every FL client or simulated
    /// device its own generator so that reordering one component's draws
    /// does not perturb the others.
    #[must_use]
    pub fn split(&mut self) -> Self {
        let state = self.next_u64();
        let gamma = mix_gamma(self.next_u64());
        Self { state, gamma }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(self.gamma);
        mix64(self.state)
    }

    /// Next 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        // Lemire 2019: "Fast Random Integer Generation in an Interval".
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range_usize: empty range {lo}..{hi}");
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal draw (Box–Muller, polar form).
    pub fn next_gaussian(&mut self) -> f64 {
        // Polar Box–Muller; rejection loop terminates with probability 1.
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal draw with the given mean and standard deviation.
    #[inline]
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.next_gaussian()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponential draw with the given rate parameter `lambda`.
    ///
    /// # Panics
    /// Panics if `lambda <= 0`.
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential: rate must be positive");
        // Inverse CDF; 1 - U avoids ln(0).
        -(1.0 - self.next_f64()).ln() / lambda
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.range_usize(0, slice.len())])
        }
    }

    /// Samples `k` distinct indices from `0..n` (order randomized).
    ///
    /// Uses a partial Fisher–Yates over an index vector; O(n) memory,
    /// O(n + k) time, which is fine for the population sizes (≤ thousands)
    /// used in the FL simulations.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k={k} > n={n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range_usize(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Draws an index according to the (unnormalized, non-negative) weights.
    ///
    /// Returns `None` if the weights are empty or all zero/non-finite.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights
            .iter()
            .copied()
            .filter(|w| w.is_finite() && *w > 0.0)
            .sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                target -= w;
                if target <= 0.0 {
                    return Some(i);
                }
            }
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w.is_finite() && w > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn split_streams_are_independent_of_parent_advance() {
        let mut parent = Rng::new(99);
        let mut child = parent.split();
        let first = child.next_u64();
        // Re-derive: same parent state sequence gives the same child.
        let mut parent2 = Rng::new(99);
        let mut child2 = parent2.split();
        assert_eq!(first, child2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_unbiased_small_bound() {
        let mut rng = Rng::new(5);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.next_below(5) as usize] += 1;
        }
        for &c in &counts {
            let expect = n as f64 / 5.0;
            assert!(
                (c as f64 - expect).abs() < expect * 0.05,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng::new(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::new(13);
        let n = 200_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::new(19);
        for _ in 0..100 {
            let s = rng.sample_indices(50, 20);
            assert_eq!(s.len(), 20);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 20, "indices must be distinct");
            assert!(d.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::new(23);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&w).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_degenerate() {
        let mut rng = Rng::new(29);
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(rng.weighted_index(&[f64::NAN]), None);
        assert_eq!(rng.weighted_index(&[0.0, 2.0]), Some(1));
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng::new(31);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }
}
