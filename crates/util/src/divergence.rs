//! Probability-distribution divergences.
//!
//! The Eco-FL grouping cost (paper Eq. 4) is
//! `COST_n^g = |L_g - L_n| + λ · JS(π_n^g, π_iid)`, where `JS` is the
//! Jensen–Shannon divergence between the label distribution a group would
//! have after absorbing client `n` and the uniform (IID) distribution.
//! The paper uses JS rather than KL because JS is symmetric and, with
//! base-2 logarithms, normalized to `[0, 1]`.

/// Normalizes a non-negative weight vector into a probability distribution.
///
/// Returns a uniform distribution if the input sums to zero (an empty label
/// histogram is treated as "no information", matching how the grouping code
/// treats clients before profiling).
///
/// # Panics
/// Panics if the input is empty or contains a negative/non-finite value.
#[must_use]
pub fn normalize_distribution(weights: &[f64]) -> Vec<f64> {
    assert!(!weights.is_empty(), "normalize_distribution: empty input");
    for &w in weights {
        assert!(
            w.is_finite() && w >= 0.0,
            "normalize_distribution: weights must be finite and non-negative, got {w}"
        );
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / weights.len() as f64; weights.len()];
    }
    weights.iter().map(|w| w / total).collect()
}

/// Shannon entropy in bits of a probability distribution.
///
/// Zero-probability entries contribute zero (the `p log p → 0` limit).
#[must_use]
pub fn entropy(p: &[f64]) -> f64 {
    p.iter().filter(|&&x| x > 0.0).map(|&x| -x * x.log2()).sum()
}

/// Kullback–Leibler divergence `KL(p ‖ q)` in bits.
///
/// Returns `f64::INFINITY` when `p` has mass where `q` has none (absolute
/// continuity violated).
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "kl_divergence: length mismatch");
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            if qi <= 0.0 {
                return f64::INFINITY;
            }
            acc += pi * (pi / qi).log2();
        }
    }
    acc
}

/// Jensen–Shannon divergence in bits; symmetric and bounded in `[0, 1]`.
///
/// `JS(p, q) = ½ KL(p ‖ m) + ½ KL(q ‖ m)` with `m = ½(p + q)`.
///
/// # Examples
///
/// ```
/// use ecofl_util::js_divergence;
/// let p = [1.0, 0.0];
/// let q = [0.0, 1.0];
/// assert!((js_divergence(&p, &q) - 1.0).abs() < 1e-12, "disjoint support ⇒ 1 bit");
/// assert_eq!(js_divergence(&p, &p), 0.0);
/// ```
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "js_divergence: length mismatch");
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        let m = 0.5 * (pi + qi);
        if pi > 0.0 {
            acc += 0.5 * pi * (pi / m).log2();
        }
        if qi > 0.0 {
            acc += 0.5 * qi * (qi / m).log2();
        }
    }
    // Clamp tiny negative rounding noise.
    acc.max(0.0)
}

/// Uniform distribution over `n` classes — the `π_iid` reference of Eq. 4.
///
/// # Panics
/// Panics if `n == 0`.
#[must_use]
pub fn uniform_distribution(n: usize) -> Vec<f64> {
    assert!(n > 0, "uniform_distribution: n must be positive");
    vec![1.0 / n as f64; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_basic() {
        let d = normalize_distribution(&[1.0, 3.0]);
        assert_eq!(d, vec![0.25, 0.75]);
    }

    #[test]
    fn normalize_zero_gives_uniform() {
        let d = normalize_distribution(&[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(d, vec![0.25; 4]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn normalize_rejects_negative() {
        let _ = normalize_distribution(&[1.0, -0.5]);
    }

    #[test]
    fn entropy_uniform_is_log_n() {
        let e = entropy(&uniform_distribution(8));
        assert!((e - 3.0).abs() < 1e-12);
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn kl_properties() {
        let p = [0.5, 0.5];
        let q = [0.9, 0.1];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
        assert!(kl_divergence(&p, &q) > 0.0);
        assert_eq!(kl_divergence(&[1.0, 0.0], &[0.0, 1.0]), f64::INFINITY);
    }

    #[test]
    fn js_symmetric_and_bounded() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.1, 0.8];
        let a = js_divergence(&p, &q);
        let b = js_divergence(&q, &p);
        assert!((a - b).abs() < 1e-12, "JS must be symmetric");
        assert!(a > 0.0 && a <= 1.0);
    }

    #[test]
    fn js_identity_zero() {
        let p = normalize_distribution(&[3.0, 1.0, 4.0, 1.0, 5.0]);
        assert!(js_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn js_disjoint_support_is_one() {
        let p = [0.5, 0.5, 0.0, 0.0];
        let q = [0.0, 0.0, 0.5, 0.5];
        assert!((js_divergence(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn js_handles_finite_where_kl_infinite() {
        // The whole reason the paper picks JS over KL.
        let p = [1.0, 0.0];
        let q = [0.5, 0.5];
        assert!(kl_divergence(&q, &p).is_infinite());
        let js = js_divergence(&p, &q);
        assert!(js.is_finite() && js > 0.0 && js < 1.0);
    }
}
