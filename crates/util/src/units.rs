//! Unit formatting and conversion helpers.
//!
//! The device catalog (Table 1) and layer profiles speak in bytes, FLOPs,
//! and bits-per-second; bench output formats them the way the paper's
//! tables do.

/// Bytes per mebibyte.
pub const MIB: u64 = 1024 * 1024;
/// Bytes per gibibyte.
pub const GIB: u64 = 1024 * 1024 * 1024;
/// Bits per megabit.
pub const MBIT: u64 = 1_000_000;

/// Converts a link rate in megabits/second to bytes/second.
#[must_use]
pub fn mbps_to_bytes_per_sec(mbps: f64) -> f64 {
    mbps * MBIT as f64 / 8.0
}

/// Formats a byte count with a binary-prefix unit (e.g. `"2.70 GiB"`).
#[must_use]
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= GIB {
        format!("{:.2} GiB", b / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2} MiB", b / MIB as f64)
    } else if bytes >= 1024 {
        format!("{:.2} KiB", b / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a FLOP count with an SI prefix (e.g. `"1.23 GFLOPs"`).
#[must_use]
pub fn fmt_flops(flops: f64) -> String {
    if flops >= 1e12 {
        format!("{:.2} TFLOPs", flops / 1e12)
    } else if flops >= 1e9 {
        format!("{:.2} GFLOPs", flops / 1e9)
    } else if flops >= 1e6 {
        format!("{:.2} MFLOPs", flops / 1e6)
    } else if flops >= 1e3 {
        format!("{:.2} KFLOPs", flops / 1e3)
    } else {
        format!("{flops:.0} FLOPs")
    }
}

/// Formats a duration in seconds compactly (`"1.50 ms"`, `"2.25 s"`, ...).
#[must_use]
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else if secs < 120.0 {
        format!("{secs:.2} s")
    } else {
        format!("{:.1} min", secs / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_conversion() {
        // 100 Mbps — the paper's IoT network — is 12.5 MB/s.
        assert_eq!(mbps_to_bytes_per_sec(100.0), 12_500_000.0);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * MIB), "3.00 MiB");
        assert_eq!(fmt_bytes(4 * GIB), "4.00 GiB");
    }

    #[test]
    fn flop_formatting() {
        assert_eq!(fmt_flops(500.0), "500 FLOPs");
        assert_eq!(fmt_flops(1.5e9), "1.50 GFLOPs");
        assert_eq!(fmt_flops(2.0e12), "2.00 TFLOPs");
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(fmt_secs(0.000_5), "500.00 µs");
        assert_eq!(fmt_secs(0.25), "250.00 ms");
        assert_eq!(fmt_secs(42.0), "42.00 s");
        assert_eq!(fmt_secs(600.0), "10.0 min");
    }
}
