//! Time-series helpers for accuracy-vs-time / throughput-vs-time traces.
//!
//! Every figure in the paper's evaluation is a series of `(timestamp,
//! value)` points; this module provides the common machinery to build,
//! query, and summarize such series (time-to-threshold, area-under-curve,
//! resampling for plotting).

use ecofl_compat::serde::{Deserialize, Serialize};

/// A monotone-time series of `(t, value)` samples.
///
/// Timestamps are virtual seconds. Samples must be appended in
/// non-decreasing time order; this is asserted so that simulation bugs
/// surface immediately instead of corrupting figures downstream.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        Self { points: Vec::new() }
    }

    /// Appends a sample.
    ///
    /// # Panics
    /// Panics if `t` is NaN or earlier than the previous sample's time.
    pub fn push(&mut self, t: f64, value: f64) {
        assert!(t.is_finite(), "TimeSeries: non-finite timestamp {t}");
        if let Some(&(prev, _)) = self.points.last() {
            assert!(
                t >= prev,
                "TimeSeries: timestamps must be non-decreasing ({t} < {prev})"
            );
        }
        self.points.push((t, value));
    }

    /// All samples in time order.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last sample, if any.
    #[must_use]
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }

    /// Maximum value seen, if any.
    #[must_use]
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Earliest time at which the value reaches `threshold`, if ever.
    ///
    /// This is the "time-to-accuracy" metric of Figs. 7, 8, and 10.
    #[must_use]
    pub fn time_to_reach(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, v)| v >= threshold)
            .map(|&(t, _)| t)
    }

    /// Value at time `t` using step ("last observation carried forward")
    /// semantics. Returns `None` before the first sample.
    #[must_use]
    pub fn value_at(&self, t: f64) -> Option<f64> {
        // partition_point gives the first index with time > t.
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        if idx == 0 {
            None
        } else {
            Some(self.points[idx - 1].1)
        }
    }

    /// Resamples the series onto `n` evenly spaced timestamps spanning the
    /// observed range, with step semantics. Useful for aligning several
    /// methods' traces onto one printable grid.
    ///
    /// Returns an empty vector if the series is empty or `n == 0`.
    #[must_use]
    pub fn resample(&self, n: usize) -> Vec<(f64, f64)> {
        if self.points.is_empty() || n == 0 {
            return Vec::new();
        }
        let t0 = self.points[0].0;
        let t1 = self.points[self.points.len() - 1].0;
        if n == 1 || t1 <= t0 {
            return vec![(t0, self.points[0].1)];
        }
        (0..n)
            .map(|i| {
                let t = t0 + (t1 - t0) * i as f64 / (n - 1) as f64;
                (t, self.value_at(t).expect("t within range"))
            })
            .collect()
    }

    /// Trapezoidal area under the curve over the sampled range.
    #[must_use]
    pub fn auc(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| 0.5 * (w[1].1 + w[0].1) * (w[1].0 - w[0].0))
            .sum()
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut s = TimeSeries::new();
        for (t, v) in iter {
            s.push(t, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeSeries {
        [(0.0, 10.0), (1.0, 20.0), (2.0, 15.0), (4.0, 30.0)]
            .into_iter()
            .collect()
    }

    #[test]
    fn push_and_query() {
        let s = sample();
        assert_eq!(s.len(), 4);
        assert_eq!(s.last(), Some((4.0, 30.0)));
        assert_eq!(s.max_value(), Some(30.0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_travel() {
        let mut s = TimeSeries::new();
        s.push(5.0, 1.0);
        s.push(4.0, 1.0);
    }

    #[test]
    fn time_to_reach() {
        let s = sample();
        assert_eq!(s.time_to_reach(15.0), Some(1.0));
        assert_eq!(s.time_to_reach(30.0), Some(4.0));
        assert_eq!(s.time_to_reach(31.0), None);
        assert_eq!(s.time_to_reach(-1.0), Some(0.0));
    }

    #[test]
    fn value_at_step_semantics() {
        let s = sample();
        assert_eq!(s.value_at(-0.1), None);
        assert_eq!(s.value_at(0.0), Some(10.0));
        assert_eq!(s.value_at(0.9), Some(10.0));
        assert_eq!(s.value_at(1.0), Some(20.0));
        assert_eq!(s.value_at(3.9), Some(15.0));
        assert_eq!(s.value_at(100.0), Some(30.0));
    }

    #[test]
    fn resample_grid() {
        let s = sample();
        let r = s.resample(5);
        assert_eq!(r.len(), 5);
        assert_eq!(r[0], (0.0, 10.0));
        assert_eq!(r[4], (4.0, 30.0));
        assert_eq!(r[2].0, 2.0);
        assert_eq!(r[2].1, 15.0);
        assert!(s.resample(0).is_empty());
        assert!(TimeSeries::new().resample(5).is_empty());
    }

    #[test]
    fn auc_trapezoid() {
        let s: TimeSeries = [(0.0, 0.0), (2.0, 2.0)].into_iter().collect();
        assert!((s.auc() - 2.0).abs() < 1e-12);
        assert_eq!(TimeSeries::new().auc(), 0.0);
    }
}
