//! Streaming and batch statistics.
//!
//! Used throughout the reproduction: the pipeline profiler keeps running
//! means of per-layer execution times, the FL server tracks response-latency
//! statistics per group, and the bench harness summarizes figure series.

use ecofl_compat::serde::{Deserialize, Serialize};

/// Arithmetic mean of a slice; `0.0` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance of a slice; `0.0` for fewer than two elements.
#[must_use]
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
#[must_use]
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolated percentile (`p` in `[0, 100]`).
///
/// Returns `None` on an empty slice. The input need not be sorted.
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("percentile: NaN in input"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Welford's online mean/variance accumulator.
///
/// Numerically stable; O(1) memory, suitable for long-running profiler
/// streams.
///
/// # Examples
///
/// ```
/// use ecofl_util::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { s.push(x); }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.count(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (`0.0` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`0.0` with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel-reduction friendly).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exponential moving average used by the runtime profiler to smooth
/// per-stage execution-time reports before lagger detection (§4.4).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ema {
    alpha: f64,
    value: Option<f64>,
}

impl Ema {
    /// Creates an EMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "Ema: alpha must be in (0,1]");
        Self { alpha, value: None }
    }

    /// Feeds one observation and returns the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any observation has been fed.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Fixed-width histogram over `[lo, hi)` with saturating outlier buckets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `n` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "Histogram: need at least one bucket");
        assert!(lo < hi, "Histogram: lo must be < hi");
        Self {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.buckets.len() as f64) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Per-bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Count of observations below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded observations, including outliers.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert!((stddev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - mean(&xs)).abs() < 1e-9);
        assert!((s.variance() - variance(&xs)).abs() < 1e-9);
        assert_eq!(s.count(), 100);
        assert_eq!(s.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(
            s.max(),
            xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        );
    }

    #[test]
    fn running_stats_merge_matches_single_stream() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.7 - 3.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..20] {
            a.push(x);
        }
        for &x in &xs[20..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ema_converges() {
        let mut e = Ema::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.push(10.0), 10.0);
        let v = e.push(0.0);
        assert_eq!(v, 5.0);
        for _ in 0..64 {
            e.push(0.0);
        }
        assert!(e.value().unwrap() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ema_rejects_bad_alpha() {
        let _ = Ema::new(0.0);
    }

    #[test]
    fn histogram_buckets_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        h.record(-1.0);
        h.record(10.0);
        h.record(99.0);
        assert_eq!(h.buckets(), &[1; 10]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 13);
    }
}
