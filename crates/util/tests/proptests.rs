//! Property-based tests for the util crate's numeric foundations.

use ecofl_compat::check::{
    any_u64, f64_in, forall, pair, triple, u64_in, usize_in, vec_exact, vec_in, Gen,
};
use ecofl_util::stats::RunningStats;
use ecofl_util::{
    divergence::uniform_distribution, js_divergence, kl_divergence, mean, normalize_distribution,
    percentile, Rng, TimeSeries,
};

const CASES: usize = 256;

fn prob_vector(n: usize) -> Gen<Vec<f64>> {
    vec_exact(f64_in(0.0, 100.0), n).map(|v| {
        let eps: Vec<f64> = v.iter().map(|x| x + 1e-9).collect();
        normalize_distribution(&eps)
    })
}

#[test]
fn js_symmetric_and_bounded() {
    let input = pair(prob_vector(10), prob_vector(10));
    forall("js_symmetric_and_bounded", CASES, &input, |(p, q)| {
        let a = js_divergence(p, q);
        let b = js_divergence(q, p);
        assert!((a - b).abs() < 1e-12);
        assert!((0.0..=1.0 + 1e-12).contains(&a));
    });
}

#[test]
fn js_identity_is_zero() {
    forall("js_identity_is_zero", CASES, &prob_vector(8), |p| {
        assert!(js_divergence(p, p) < 1e-12);
    });
}

#[test]
fn kl_nonnegative() {
    let input = pair(prob_vector(6), prob_vector(6));
    forall("kl_nonnegative", CASES, &input, |(p, q)| {
        assert!(kl_divergence(p, q) >= -1e-12);
    });
}

#[test]
fn uniform_minimizes_js_to_itself() {
    forall(
        "uniform_minimizes_js_to_itself",
        CASES,
        &usize_in(2, 12),
        |&n| {
            let u = uniform_distribution(n);
            assert!(js_divergence(&u, &u) < 1e-12);
        },
    );
}

#[test]
fn normalize_sums_to_one() {
    let v = vec_in(f64_in(0.0, 1e6), 1, 20);
    forall("normalize_sums_to_one", CASES, &v, |v| {
        let d = normalize_distribution(v);
        let total: f64 = d.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(d.iter().all(|&x| x >= 0.0));
    });
}

#[test]
fn running_stats_matches_batch() {
    let xs = vec_in(f64_in(-1e3, 1e3), 1, 200);
    forall("running_stats_matches_batch", CASES, &xs, |xs| {
        let mut s = RunningStats::new();
        for &x in xs {
            s.push(x);
        }
        assert!((s.mean() - mean(xs)).abs() < 1e-6);
        assert_eq!(s.count(), xs.len() as u64);
        assert!(s.min() <= s.mean() + 1e-9);
        assert!(s.max() >= s.mean() - 1e-9);
    });
}

#[test]
fn running_stats_merge_associative() {
    let input = pair(
        vec_in(f64_in(-100.0, 100.0), 0, 50),
        vec_in(f64_in(-100.0, 100.0), 0, 50),
    );
    forall(
        "running_stats_merge_associative",
        CASES,
        &input,
        |(a, b)| {
            let mut whole = RunningStats::new();
            for &x in a.iter().chain(b) {
                whole.push(x);
            }
            let mut left = RunningStats::new();
            for &x in a {
                left.push(x);
            }
            let mut right = RunningStats::new();
            for &x in b {
                right.push(x);
            }
            left.merge(&right);
            assert_eq!(left.count(), whole.count());
            assert!((left.mean() - whole.mean()).abs() < 1e-6);
            assert!((left.variance() - whole.variance()).abs() < 1e-6);
        },
    );
}

#[test]
fn percentile_within_minmax() {
    let input = pair(vec_in(f64_in(-1e4, 1e4), 1, 100), f64_in(0.0, 100.0));
    forall("percentile_within_minmax", CASES, &input, |(xs, p)| {
        let v = percentile(xs, *p).unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    });
}

#[test]
fn next_below_respects_bound() {
    let input = pair(any_u64(), u64_in(1, 1_000_000));
    forall(
        "next_below_respects_bound",
        CASES,
        &input,
        |&(seed, bound)| {
            let mut rng = Rng::new(seed);
            for _ in 0..64 {
                assert!(rng.next_below(bound) < bound);
            }
        },
    );
}

#[test]
fn sample_indices_distinct_and_in_range() {
    let input = triple(any_u64(), usize_in(1, 200), f64_in(0.0, 1.0));
    forall(
        "sample_indices_distinct_and_in_range",
        CASES,
        &input,
        |&(seed, n, frac)| {
            let k = ((n as f64 * frac) as usize).min(n);
            let mut rng = Rng::new(seed);
            let s = rng.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), k);
            assert!(d.iter().all(|&i| i < n));
        },
    );
}

#[test]
fn rng_split_streams_differ() {
    forall("rng_split_streams_differ", CASES, &any_u64(), |&seed| {
        let mut parent = Rng::new(seed);
        let mut child = parent.split();
        let same = (0..32)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert!(same < 3);
    });
}

#[test]
fn time_series_value_at_is_last_sample() {
    let points = vec_in(pair(f64_in(0.0, 1e3), f64_in(-10.0, 10.0)), 1, 50);
    forall(
        "time_series_value_at_is_last_sample",
        CASES,
        &points,
        |points| {
            let mut sorted = points.clone();
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let ts: TimeSeries = sorted.iter().copied().collect();
            // At exactly the last timestamp the value is the final sample.
            let (t_last, _) = sorted[sorted.len() - 1];
            let expected = sorted.iter().rev().find(|&&(t, _)| t <= t_last).unwrap().1;
            assert_eq!(ts.value_at(t_last), Some(expected));
            // Before the first sample there is no value.
            assert_eq!(ts.value_at(sorted[0].0 - 1.0), None);
        },
    );
}

#[test]
fn time_to_reach_is_monotone_in_threshold() {
    let input = triple(
        vec_in(pair(f64_in(0.0, 1e3), f64_in(0.0, 1.0)), 1, 50),
        f64_in(0.0, 1.0),
        f64_in(0.0, 1.0),
    );
    forall(
        "time_to_reach_is_monotone_in_threshold",
        CASES,
        &input,
        |(points, th1, th2)| {
            let mut sorted = points.clone();
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let ts: TimeSeries = sorted.into_iter().collect();
            let (lo, hi) = if th1 <= th2 {
                (*th1, *th2)
            } else {
                (*th2, *th1)
            };
            match (ts.time_to_reach(lo), ts.time_to_reach(hi)) {
                (Some(a), Some(b)) => assert!(a <= b),
                (None, Some(_)) => panic!("lower threshold must be reached first"),
                _ => {}
            }
        },
    );
}
