//! Property-based tests for the util crate's numeric foundations.

use ecofl_util::stats::RunningStats;
use ecofl_util::{
    divergence::uniform_distribution, js_divergence, kl_divergence, mean, normalize_distribution,
    percentile, Rng, TimeSeries,
};
use proptest::prelude::*;

fn prob_vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, n).prop_map(|v| {
        let eps: Vec<f64> = v.iter().map(|x| x + 1e-9).collect();
        normalize_distribution(&eps)
    })
}

proptest! {
    #[test]
    fn js_symmetric_and_bounded(p in prob_vector(10), q in prob_vector(10)) {
        let a = js_divergence(&p, &q);
        let b = js_divergence(&q, &p);
        prop_assert!((a - b).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
    }

    #[test]
    fn js_identity_is_zero(p in prob_vector(8)) {
        prop_assert!(js_divergence(&p, &p) < 1e-12);
    }

    #[test]
    fn kl_nonnegative(p in prob_vector(6), q in prob_vector(6)) {
        prop_assert!(kl_divergence(&p, &q) >= -1e-12);
    }

    #[test]
    fn uniform_minimizes_js_to_itself(n in 2usize..12) {
        let u = uniform_distribution(n);
        prop_assert!(js_divergence(&u, &u) < 1e-12);
    }

    #[test]
    fn normalize_sums_to_one(v in proptest::collection::vec(0.0f64..1e6, 1..20)) {
        let d = normalize_distribution(&v);
        let total: f64 = d.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(d.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn running_stats_matches_batch(xs in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
        let mut s = RunningStats::new();
        for &x in &xs { s.push(x); }
        prop_assert!((s.mean() - mean(&xs)).abs() < 1e-6);
        prop_assert_eq!(s.count(), xs.len() as u64);
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.max() >= s.mean() - 1e-9);
    }

    #[test]
    fn running_stats_merge_associative(
        a in proptest::collection::vec(-100f64..100.0, 0..50),
        b in proptest::collection::vec(-100f64..100.0, 0..50),
    ) {
        let mut whole = RunningStats::new();
        for &x in a.iter().chain(&b) { whole.push(x); }
        let mut left = RunningStats::new();
        for &x in &a { left.push(x); }
        let mut right = RunningStats::new();
        for &x in &b { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn percentile_within_minmax(xs in proptest::collection::vec(-1e4f64..1e4, 1..100), p in 0.0f64..100.0) {
        let v = percentile(&xs, p).unwrap();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn next_below_respects_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Rng::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range(seed in any::<u64>(), n in 1usize..200, frac in 0.0f64..1.0) {
        let k = ((n as f64 * frac) as usize).min(n);
        let mut rng = Rng::new(seed);
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        prop_assert_eq!(d.len(), k);
        prop_assert!(d.iter().all(|&i| i < n));
    }

    #[test]
    fn rng_split_streams_differ(seed in any::<u64>()) {
        let mut parent = Rng::new(seed);
        let mut child = parent.split();
        let same = (0..32).filter(|_| parent.next_u64() == child.next_u64()).count();
        prop_assert!(same < 3);
    }

    #[test]
    fn time_series_value_at_is_last_sample(points in proptest::collection::vec((0.0f64..1e3, -10.0f64..10.0), 1..50)) {
        let mut sorted = points.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let ts: TimeSeries = sorted.iter().copied().collect();
        // At exactly the last timestamp the value is the final sample.
        let (t_last, _) = sorted[sorted.len() - 1];
        let expected = sorted.iter().rev().find(|&&(t, _)| t <= t_last).unwrap().1;
        prop_assert_eq!(ts.value_at(t_last), Some(expected));
        // Before the first sample there is no value.
        prop_assert_eq!(ts.value_at(sorted[0].0 - 1.0), None);
    }

    #[test]
    fn time_to_reach_is_monotone_in_threshold(
        points in proptest::collection::vec((0.0f64..1e3, 0.0f64..1.0), 1..50),
        th1 in 0.0f64..1.0,
        th2 in 0.0f64..1.0,
    ) {
        let mut sorted = points.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let ts: TimeSeries = sorted.into_iter().collect();
        let (lo, hi) = if th1 <= th2 { (th1, th2) } else { (th2, th1) };
        match (ts.time_to_reach(lo), ts.time_to_reach(hi)) {
            (Some(a), Some(b)) => prop_assert!(a <= b),
            (None, Some(_)) => prop_assert!(false, "lower threshold must be reached first"),
            _ => {}
        }
    }
}
