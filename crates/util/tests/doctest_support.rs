//! Cross-module behavioural tests for util: the interactions between the
//! RNG, statistics, and series types that single-module unit tests miss.

use ecofl_util::{
    divergence::uniform_distribution, js_divergence, normalize_distribution, Rng, RunningStats,
    TimeSeries,
};

#[test]
fn rng_streams_feed_stats_reproducibly() {
    let collect = |seed: u64| {
        let mut rng = Rng::new(seed);
        let mut stats = RunningStats::new();
        for _ in 0..500 {
            stats.push(rng.gaussian(10.0, 3.0));
        }
        (stats.mean(), stats.stddev())
    };
    let (m1, s1) = collect(77);
    let (m2, s2) = collect(77);
    assert_eq!(m1, m2);
    assert_eq!(s1, s2);
    assert!((m1 - 10.0).abs() < 0.5);
    assert!((s1 - 3.0).abs() < 0.5);
}

#[test]
fn empirical_label_histograms_converge_to_uniform() {
    // Sampling labels uniformly must drive JS-from-uniform toward zero —
    // the statistical backbone of the grouping experiments.
    let mut rng = Rng::new(5);
    let mut js_small = 0.0;
    let mut js_large = 0.0;
    for (n, js) in [(30usize, &mut js_small), (30_000, &mut js_large)] {
        let mut counts = vec![0.0f64; 10];
        for _ in 0..n {
            counts[rng.range_usize(0, 10)] += 1.0;
        }
        let dist = normalize_distribution(&counts);
        *js = js_divergence(&dist, &uniform_distribution(10));
    }
    assert!(js_large < js_small, "{js_large} vs {js_small}");
    assert!(js_large < 0.01);
}

#[test]
fn accuracy_trace_composition() {
    // Build a trace the way the FL engine does, then query it the way the
    // bench harness does.
    let mut trace = TimeSeries::new();
    let mut acc = 0.1;
    let mut t = 0.0;
    while acc < 0.9 {
        trace.push(t, acc);
        acc += 0.08;
        t += 25.0;
    }
    trace.push(t, 0.9);
    let resampled = trace.resample(10);
    assert_eq!(resampled.len(), 10);
    assert!(resampled.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-12));
    let t50 = trace.time_to_reach(0.5).expect("reached");
    assert!(trace.value_at(t50).unwrap() >= 0.5);
    assert!(trace.value_at(t50 - 1.0).unwrap() < 0.5);
    assert!(trace.auc() > 0.0);
}

#[test]
fn weighted_index_matches_distribution_statistically() {
    let mut rng = Rng::new(11);
    let weights = [2.0, 5.0, 3.0];
    let mut counts = [0u32; 3];
    let n = 60_000;
    for _ in 0..n {
        counts[rng.weighted_index(&weights).unwrap()] += 1;
    }
    for (i, &w) in weights.iter().enumerate() {
        let expect = w / 10.0 * f64::from(n);
        let got = f64::from(counts[i]);
        assert!(
            (got - expect).abs() < expect * 0.05,
            "bucket {i}: {got} vs {expect}"
        );
    }
}
