//! # ecofl-store
//!
//! The storage substrate of the Eco-FL run store: a **segment** is one
//! append-only file of length-prefixed compressed blocks, each carrying
//! a per-column min/max/count summary, rolled up into a footer that is
//! re-sealed after every append batch. Readers prune whole blocks by
//! summary before paying for decompression — the databend-style
//! "block stats into a segment info" layout, scaled down to a single
//! hermetic std-only crate.
//!
//! This crate is deliberately payload-agnostic: a block is `&[u8]` plus
//! a [`BlockSummary`]. The typed layer — trace records, checkpoint
//! records, query predicates — lives in `ecofl-obs::store`, which keeps
//! the dependency arrow pointing one way (`obs` → `store`) while the
//! sink shims stay in `obs`.
//!
//! ## File layout
//!
//! ```text
//! "ECOFLSG1" | version u32                              -- header (12 B)
//! block 0 bytes (LZ-compressed) | block 1 bytes | ...   -- data region
//! entry count u64                                        ┐
//! per block: offset u64, comp_len u32, raw_len u32,      │ footer
//!            count u64, kind_mask u32, ncols u32,        │
//!            (min f64, max f64) × ncols                  ┘
//! footer_len u32 | "ECOFLFT1"                           -- trailer (12 B)
//! ```
//!
//! A segment is always readable after [`Segment::seal`]: reopening
//! parses the trailer, truncates any bytes past the footer start, and
//! appends from there — so a crash between seals loses at most the
//! unsealed tail, never the sealed prefix.

pub mod lz;
mod segment;

pub use segment::{BlockEntry, BlockSummary, ColRange, Segment, SEGMENT_VERSION};
