//! One segment file: append-only compressed blocks plus a sealed,
//! summary-bearing footer. See the crate docs for the byte layout.

use std::cell::RefCell;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::lz;

/// On-disk format version, written in the header after the magic.
pub const SEGMENT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"ECOFLSG1";
const FOOT_MAGIC: &[u8; 8] = b"ECOFLFT1";
/// Header: magic + version.
const HEADER_LEN: u64 = 12;
/// Trailer: footer length + footer magic.
const TRAILER_LEN: u64 = 12;

fn corrupt(path: &Path, what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("segment {}: {what}", path.display()),
    )
}

/// Closed min/max range of one summary column. An empty range
/// (`min = +inf`, `max = -inf`) means the column never got a value in
/// this block, and intersects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColRange {
    pub min: f64,
    pub max: f64,
}

impl ColRange {
    /// A range that contains nothing until [`ColRange::include`] runs.
    #[must_use]
    pub fn empty() -> Self {
        ColRange {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Grows the range to contain `v`.
    pub fn include(&mut self, v: f64) {
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// True when no value was ever included.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.min > self.max
    }

    /// True when the range overlaps the half-open interval `[lo, hi)`.
    /// Empty ranges intersect nothing.
    #[must_use]
    pub fn intersects(&self, lo: f64, hi: f64) -> bool {
        self.min < hi && self.max >= lo
    }

    /// Union of two ranges; used for segment-level rollups.
    #[must_use]
    pub fn merge(&self, other: &ColRange) -> ColRange {
        ColRange {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

/// Per-block statistics: record count, a bitmask of record kinds the
/// block contains, and a min/max range per summary column. The typed
/// layer decides what the columns and mask bits mean; the store only
/// persists and rolls them up.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSummary {
    pub count: u64,
    pub kind_mask: u32,
    pub cols: Vec<ColRange>,
}

impl BlockSummary {
    /// An empty summary over `ncols` columns.
    #[must_use]
    pub fn new(ncols: usize) -> Self {
        BlockSummary {
            count: 0,
            kind_mask: 0,
            cols: vec![ColRange::empty(); ncols],
        }
    }

    /// Column-wise union with `other`; counts add, masks or together.
    /// Summaries with differing column arity merge on the shorter
    /// prefix (longer tail kept as-is).
    #[must_use]
    pub fn merge(&self, other: &BlockSummary) -> BlockSummary {
        let ncols = self.cols.len().max(other.cols.len());
        let mut cols = Vec::with_capacity(ncols);
        for i in 0..ncols {
            let a = self.cols.get(i).copied().unwrap_or_else(ColRange::empty);
            let b = other.cols.get(i).copied().unwrap_or_else(ColRange::empty);
            cols.push(a.merge(&b));
        }
        BlockSummary {
            count: self.count + other.count,
            kind_mask: self.kind_mask | other.kind_mask,
            cols,
        }
    }
}

/// Footer entry for one block: where it lives in the data region and
/// what its summary says.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockEntry {
    pub offset: u64,
    pub comp_len: u32,
    pub raw_len: u32,
    pub summary: BlockSummary,
}

/// One append-only segment file.
///
/// The file is usable by readers only after [`Segment::seal`] (or
/// `Drop`, which seals best-effort): appends land in the data region,
/// but the footer that makes them discoverable is rewritten on seal.
/// Reopening a sealed file truncates anything past the footer start,
/// so a crash mid-append loses at most the unsealed tail.
#[derive(Debug)]
pub struct Segment {
    path: PathBuf,
    file: RefCell<File>,
    blocks: Vec<BlockEntry>,
    data_end: u64,
    sealed: bool,
}

impl Segment {
    /// Creates (truncating) a segment at `path` and seals an empty
    /// footer so the file is immediately readable.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Segment> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(MAGIC)?;
        file.write_all(&SEGMENT_VERSION.to_le_bytes())?;
        let mut seg = Segment {
            path,
            file: RefCell::new(file),
            blocks: Vec::new(),
            data_end: HEADER_LEN,
            sealed: false,
        };
        seg.seal()?;
        Ok(seg)
    }

    /// Opens an existing sealed segment, truncating any unsealed tail
    /// past the footer start so appends continue from the last seal.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Segment> {
        let path = path.into();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_LEN + TRAILER_LEN {
            return Err(corrupt(&path, "file shorter than header + trailer"));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(corrupt(&path, "bad magic"));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != SEGMENT_VERSION {
            return Err(corrupt(&path, &format!("unsupported version {version}")));
        }

        let mut trailer = [0u8; TRAILER_LEN as usize];
        file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
        file.read_exact(&mut trailer)?;
        if &trailer[4..12] != FOOT_MAGIC {
            return Err(corrupt(&path, "bad footer magic"));
        }
        let footer_len = u64::from(u32::from_le_bytes(trailer[..4].try_into().unwrap()));
        if footer_len + TRAILER_LEN + HEADER_LEN > file_len {
            return Err(corrupt(&path, "footer length exceeds file"));
        }
        let footer_start = file_len - TRAILER_LEN - footer_len;
        let mut footer = vec![0u8; footer_len as usize];
        file.seek(SeekFrom::Start(footer_start))?;
        file.read_exact(&mut footer)?;
        let blocks = parse_footer(&path, &footer)?;
        if let Some(last) = blocks.last() {
            let end = last.offset + u64::from(last.comp_len);
            if end > footer_start {
                return Err(corrupt(&path, "block extends past footer"));
            }
        }

        let mut seg = Segment {
            path,
            file: RefCell::new(file),
            blocks,
            data_end: footer_start,
            sealed: false,
        };
        // Drop any bytes a crashed writer left past the sealed footer
        // start, then re-seal so the invariant "file on disk is always
        // readable" holds from here on.
        seg.seal()?;
        Ok(seg)
    }

    /// Opens `path` if it exists, creates it otherwise.
    pub fn open_or_create(path: impl Into<PathBuf>) -> io::Result<Segment> {
        let path = path.into();
        if path.exists() {
            Segment::open(path)
        } else {
            Segment::create(path)
        }
    }

    /// Compresses `raw` and appends it as a new block with `summary`.
    /// The block becomes durable (and visible to fresh opens) only at
    /// the next [`Segment::seal`].
    pub fn append_block(&mut self, raw: &[u8], summary: BlockSummary) -> io::Result<()> {
        let comp = lz::compress(raw);
        let raw_len =
            u32::try_from(raw.len()).map_err(|_| corrupt(&self.path, "block larger than 4 GiB"))?;
        let comp_len = u32::try_from(comp.len())
            .map_err(|_| corrupt(&self.path, "compressed block larger than 4 GiB"))?;
        let offset = self.data_end;
        {
            let mut file = self.file.borrow_mut();
            file.seek(SeekFrom::Start(offset))?;
            file.write_all(&comp)?;
        }
        self.data_end = offset + u64::from(comp_len);
        self.blocks.push(BlockEntry {
            offset,
            comp_len,
            raw_len,
            summary,
        });
        self.sealed = false;
        Ok(())
    }

    /// Rewrites the footer + trailer after the data region, truncates
    /// the file there, and flushes. Idempotent.
    pub fn seal(&mut self) -> io::Result<()> {
        let mut footer = Vec::new();
        footer.extend_from_slice(&(self.blocks.len() as u64).to_le_bytes());
        for b in &self.blocks {
            footer.extend_from_slice(&b.offset.to_le_bytes());
            footer.extend_from_slice(&b.comp_len.to_le_bytes());
            footer.extend_from_slice(&b.raw_len.to_le_bytes());
            footer.extend_from_slice(&b.summary.count.to_le_bytes());
            footer.extend_from_slice(&b.summary.kind_mask.to_le_bytes());
            footer.extend_from_slice(&(b.summary.cols.len() as u32).to_le_bytes());
            for c in &b.summary.cols {
                footer.extend_from_slice(&c.min.to_le_bytes());
                footer.extend_from_slice(&c.max.to_le_bytes());
            }
        }
        let footer_len = u32::try_from(footer.len())
            .map_err(|_| corrupt(&self.path, "footer larger than 4 GiB"))?;
        let mut file = self.file.borrow_mut();
        file.seek(SeekFrom::Start(self.data_end))?;
        file.write_all(&footer)?;
        file.write_all(&footer_len.to_le_bytes())?;
        file.write_all(FOOT_MAGIC)?;
        let end = self.data_end + u64::from(footer_len) + TRAILER_LEN;
        file.set_len(end)?;
        file.flush()?;
        self.sealed = true;
        Ok(())
    }

    /// Footer entries for every block, in append order.
    #[must_use]
    pub fn blocks(&self) -> &[BlockEntry] {
        &self.blocks
    }

    /// Number of blocks in the segment.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total record count across all block summaries.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.summary.count).sum()
    }

    /// Bytes in the data region (compressed).
    #[must_use]
    pub fn compressed_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.comp_len)).sum()
    }

    /// Bytes across all blocks before compression.
    #[must_use]
    pub fn raw_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.raw_len)).sum()
    }

    /// Segment-level summary: the union of every block summary.
    #[must_use]
    pub fn rollup(&self) -> BlockSummary {
        let ncols = self.blocks.iter().map(|b| b.summary.cols.len()).max();
        let mut acc = BlockSummary::new(ncols.unwrap_or(0));
        for b in &self.blocks {
            acc = acc.merge(&b.summary);
        }
        acc
    }

    /// Decompresses block `index` back into its raw bytes.
    pub fn read_block(&self, index: usize) -> io::Result<Vec<u8>> {
        let entry = self
            .blocks
            .get(index)
            .ok_or_else(|| corrupt(&self.path, &format!("no block {index}")))?;
        let mut comp = vec![0u8; entry.comp_len as usize];
        {
            let mut file = self.file.borrow_mut();
            file.seek(SeekFrom::Start(entry.offset))?;
            file.read_exact(&mut comp)?;
        }
        lz::decompress(&comp, entry.raw_len as usize)
            .map_err(|e| corrupt(&self.path, &format!("block {index}: {e}")))
    }

    /// Path this segment lives at.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        if !self.sealed {
            let _ = self.seal();
        }
    }
}

fn parse_footer(path: &Path, footer: &[u8]) -> io::Result<Vec<BlockEntry>> {
    let mut pos = 0usize;
    let mut take = |n: usize| -> io::Result<&[u8]> {
        if pos + n > footer.len() {
            return Err(corrupt(path, "footer truncated"));
        }
        let s = &footer[pos..pos + n];
        pos += n;
        Ok(s)
    };
    let count = u64::from_le_bytes(take(8)?.try_into().unwrap());
    let mut blocks = Vec::new();
    for _ in 0..count {
        let offset = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let comp_len = u32::from_le_bytes(take(4)?.try_into().unwrap());
        let raw_len = u32::from_le_bytes(take(4)?.try_into().unwrap());
        let rec_count = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let kind_mask = u32::from_le_bytes(take(4)?.try_into().unwrap());
        let ncols = u32::from_le_bytes(take(4)?.try_into().unwrap());
        if ncols > 1024 {
            return Err(corrupt(path, "implausible column count"));
        }
        let mut cols = Vec::with_capacity(ncols as usize);
        for _ in 0..ncols {
            let min = f64::from_le_bytes(take(8)?.try_into().unwrap());
            let max = f64::from_le_bytes(take(8)?.try_into().unwrap());
            cols.push(ColRange { min, max });
        }
        blocks.push(BlockEntry {
            offset,
            comp_len,
            raw_len,
            summary: BlockSummary {
                count: rec_count,
                kind_mask,
                cols,
            },
        });
    }
    if pos != footer.len() {
        return Err(corrupt(path, "footer has trailing bytes"));
    }
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("ecofl-store-{tag}-{}-{n}.seg", std::process::id()))
    }

    fn summary_for(round: f64, count: u64) -> BlockSummary {
        let mut s = BlockSummary::new(2);
        s.count = count;
        s.kind_mask = 1;
        s.cols[0].include(round);
        s.cols[1].include(round * 10.0);
        s
    }

    #[test]
    fn create_append_seal_reopen_read() {
        let path = temp_path("basic");
        let payloads: Vec<Vec<u8>> = (0..5)
            .map(|i| format!("block {i} ").repeat(100).into_bytes())
            .collect();
        {
            let mut seg = Segment::create(&path).expect("create");
            for (i, p) in payloads.iter().enumerate() {
                seg.append_block(p, summary_for(i as f64, 100))
                    .expect("append");
            }
            seg.seal().expect("seal");
        }
        let seg = Segment::open(&path).expect("open");
        assert_eq!(seg.block_count(), 5);
        assert_eq!(seg.record_count(), 500);
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(&seg.read_block(i).expect("read"), p);
            assert_eq!(seg.blocks()[i].summary.cols[0].min, i as f64);
        }
        assert!(seg.compressed_bytes() < seg.raw_bytes());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_appends_after_last_seal() {
        let path = temp_path("reappend");
        {
            let mut seg = Segment::create(&path).expect("create");
            seg.append_block(b"first block payload", summary_for(0.0, 1))
                .expect("append");
        } // Drop seals.
        {
            let mut seg = Segment::open(&path).expect("reopen");
            assert_eq!(seg.block_count(), 1);
            seg.append_block(b"second block payload", summary_for(1.0, 1))
                .expect("append");
            seg.seal().expect("seal");
        }
        let seg = Segment::open(&path).expect("reopen 2");
        assert_eq!(seg.block_count(), 2);
        assert_eq!(seg.read_block(0).expect("read"), b"first block payload");
        assert_eq!(seg.read_block(1).expect("read"), b"second block payload");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn unsealed_tail_is_discarded_on_open() {
        let path = temp_path("crashtail");
        {
            let mut seg = Segment::create(&path).expect("create");
            seg.append_block(b"sealed block", summary_for(0.0, 1))
                .expect("append");
            seg.seal().expect("seal");
        }
        // Simulate a crash mid-append: garbage after the sealed image.
        let sealed = fs::read(&path).expect("read file");
        let mut crashed = sealed.clone();
        crashed.extend_from_slice(b"partial unsynced block write......");
        fs::write(&path, &crashed).expect("write crashed image");
        // The trailer is no longer at EOF, so the sealed footer cannot
        // be located — the file reads as corrupt, never as wrong data.
        assert!(Segment::open(&path).is_err());
        // Restoring the sealed prefix recovers everything sealed.
        fs::write(&path, &sealed).expect("restore");
        let seg = Segment::open(&path).expect("open sealed");
        assert_eq!(seg.block_count(), 1);
        assert_eq!(seg.read_block(0).expect("read"), b"sealed block");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_segment_round_trips() {
        let path = temp_path("empty");
        Segment::create(&path).expect("create");
        let seg = Segment::open(&path).expect("open");
        assert_eq!(seg.block_count(), 0);
        assert_eq!(seg.record_count(), 0);
        assert_eq!(seg.rollup().count, 0);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let path = temp_path("badmagic");
        Segment::create(&path).expect("create");
        let mut bytes = fs::read(&path).expect("read");
        bytes[0] ^= 0xFF;
        fs::write(&path, &bytes).expect("write");
        assert!(Segment::open(&path).is_err());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn col_range_math() {
        let mut r = ColRange::empty();
        assert!(r.is_empty());
        assert!(!r.intersects(f64::NEG_INFINITY, f64::INFINITY));
        r.include(3.0);
        r.include(7.0);
        assert!(r.intersects(0.0, 4.0)); // overlaps [3,7]
        assert!(r.intersects(7.0, 8.0)); // max == lo is inclusive
        assert!(!r.intersects(7.5, 9.0));
        assert!(!r.intersects(0.0, 3.0)); // half-open: hi == min excluded
        let merged = r.merge(&ColRange {
            min: -1.0,
            max: 2.0,
        });
        assert_eq!(merged.min, -1.0);
        assert_eq!(merged.max, 7.0);
    }

    #[test]
    fn rollup_merges_counts_masks_and_ranges() {
        let path = temp_path("rollup");
        let mut seg = Segment::create(&path).expect("create");
        let mut a = summary_for(1.0, 10);
        a.kind_mask = 0b01;
        let mut b = summary_for(5.0, 20);
        b.kind_mask = 0b10;
        seg.append_block(b"aaaa", a).expect("append");
        seg.append_block(b"bbbb", b).expect("append");
        let roll = seg.rollup();
        assert_eq!(roll.count, 30);
        assert_eq!(roll.kind_mask, 0b11);
        assert_eq!(roll.cols[0].min, 1.0);
        assert_eq!(roll.cols[0].max, 5.0);
        drop(seg);
        fs::remove_file(&path).ok();
    }
}
