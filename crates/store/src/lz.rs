//! A small deterministic LZ77 codec (LZSS token stream).
//!
//! Block payloads are mostly JSONL text with heavily repeated keys, so
//! a greedy byte-oriented matcher with a 64 KiB window compresses them
//! several-fold at negligible cost — and, unlike a general-purpose
//! dependency, stays inside the hermetic-workspace rule.
//!
//! ## Token stream
//!
//! The stream is groups of up to eight items behind one control byte:
//! bit `i` (LSB first) set means item `i` is a **literal** (one raw
//! byte); clear means a **match** of three bytes — `distance` as
//! `u16` LE (`1..=65535` back from the write head) and `length −
//! MIN_MATCH` as `u8` (`4..=259` bytes, overlapping copies allowed).
//! Decoding stops when exactly `raw_len` bytes have been produced; the
//! caller persists `raw_len` out of band (the block footer entry).

/// Shortest emitted match; shorter repeats cost less as literals.
const MIN_MATCH: usize = 4;
/// Longest emitted match (`MIN_MATCH + u8::MAX`).
const MAX_MATCH: usize = MIN_MATCH + u8::MAX as usize;
/// Match window: how far back a distance can reach (`u16` LE).
const WINDOW: usize = u16::MAX as usize;
/// Size of the last-position hash table (power of two).
const HASH_SLOTS: usize = 1 << 15;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let key = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (key.wrapping_mul(0x9E37_79B1) >> (32 - 15)) as usize & (HASH_SLOTS - 1)
}

/// Compresses `raw` into an LZSS token stream. Deterministic: the same
/// input always yields the same output.
#[must_use]
pub fn compress(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 2 + 16);
    // Last position (+1, 0 = empty) of each 4-byte key.
    let mut table = vec![0u32; HASH_SLOTS];
    let mut pos = 0usize;
    // Current control group: index into `out`, items filled so far.
    let mut ctrl_at = usize::MAX;
    let mut ctrl_bits = 0u8;
    let mut ctrl_n = 0u8;

    macro_rules! begin_item {
        ($is_literal:expr) => {
            if ctrl_n == 8 || ctrl_at == usize::MAX {
                ctrl_at = out.len();
                out.push(0);
                ctrl_bits = 0;
                ctrl_n = 0;
            }
            if $is_literal {
                ctrl_bits |= 1 << ctrl_n;
            }
            ctrl_n += 1;
            out[ctrl_at] = ctrl_bits;
        };
    }

    while pos < raw.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if pos + MIN_MATCH <= raw.len() {
            let slot = hash4(&raw[pos..]);
            let cand = table[slot] as usize;
            table[slot] = (pos + 1) as u32;
            if cand > 0 {
                let cand = cand - 1;
                let dist = pos - cand;
                if (1..=WINDOW).contains(&dist) {
                    let limit = (raw.len() - pos).min(MAX_MATCH);
                    let mut len = 0usize;
                    while len < limit && raw[cand + len] == raw[pos + len] {
                        len += 1;
                    }
                    if len >= MIN_MATCH {
                        best_len = len;
                        best_dist = dist;
                    }
                }
            }
        }
        if best_len >= MIN_MATCH {
            begin_item!(false);
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Seed the table across the matched span so later repeats of
            // its interior still find a candidate.
            let end = pos + best_len;
            pos += 1;
            while pos < end {
                if pos + MIN_MATCH <= raw.len() {
                    table[hash4(&raw[pos..])] = (pos + 1) as u32;
                }
                pos += 1;
            }
        } else {
            begin_item!(true);
            out.push(raw[pos]);
            pos += 1;
        }
    }
    out
}

fn corrupt(what: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("lz: corrupt stream ({what})"),
    )
}

/// Decompresses a [`compress`] stream back into exactly `raw_len`
/// bytes.
///
/// # Errors
/// Returns `InvalidData` when the stream is truncated, overruns
/// `raw_len`, or a match reaches before the start of the output.
pub fn decompress(comp: &[u8], raw_len: usize) -> std::io::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut pos = 0usize;
    while out.len() < raw_len {
        let ctrl = *comp.get(pos).ok_or_else(|| corrupt("missing control"))?;
        pos += 1;
        for bit in 0..8 {
            if out.len() == raw_len {
                break;
            }
            if ctrl & (1 << bit) != 0 {
                let b = *comp.get(pos).ok_or_else(|| corrupt("missing literal"))?;
                pos += 1;
                out.push(b);
            } else {
                if pos + 3 > comp.len() {
                    return Err(corrupt("missing match token"));
                }
                let dist = u16::from_le_bytes([comp[pos], comp[pos + 1]]) as usize;
                let len = comp[pos + 2] as usize + MIN_MATCH;
                pos += 3;
                if dist == 0 || dist > out.len() {
                    return Err(corrupt("match before start"));
                }
                if out.len() + len > raw_len {
                    return Err(corrupt("match overruns raw length"));
                }
                let start = out.len() - dist;
                // Byte-by-byte: overlapping matches copy their own output.
                for i in 0..len {
                    out.push(out[start + i]);
                }
            }
        }
    }
    if pos != comp.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofl_compat::check::{forall, u64_in, usize_in, vec_in};

    fn round_trip(raw: &[u8]) -> Vec<u8> {
        let comp = compress(raw);
        decompress(&comp, raw.len()).expect("decompress")
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(round_trip(b""), b"");
        assert_eq!(round_trip(b"a"), b"a");
        assert_eq!(round_trip(b"abc"), b"abc");
    }

    #[test]
    fn repetitive_text_compresses() {
        let raw: Vec<u8> = br#"{"Span":{"domain":"Pipeline","kind":"Forward"}}"#
            .iter()
            .copied()
            .cycle()
            .take(20_000)
            .collect();
        let comp = compress(&raw);
        assert!(
            comp.len() * 4 < raw.len(),
            "jsonl-like input should compress >4x, got {} -> {}",
            raw.len(),
            comp.len()
        );
        assert_eq!(decompress(&comp, raw.len()).expect("decompress"), raw);
    }

    #[test]
    fn overlapping_match_round_trips() {
        // "aaaa..." forces distance-1 matches that copy their own output.
        let raw = vec![b'a'; 1000];
        assert_eq!(round_trip(&raw), raw);
    }

    #[test]
    fn random_bytes_round_trip() {
        forall(
            "lz_round_trips_random_bytes",
            64,
            &vec_in(u64_in(0, 256), 1, 2000),
            |bytes| {
                let raw: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
                assert_eq!(round_trip(&raw), raw);
            },
        );
    }

    #[test]
    fn low_entropy_round_trips() {
        // Few distinct symbols maximize matching pressure.
        forall(
            "lz_round_trips_low_entropy",
            64,
            &vec_in(usize_in(0, 3), 1, 4000),
            |symbols| {
                let raw: Vec<u8> = symbols.iter().map(|&s| b"xyz"[s]).collect();
                assert_eq!(round_trip(&raw), raw);
            },
        );
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let raw = vec![b'q'; 500];
        let comp = compress(&raw);
        assert!(decompress(&comp[..comp.len() - 1], raw.len()).is_err());
        assert!(decompress(&comp, raw.len() + 1).is_err());
    }

    #[test]
    fn deterministic_output() {
        let raw: Vec<u8> = (0..5000u32).map(|i| (i % 97) as u8).collect();
        assert_eq!(compress(&raw), compress(&raw));
    }
}
