//! # ecofl-data
//!
//! Synthetic classification datasets and federated partitioners for the
//! Eco-FL reproduction.
//!
//! The paper evaluates on MNIST, Fashion-MNIST and CIFAR-10. Those
//! downloads are unavailable offline, so this crate generates deterministic
//! Gaussian-prototype datasets with three difficulty presets whose relative
//! hardness mirrors the originals:
//!
//! - [`SyntheticSpec::mnist_like`] — well-separated classes (easy),
//! - [`SyntheticSpec::fashion_like`] — moderate separation, sub-clusters,
//! - [`SyntheticSpec::cifar_like`] — low separation, heavy sub-cluster
//!   structure and noise (hard).
//!
//! What the FL experiments actually measure — convergence damage from
//! non-IID label skew across clients and groups, and its interaction with
//! aggregation strategy — is a function of the *label partitioning*, which
//! is reproduced exactly as described in §6.1:
//!
//! - [`partition::classes_per_client`] — every client holds samples from
//!   `k` random classes (the paper uses `k = 2`),
//! - [`partition::rlg_iid`] / [`partition::rlg_niid`] — label distributions
//!   assigned per response-latency group (10 classes vs 3 classes per RLG).

pub mod dataset;
pub mod federated;
pub mod partition;
pub mod synth;

pub use dataset::Dataset;
pub use federated::FederatedDataset;
pub use synth::SyntheticSpec;
