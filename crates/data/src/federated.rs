//! Federated dataset bundle: per-client training shards + a held-out,
//! balanced test set used by the server to evaluate the global model.

use crate::dataset::Dataset;
use crate::partition;
use crate::synth::{Prototypes, SyntheticSpec};
use ecofl_util::Rng;

/// Which non-IID regime to generate (matching §6.1, plus the standard
/// Dirichlet generalization).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PartitionScheme {
    /// Balanced classes on every client.
    Iid,
    /// Each client holds `k` random classes (paper default: 2).
    ClassesPerClient(usize),
    /// Label proportions drawn from `Dir(alpha·1)` per client; sweeps
    /// heterogeneity continuously (α→0 extreme skew, α→∞ IID).
    Dirichlet(f64),
    /// Group-level IID: all classes in every response-latency group.
    RlgIid,
    /// Group-level non-IID: `k` classes per response-latency group
    /// (paper default: 3).
    RlgNiid(usize),
}

/// A complete federated learning dataset: one shard per client plus a
/// held-out test set drawn from the same task.
///
/// At million-client scale the dataset is *virtualized*
/// ([`FederatedDataset::virtualize`]): `n` virtual clients are mapped
/// round-robin onto the materialized shards, so data memory stays
/// O(shards) while the scheduler sees `n` clients. Two virtual clients
/// sharing a shard still train independently — their RNG streams (and
/// hence their local updates) differ.
#[derive(Debug, Clone)]
pub struct FederatedDataset {
    clients: Vec<Dataset>,
    test: Dataset,
    num_classes: usize,
    /// When set, the population presented by [`Self::num_clients`] /
    /// [`Self::client`]; the materialized shards back it round-robin.
    num_virtual: Option<usize>,
}

impl FederatedDataset {
    /// Generates a federated dataset.
    ///
    /// `client_rlg` maps each client to its response-latency group; it is
    /// required (and only used) by the RLG schemes.
    ///
    /// # Panics
    /// Panics if an RLG scheme is requested without `client_rlg`, or if
    /// `client_rlg` length differs from `n_clients`.
    #[must_use]
    pub fn generate(
        spec: &SyntheticSpec,
        n_clients: usize,
        samples_per_client: usize,
        test_per_class: usize,
        scheme: PartitionScheme,
        client_rlg: Option<&[usize]>,
        seed: u64,
    ) -> Self {
        let protos: Prototypes = spec.prototypes(seed);
        let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let clients = match scheme {
            PartitionScheme::Iid => {
                partition::iid(&protos, n_clients, samples_per_client, &mut rng)
            }
            PartitionScheme::ClassesPerClient(k) => {
                partition::classes_per_client(&protos, n_clients, k, samples_per_client, &mut rng)
            }
            PartitionScheme::Dirichlet(alpha) => {
                partition::dirichlet(&protos, n_clients, alpha, samples_per_client, &mut rng)
            }
            PartitionScheme::RlgIid => {
                let rlg = client_rlg.expect("RlgIid requires client_rlg");
                assert_eq!(rlg.len(), n_clients, "client_rlg length mismatch");
                partition::rlg_iid(&protos, rlg, samples_per_client, &mut rng)
            }
            PartitionScheme::RlgNiid(k) => {
                let rlg = client_rlg.expect("RlgNiid requires client_rlg");
                assert_eq!(rlg.len(), n_clients, "client_rlg length mismatch");
                partition::rlg_niid(&protos, rlg, k, samples_per_client, &mut rng)
            }
        };
        let mut test_rng = rng.split();
        let test = protos.sample_balanced(test_per_class, &mut test_rng);
        Self {
            clients,
            test,
            num_classes: spec.num_classes,
            num_virtual: None,
        }
    }

    /// Presents this dataset as `n` virtual clients backed round-robin
    /// by the materialized shards (`virtual client i → shard i %
    /// num_shards()`). The scheduler, grouper and failure model all see
    /// `n` clients; data memory stays proportional to the shard count.
    ///
    /// # Panics
    /// Panics if `n` is smaller than the number of materialized shards
    /// (that would silently orphan shards).
    #[must_use]
    pub fn virtualize(mut self, n: usize) -> Self {
        assert!(
            n >= self.clients.len(),
            "virtualize: {n} virtual clients cannot cover {} shards",
            self.clients.len()
        );
        self.num_virtual = Some(n);
        self
    }

    /// Number of clients (virtual population when virtualized).
    #[must_use]
    pub fn num_clients(&self) -> usize {
        self.num_virtual.unwrap_or(self.clients.len())
    }

    /// Number of materialized shards (= `num_clients()` when not
    /// virtualized).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.clients.len()
    }

    /// The materialized shard backing client `i`.
    #[must_use]
    pub fn shard_index(&self, i: usize) -> usize {
        debug_assert!(i < self.num_clients());
        i % self.clients.len()
    }

    /// Training shard of client `i` (the backing shard when
    /// virtualized).
    #[must_use]
    pub fn client(&self, i: usize) -> &Dataset {
        &self.clients[self.shard_index(i)]
    }

    /// The materialized shards — one entry per *shard*, not per virtual
    /// client; use [`Self::shard_index`] to map a client id onto this
    /// slice.
    #[must_use]
    pub fn clients(&self) -> &[Dataset] {
        &self.clients
    }

    /// The held-out test set.
    #[must_use]
    pub fn test(&self) -> &Dataset {
        &self.test
    }

    /// Number of label classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Per-client label distributions `π_n` (Eq. 4 inputs); one entry
    /// per client, replicated from the backing shard when virtualized.
    #[must_use]
    pub fn client_label_distributions(&self) -> Vec<Vec<f64>> {
        let shard_dists: Vec<Vec<f64>> = self
            .clients
            .iter()
            .map(Dataset::label_distribution)
            .collect();
        match self.num_virtual {
            None => shard_dists,
            Some(n) => (0..n)
                .map(|i| shard_dists[self.shard_index(i)].clone())
                .collect(),
        }
    }

    /// Total training samples across all clients (`|D|` in the FL
    /// objective) — counts each virtual client's view of its shard.
    #[must_use]
    pub fn total_train_samples(&self) -> usize {
        match self.num_virtual {
            None => self.clients.iter().map(Dataset::len).sum(),
            Some(n) => (0..n).map(|i| self.client(i).len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_iid() {
        let fd = FederatedDataset::generate(
            &SyntheticSpec::mnist_like(),
            8,
            40,
            10,
            PartitionScheme::Iid,
            None,
            42,
        );
        assert_eq!(fd.num_clients(), 8);
        assert_eq!(fd.test().len(), 100);
        assert_eq!(fd.total_train_samples(), 8 * 40);
    }

    #[test]
    fn generate_two_class() {
        let fd = FederatedDataset::generate(
            &SyntheticSpec::mnist_like(),
            10,
            60,
            5,
            PartitionScheme::ClassesPerClient(2),
            None,
            7,
        );
        for dist in fd.client_label_distributions() {
            assert_eq!(dist.iter().filter(|&&p| p > 0.0).count(), 2);
        }
    }

    #[test]
    fn generate_rlg_niid() {
        let rlg: Vec<usize> = (0..10).map(|i| i % 5).collect();
        let fd = FederatedDataset::generate(
            &SyntheticSpec::mnist_like(),
            10,
            30,
            5,
            PartitionScheme::RlgNiid(3),
            Some(&rlg),
            7,
        );
        for dist in fd.client_label_distributions() {
            assert_eq!(dist.iter().filter(|&&p| p > 0.0).count(), 3);
        }
    }

    #[test]
    fn deterministic_generation() {
        let make = || {
            FederatedDataset::generate(
                &SyntheticSpec::cifar_like(),
                5,
                20,
                4,
                PartitionScheme::ClassesPerClient(2),
                None,
                99,
            )
        };
        let a = make();
        let b = make();
        for i in 0..5 {
            assert_eq!(a.client(i), b.client(i));
        }
        assert_eq!(a.test(), b.test());
    }

    #[test]
    fn virtualize_maps_round_robin_onto_shards() {
        let fd = FederatedDataset::generate(
            &SyntheticSpec::mnist_like(),
            4,
            20,
            5,
            PartitionScheme::Iid,
            None,
            13,
        )
        .virtualize(11);
        assert_eq!(fd.num_clients(), 11);
        assert_eq!(fd.num_shards(), 4);
        for i in 0..11 {
            assert_eq!(fd.shard_index(i), i % 4);
            assert_eq!(fd.client(i), &fd.clients()[i % 4]);
        }
        assert_eq!(fd.client_label_distributions().len(), 11);
        assert_eq!(fd.total_train_samples(), 11 * 20);
    }

    #[test]
    #[should_panic(expected = "cannot cover")]
    fn virtualize_rejects_fewer_clients_than_shards() {
        let fd = FederatedDataset::generate(
            &SyntheticSpec::mnist_like(),
            4,
            10,
            2,
            PartitionScheme::Iid,
            None,
            13,
        );
        let _ = fd.virtualize(3);
    }

    #[test]
    #[should_panic(expected = "requires client_rlg")]
    fn rlg_scheme_requires_mapping() {
        let _ = FederatedDataset::generate(
            &SyntheticSpec::mnist_like(),
            4,
            10,
            2,
            PartitionScheme::RlgNiid(3),
            None,
            1,
        );
    }
}
