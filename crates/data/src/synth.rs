//! Deterministic synthetic dataset generation.
//!
//! Each class `c` gets a set of prototype vectors drawn once from a
//! class-level Gaussian; a sample is a randomly chosen prototype plus
//! isotropic noise. Separation (prototype scale ÷ noise scale) and the
//! number of prototypes per class control difficulty:
//!
//! | preset | separation | prototypes/class | stands in for |
//! |---|---|---|---|
//! | `mnist_like` | high | 1 | MNIST |
//! | `fashion_like` | medium | 2 | Fashion-MNIST |
//! | `cifar_like` | low | 4 | CIFAR-10 |
//!
//! The generator is fully determined by the seed, so every experiment in
//! the bench harness is replayable bit-for-bit.

use crate::dataset::Dataset;
use ecofl_compat::serde::{Deserialize, Serialize};
use ecofl_util::Rng;

/// Parameters of a synthetic classification task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Number of label classes.
    pub num_classes: usize,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Scale of class prototype vectors (inter-class distance).
    pub separation: f64,
    /// Standard deviation of per-sample noise.
    pub noise: f64,
    /// Prototype vectors per class (intra-class multi-modality).
    pub modes_per_class: usize,
    /// Human-readable name used in bench output.
    pub name: &'static str,
}

impl SyntheticSpec {
    /// Easy, well-separated 10-class task (stands in for MNIST).
    #[must_use]
    pub fn mnist_like() -> Self {
        Self {
            num_classes: 10,
            feature_dim: 32,
            separation: 3.0,
            noise: 1.0,
            modes_per_class: 1,
            name: "mnist-like",
        }
    }

    /// Medium task with two modes per class (stands in for Fashion-MNIST).
    #[must_use]
    pub fn fashion_like() -> Self {
        Self {
            num_classes: 10,
            feature_dim: 32,
            separation: 2.0,
            noise: 1.0,
            modes_per_class: 2,
            name: "fashion-like",
        }
    }

    /// Hard task: low separation, four modes per class (stands in for
    /// CIFAR-10).
    #[must_use]
    pub fn cifar_like() -> Self {
        Self {
            num_classes: 10,
            feature_dim: 32,
            separation: 1.3,
            noise: 1.0,
            modes_per_class: 4,
            name: "cifar-like",
        }
    }

    /// Image-shaped task: 64 features laid out as an 8×8 single-channel
    /// "image" for the CNN client architecture. Difficulty between the
    /// mnist-like and cifar-like presets.
    #[must_use]
    pub fn image_like() -> Self {
        Self {
            num_classes: 10,
            feature_dim: 64,
            separation: 2.2,
            noise: 1.0,
            modes_per_class: 2,
            name: "image-like",
        }
    }

    /// Generates the class prototypes for this spec under the given seed.
    #[must_use]
    pub fn prototypes(&self, seed: u64) -> Prototypes {
        let mut rng = Rng::new(seed ^ 0xEC0F_1F1A);
        let mut protos =
            Vec::with_capacity(self.num_classes * self.modes_per_class * self.feature_dim);
        for _ in 0..self.num_classes * self.modes_per_class {
            for _ in 0..self.feature_dim {
                protos.push((rng.next_gaussian() * self.separation) as f32);
            }
        }
        Prototypes {
            spec: self.clone(),
            protos,
        }
    }
}

/// Frozen class prototypes; the sampling distribution of the task.
///
/// Keeping prototypes separate from sampling lets every client and the test
/// set draw from the *same* underlying task while using independent RNG
/// streams.
#[derive(Debug, Clone)]
pub struct Prototypes {
    spec: SyntheticSpec,
    protos: Vec<f32>,
}

impl Prototypes {
    /// The generating spec.
    #[must_use]
    pub fn spec(&self) -> &SyntheticSpec {
        &self.spec
    }

    /// Draws `n` samples of class `class` into `features`/`labels`.
    ///
    /// # Panics
    /// Panics if `class` is out of range.
    pub fn sample_class_into(
        &self,
        class: usize,
        n: usize,
        rng: &mut Rng,
        features: &mut Vec<f32>,
        labels: &mut Vec<usize>,
    ) {
        assert!(class < self.spec.num_classes, "sample: class out of range");
        let dim = self.spec.feature_dim;
        for _ in 0..n {
            let mode = rng.range_usize(0, self.spec.modes_per_class);
            let base = (class * self.spec.modes_per_class + mode) * dim;
            for d in 0..dim {
                features
                    .push(self.protos[base + d] + (rng.next_gaussian() * self.spec.noise) as f32);
            }
            labels.push(class);
        }
    }

    /// Draws a dataset with `per_class` samples of every class.
    #[must_use]
    pub fn sample_balanced(&self, per_class: usize, rng: &mut Rng) -> Dataset {
        let mut features =
            Vec::with_capacity(per_class * self.spec.num_classes * self.spec.feature_dim);
        let mut labels = Vec::with_capacity(per_class * self.spec.num_classes);
        for c in 0..self.spec.num_classes {
            self.sample_class_into(c, per_class, rng, &mut features, &mut labels);
        }
        Dataset::new(
            features,
            labels,
            self.spec.feature_dim,
            self.spec.num_classes,
        )
    }

    /// Draws a dataset whose per-class counts follow `counts`.
    ///
    /// # Panics
    /// Panics if `counts.len()` differs from the number of classes.
    #[must_use]
    pub fn sample_with_counts(&self, counts: &[usize], rng: &mut Rng) -> Dataset {
        assert_eq!(
            counts.len(),
            self.spec.num_classes,
            "sample_with_counts: counts length mismatch"
        );
        let total: usize = counts.iter().sum();
        let mut features = Vec::with_capacity(total * self.spec.feature_dim);
        let mut labels = Vec::with_capacity(total);
        for (c, &n) in counts.iter().enumerate() {
            self.sample_class_into(c, n, rng, &mut features, &mut labels);
        }
        Dataset::new(
            features,
            labels,
            self.spec.feature_dim,
            self.spec.num_classes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_sampling_shapes() {
        let spec = SyntheticSpec::mnist_like();
        let protos = spec.prototypes(1);
        let mut rng = Rng::new(2);
        let d = protos.sample_balanced(20, &mut rng);
        assert_eq!(d.len(), 200);
        assert_eq!(d.label_counts(), vec![20; 10]);
        assert_eq!(d.feature_dim(), 32);
    }

    #[test]
    fn deterministic_given_seeds() {
        let spec = SyntheticSpec::fashion_like();
        let a = spec.prototypes(5).sample_balanced(10, &mut Rng::new(9));
        let b = spec.prototypes(5).sample_balanced(10, &mut Rng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn counts_sampling() {
        let spec = SyntheticSpec::mnist_like();
        let protos = spec.prototypes(1);
        let mut rng = Rng::new(3);
        let counts = vec![0, 5, 0, 0, 3, 0, 0, 0, 0, 2];
        let d = protos.sample_with_counts(&counts, &mut rng);
        assert_eq!(d.label_counts(), counts);
    }

    #[test]
    fn classes_are_statistically_separated() {
        // Nearest-prototype classification on an easy set should beat 90%.
        let spec = SyntheticSpec::mnist_like();
        let protos = spec.prototypes(11);
        let mut rng = Rng::new(12);
        let d = protos.sample_balanced(30, &mut rng);
        // Rebuild prototype means per class from data.
        let dim = d.feature_dim();
        let mut means = vec![vec![0.0f64; dim]; 10];
        let counts = d.label_counts();
        for i in 0..d.len() {
            let c = d.labels()[i];
            for (m, &x) in means[c].iter_mut().zip(d.feature_row(i)) {
                *m += f64::from(x);
            }
        }
        for (c, mv) in means.iter_mut().enumerate() {
            for m in mv.iter_mut() {
                *m /= counts[c] as f64;
            }
        }
        let mut correct = 0;
        for i in 0..d.len() {
            let row = d.feature_row(i);
            let best = (0..10)
                .min_by(|&a, &b| {
                    let da: f64 = means[a]
                        .iter()
                        .zip(row)
                        .map(|(m, &x)| (m - f64::from(x)).powi(2))
                        .sum();
                    let db: f64 = means[b]
                        .iter()
                        .zip(row)
                        .map(|(m, &x)| (m - f64::from(x)).powi(2))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == d.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.len() as f64;
        assert!(
            acc > 0.9,
            "nearest-mean accuracy {acc} too low for the easy preset"
        );
    }

    #[test]
    fn difficulty_ordering_holds() {
        // Harder presets should show worse nearest-class-mean accuracy.
        fn nearest_mean_acc(spec: &SyntheticSpec, seed: u64) -> f64 {
            let protos = spec.prototypes(seed);
            let mut rng = Rng::new(seed + 1);
            let train = protos.sample_balanced(50, &mut rng);
            let test = protos.sample_balanced(20, &mut rng);
            let dim = train.feature_dim();
            let k = train.num_classes();
            let mut means = vec![vec![0.0f64; dim]; k];
            let counts = train.label_counts();
            for i in 0..train.len() {
                let c = train.labels()[i];
                for (m, &x) in means[c].iter_mut().zip(train.feature_row(i)) {
                    *m += f64::from(x);
                }
            }
            for (c, mv) in means.iter_mut().enumerate() {
                for m in mv.iter_mut() {
                    *m /= counts[c].max(1) as f64;
                }
            }
            let mut correct = 0;
            for i in 0..test.len() {
                let row = test.feature_row(i);
                let best = (0..k)
                    .min_by(|&a, &b| {
                        let da: f64 = means[a]
                            .iter()
                            .zip(row)
                            .map(|(m, &x)| (m - f64::from(x)).powi(2))
                            .sum();
                        let db: f64 = means[b]
                            .iter()
                            .zip(row)
                            .map(|(m, &x)| (m - f64::from(x)).powi(2))
                            .sum();
                        da.partial_cmp(&db).unwrap()
                    })
                    .unwrap();
                if best == test.labels()[i] {
                    correct += 1;
                }
            }
            correct as f64 / test.len() as f64
        }
        let easy = nearest_mean_acc(&SyntheticSpec::mnist_like(), 100);
        let hard = nearest_mean_acc(&SyntheticSpec::cifar_like(), 100);
        assert!(
            easy > hard,
            "difficulty ordering violated: mnist-like {easy} <= cifar-like {hard}"
        );
    }
}
