//! Federated label partitioners (§6.1 of the paper).
//!
//! Two layers of non-IIDness exist in a hierarchical FL system: per-client
//! skew and per-group (RLG — response-latency group) skew. The paper's
//! settings are reproduced here:
//!
//! - [`classes_per_client`]: "the samples in each client are only assigned
//!   from two random classes" — client-level skew,
//! - [`rlg_iid`]: each RLG gets all 10 classes (group-level IID),
//! - [`rlg_niid`]: each RLG gets only 3 classes (group-level non-IID, the
//!   "businessmen of certain areas" scenario).

use crate::dataset::Dataset;
use crate::synth::Prototypes;
use ecofl_util::Rng;

/// IID partition: every client draws a balanced sample of all classes.
///
/// `samples_per_client` is rounded down to a multiple of the class count.
#[must_use]
pub fn iid(
    protos: &Prototypes,
    n_clients: usize,
    samples_per_client: usize,
    rng: &mut Rng,
) -> Vec<Dataset> {
    let k = protos.spec().num_classes;
    let per_class = (samples_per_client / k).max(1);
    (0..n_clients)
        .map(|_| {
            let mut crng = rng.split();
            protos.sample_balanced(per_class, &mut crng)
        })
        .collect()
}

/// Client-level non-IID partition: each client holds samples from exactly
/// `classes_per` random classes (the paper uses 2), split evenly.
///
/// # Panics
/// Panics if `classes_per` is zero or exceeds the class count.
#[must_use]
pub fn classes_per_client(
    protos: &Prototypes,
    n_clients: usize,
    classes_per: usize,
    samples_per_client: usize,
    rng: &mut Rng,
) -> Vec<Dataset> {
    let k = protos.spec().num_classes;
    assert!(
        classes_per >= 1 && classes_per <= k,
        "classes_per_client: need 1..={k} classes, got {classes_per}"
    );
    (0..n_clients)
        .map(|_| {
            let classes = rng.sample_indices(k, classes_per);
            let mut counts = vec![0usize; k];
            let base = samples_per_client / classes_per;
            let mut rem = samples_per_client % classes_per;
            for &c in &classes {
                counts[c] = base + usize::from(rem > 0);
                rem = rem.saturating_sub(1);
            }
            let mut crng = rng.split();
            protos.sample_with_counts(&counts, &mut crng)
        })
        .collect()
}

/// RLG-IID assignment: every client draws from all classes regardless of
/// its response-latency group, so group-level label distributions are
/// (approximately) uniform.
///
/// `client_rlg[i]` is the RLG index of client `i`; it only matters for the
/// NIID variant but is accepted here for interface symmetry.
#[must_use]
pub fn rlg_iid(
    protos: &Prototypes,
    client_rlg: &[usize],
    samples_per_client: usize,
    rng: &mut Rng,
) -> Vec<Dataset> {
    iid(protos, client_rlg.len(), samples_per_client, rng)
}

/// RLG-NIID assignment: each response-latency group is assigned
/// `classes_per_rlg` label classes (the paper uses 3), and every client in
/// the group draws only from its group's classes.
///
/// Class subsets are chosen per group with a round-robin offset so that all
/// classes stay covered globally when there are enough groups.
///
/// # Panics
/// Panics if `classes_per_rlg` is zero or exceeds the class count.
#[must_use]
pub fn rlg_niid(
    protos: &Prototypes,
    client_rlg: &[usize],
    classes_per_rlg: usize,
    samples_per_client: usize,
    rng: &mut Rng,
) -> Vec<Dataset> {
    let k = protos.spec().num_classes;
    assert!(
        classes_per_rlg >= 1 && classes_per_rlg <= k,
        "rlg_niid: need 1..={k} classes per RLG, got {classes_per_rlg}"
    );
    let n_groups = client_rlg.iter().copied().max().map_or(0, |m| m + 1);
    // Deterministic per-group class subsets: stride across the label space
    // so groups overlap partially (mirrors the paper's behavioural-cluster
    // story where similar users share label types).
    let group_classes: Vec<Vec<usize>> = (0..n_groups)
        .map(|g| {
            let start = (g * classes_per_rlg) % k;
            (0..classes_per_rlg).map(|j| (start + j) % k).collect()
        })
        .collect();
    client_rlg
        .iter()
        .map(|&g| {
            let classes = &group_classes[g];
            let mut counts = vec![0usize; k];
            let base = samples_per_client / classes.len();
            let mut rem = samples_per_client % classes.len();
            for &c in classes {
                counts[c] += base + usize::from(rem > 0);
                rem = rem.saturating_sub(1);
            }
            let mut crng = rng.split();
            protos.sample_with_counts(&counts, &mut crng)
        })
        .collect()
}

/// Dirichlet non-IID partition: each client's label proportions are drawn
/// from `Dir(alpha·1)`. This is the standard generalization of the
/// fixed-k-classes scheme — `alpha → 0` approaches one-class clients,
/// `alpha → ∞` approaches IID — and lets experiments sweep heterogeneity
/// continuously (an extension beyond the paper's two fixed settings).
///
/// Gamma draws use the Marsaglia–Tsang method (with the `alpha < 1`
/// boost), so any positive `alpha` is valid.
///
/// # Panics
/// Panics if `alpha` is not positive.
#[must_use]
pub fn dirichlet(
    protos: &Prototypes,
    n_clients: usize,
    alpha: f64,
    samples_per_client: usize,
    rng: &mut Rng,
) -> Vec<Dataset> {
    assert!(alpha > 0.0, "dirichlet: alpha must be positive");
    let k = protos.spec().num_classes;
    (0..n_clients)
        .map(|_| {
            // Draw proportions ~ Dir(alpha) via normalized Gamma(alpha, 1).
            let gammas: Vec<f64> = (0..k).map(|_| sample_gamma(alpha, rng)).collect();
            let total: f64 = gammas.iter().sum();
            let mut counts = vec![0usize; k];
            let mut assigned = 0usize;
            for (c, g) in gammas.iter().enumerate() {
                let share = (g / total * samples_per_client as f64).floor() as usize;
                counts[c] = share;
                assigned += share;
            }
            // Distribute the rounding remainder to the largest shares.
            let mut order: Vec<usize> = (0..k).collect();
            order.sort_by(|&a, &b| gammas[b].partial_cmp(&gammas[a]).expect("finite"));
            let mut i = 0;
            while assigned < samples_per_client {
                counts[order[i % k]] += 1;
                assigned += 1;
                i += 1;
            }
            let mut crng = rng.split();
            protos.sample_with_counts(&counts, &mut crng)
        })
        .collect()
}

/// Marsaglia–Tsang Gamma(shape, 1) sampler.
fn sample_gamma(shape: f64, rng: &mut Rng) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
        let u = rng.next_f64().max(1e-300);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = rng.next_gaussian();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.next_f64();
        if u < 1.0 - 0.0331 * x.powi(4) || u.max(1e-300).ln() < 0.5 * x * x + d * (1.0 - v + v.ln())
        {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticSpec;
    use ecofl_util::js_divergence;

    fn protos() -> Prototypes {
        SyntheticSpec::mnist_like().prototypes(1)
    }

    #[test]
    fn iid_clients_are_balanced() {
        let p = protos();
        let mut rng = Rng::new(2);
        let clients = iid(&p, 5, 50, &mut rng);
        assert_eq!(clients.len(), 5);
        for c in &clients {
            assert_eq!(c.label_counts(), vec![5; 10]);
        }
    }

    #[test]
    fn two_class_clients_hold_two_classes() {
        let p = protos();
        let mut rng = Rng::new(3);
        let clients = classes_per_client(&p, 20, 2, 60, &mut rng);
        for c in &clients {
            let nonzero = c.label_counts().iter().filter(|&&n| n > 0).count();
            assert_eq!(nonzero, 2, "client must hold exactly two classes");
            assert_eq!(c.len(), 60);
        }
    }

    #[test]
    fn odd_sample_count_distributes_remainder() {
        let p = protos();
        let mut rng = Rng::new(4);
        let clients = classes_per_client(&p, 4, 3, 10, &mut rng);
        for c in &clients {
            assert_eq!(c.len(), 10);
            let counts: Vec<usize> = c.label_counts().into_iter().filter(|&n| n > 0).collect();
            assert_eq!(counts.len(), 3);
            assert!(counts.iter().all(|&n| n == 3 || n == 4));
        }
    }

    #[test]
    fn rlg_niid_groups_have_skewed_distributions() {
        let p = protos();
        let mut rng = Rng::new(5);
        // 3 groups × 4 clients.
        let client_rlg: Vec<usize> = (0..12).map(|i| i / 4).collect();
        let clients = rlg_niid(&p, &client_rlg, 3, 30, &mut rng);
        // Group-level distribution: union of member datasets.
        let uniform = vec![0.1f64; 10];
        for g in 0..3 {
            let mut counts = vec![0.0f64; 10];
            for (i, c) in clients.iter().enumerate() {
                if client_rlg[i] == g {
                    for (acc, n) in counts.iter_mut().zip(c.label_counts()) {
                        *acc += n as f64;
                    }
                }
            }
            let dist = ecofl_util::normalize_distribution(&counts);
            let js = js_divergence(&dist, &uniform);
            assert!(js > 0.3, "group {g} should be far from IID, js = {js}");
            assert_eq!(dist.iter().filter(|&&x| x > 0.0).count(), 3);
        }
    }

    #[test]
    fn rlg_iid_groups_are_near_uniform() {
        let p = protos();
        let mut rng = Rng::new(6);
        let client_rlg: Vec<usize> = (0..12).map(|i| i / 4).collect();
        let clients = rlg_iid(&p, &client_rlg, 50, &mut rng);
        let uniform = vec![0.1f64; 10];
        for g in 0..3 {
            let mut counts = vec![0.0f64; 10];
            for (i, c) in clients.iter().enumerate() {
                if client_rlg[i] == g {
                    for (acc, n) in counts.iter_mut().zip(c.label_counts()) {
                        *acc += n as f64;
                    }
                }
            }
            let dist = ecofl_util::normalize_distribution(&counts);
            assert!(js_divergence(&dist, &uniform) < 0.01);
        }
    }

    #[test]
    fn dirichlet_counts_sum_and_concentration() {
        let p = protos();
        let mut rng = Rng::new(8);
        let clients = dirichlet(&p, 30, 0.3, 60, &mut rng);
        for c in &clients {
            assert_eq!(c.len(), 60);
        }
        // Low alpha → concentrated; high alpha → near uniform.
        let avg_entropy = |clients: &[Dataset]| {
            let e: f64 = clients
                .iter()
                .map(|c| ecofl_util::entropy(&c.label_distribution()))
                .sum();
            e / clients.len() as f64
        };
        let concentrated = avg_entropy(&clients);
        let mut rng = Rng::new(8);
        let spread = avg_entropy(&dirichlet(&p, 30, 100.0, 60, &mut rng));
        assert!(
            concentrated < spread,
            "alpha 0.3 entropy {concentrated} should be below alpha 100 entropy {spread}"
        );
        assert!(
            spread > 3.0,
            "alpha 100 should be near-uniform over 10 classes"
        );
    }

    #[test]
    fn rlg_class_subsets_differ_between_groups() {
        let p = protos();
        let mut rng = Rng::new(7);
        let client_rlg = vec![0, 1];
        let clients = rlg_niid(&p, &client_rlg, 3, 30, &mut rng);
        assert_ne!(
            clients[0].label_counts(),
            clients[1].label_counts(),
            "different RLGs must hold different class subsets"
        );
    }
}
