//! In-memory labelled dataset.

use ecofl_compat::serde::{Deserialize, Serialize};
use ecofl_util::Rng;

/// A dense, in-memory classification dataset.
///
/// Features are stored row-major (`len × feature_dim`); labels are class
/// indices in `0..num_classes`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Vec<f32>,
    labels: Vec<usize>,
    feature_dim: usize,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from raw parts.
    ///
    /// # Panics
    /// Panics if lengths are inconsistent or a label is out of range.
    #[must_use]
    pub fn new(
        features: Vec<f32>,
        labels: Vec<usize>,
        feature_dim: usize,
        num_classes: usize,
    ) -> Self {
        assert!(feature_dim > 0, "Dataset: feature_dim must be positive");
        assert!(num_classes > 0, "Dataset: num_classes must be positive");
        assert_eq!(
            features.len(),
            labels.len() * feature_dim,
            "Dataset: features length {} != {} samples × {} dims",
            features.len(),
            labels.len(),
            feature_dim
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "Dataset: label out of range"
        );
        Self {
            features,
            labels,
            feature_dim,
            num_classes,
        }
    }

    /// Creates an empty dataset with the given dimensions.
    #[must_use]
    pub fn empty(feature_dim: usize, num_classes: usize) -> Self {
        Self::new(Vec::new(), Vec::new(), feature_dim, num_classes)
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Number of label classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// All labels.
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Feature row of sample `i`.
    #[must_use]
    pub fn feature_row(&self, i: usize) -> &[f32] {
        &self.features[i * self.feature_dim..(i + 1) * self.feature_dim]
    }

    /// Contiguous feature matrix for a set of sample indices, plus labels —
    /// ready to wrap in a tensor batch.
    #[must_use]
    pub fn gather(&self, indices: &[usize]) -> (Vec<f32>, Vec<usize>) {
        let mut feats = Vec::with_capacity(indices.len() * self.feature_dim);
        let mut labs = Vec::with_capacity(indices.len());
        for &i in indices {
            feats.extend_from_slice(self.feature_row(i));
            labs.push(self.labels[i]);
        }
        (feats, labs)
    }

    /// A new dataset holding copies of the selected samples.
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let (features, labels) = self.gather(indices);
        Dataset::new(features, labels, self.feature_dim, self.num_classes)
    }

    /// Appends all samples of another dataset.
    ///
    /// # Panics
    /// Panics if dimensions disagree.
    pub fn extend(&mut self, other: &Dataset) {
        assert_eq!(self.feature_dim, other.feature_dim, "extend: dim mismatch");
        assert_eq!(
            self.num_classes, other.num_classes,
            "extend: class-count mismatch"
        );
        self.features.extend_from_slice(&other.features);
        self.labels.extend_from_slice(&other.labels);
    }

    /// Normalized label histogram — the client's `π` in the grouping cost
    /// (Eq. 4). Uniform if the dataset is empty.
    #[must_use]
    pub fn label_distribution(&self) -> Vec<f64> {
        let mut counts = vec![0.0f64; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1.0;
        }
        ecofl_util::normalize_distribution(&counts)
    }

    /// Raw label counts per class.
    #[must_use]
    pub fn label_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Per-feature mean and standard deviation over this dataset — the
    /// statistics a client computes locally before training.
    #[must_use]
    pub fn feature_stats(&self) -> (Vec<f32>, Vec<f32>) {
        let n = self.len().max(1) as f32;
        let mut mean = vec![0.0f32; self.feature_dim];
        for row in self.features.chunks(self.feature_dim) {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f32; self.feature_dim];
        for row in self.features.chunks(self.feature_dim) {
            for ((v, &m), &x) in var.iter_mut().zip(&mean).zip(row) {
                *v += (x - m) * (x - m);
            }
        }
        let std = var.into_iter().map(|v| (v / n).sqrt().max(1e-6)).collect();
        (mean, std)
    }

    /// Returns a z-score-normalized copy using the given statistics
    /// (typically [`Dataset::feature_stats`] of a reference set, so train
    /// and test share one normalization).
    ///
    /// # Panics
    /// Panics if the statistics' length differs from the feature dim.
    #[must_use]
    pub fn normalized(&self, mean: &[f32], std: &[f32]) -> Dataset {
        assert_eq!(mean.len(), self.feature_dim, "normalized: mean length");
        assert_eq!(std.len(), self.feature_dim, "normalized: std length");
        let features = self
            .features
            .chunks(self.feature_dim)
            .flat_map(|row| {
                row.iter()
                    .zip(mean.iter().zip(std))
                    .map(|(&x, (&m, &s))| (x - m) / s)
            })
            .collect();
        Dataset::new(
            features,
            self.labels.clone(),
            self.feature_dim,
            self.num_classes,
        )
    }

    /// Splits the dataset into `(train, test)` with `test_fraction` of
    /// the samples (randomized, deterministic under `rng`).
    ///
    /// # Panics
    /// Panics unless `test_fraction` is in `(0, 1)`.
    #[must_use]
    pub fn train_test_split(&self, test_fraction: f64, rng: &mut Rng) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "train_test_split: fraction must be in (0,1)"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let n_test = ((self.len() as f64 * test_fraction).round() as usize)
            .clamp(1, self.len().saturating_sub(1).max(1));
        let (test_idx, train_idx) = idx.split_at(n_test);
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// Sample indices in randomized order, chunked into mini-batches.
    #[must_use]
    pub fn batches(&self, batch_size: usize, rng: &mut Rng) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batches: batch_size must be positive");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        idx.chunks(batch_size).map(<[usize]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![0, 1, 0], 2, 2)
    }

    #[test]
    fn construction_and_access() {
        let d = small();
        assert_eq!(d.len(), 3);
        assert_eq!(d.feature_dim(), 2);
        assert_eq!(d.feature_row(1), &[3.0, 4.0]);
        assert_eq!(d.labels(), &[0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let _ = Dataset::new(vec![0.0; 2], vec![5], 2, 2);
    }

    #[test]
    fn gather_and_subset() {
        let d = small();
        let (f, l) = d.gather(&[2, 0]);
        assert_eq!(f, vec![5.0, 6.0, 1.0, 2.0]);
        assert_eq!(l, vec![0, 0]);
        let s = d.subset(&[1]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.labels(), &[1]);
    }

    #[test]
    fn label_distribution_normalizes() {
        let d = small();
        let dist = d.label_distribution();
        assert!((dist[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((dist[1] - 1.0 / 3.0).abs() < 1e-12);
        let e = Dataset::empty(4, 10);
        assert_eq!(e.label_distribution(), vec![0.1; 10]);
    }

    #[test]
    fn extend_concatenates() {
        let mut d = small();
        let other = small();
        d.extend(&other);
        assert_eq!(d.len(), 6);
        assert_eq!(d.label_counts(), vec![4, 2]);
    }

    #[test]
    fn feature_stats_and_normalization() {
        let d = Dataset::new(vec![0.0, 10.0, 2.0, 10.0, 4.0, 10.0], vec![0, 1, 0], 2, 2);
        let (mean, std) = d.feature_stats();
        assert!((mean[0] - 2.0).abs() < 1e-6);
        assert!((mean[1] - 10.0).abs() < 1e-6);
        // Second feature is constant: std floored, not zero.
        assert!(std[1] >= 1e-6);
        let norm = d.normalized(&mean, &std);
        let (nm, _) = norm.feature_stats();
        assert!(
            nm.iter().all(|m| m.abs() < 1e-5),
            "normalized mean ~0: {nm:?}"
        );
        assert_eq!(norm.labels(), d.labels());
    }

    #[test]
    fn normalization_is_shared_across_sets() {
        // Test data normalized with train statistics keeps relative scale.
        let train = Dataset::new(vec![0.0, 2.0, 4.0, 6.0], vec![0, 1], 2, 2);
        let test = Dataset::new(vec![8.0, 10.0], vec![0], 2, 2);
        let (m, s) = train.feature_stats();
        let nt = test.normalized(&m, &s);
        // Test values sit above the train distribution → positive scores.
        assert!(nt.feature_row(0).iter().all(|&x| x > 0.0));
    }

    #[test]
    fn split_partitions_samples() {
        let d = Dataset::new((0..40).map(|i| i as f32).collect(), vec![0; 20], 2, 2);
        let mut rng = Rng::new(3);
        let (train, test) = d.train_test_split(0.25, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 5);
        // No overlap: every original row appears exactly once.
        let mut firsts: Vec<f32> = train
            .labels()
            .iter()
            .enumerate()
            .map(|(i, _)| train.feature_row(i)[0])
            .chain(
                test.labels()
                    .iter()
                    .enumerate()
                    .map(|(i, _)| test.feature_row(i)[0]),
            )
            .collect();
        firsts.sort_by(f32::total_cmp);
        let expected: Vec<f32> = (0..20).map(|i| (i * 2) as f32).collect();
        assert_eq!(firsts, expected);
    }

    #[test]
    fn batches_cover_every_sample_once() {
        let d = small();
        let mut rng = Rng::new(7);
        let batches = d.batches(2, &mut rng);
        assert_eq!(batches.len(), 2);
        let mut all: Vec<usize> = batches.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    }
}
