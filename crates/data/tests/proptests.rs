//! Property-based tests for dataset generation and partitioning.

use ecofl_compat::check::{any_u64, forall, pair, quad, usize_in};
use ecofl_data::federated::PartitionScheme;
use ecofl_data::{partition, FederatedDataset, SyntheticSpec};
use ecofl_util::Rng;

const CASES: usize = 32;

fn spec() -> SyntheticSpec {
    SyntheticSpec::mnist_like()
}

#[test]
fn classes_per_client_has_exact_class_count() {
    let input = quad(any_u64(), usize_in(1, 30), usize_in(1, 10), usize_in(2, 80));
    forall(
        "classes_per_client_has_exact_class_count",
        CASES,
        &input,
        |&(seed, n, k, samples)| {
            let s = spec();
            let protos = s.prototypes(seed);
            let mut rng = Rng::new(seed ^ 7);
            let clients = partition::classes_per_client(&protos, n, k, samples, &mut rng);
            assert_eq!(clients.len(), n);
            for c in &clients {
                assert_eq!(c.len(), samples);
                let nonzero = c.label_counts().iter().filter(|&&x| x > 0).count();
                assert!(nonzero <= k);
                if samples >= k {
                    assert_eq!(nonzero, k);
                }
            }
        },
    );
}

#[test]
fn label_distribution_is_probability() {
    let input = pair(any_u64(), usize_in(1, 100));
    forall(
        "label_distribution_is_probability",
        CASES,
        &input,
        |&(seed, samples)| {
            let s = spec();
            let protos = s.prototypes(seed);
            let mut rng = Rng::new(seed ^ 9);
            let d = protos.sample_balanced(samples, &mut rng);
            let dist = d.label_distribution();
            assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(dist.iter().all(|&p| p >= 0.0));
        },
    );
}

#[test]
fn rlg_niid_keeps_classes_within_group_subsets() {
    let input = quad(any_u64(), usize_in(1, 6), usize_in(1, 6), usize_in(1, 5));
    forall(
        "rlg_niid_keeps_classes_within_group_subsets",
        CASES,
        &input,
        |&(seed, groups, per_group, classes_per)| {
            let s = spec();
            let protos = s.prototypes(seed);
            let mut rng = Rng::new(seed ^ 11);
            let rlg: Vec<usize> = (0..groups * per_group).map(|i| i / per_group).collect();
            let clients = partition::rlg_niid(&protos, &rlg, classes_per, 30, &mut rng);
            // Clients in the same group must hold identical class supports.
            for g in 0..groups {
                let supports: Vec<Vec<usize>> = clients
                    .iter()
                    .zip(&rlg)
                    .filter(|(_, &r)| r == g)
                    .map(|(c, _)| {
                        c.label_counts()
                            .iter()
                            .enumerate()
                            .filter(|(_, &n)| n > 0)
                            .map(|(i, _)| i)
                            .collect()
                    })
                    .collect();
                for w in supports.windows(2) {
                    assert_eq!(&w[0], &w[1], "group {g} class support differs");
                }
                assert!(supports[0].len() <= classes_per);
            }
        },
    );
}

#[test]
fn federated_dataset_accounting() {
    let input = quad(any_u64(), usize_in(1, 25), usize_in(4, 60), usize_in(1, 20));
    forall(
        "federated_dataset_accounting",
        CASES,
        &input,
        |&(seed, n, samples, test_per_class)| {
            let fd = FederatedDataset::generate(
                &spec(),
                n,
                samples,
                test_per_class,
                PartitionScheme::ClassesPerClient(2),
                None,
                seed,
            );
            assert_eq!(fd.num_clients(), n);
            assert_eq!(fd.total_train_samples(), n * samples);
            assert_eq!(fd.test().len(), test_per_class * 10);
            assert_eq!(fd.client_label_distributions().len(), n);
        },
    );
}

#[test]
fn generation_is_deterministic() {
    forall("generation_is_deterministic", CASES, &any_u64(), |&seed| {
        let make = || {
            FederatedDataset::generate(
                &spec(),
                6,
                20,
                4,
                PartitionScheme::ClassesPerClient(2),
                None,
                seed,
            )
        };
        let a = make();
        let b = make();
        for i in 0..6 {
            assert_eq!(a.client(i), b.client(i));
        }
        assert_eq!(a.test(), b.test());
    });
}

#[test]
fn subset_preserves_rows() {
    let input = pair(any_u64(), usize_in(2, 40));
    forall(
        "subset_preserves_rows",
        CASES,
        &input,
        |&(seed, samples)| {
            let s = spec();
            let protos = s.prototypes(seed);
            let mut rng = Rng::new(seed ^ 13);
            let d = protos.sample_balanced(samples, &mut rng);
            let idx: Vec<usize> = (0..d.len()).step_by(3).collect();
            let sub = d.subset(&idx);
            assert_eq!(sub.len(), idx.len());
            for (si, &di) in idx.iter().enumerate() {
                assert_eq!(sub.feature_row(si), d.feature_row(di));
                assert_eq!(sub.labels()[si], d.labels()[di]);
            }
        },
    );
}
