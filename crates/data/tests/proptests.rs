//! Property-based tests for dataset generation and partitioning.

use ecofl_data::federated::PartitionScheme;
use ecofl_data::{partition, FederatedDataset, SyntheticSpec};
use ecofl_util::Rng;
use proptest::prelude::*;

fn spec() -> SyntheticSpec {
    SyntheticSpec::mnist_like()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn classes_per_client_has_exact_class_count(
        seed in any::<u64>(),
        n in 1usize..30,
        k in 1usize..10,
        samples in 2usize..80,
    ) {
        let s = spec();
        let protos = s.prototypes(seed);
        let mut rng = Rng::new(seed ^ 7);
        let clients = partition::classes_per_client(&protos, n, k, samples, &mut rng);
        prop_assert_eq!(clients.len(), n);
        for c in &clients {
            prop_assert_eq!(c.len(), samples);
            let nonzero = c.label_counts().iter().filter(|&&x| x > 0).count();
            prop_assert!(nonzero <= k);
            if samples >= k {
                prop_assert_eq!(nonzero, k);
            }
        }
    }

    #[test]
    fn label_distribution_is_probability(
        seed in any::<u64>(),
        samples in 1usize..100,
    ) {
        let s = spec();
        let protos = s.prototypes(seed);
        let mut rng = Rng::new(seed ^ 9);
        let d = protos.sample_balanced(samples, &mut rng);
        let dist = d.label_distribution();
        prop_assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(dist.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn rlg_niid_keeps_classes_within_group_subsets(
        seed in any::<u64>(),
        groups in 1usize..6,
        per_group in 1usize..6,
        classes_per in 1usize..5,
    ) {
        let s = spec();
        let protos = s.prototypes(seed);
        let mut rng = Rng::new(seed ^ 11);
        let rlg: Vec<usize> = (0..groups * per_group).map(|i| i / per_group).collect();
        let clients = partition::rlg_niid(&protos, &rlg, classes_per, 30, &mut rng);
        // Clients in the same group must hold identical class supports.
        for g in 0..groups {
            let supports: Vec<Vec<usize>> = clients
                .iter()
                .zip(&rlg)
                .filter(|(_, &r)| r == g)
                .map(|(c, _)| {
                    c.label_counts()
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n > 0)
                        .map(|(i, _)| i)
                        .collect()
                })
                .collect();
            for w in supports.windows(2) {
                prop_assert_eq!(&w[0], &w[1], "group {} class support differs", g);
            }
            prop_assert!(supports[0].len() <= classes_per);
        }
    }

    #[test]
    fn federated_dataset_accounting(
        seed in any::<u64>(),
        n in 1usize..25,
        samples in 4usize..60,
        test_per_class in 1usize..20,
    ) {
        let fd = FederatedDataset::generate(
            &spec(),
            n,
            samples,
            test_per_class,
            PartitionScheme::ClassesPerClient(2),
            None,
            seed,
        );
        prop_assert_eq!(fd.num_clients(), n);
        prop_assert_eq!(fd.total_train_samples(), n * samples);
        prop_assert_eq!(fd.test().len(), test_per_class * 10);
        prop_assert_eq!(fd.client_label_distributions().len(), n);
    }

    #[test]
    fn generation_is_deterministic(seed in any::<u64>()) {
        let make = || FederatedDataset::generate(
            &spec(), 6, 20, 4, PartitionScheme::ClassesPerClient(2), None, seed,
        );
        let a = make();
        let b = make();
        for i in 0..6 {
            prop_assert_eq!(a.client(i), b.client(i));
        }
        prop_assert_eq!(a.test(), b.test());
    }

    #[test]
    fn subset_preserves_rows(seed in any::<u64>(), samples in 2usize..40) {
        let s = spec();
        let protos = s.prototypes(seed);
        let mut rng = Rng::new(seed ^ 13);
        let d = protos.sample_balanced(samples, &mut rng);
        let idx: Vec<usize> = (0..d.len()).step_by(3).collect();
        let sub = d.subset(&idx);
        prop_assert_eq!(sub.len(), idx.len());
        for (si, &di) in idx.iter().enumerate() {
            prop_assert_eq!(sub.feature_row(si), d.feature_row(di));
            prop_assert_eq!(sub.labels()[si], d.labels()[di]);
        }
    }
}
