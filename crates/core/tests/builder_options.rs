//! Coverage of the `EcoFlSystemBuilder` surface: every option, the error
//! paths, and the interplay between options and the run.

use ecofl_core::prelude::*;
use ecofl_core::system::EcoFlSystemBuilder;

fn homes() -> Vec<SmartHome> {
    vec![
        SmartHome::new("a", vec![tx2_q(), nano_h()]),
        SmartHome::new("b", vec![nano_h()]),
    ]
}

fn quick() -> FlConfig {
    FlConfig {
        num_clients: 10,
        clients_per_round: 4,
        num_groups: 2,
        horizon: 200.0,
        eval_interval: 60.0,
        ..FlConfig::tiny()
    }
}

#[test]
fn empty_builder_fails_with_message() {
    let err = EcoFlSystemBuilder::new().build().unwrap_err();
    assert!(
        matches!(err, EcoFlError::Config(_)),
        "expected Config error, got {err:?}"
    );
    assert!(
        err.to_string().contains("smart home"),
        "unexpected message: {err}"
    );
}

#[test]
fn infeasible_home_fails_with_home_name() {
    // A home with more devices than any model has layers per stage can't
    // happen; instead give a device with absurdly little memory.
    let tiny = DeviceSpec::new("tiny", 1e9, 1024, 1e8);
    let err = EcoFlSystem::builder()
        .homes(vec![SmartHome::new("broken-home", vec![tiny])])
        .fl_config(quick())
        .build()
        .unwrap_err();
    assert!(
        matches!(err, EcoFlError::Plan(_)),
        "expected Plan error, got {err:?}"
    );
    assert!(
        err.to_string().contains("broken-home"),
        "unexpected message: {err}"
    );
}

#[test]
fn dataset_and_partition_options_flow_through() {
    let report = EcoFlSystem::builder()
        .homes(homes())
        .replicate_homes(10)
        .dataset(SyntheticSpec::fashion_like())
        .partition(PartitionScheme::Dirichlet(0.5))
        .samples_per_client(24)
        .fl_config(quick())
        .seed(5)
        .build()
        .expect("builds")
        .run();
    assert_eq!(report.client_delays.len(), 10);
    assert!(report.fl.global_updates > 0);
}

#[test]
fn strategy_option_switches_algorithm() {
    let base = EcoFlSystem::builder()
        .homes(homes())
        .replicate_homes(10)
        .fl_config(quick())
        .seed(6);
    let fedavg = base
        .clone()
        .strategy(Strategy::FedAvg)
        .build()
        .unwrap()
        .run();
    let ecofl = base
        .strategy(Strategy::EcoFl {
            dynamic_grouping: true,
        })
        .build()
        .unwrap()
        .run();
    assert_eq!(fedavg.fl.strategy, "FedAvg");
    assert_eq!(ecofl.fl.strategy, "Eco-FL");
}

#[test]
fn pipeline_model_option_changes_plans() {
    let small = EcoFlSystem::builder()
        .homes(homes())
        .pipeline_model(efficientnet_at(0, 96))
        .fl_config(quick())
        .build()
        .unwrap();
    let big = EcoFlSystem::builder()
        .homes(homes())
        .pipeline_model(efficientnet_at(4, 224))
        .fl_config(quick())
        .build()
        .unwrap();
    // The lighter workload must plan to higher throughput on equal homes.
    assert!(
        small.plans()[0].report.throughput > big.plans()[0].report.throughput,
        "B0@96 should out-run B4@224"
    );
}

#[test]
fn cnn_arch_option_runs() {
    let report = EcoFlSystem::builder()
        .homes(homes())
        .replicate_homes(8)
        .dataset(SyntheticSpec::image_like())
        .arch(ModelArch::Cnn)
        .samples_per_client(20)
        .fl_config(FlConfig {
            num_clients: 8,
            clients_per_round: 4,
            num_groups: 2,
            horizon: 150.0,
            eval_interval: 70.0,
            ..FlConfig::tiny()
        })
        .seed(8)
        .build()
        .expect("builds")
        .run();
    assert!(report.fl.global_updates > 0);
}

#[test]
fn replicate_homes_never_shrinks_below_templates() {
    let system = EcoFlSystem::builder()
        .homes(homes())
        .replicate_homes(1) // fewer than templates: clamped up
        .fl_config(quick())
        .seed(4)
        .build()
        .unwrap();
    let report = system.run();
    assert!(report.client_delays.len() >= 2);
}
