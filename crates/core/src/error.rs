//! Typed errors for the Eco-FL public API.
//!
//! Every fallible entry point of `ecofl-core` and the `ecofl` CLI
//! returns [`EcoFlError`] instead of a bare `String`, so callers can
//! match on failure class (bad configuration vs. infeasible plan vs.
//! runtime OOM) while `Display` still yields the exact human-readable
//! message the CLI prints.

use ecofl_pipeline::executor::ExecError;
use ecofl_pipeline::SpikeError;
use std::fmt;

/// Failure classes of the Eco-FL system and CLI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcoFlError {
    /// Invalid or missing configuration (builder misuse, missing CLI
    /// flag, unknown command/strategy).
    Config(String),
    /// Planning failed: no feasible partition, orchestration, or
    /// residency for the requested model/device combination.
    Plan(String),
    /// Pipeline execution failed at runtime.
    Exec(ExecError),
    /// A filesystem operation failed (message carries the context).
    Io(String),
    /// A user-supplied value could not be parsed.
    Parse(String),
}

impl fmt::Display for EcoFlError {
    /// Prints the inner message verbatim — `Config`/`Plan`/`Io`/`Parse`
    /// carry exactly the text the CLI historically emitted, so wrapping
    /// a message in a typed variant never changes user-visible output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoFlError::Config(msg)
            | EcoFlError::Plan(msg)
            | EcoFlError::Io(msg)
            | EcoFlError::Parse(msg) => f.write_str(msg),
            EcoFlError::Exec(ExecError::Oom { stage, micro }) => {
                write!(f, "schedule OOMs on stage {stage} at micro-batch {micro}")
            }
            // The runtime failure variants (StageDied etc.) already carry
            // the full human-readable message in their own Display.
            EcoFlError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EcoFlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EcoFlError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for EcoFlError {
    fn from(e: ExecError) -> Self {
        EcoFlError::Exec(e)
    }
}

impl From<std::io::Error> for EcoFlError {
    fn from(e: std::io::Error) -> Self {
        EcoFlError::Io(e.to_string())
    }
}

/// A spike scenario that cannot be set up is a planning failure: the
/// partitioner/schedule admitted no configuration for the requested
/// model/device combination.
impl From<SpikeError> for EcoFlError {
    fn from(e: SpikeError) -> Self {
        EcoFlError::Plan(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_the_inner_message() {
        let e = EcoFlError::Config("--model is required".into());
        assert_eq!(e.to_string(), "--model is required");
    }

    #[test]
    fn exec_display_matches_cli_wording() {
        let e = EcoFlError::from(ExecError::Oom { stage: 2, micro: 5 });
        assert_eq!(e.to_string(), "schedule OOMs on stage 2 at micro-batch 5");
    }

    #[test]
    fn stage_died_display_passes_through() {
        let e = EcoFlError::from(ExecError::StageDied {
            stage: 1,
            during: "gradient receive (peer disconnected)".into(),
        });
        assert_eq!(
            e.to_string(),
            "stage 1 died during gradient receive (peer disconnected)"
        );
    }

    #[test]
    fn spike_error_maps_to_plan() {
        let e = EcoFlError::from(SpikeError::InfeasibleInitialPartition);
        assert!(matches!(e, EcoFlError::Plan(_)));
        assert_eq!(
            e.to_string(),
            "no feasible initial partition for the spike scenario"
        );
    }

    #[test]
    fn source_exposes_exec_cause() {
        use std::error::Error;
        let e = EcoFlError::from(ExecError::Oom { stage: 0, micro: 0 });
        assert!(e.source().is_some());
        assert!(EcoFlError::Parse("x".into()).source().is_none());
    }
}
