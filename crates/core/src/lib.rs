//! # ecofl-core
//!
//! The top-level public API of the Eco-FL reproduction: one crate to
//! depend on, one builder to configure, and the whole two-level system —
//! edge collaborative pipeline training per smart home, grouping-based
//! hierarchical aggregation at the server — behind it.
//!
//! ## Quick start
//!
//! ```
//! use ecofl_core::prelude::*;
//!
//! // Three smart homes, each a small heterogeneous device cluster.
//! let homes = vec![
//!     SmartHome::new("home-a", vec![tx2_q(), nano_h()]),
//!     SmartHome::new("home-b", vec![nano_h(), nano_l()]),
//!     SmartHome::new("home-c", vec![nano_h()]),
//! ];
//! let report = EcoFlSystem::builder()
//!     .homes(homes)
//!     .replicate_homes(9)          // 9 clients cycling the 3 templates
//!     .fl_config(FlConfig { horizon: 300.0, clients_per_round: 6,
//!                           num_groups: 3, ..FlConfig::tiny() })
//!     .seed(7)
//!     .build()
//!     .expect("valid system")
//!     .run();
//! assert_eq!(report.pipeline_plans.len(), 3);
//! assert!(report.fl.best_accuracy > 0.0);
//! ```
//!
//! The sub-crates remain available for fine-grained use and are re-exported
//! under [`prelude`].

pub mod error;
pub mod prelude;
pub mod system;

pub use error::EcoFlError;
pub use system::{EcoFlReport, EcoFlSystem, EcoFlSystemBuilder, SmartHome};

// Re-export the component crates wholesale for downstream users.
pub use ecofl_data as data;
pub use ecofl_fl as fl;
pub use ecofl_grouping as grouping;
pub use ecofl_models as models;
pub use ecofl_obs as obs;
pub use ecofl_pipeline as pipeline;
pub use ecofl_simnet as simnet;
pub use ecofl_tensor as tensor;
pub use ecofl_util as util;
