//! The end-to-end Eco-FL system.
//!
//! Ties the two halves of the paper together the way Fig. 2 draws them:
//!
//! 1. **Client side** — every smart home's device cluster is planned into
//!    an edge collaborative pipeline (§4: Eq. 1 partitioning, §4.3
//!    orchestration). The planned pipeline's simulated throughput
//!    determines how fast that home finishes one FL round.
//! 2. **Server side** — those pipeline-derived response latencies feed the
//!    grouping-based hierarchical FL engine (§5), which trains a real
//!    model over synthetic non-IID data with Eco-FL aggregation.

use crate::error::EcoFlError;
use ecofl_data::federated::PartitionScheme;
use ecofl_data::{FederatedDataset, SyntheticSpec};
use ecofl_fl::engine::{run as run_fl, run_traced as run_fl_traced, FlSetup, RunResult, Strategy};
use ecofl_fl::FlConfig;
use ecofl_models::{efficientnet, ModelArch, ModelProfile};
use ecofl_obs::{RunStore, Tracer};
use ecofl_pipeline::orchestrator::{search_configuration, OrchestratorConfig, PipelinePlan};
use ecofl_pipeline::schedule::ScheduleKind;
use ecofl_simnet::{Device, DeviceSpec, Link};
use std::path::PathBuf;

/// A participating client: a named cluster of trusted in-home devices.
#[derive(Debug, Clone)]
pub struct SmartHome {
    /// Display name.
    pub name: String,
    /// The home's trusted devices (portal node first by convention).
    pub devices: Vec<DeviceSpec>,
}

impl SmartHome {
    /// Creates a home from its device list.
    ///
    /// # Panics
    /// Panics if the device list is empty.
    #[must_use]
    pub fn new(name: &str, devices: Vec<DeviceSpec>) -> Self {
        assert!(!devices.is_empty(), "SmartHome: need at least one device");
        Self {
            name: name.to_owned(),
            devices,
        }
    }
}

/// Builder for [`EcoFlSystem`].
#[derive(Debug, Clone)]
pub struct EcoFlSystemBuilder {
    homes: Vec<SmartHome>,
    replicate_to: Option<usize>,
    fl_config: FlConfig,
    dataset: SyntheticSpec,
    scheme: PartitionScheme,
    samples_per_client: usize,
    test_per_class: usize,
    arch: ModelArch,
    pipeline_model: ModelProfile,
    orchestrator: OrchestratorConfig,
    strategy: Strategy,
    seed: u64,
    run_store: Option<PathBuf>,
}

impl Default for EcoFlSystemBuilder {
    fn default() -> Self {
        Self {
            homes: Vec::new(),
            replicate_to: None,
            fl_config: FlConfig::default(),
            dataset: SyntheticSpec::mnist_like(),
            scheme: PartitionScheme::ClassesPerClient(2),
            samples_per_client: 60,
            test_per_class: 50,
            arch: ModelArch::Mlp,
            pipeline_model: efficientnet(0),
            orchestrator: OrchestratorConfig {
                global_batch: 64,
                mbs_candidates: vec![16, 8, 4],
                eval_rounds: 1,
                ..OrchestratorConfig::default()
            },
            strategy: Strategy::EcoFl {
                dynamic_grouping: true,
            },
            seed: 42,
            run_store: None,
        }
    }
}

impl EcoFlSystemBuilder {
    /// Sets the smart-home templates (at least one required).
    #[must_use]
    pub fn homes(mut self, homes: Vec<SmartHome>) -> Self {
        self.homes = homes;
        self
    }

    /// Cycles the home templates to reach `n` FL clients (the paper uses
    /// 300 clients built from a handful of hardware profiles).
    #[must_use]
    pub fn replicate_homes(mut self, n: usize) -> Self {
        self.replicate_to = Some(n);
        self
    }

    /// Overrides the FL configuration.
    #[must_use]
    pub fn fl_config(mut self, cfg: FlConfig) -> Self {
        self.fl_config = cfg;
        self
    }

    /// Sets the client↔server communication latency the FL scheduler
    /// adds to every pipeline-derived response delay, seconds.
    #[must_use]
    pub fn comm_latency(mut self, seconds: f64) -> Self {
        self.fl_config.comm_latency = seconds;
        self
    }

    /// Selects the synthetic dataset family.
    #[must_use]
    pub fn dataset(mut self, spec: SyntheticSpec) -> Self {
        self.dataset = spec;
        self
    }

    /// Selects the non-IID partition scheme.
    #[must_use]
    pub fn partition(mut self, scheme: PartitionScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets training samples per client.
    #[must_use]
    pub fn samples_per_client(mut self, n: usize) -> Self {
        self.samples_per_client = n;
        self
    }

    /// Sets test-set samples per class.
    #[must_use]
    pub fn test_per_class(mut self, n: usize) -> Self {
        self.test_per_class = n;
        self
    }

    /// Overrides the pipeline orchestrator configuration (global batch,
    /// micro-batch candidates, evaluation rounds).
    #[must_use]
    pub fn orchestrator(mut self, cfg: OrchestratorConfig) -> Self {
        self.orchestrator = cfg;
        self
    }

    /// Selects the client model architecture.
    #[must_use]
    pub fn arch(mut self, arch: ModelArch) -> Self {
        self.arch = arch;
        self
    }

    /// Sets the DNN whose pipeline training defines each home's speed.
    #[must_use]
    pub fn pipeline_model(mut self, model: ModelProfile) -> Self {
        self.pipeline_model = model;
        self
    }

    /// Selects the pipeline schedule every home's plan is searched and
    /// evaluated under (default: 1F1B-Sync). The schedule changes each
    /// home's simulated throughput and therefore its FL response delay.
    #[must_use]
    pub fn pipeline_schedule(mut self, schedule: ScheduleKind) -> Self {
        self.orchestrator.schedule = schedule;
        self
    }

    /// Selects the server aggregation strategy (default: Eco-FL with
    /// dynamic grouping).
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the global seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Persists every run of the built system to the segmented run
    /// store at `path`: the full FL trace is appended (and flushed) to
    /// the store's trace segment after each run, so it can be queried
    /// offline with `TraceQuery` without re-running. [`build`] opens
    /// (or creates) the store to fail bad paths early; a write failure
    /// during [`run`] panics, since silently losing the trace a caller
    /// asked to persist would be worse.
    ///
    /// [`build`]: Self::build
    /// [`run`]: EcoFlSystem::run
    #[must_use]
    pub fn run_store(mut self, path: impl Into<PathBuf>) -> Self {
        self.run_store = Some(path.into());
        self
    }

    /// Validates and assembles the system.
    ///
    /// # Errors
    /// [`EcoFlError::Config`] when no homes are configured or the FL
    /// config fails [`FlConfig::validate`] (out-of-range failure
    /// probability, non-positive eval interval, negative communication
    /// latency, …); [`EcoFlError::Plan`] when some home admits no
    /// feasible pipeline plan.
    pub fn build(self) -> Result<EcoFlSystem, EcoFlError> {
        if self.homes.is_empty() {
            return Err(EcoFlError::Config(
                "EcoFlSystem: at least one smart home is required".into(),
            ));
        }
        self.fl_config
            .validate()
            .map_err(|msg| EcoFlError::Config(format!("EcoFlSystem: {msg}")))?;
        let link = Link::mbps_100();
        let mut plans = Vec::with_capacity(self.homes.len());
        for home in &self.homes {
            let devices: Vec<Device> = home
                .devices
                .iter()
                .map(|spec| Device::new(spec.clone()))
                .collect();
            let plan =
                search_configuration(&self.pipeline_model, &devices, &link, &self.orchestrator)
                    .ok_or_else(|| {
                        EcoFlError::Plan(format!(
                            "EcoFlSystem: no feasible pipeline plan for home {}",
                            home.name
                        ))
                    })?;
            plans.push(plan);
        }
        if let Some(dir) = &self.run_store {
            RunStore::open_or_create(dir)
                .map_err(|e| EcoFlError::Config(format!("run store {}: {e}", dir.display())))?;
        }
        Ok(EcoFlSystem {
            builder: self,
            plans,
        })
    }

    /// Shorthand: `EcoFlSystem::builder()`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Report of one full system run.
#[derive(Debug, Clone)]
pub struct EcoFlReport {
    /// One pipeline plan per smart-home template, in input order.
    pub pipeline_plans: Vec<PipelinePlan>,
    /// Pipeline-derived base response delay per FL client, seconds.
    pub client_delays: Vec<f64>,
    /// The FL run result under the configured strategy.
    pub fl: RunResult,
}

/// A validated, ready-to-run Eco-FL system.
#[derive(Debug)]
pub struct EcoFlSystem {
    builder: EcoFlSystemBuilder,
    plans: Vec<PipelinePlan>,
}

impl EcoFlSystem {
    /// Starts building a system.
    #[must_use]
    pub fn builder() -> EcoFlSystemBuilder {
        EcoFlSystemBuilder::default()
    }

    /// Pipeline plans per home template (available before running).
    #[must_use]
    pub fn plans(&self) -> &[PipelinePlan] {
        &self.plans
    }

    /// Runs the full system: pipeline-derived latencies → hierarchical FL.
    #[must_use]
    pub fn run(&self) -> EcoFlReport {
        self.run_inner(None)
    }

    /// [`run`](Self::run) with the whole FL phase recorded on `tracer`
    /// (rounds, local-train windows, aggregations, staleness weights,
    /// re-grouping events — all at virtual timestamps). The report is
    /// identical to an untraced run of the same system.
    #[must_use]
    pub fn run_traced(&self, tracer: &Tracer) -> EcoFlReport {
        self.run_inner(Some(tracer))
    }

    fn run_inner(&self, tracer: Option<&Tracer>) -> EcoFlReport {
        let b = &self.builder;
        // With a run store configured but no caller tracer, record on an
        // internal one so the store still captures the full trace.
        let internal = (tracer.is_none() && b.run_store.is_some()).then(Tracer::new);
        let tracer = tracer.or(internal.as_ref());
        let n_clients = b.replicate_to.unwrap_or(b.homes.len()).max(b.homes.len());

        // One FL round ≈ e local epochs over the client's shard, executed
        // by the home's pipeline at its simulated throughput.
        let samples_per_round = (b.fl_config.local_epochs * b.samples_per_client) as f64;
        let client_delays: Vec<f64> = (0..n_clients)
            .map(|c| {
                let plan = &self.plans[c % self.plans.len()];
                samples_per_round / plan.report.throughput.max(1e-9)
            })
            .collect();

        let rlg: Vec<usize> = (0..n_clients).map(|c| c % b.fl_config.num_groups).collect();
        let needs_rlg = matches!(
            b.scheme,
            PartitionScheme::RlgIid | PartitionScheme::RlgNiid(_)
        );
        let data = FederatedDataset::generate(
            &b.dataset,
            n_clients,
            b.samples_per_client,
            b.test_per_class,
            b.scheme,
            needs_rlg.then_some(rlg.as_slice()),
            b.seed,
        );

        let mut fl_config = b.fl_config.clone();
        fl_config.num_clients = n_clients;
        fl_config.base_delay_override = Some(client_delays.clone());
        fl_config.seed = b.seed;

        let setup = FlSetup {
            data,
            arch: b.arch,
            config: fl_config,
        };
        let fl = match tracer {
            Some(tr) => run_fl_traced(b.strategy, &setup, tr),
            None => run_fl(b.strategy, &setup),
        };
        if let (Some(dir), Some(tr)) = (&b.run_store, tracer) {
            // `build` validated the path; see the `run_store` setter for
            // why a write failure here is fatal rather than silent.
            let mut store = RunStore::open_or_create(dir)
                .unwrap_or_else(|e| panic!("run store {}: {e}", dir.display()));
            tr.persist(&mut store)
                .unwrap_or_else(|e| panic!("run store {}: persist failed: {e}", dir.display()));
        }
        EcoFlReport {
            pipeline_plans: self.plans.clone(),
            client_delays,
            fl,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofl_simnet::{nano_h, nano_l, tx2_q};

    fn homes() -> Vec<SmartHome> {
        vec![
            SmartHome::new("fast", vec![tx2_q(), nano_h()]),
            SmartHome::new("slow", vec![nano_l()]),
        ]
    }

    fn quick_cfg() -> FlConfig {
        FlConfig {
            horizon: 200.0,
            eval_interval: 50.0,
            clients_per_round: 4,
            num_groups: 2,
            ..FlConfig::tiny()
        }
    }

    #[test]
    fn builder_requires_homes() {
        assert!(EcoFlSystem::builder().build().is_err());
    }

    #[test]
    fn system_plans_and_runs() {
        let system = EcoFlSystem::builder()
            .homes(homes())
            .replicate_homes(8)
            .fl_config(quick_cfg())
            .seed(3)
            .build()
            .expect("feasible");
        assert_eq!(system.plans().len(), 2);
        let report = system.run();
        assert_eq!(report.client_delays.len(), 8);
        assert!(report.fl.global_updates > 0);
        // The multi-device fast home must out-pace the lone Nano-L.
        assert!(
            report.client_delays[0] < report.client_delays[1],
            "fast home delay {} vs slow {}",
            report.client_delays[0],
            report.client_delays[1]
        );
    }

    #[test]
    fn every_schedule_kind_plans_end_to_end() {
        for kind in ScheduleKind::all() {
            let system = EcoFlSystem::builder()
                .homes(homes())
                .replicate_homes(4)
                .fl_config(quick_cfg())
                .pipeline_schedule(kind)
                .seed(3)
                .build()
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            for plan in system.plans() {
                assert!(
                    plan.report.throughput > 0.0,
                    "{}: zero throughput",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn builder_errors_are_typed() {
        match EcoFlSystem::builder().build() {
            Err(EcoFlError::Config(msg)) => assert!(msg.contains("at least one smart home")),
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn builder_rejects_invalid_fl_config() {
        // Each broken field surfaces as a typed Config error at build
        // time, before any pipeline planning runs.
        type BreakField = fn(&mut FlConfig);
        let cases: &[(BreakField, &str)] = &[
            (|c| c.failure_prob = 1.5, "failure_prob"),
            (|c| c.failure_prob = f64::NAN, "failure_prob"),
            (|c| c.eval_interval = 0.0, "eval_interval"),
            (|c| c.comm_latency = -1.0, "comm_latency"),
            (|c| c.probe_backoff = 0.0, "probe_backoff"),
        ];
        for (break_field, field) in cases {
            let mut cfg = quick_cfg();
            break_field(&mut cfg);
            match EcoFlSystem::builder().homes(homes()).fl_config(cfg).build() {
                Err(EcoFlError::Config(msg)) => {
                    assert!(msg.contains(field), "{field}: message was {msg:?}");
                }
                other => panic!("{field}: expected Config error, got {other:?}"),
            }
        }
    }

    #[test]
    fn traced_system_run_matches_untraced() {
        let system = EcoFlSystem::builder()
            .homes(homes())
            .replicate_homes(6)
            .fl_config(quick_cfg())
            .test_per_class(40)
            .orchestrator(OrchestratorConfig {
                global_batch: 64,
                mbs_candidates: vec![16, 8],
                eval_rounds: 1,
                ..OrchestratorConfig::default()
            })
            .seed(11)
            .build()
            .expect("feasible");
        let plain = system.run();
        let tracer = ecofl_obs::Tracer::new();
        let traced = system.run_traced(&tracer);
        assert_eq!(plain.fl.accuracy, traced.fl.accuracy);
        assert_eq!(plain.client_delays, traced.client_delays);
        let view = tracer.view();
        assert!(view.counter_total("global_updates") > 0.0);
        assert!(!view.gauge_series("accuracy").is_empty());
    }

    #[test]
    fn comm_latency_plumbs_through_to_the_fl_scheduler() {
        let make = |comm: f64| {
            EcoFlSystem::builder()
                .homes(homes())
                .replicate_homes(6)
                .fl_config(quick_cfg())
                .comm_latency(comm)
                .seed(5)
                .build()
                .unwrap()
                .run()
        };
        let cheap = make(0.0);
        let costly = make(60.0);
        // A 60 s uplink tax on every round must slow the update rate at
        // an equal horizon; the pipeline half is untouched by it.
        assert!(
            costly.fl.global_updates < cheap.fl.global_updates,
            "comm latency {} updates vs {}",
            costly.fl.global_updates,
            cheap.fl.global_updates
        );
        assert_eq!(cheap.client_delays, costly.client_delays);
    }

    #[test]
    fn run_store_persists_the_fl_trace() {
        let dir = std::env::temp_dir().join(format!("ecofl-system-store-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let system = EcoFlSystem::builder()
            .homes(homes())
            .replicate_homes(6)
            .fl_config(quick_cfg())
            .run_store(&dir)
            .seed(13)
            .build()
            .expect("feasible");
        let report = system.run();
        assert!(report.fl.global_updates > 0);
        let store = RunStore::open(&dir).expect("store was written");
        assert!(store.record_count() > 0, "FL trace must be in the store");
        let summary = ecofl_fl::summarize_store(&store, "eco-fl", &[0.3])
            .expect("summary straight off the store");
        assert!(summary.best_accuracy > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deterministic_system_runs() {
        let make = || {
            EcoFlSystem::builder()
                .homes(homes())
                .replicate_homes(6)
                .fl_config(quick_cfg())
                .seed(9)
                .build()
                .unwrap()
                .run()
        };
        let a = make();
        let b = make();
        assert_eq!(a.fl.accuracy, b.fl.accuracy);
        assert_eq!(a.client_delays, b.client_delays);
    }
}
