//! One-stop imports for Eco-FL users.
//!
//! ```
//! use ecofl_core::prelude::*;
//! let spec = SyntheticSpec::mnist_like();
//! let devices = vec![tx2_q(), nano_h()];
//! assert_eq!(devices.len(), 2);
//! assert_eq!(spec.num_classes, 10);
//! ```

pub use crate::error::EcoFlError;
pub use crate::system::{EcoFlReport, EcoFlSystem, EcoFlSystemBuilder, SmartHome};

pub use ecofl_data::federated::PartitionScheme;
pub use ecofl_data::{Dataset, FederatedDataset, SyntheticSpec};
pub use ecofl_fl::engine::{
    run as run_strategy, run_metered as run_strategy_metered, run_traced as run_strategy_traced,
    FlSetup, RunResult, Strategy,
};
pub use ecofl_fl::{
    strategy_object, summarize_store, summarize_view, AggregationStrategy, ConvergenceSummary,
    DynamicsConfig, FlConfig, LatencyModel, Scheduler,
};
pub use ecofl_grouping::{Grouper, GroupingConfig, GroupingStrategy};
pub use ecofl_models::{
    efficientnet, efficientnet_at, mobilenet_v2, mobilenet_v2_at, ModelArch, ModelProfile,
};
pub use ecofl_obs::{
    MetricsHub, MetricsSnapshot, RecordKind, RunStore, TraceQuery, TraceRecord, TraceView, Tracer,
};
pub use ecofl_pipeline::adaptive::{simulate_load_spike, LoadSpike, SpikeError};
pub use ecofl_pipeline::orchestrator::{search_configuration, OrchestratorConfig, PipelinePlan};
pub use ecofl_pipeline::partition::{partition_dp, partition_even, Partition};
pub use ecofl_pipeline::profiler::PipelineProfile;
pub use ecofl_pipeline::runtime::{
    load_checkpoint_at_or_before, load_latest_checkpoint, stored_checkpoints, CheckpointRecord,
    FaultPlan, KillPoint, PipelineTrainer, RuntimeOptions,
};
pub use ecofl_pipeline::{
    data_parallel_epoch, single_device_epoch, ExecutionReport, PipelineExecutor, PipelineSchedule,
    ScheduleKind, SchedulePolicy,
};
pub use ecofl_simnet::{nano_h, nano_l, tx2_n, tx2_q, Device, DeviceSpec, Link};
pub use ecofl_tensor::{Network, Sgd, Tensor};
pub use ecofl_util::{Rng, TimeSeries};
