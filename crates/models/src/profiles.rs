//! Analytic layer profiles of the pipeline workloads.
//!
//! The paper's pipeline profiler (§4.2) records, per layer `l`:
//! computation time `T_l^d` (derived here from FLOPs and the device's
//! compute rate), output activation bytes `a_l`, input-gradient bytes
//! `g_l`, and parameter bytes `w_l`. This module computes those from the
//! published EfficientNet and MobileNetV2 architectures, treating each
//! MBConv / inverted-residual block as one partitionable "layer" (matching
//! the paper's suggestion to schedule at residual-block granularity).
//!
//! Conventions (per sample):
//! - conv FLOPs = `2 · K² · C_in · C_out · H_out · W_out`,
//! - backward FLOPs ≈ 2× forward (grad-input + grad-weight passes),
//! - activations/gradients are f32 (4 bytes per element),
//! - the gradient flowing backward across a stage boundary has the shape
//!   of that boundary's activation, so `g_l = a_l`.

use ecofl_compat::serde::{Deserialize, Serialize};

/// Per-layer profile (per-sample quantities).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Human-readable layer name.
    pub name: String,
    /// Forward-pass FLOPs per sample.
    pub flops_fwd: f64,
    /// Backward-pass FLOPs per sample.
    pub flops_bwd: f64,
    /// Output activation bytes per sample (`a_l`; also `g_l`) — what
    /// crosses a pipeline cut placed after this layer.
    pub activation_bytes: u64,
    /// Activation bytes *stashed for backward* per sample: the inputs of
    /// every convolution inside the block (needed for weight gradients),
    /// including the 6×-expanded intermediate tensors of inverted
    /// residuals. This is what occupies device memory per in-flight
    /// micro-batch; it is several times larger than the boundary
    /// activation.
    pub train_activation_bytes: u64,
    /// Parameter bytes (`w_l`).
    pub param_bytes: u64,
}

impl LayerProfile {
    /// Combined forward+backward FLOPs per sample.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.flops_fwd + self.flops_bwd
    }
}

/// A whole model as an ordered list of partitionable layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model name, e.g. `"EfficientNet-B4"`.
    pub name: String,
    /// Ordered per-layer profiles.
    pub layers: Vec<LayerProfile>,
    /// Input bytes per sample (the stage-0 ingress).
    pub input_bytes: u64,
}

impl ModelProfile {
    /// Number of partitionable layers.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total forward+backward FLOPs per sample.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.layers.iter().map(LayerProfile::total_flops).sum()
    }

    /// Total forward FLOPs per sample.
    #[must_use]
    pub fn total_flops_fwd(&self) -> f64 {
        self.layers.iter().map(|l| l.flops_fwd).sum()
    }

    /// Total parameter bytes.
    #[must_use]
    pub fn total_param_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.param_bytes).sum()
    }

    /// Combined FLOPs of layers `range` (for `T(i→j, n)` in Eq. 1).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn range_flops(&self, range: std::ops::Range<usize>) -> f64 {
        self.layers[range]
            .iter()
            .map(LayerProfile::total_flops)
            .sum()
    }

    /// Activation bytes leaving layer `l` (`a_l`), i.e. crossing a cut
    /// placed after `l`.
    #[must_use]
    pub fn activation_bytes_after(&self, l: usize) -> u64 {
        self.layers[l].activation_bytes
    }

    /// Largest per-sample activation across all layers — a quick gauge of
    /// how communication-heavy the model is.
    #[must_use]
    pub fn peak_activation_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.activation_bytes)
            .max()
            .unwrap_or(0)
    }
}

const F32: u64 = 4;

/// Rounds channels to the nearest multiple of 8, never dropping below
/// 90% of the requested width (the EfficientNet/MobileNet convention).
fn round_channels(c: f64) -> usize {
    let rounded = ((c + 4.0) / 8.0).floor() * 8.0;
    let rounded = rounded.max(8.0);
    if rounded < 0.9 * c {
        rounded as usize + 8
    } else {
        rounded as usize
    }
}

fn conv_flops(k: usize, c_in: usize, c_out: usize, h_out: usize, w_out: usize) -> f64 {
    2.0 * (k * k * c_in * c_out * h_out * w_out) as f64
}

fn depthwise_flops(k: usize, c: usize, h_out: usize, w_out: usize) -> f64 {
    2.0 * (k * k * c * h_out * w_out) as f64
}

/// One inverted-residual (MBConv) block profile.
#[allow(clippy::too_many_arguments)]
fn mbconv(
    name: String,
    c_in: usize,
    c_out: usize,
    expand: usize,
    kernel: usize,
    stride: usize,
    h_in: usize,
    w_in: usize,
) -> (LayerProfile, usize, usize) {
    let c_mid = c_in * expand;
    let (h_out, w_out) = (h_in.div_ceil(stride), w_in.div_ceil(stride));
    let mut fwd = 0.0;
    let mut params = 0usize;
    if expand != 1 {
        fwd += conv_flops(1, c_in, c_mid, h_in, w_in);
        params += c_in * c_mid;
    }
    fwd += depthwise_flops(kernel, c_mid, h_out, w_out);
    params += kernel * kernel * c_mid;
    fwd += conv_flops(1, c_mid, c_out, h_out, w_out);
    params += c_mid * c_out;
    // Stashed-for-backward tensors: each conv's input. The depthwise and
    // projection convs see the t×-expanded tensor, which dominates.
    let mut stash = c_mid * h_in * w_in // depthwise input (expanded)
        + c_mid * h_out * w_out; // projection input
    if expand != 1 {
        stash += c_in * h_in * w_in; // expansion input (block input)
    }
    let profile = LayerProfile {
        name,
        flops_fwd: fwd,
        flops_bwd: 2.0 * fwd,
        activation_bytes: (c_out * h_out * w_out) as u64 * F32,
        train_activation_bytes: stash as u64 * F32,
        param_bytes: params as u64 * F32,
    };
    (profile, h_out, w_out)
}

/// EfficientNet-B0 baseline stage table: `(expand, channels, repeats,
/// stride, kernel)`.
const EFFNET_STAGES: [(usize, usize, usize, usize, usize); 7] = [
    (1, 16, 1, 1, 3),
    (6, 24, 2, 2, 3),
    (6, 40, 2, 2, 5),
    (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5),
    (6, 192, 4, 2, 5),
    (6, 320, 1, 1, 3),
];

/// Compound-scaling coefficients `(width, depth, resolution)` for B0–B6.
const EFFNET_SCALE: [(f64, f64, usize); 7] = [
    (1.0, 1.0, 224),
    (1.0, 1.1, 240),
    (1.1, 1.2, 260),
    (1.2, 1.4, 300),
    (1.4, 1.8, 380),
    (1.6, 2.2, 456),
    (1.8, 2.6, 528),
];

/// Builds the analytic profile of EfficientNet-B`b` at its native
/// compound-scaled input resolution.
///
/// # Panics
/// Panics if `b > 6`.
#[must_use]
pub fn efficientnet(b: usize) -> ModelProfile {
    let (_, _, resolution) = EFFNET_SCALE[usize::min(b, 6)];
    efficientnet_at(b, resolution)
}

/// Builds EfficientNet-B`b` for a custom input resolution (e.g. 32 for
/// CIFAR-10, the dataset the paper's pipeline experiments train on).
///
/// # Panics
/// Panics if `b > 6` or the resolution is below 32.
#[must_use]
pub fn efficientnet_at(b: usize, resolution: usize) -> ModelProfile {
    assert!(b <= 6, "efficientnet: only B0..B6 are defined, got B{b}");
    assert!(resolution >= 32, "efficientnet: resolution must be ≥ 32");
    let (width, depth, _) = EFFNET_SCALE[b];
    let mut layers = Vec::new();

    // Stem: 3×3 stride-2 conv to round(32·w) channels.
    let c_stem = round_channels(32.0 * width);
    let (mut h, mut w) = (resolution.div_ceil(2), resolution.div_ceil(2));
    let stem_fwd = conv_flops(3, 3, c_stem, h, w);
    layers.push(LayerProfile {
        name: "stem".into(),
        flops_fwd: stem_fwd,
        flops_bwd: 2.0 * stem_fwd,
        activation_bytes: (c_stem * h * w) as u64 * F32,
        train_activation_bytes: (3 * resolution * resolution) as u64 * F32,
        param_bytes: (3 * 3 * 3 * c_stem) as u64 * F32,
    });

    let mut c_in = c_stem;
    for (si, &(expand, c, repeats, stride, kernel)) in EFFNET_STAGES.iter().enumerate() {
        let c_out = round_channels(c as f64 * width);
        let reps = (repeats as f64 * depth).ceil() as usize;
        for r in 0..reps {
            let s = if r == 0 { stride } else { 1 };
            let (profile, nh, nw) = mbconv(
                format!("mbconv{}_{}", si + 1, r),
                c_in,
                c_out,
                expand,
                kernel,
                s,
                h,
                w,
            );
            layers.push(profile);
            h = nh;
            w = nw;
            c_in = c_out;
        }
    }

    // Head: 1×1 conv to round(1280·w), global pool, FC to 1000.
    let c_head = round_channels(1280.0 * width);
    let head_fwd = conv_flops(1, c_in, c_head, h, w) + 2.0 * (c_head * 1000) as f64;
    layers.push(LayerProfile {
        name: "head".into(),
        flops_fwd: head_fwd,
        flops_bwd: 2.0 * head_fwd,
        activation_bytes: 1000 * F32,
        train_activation_bytes: (c_in * h * w + c_head) as u64 * F32,
        param_bytes: (c_in * c_head + c_head * 1000) as u64 * F32,
    });

    ModelProfile {
        name: format!("EfficientNet-B{b}@{resolution}"),
        layers,
        input_bytes: (3 * resolution * resolution) as u64 * F32,
    }
}

/// MobileNetV2 stage table: `(expand, channels, repeats, stride)` with
/// 3×3 depthwise kernels throughout.
const MBV2_STAGES: [(usize, usize, usize, usize); 7] = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
];

/// Builds the analytic profile of MobileNetV2 with the given width
/// multiplier (the paper's `W2`/`W3` are `width_mult = 2.0`/`3.0`) at the
/// native 224×224 resolution.
///
/// # Panics
/// Panics on a non-positive multiplier.
#[must_use]
pub fn mobilenet_v2(width_mult: f64) -> ModelProfile {
    mobilenet_v2_at(width_mult, 224)
}

/// Builds MobileNetV2 for a custom input resolution.
///
/// # Panics
/// Panics on a non-positive multiplier or a resolution below 32.
#[must_use]
pub fn mobilenet_v2_at(width_mult: f64, resolution: usize) -> ModelProfile {
    assert!(
        width_mult > 0.0,
        "mobilenet_v2: width multiplier must be positive"
    );
    assert!(resolution >= 32, "mobilenet_v2: resolution must be ≥ 32");
    let mut layers = Vec::new();

    let c_stem = round_channels(32.0 * width_mult);
    let (mut h, mut w) = (resolution / 2, resolution / 2);
    let stem_fwd = conv_flops(3, 3, c_stem, h, w);
    layers.push(LayerProfile {
        name: "stem".into(),
        flops_fwd: stem_fwd,
        flops_bwd: 2.0 * stem_fwd,
        activation_bytes: (c_stem * h * w) as u64 * F32,
        train_activation_bytes: (3 * resolution * resolution) as u64 * F32,
        param_bytes: (3 * 3 * 3 * c_stem) as u64 * F32,
    });

    let mut c_in = c_stem;
    for (si, &(expand, c, repeats, stride)) in MBV2_STAGES.iter().enumerate() {
        let c_out = round_channels(c as f64 * width_mult);
        for r in 0..repeats {
            let s = if r == 0 { stride } else { 1 };
            let (profile, nh, nw) = mbconv(
                format!("bottleneck{}_{}", si + 1, r),
                c_in,
                c_out,
                expand,
                3,
                s,
                h,
                w,
            );
            layers.push(profile);
            h = nh;
            w = nw;
            c_in = c_out;
        }
    }

    // Head keeps the 1280-channel top regardless of multiplier < 1; for
    // multiplier ≥ 1 it scales, matching the reference implementation.
    let c_head = round_channels((1280.0 * width_mult.max(1.0)).max(1280.0));
    let head_fwd = conv_flops(1, c_in, c_head, h, w) + 2.0 * (c_head * 1000) as f64;
    layers.push(LayerProfile {
        name: "head".into(),
        flops_fwd: head_fwd,
        flops_bwd: 2.0 * head_fwd,
        activation_bytes: 1000 * F32,
        train_activation_bytes: (c_in * h * w + c_head) as u64 * F32,
        param_bytes: (c_in * c_head + c_head * 1000) as u64 * F32,
    });

    let suffix = if (width_mult - 1.0).abs() < 1e-9 {
        String::new()
    } else {
        format!("-W{width_mult:.0}")
    };
    ModelProfile {
        name: format!("MobileNetV2{suffix}@{resolution}"),
        layers,
        input_bytes: (3 * resolution * resolution) as u64 * F32,
    }
}

/// Analytic profile of a fully connected network with the given layer
/// widths (`dims[0]` inputs through `dims.last()` outputs). Each linear
/// layer (plus its activation) is one partitionable unit, so the pipeline
/// planner can split the *actual FL client models* across home devices,
/// closing the loop between the §4 pipeline and the §5 FL system.
///
/// # Panics
/// Panics with fewer than two dims.
#[must_use]
pub fn mlp_profile(dims: &[usize]) -> ModelProfile {
    assert!(
        dims.len() >= 2,
        "mlp_profile: need at least input and output dims"
    );
    let layers = dims
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            let (fan_in, fan_out) = (w[0], w[1]);
            let fwd = 2.0 * (fan_in * fan_out) as f64;
            LayerProfile {
                name: format!("linear{i}_{fan_in}x{fan_out}"),
                flops_fwd: fwd,
                flops_bwd: 2.0 * fwd,
                activation_bytes: fan_out as u64 * F32,
                train_activation_bytes: (fan_in + fan_out) as u64 * F32,
                param_bytes: (fan_in * fan_out + fan_out) as u64 * F32,
            }
        })
        .collect();
    ModelProfile {
        name: format!("MLP-{dims:?}"),
        layers,
        input_bytes: dims[0] as u64 * F32,
    }
}

/// Profile of the FL client architectures in `fl_models` (the MLP used by
/// the FL simulations, layer-for-layer).
#[must_use]
pub fn fl_mlp_profile(feature_dim: usize, num_classes: usize) -> ModelProfile {
    mlp_profile(&[feature_dim, 64, 32, num_classes])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b0_flops_in_published_ballpark() {
        // EfficientNet-B0 inference is ~0.39 GFLOPs (0.78 GFLOPs with the
        // multiply+add convention used here); our block-level model omits
        // SE blocks so accept a generous band.
        let p = efficientnet(0);
        let gflops = p.total_flops_fwd() / 1e9;
        assert!(
            (0.4..1.2).contains(&gflops),
            "B0 forward {gflops} GFLOPs out of expected band"
        );
    }

    #[test]
    fn scaling_is_monotone() {
        let mut prev = 0.0;
        for b in 0..=6 {
            let total = efficientnet(b).total_flops();
            assert!(
                total > prev,
                "B{b} total {total} not greater than previous {prev}"
            );
            prev = total;
        }
    }

    #[test]
    fn b6_depth_exceeds_b0() {
        assert!(efficientnet(6).num_layers() > efficientnet(0).num_layers());
    }

    #[test]
    fn mobilenet_width_scaling() {
        let w1 = mobilenet_v2(1.0).total_flops();
        let w2 = mobilenet_v2(2.0).total_flops();
        let w3 = mobilenet_v2(3.0).total_flops();
        assert!(
            w2 > 2.0 * w1,
            "width 2 should be ≳4× flops of width 1 in conv terms"
        );
        assert!(w3 > w2);
    }

    #[test]
    fn mobilenet_layer_count_fixed() {
        // 1 stem + 17 bottlenecks + 1 head regardless of width.
        assert_eq!(mobilenet_v2(1.0).num_layers(), 19);
        assert_eq!(mobilenet_v2(3.0).num_layers(), 19);
    }

    #[test]
    fn activations_concentrate_in_front() {
        // The Fig. 5 premise: early layers carry the biggest activations.
        let p = efficientnet(1);
        let n = p.num_layers();
        let front_max = p.layers[..n / 3]
            .iter()
            .map(|l| l.activation_bytes)
            .max()
            .unwrap();
        let back_max = p.layers[2 * n / 3..]
            .iter()
            .map(|l| l.activation_bytes)
            .max()
            .unwrap();
        assert!(
            front_max > 4 * back_max,
            "front activations ({front_max}) should dominate back ({back_max})"
        );
    }

    #[test]
    fn range_flops_sums() {
        let p = efficientnet(0);
        let total: f64 = p.range_flops(0..p.num_layers());
        assert!((total - p.total_flops()).abs() < 1e-3);
        let split = p.range_flops(0..5) + p.range_flops(5..p.num_layers());
        assert!((split - total).abs() < 1e-3);
    }

    #[test]
    fn param_bytes_positive_everywhere() {
        for b in [0, 4, 6] {
            for l in &efficientnet(b).layers {
                assert!(l.param_bytes > 0, "layer {} has no params", l.name);
                assert!(l.activation_bytes > 0);
                // The stem stashes only its (small) input; every MBConv
                // stashes the expanded intermediates, dwarfing its output.
                let floor = if l.name == "stem" {
                    l.activation_bytes / 8
                } else {
                    l.activation_bytes / 4
                };
                assert!(
                    l.train_activation_bytes >= floor,
                    "stashed activations should be substantial for {}",
                    l.name
                );
                assert!(l.flops_bwd > l.flops_fwd);
            }
        }
    }

    #[test]
    fn round_channels_conventions() {
        assert_eq!(round_channels(32.0), 32);
        assert_eq!(round_channels(35.0), 32);
        assert_eq!(round_channels(36.0), 40);
        assert_eq!(round_channels(4.0), 8);
        // Never drop below 90%.
        assert!(round_channels(100.0) as f64 >= 90.0);
    }

    #[test]
    fn mlp_profile_matches_fl_model_params() {
        // The analytic param bytes must equal the trainable model's actual
        // parameter count × 4 bytes.
        let profile = fl_mlp_profile(32, 10);
        let mut rng = ecofl_util::Rng::new(1);
        let net = crate::fl_models::mlp_for(32, 10, &mut rng);
        assert_eq!(
            profile.total_param_bytes(),
            net.param_len() as u64 * 4,
            "analytic profile disagrees with the real model"
        );
        assert_eq!(profile.num_layers(), 3);
        assert!(profile.total_flops() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least input")]
    fn mlp_profile_rejects_single_dim() {
        let _ = mlp_profile(&[10]);
    }

    #[test]
    #[should_panic(expected = "B0..B6")]
    fn rejects_unknown_variant() {
        let _ = efficientnet(7);
    }
}
