//! # ecofl-models
//!
//! Model definitions for both halves of the Eco-FL reproduction:
//!
//! - [`fl_models`] — small *trainable* networks (MLP, CNN) built on
//!   `ecofl-tensor`, used for genuine local training in the FL simulations
//!   (the paper trains "the same DNN models as in FedAVG" on each client);
//! - [`profiles`] — *analytic* per-layer profiles of the pipeline
//!   workloads: EfficientNet-B0…B6 and MobileNetV2 at arbitrary width
//!   multipliers, with per-layer forward/backward FLOPs, activation,
//!   gradient and parameter byte counts computed from the published
//!   architectures. These are exactly the quantities the paper's profiler
//!   records (`T_l^d`, `a_l`, `g_l`, `w_l` in §4.2) and the partitioning /
//!   orchestration algorithms consume.

pub mod fl_models;
pub mod profiles;

pub use fl_models::{cnn_for, mlp_for, ModelArch};
pub use profiles::{
    efficientnet, efficientnet_at, fl_mlp_profile, mlp_profile, mobilenet_v2, mobilenet_v2_at,
    LayerProfile, ModelProfile,
};
