//! Trainable client models for the FL simulations.
//!
//! The FL-scale experiments need models that are cheap enough to train for
//! hundreds of clients over hundreds of virtual rounds, yet expressive
//! enough that non-IID label skew genuinely hurts convergence. A two-hidden-
//! layer MLP on the 32-dimensional synthetic features fills that role (it
//! is the synthetic-data analogue of the FedAVG "2NN"); a small CNN over
//! 8×8 single-channel layouts exercises the convolution path.

use ecofl_compat::serde::{Deserialize, Serialize};
use ecofl_tensor::{AvgPool2d, Conv2d, Flatten, Layer, Linear, Network, ReLU};
use ecofl_util::Rng;

/// Which client architecture to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelArch {
    /// Two-hidden-layer MLP (FedAVG's "2NN" analogue).
    Mlp,
    /// Small convolutional network over an 8×8 single-channel layout;
    /// requires `feature_dim == 64`.
    Cnn,
}

impl ModelArch {
    /// Builds a fresh, randomly initialized network for this architecture.
    #[must_use]
    pub fn build(self, feature_dim: usize, num_classes: usize, rng: &mut Rng) -> Network {
        match self {
            ModelArch::Mlp => mlp_for(feature_dim, num_classes, rng),
            ModelArch::Cnn => cnn_for(feature_dim, num_classes, rng),
        }
    }

    /// Builds the network skeleton with **zeroed** parameters, for callers
    /// that immediately overwrite them with `set_params` (every FL client
    /// synchronizing a group/global model). Skips the ~`param_len()`
    /// Gaussian draws [`ModelArch::build`] spends on weights that are
    /// discarded one call later.
    #[must_use]
    pub fn build_uninit(self, feature_dim: usize, num_classes: usize) -> Network {
        match self {
            ModelArch::Mlp => mlp_uninit(feature_dim, num_classes),
            ModelArch::Cnn => cnn_uninit(feature_dim, num_classes),
        }
    }
}

/// Two-hidden-layer MLP: `in → 64 → 32 → classes` with ReLU.
#[must_use]
pub fn mlp_for(feature_dim: usize, num_classes: usize, rng: &mut Rng) -> Network {
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Linear::new(feature_dim, 64, rng)),
        Box::new(ReLU::new()),
        Box::new(Linear::new(64, 32, rng)),
        Box::new(ReLU::new()),
        Box::new(Linear::new(32, num_classes, rng)),
    ];
    Network::new(layers)
}

/// Small CNN: two conv+pool stages then a linear head. Input features are
/// interpreted as a `[B, 1, 8, 8]` image.
///
/// # Panics
/// Panics unless `feature_dim == 64`.
#[must_use]
pub fn cnn_for(feature_dim: usize, num_classes: usize, rng: &mut Rng) -> Network {
    assert_eq!(
        feature_dim, 64,
        "cnn_for: CNN expects 64 features (8×8 layout), got {feature_dim}"
    );
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Reshape8x8),
        Box::new(Conv2d::new(1, 8, 3, 1, rng)),
        Box::new(ReLU::new()),
        Box::new(AvgPool2d::new(2)),
        Box::new(Conv2d::new(8, 16, 3, 1, rng)),
        Box::new(ReLU::new()),
        Box::new(AvgPool2d::new(2)),
        Box::new(Flatten::new()),
        Box::new(Linear::new(16 * 2 * 2, num_classes, rng)),
    ];
    Network::new(layers)
}

/// Parameter-free skeleton of [`mlp_for`] (zeroed weights).
#[must_use]
pub fn mlp_uninit(feature_dim: usize, num_classes: usize) -> Network {
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Linear::zeroed(feature_dim, 64)),
        Box::new(ReLU::new()),
        Box::new(Linear::zeroed(64, 32)),
        Box::new(ReLU::new()),
        Box::new(Linear::zeroed(32, num_classes)),
    ];
    Network::new(layers)
}

/// Parameter-free skeleton of [`cnn_for`] (zeroed weights).
///
/// # Panics
/// Panics unless `feature_dim == 64`.
#[must_use]
pub fn cnn_uninit(feature_dim: usize, num_classes: usize) -> Network {
    assert_eq!(
        feature_dim, 64,
        "cnn_uninit: CNN expects 64 features (8×8 layout), got {feature_dim}"
    );
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Reshape8x8),
        Box::new(Conv2d::zeroed(1, 8, 3, 1)),
        Box::new(ReLU::new()),
        Box::new(AvgPool2d::new(2)),
        Box::new(Conv2d::zeroed(8, 16, 3, 1)),
        Box::new(ReLU::new()),
        Box::new(AvgPool2d::new(2)),
        Box::new(Flatten::new()),
        Box::new(Linear::zeroed(16 * 2 * 2, num_classes)),
    ];
    Network::new(layers)
}

/// Adapter layer: `[B, 64] → [B, 1, 8, 8]` and back for gradients.
struct Reshape8x8;

impl Layer for Reshape8x8 {
    fn forward(&mut self, input: &ecofl_tensor::Tensor) -> ecofl_tensor::Tensor {
        let b = input.shape()[0];
        input.clone().reshape(&[b, 1, 8, 8])
    }

    fn backward(&mut self, grad_out: &ecofl_tensor::Tensor) -> ecofl_tensor::Tensor {
        let b = grad_out.shape()[0];
        grad_out.clone().reshape(&[b, 64])
    }

    fn name(&self) -> &'static str {
        "reshape8x8"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecofl_data::SyntheticSpec;
    use ecofl_tensor::{Sgd, Tensor};

    #[test]
    fn mlp_shapes() {
        let mut rng = Rng::new(1);
        let mut net = mlp_for(32, 10, &mut rng);
        assert_eq!(net.param_len(), 32 * 64 + 64 + 64 * 32 + 32 + 32 * 10 + 10);
        let x = Tensor::zeros(&[4, 32]);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[4, 10]);
    }

    #[test]
    fn cnn_shapes() {
        let mut rng = Rng::new(2);
        let mut net = cnn_for(64, 10, &mut rng);
        let x = Tensor::zeros(&[2, 64]);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    #[should_panic(expected = "64 features")]
    fn cnn_requires_matching_dim() {
        let mut rng = Rng::new(3);
        let _ = cnn_for(32, 10, &mut rng);
    }

    #[test]
    fn mlp_learns_synthetic_task() {
        let spec = SyntheticSpec::mnist_like();
        let protos = spec.prototypes(10);
        let mut rng = Rng::new(11);
        let train = protos.sample_balanced(20, &mut rng);
        let test = protos.sample_balanced(10, &mut rng);
        let mut net = mlp_for(spec.feature_dim, spec.num_classes, &mut rng);
        let mut opt = Sgd::new(0.05);
        for _epoch in 0..30 {
            for batch in train.batches(20, &mut rng) {
                let (feats, labels) = train.gather(&batch);
                let x = Tensor::from_vec(feats, &[labels.len(), spec.feature_dim]);
                net.zero_grads();
                let _ = net.train_step(&x, &labels);
                let mut p = net.params();
                opt.step(&mut p, &net.grads(), None);
                net.set_params(&p);
            }
        }
        let (feats, labels) = test.gather(&(0..test.len()).collect::<Vec<_>>());
        let x = Tensor::from_vec(feats, &[labels.len(), spec.feature_dim]);
        let (_, acc) = net.evaluate(&x, &labels);
        assert!(acc > 0.8, "MLP should learn the easy task, got {acc}");
    }

    #[test]
    fn deterministic_initialization() {
        let a = mlp_for(32, 10, &mut Rng::new(5)).params();
        let b = mlp_for(32, 10, &mut Rng::new(5)).params();
        assert_eq!(a, b);
    }

    #[test]
    fn uninit_skeletons_match_layout_with_zeroed_params() {
        for arch in [ModelArch::Mlp, ModelArch::Cnn] {
            let built = arch.build(64, 10, &mut Rng::new(6));
            let mut skeleton = arch.build_uninit(64, 10);
            assert_eq!(skeleton.param_len(), built.param_len());
            assert!(skeleton.params().iter().all(|&p| p == 0.0));
            // The layouts must agree: round-tripping the real params
            // through the skeleton is the identity.
            skeleton.set_params(&built.params());
            assert_eq!(skeleton.params(), built.params());
        }
    }
}
