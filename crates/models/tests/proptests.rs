//! Property-based tests for the analytic profile zoo.

use ecofl_compat::check::{f64_in, forall, pair, triple, u32_in, usize_in, vec_in};
use ecofl_models::profiles::{efficientnet_at, fl_mlp_profile, mlp_profile, mobilenet_v2_at};

const CASES: usize = 32;

#[test]
fn effnet_flops_monotone_in_resolution() {
    let input = triple(usize_in(0, 7), usize_in(32, 128), usize_in(16, 128));
    forall(
        "effnet_flops_monotone_in_resolution",
        CASES,
        &input,
        |&(b, lo, delta)| {
            let small = efficientnet_at(b, lo);
            let large = efficientnet_at(b, lo + delta);
            assert!(large.total_flops() > small.total_flops());
            assert!(large.peak_activation_bytes() >= small.peak_activation_bytes());
            // Parameters are resolution-independent for conv nets.
            assert_eq!(large.total_param_bytes(), small.total_param_bytes());
        },
    );
}

#[test]
fn effnet_layer_count_independent_of_resolution() {
    let input = pair(usize_in(0, 7), usize_in(32, 256));
    forall(
        "effnet_layer_count_independent_of_resolution",
        CASES,
        &input,
        |&(b, res)| {
            let native = efficientnet_at(b, 224);
            let custom = efficientnet_at(b, res);
            assert_eq!(native.num_layers(), custom.num_layers());
        },
    );
}

#[test]
fn mobilenet_flops_grow_with_width() {
    let input = pair(usize_in(32, 160), u32_in(1, 4));
    forall(
        "mobilenet_flops_grow_with_width",
        CASES,
        &input,
        |&(res, w)| {
            let narrow = mobilenet_v2_at(f64::from(w), res);
            let wide = mobilenet_v2_at(f64::from(w) + 0.5, res);
            assert!(wide.total_flops() > narrow.total_flops());
            assert!(wide.total_param_bytes() > narrow.total_param_bytes());
        },
    );
}

#[test]
fn range_flops_partitions_total() {
    let input = pair(usize_in(0, 5), f64_in(0.01, 0.99));
    forall(
        "range_flops_partitions_total",
        CASES,
        &input,
        |&(b, cut_frac)| {
            let p = efficientnet_at(b, 96);
            let l = p.num_layers();
            let cut = ((l as f64 * cut_frac) as usize).clamp(1, l - 1);
            let split = p.range_flops(0..cut) + p.range_flops(cut..l);
            assert!((split - p.total_flops()).abs() < 1e-6 * p.total_flops());
        },
    );
}

#[test]
fn every_layer_physically_sane() {
    forall(
        "every_layer_physically_sane",
        CASES,
        &usize_in(0, 7),
        |&b| {
            let p = efficientnet_at(b, 128);
            for layer in &p.layers {
                assert!(layer.flops_fwd > 0.0);
                assert!(layer.flops_bwd >= layer.flops_fwd);
                assert!(layer.activation_bytes > 0);
                assert!(layer.train_activation_bytes > 0);
                assert!(layer.param_bytes > 0);
            }
        },
    );
}

#[test]
fn mlp_profile_dimensions() {
    let dims = vec_in(usize_in(1, 128), 2, 6);
    forall("mlp_profile_dimensions", CASES, &dims, |dims| {
        let p = mlp_profile(dims);
        assert_eq!(p.num_layers(), dims.len() - 1);
        // Last layer's activation is the output width.
        assert_eq!(
            p.layers.last().unwrap().activation_bytes,
            *dims.last().unwrap() as u64 * 4
        );
        // Param bytes: sum of (in*out + out) * 4.
        let expected: u64 = dims
            .windows(2)
            .map(|w| (w[0] * w[1] + w[1]) as u64 * 4)
            .sum();
        assert_eq!(p.total_param_bytes(), expected);
    });
}

#[test]
fn fl_mlp_profile_tracks_real_model() {
    let input = pair(usize_in(2, 64), usize_in(2, 12));
    forall(
        "fl_mlp_profile_tracks_real_model",
        CASES,
        &input,
        |&(dim, classes)| {
            let p = fl_mlp_profile(dim, classes);
            let mut rng = ecofl_util::Rng::new(1);
            let net = ecofl_models::mlp_for(dim, classes, &mut rng);
            assert_eq!(p.total_param_bytes(), net.param_len() as u64 * 4);
        },
    );
}
