//! Property-based tests for the analytic profile zoo.

use ecofl_models::profiles::{efficientnet_at, fl_mlp_profile, mlp_profile, mobilenet_v2_at};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn effnet_flops_monotone_in_resolution(b in 0usize..7, lo in 32usize..128, delta in 16usize..128) {
        let small = efficientnet_at(b, lo);
        let large = efficientnet_at(b, lo + delta);
        prop_assert!(large.total_flops() > small.total_flops());
        prop_assert!(large.peak_activation_bytes() >= small.peak_activation_bytes());
        // Parameters are resolution-independent for conv nets.
        prop_assert_eq!(large.total_param_bytes(), small.total_param_bytes());
    }

    #[test]
    fn effnet_layer_count_independent_of_resolution(b in 0usize..7, res in 32usize..256) {
        let native = efficientnet_at(b, 224);
        let custom = efficientnet_at(b, res);
        prop_assert_eq!(native.num_layers(), custom.num_layers());
    }

    #[test]
    fn mobilenet_flops_grow_with_width(res in 32usize..160, w in 1u32..4) {
        let narrow = mobilenet_v2_at(f64::from(w), res);
        let wide = mobilenet_v2_at(f64::from(w) + 0.5, res);
        prop_assert!(wide.total_flops() > narrow.total_flops());
        prop_assert!(wide.total_param_bytes() > narrow.total_param_bytes());
    }

    #[test]
    fn range_flops_partitions_total(b in 0usize..5, cut_frac in 0.01f64..0.99) {
        let p = efficientnet_at(b, 96);
        let l = p.num_layers();
        let cut = ((l as f64 * cut_frac) as usize).clamp(1, l - 1);
        let split = p.range_flops(0..cut) + p.range_flops(cut..l);
        prop_assert!((split - p.total_flops()).abs() < 1e-6 * p.total_flops());
    }

    #[test]
    fn every_layer_physically_sane(b in 0usize..7) {
        let p = efficientnet_at(b, 128);
        for layer in &p.layers {
            prop_assert!(layer.flops_fwd > 0.0);
            prop_assert!(layer.flops_bwd >= layer.flops_fwd);
            prop_assert!(layer.activation_bytes > 0);
            prop_assert!(layer.train_activation_bytes > 0);
            prop_assert!(layer.param_bytes > 0);
        }
    }

    #[test]
    fn mlp_profile_dimensions(dims in proptest::collection::vec(1usize..128, 2..6)) {
        let p = mlp_profile(&dims);
        prop_assert_eq!(p.num_layers(), dims.len() - 1);
        // Last layer's activation is the output width.
        prop_assert_eq!(
            p.layers.last().unwrap().activation_bytes,
            *dims.last().unwrap() as u64 * 4
        );
        // Param bytes: sum of (in*out + out) * 4.
        let expected: u64 = dims
            .windows(2)
            .map(|w| (w[0] * w[1] + w[1]) as u64 * 4)
            .sum();
        prop_assert_eq!(p.total_param_bytes(), expected);
    }

    #[test]
    fn fl_mlp_profile_tracks_real_model(dim in 2usize..64, classes in 2usize..12) {
        let p = fl_mlp_profile(dim, classes);
        let mut rng = ecofl_util::Rng::new(1);
        let net = ecofl_models::mlp_for(dim, classes, &mut rng);
        prop_assert_eq!(p.total_param_bytes(), net.param_len() as u64 * 4);
    }
}
