//! Property tests proving the blocked kernels in `ecofl_tensor::kernel`
//! against the retained naive references in `ecofl_tensor::reference`.
//!
//! The equivalence contract (DESIGN.md, "Kernel tiling and the tolerance
//! policy"):
//!
//! | kernel                  | portable path  | FMA / AVX-512 path |
//! |-------------------------|----------------|--------------------|
//! | `matmul`, `matmul_tn`   | bit-identical  | FMA tolerance      |
//! | `matmul_nt`             | lane tolerance | lane tolerance     |
//! | `Conv2d` forward, `gb`  | bit-identical  | bit-identical      |
//! | `Conv2d` `gw`, `gx`     | lane tolerance | lane tolerance     |
//! | `Sgd::step`             | bit-identical  | bit-identical      |
//!
//! "FMA tolerance" bounds the `mul_add` rounding difference: per output
//! element both sides accumulate in the same ascending-`p` order, each of
//! the `k` fused steps skips at most one intermediate rounding, so the
//! divergence is at most `2·k·ε` relative to the inner product of
//! absolute values. "Lane tolerance" covers kernels that also reassociate
//! the sum (8-lane partial accumulators, or a different tap order for
//! conv `gx`) — same bound, it just applies on the portable path too.
//!
//! Shapes cover the `ROWS_PER_CHUNK = 24` tile edges `{1, 7, 23, 24, 25}`
//! exhaustively plus random rectangles, and `CI` runs this suite at
//! `ECOFL_THREADS=1/2/8` and under `ECOFL_PORTABLE_KERNELS=1`.

use ecofl_compat::check::{any_u64, forall, pair, quad, triple, usize_in};
use ecofl_tensor::kernel::fma_kernels_active;
use ecofl_tensor::{reference, Conv2d, Layer, Sgd, Tensor};
use ecofl_util::Rng;

const CASES: usize = 48;

/// `ROWS_PER_CHUNK` is 24; probe both sides of every tile boundary.
const EDGES: [usize; 5] = [1, 7, 23, 24, 25];

fn randv(n: usize, rng: &mut Rng) -> Vec<f32> {
    (0..n).map(|_| rng.next_f32() * 2.0 - 1.0).collect()
}

/// Asserts exact bitwise equality (the "bit-identical" contract).
fn assert_bits(actual: &[f32], expect: &[f32], what: &str) {
    assert_eq!(actual.len(), expect.len(), "{what}: length");
    for (i, (a, e)) in actual.iter().zip(expect).enumerate() {
        assert_eq!(a.to_bits(), e.to_bits(), "{what}[{i}]: {a} != {e} bitwise");
    }
}

/// Asserts the documented rounding tolerance: `|a − e| ≤ 2·k·ε·(1+absref)`
/// where `absref` is the same reduction over absolute values — the
/// rigorous bound for `k` fused/reassociated accumulation steps.
fn assert_tol(actual: &[f32], expect: &[f32], absref: &[f32], k: usize, what: &str) {
    assert_eq!(actual.len(), expect.len(), "{what}: length");
    for (i, ((a, e), ar)) in actual.iter().zip(expect).zip(absref).enumerate() {
        let tol = 2.0 * k as f32 * f32::EPSILON * (1.0 + ar);
        assert!(
            (a - e).abs() <= tol,
            "{what}[{i}]: {a} vs {e} exceeds tol {tol}"
        );
    }
}

fn check_matmul(seed: u64, m: usize, k: usize, n: usize) {
    let mut rng = Rng::new(seed);
    let a = Tensor::from_vec(randv(m * k, &mut rng), &[m, k]);
    let b = Tensor::from_vec(randv(k * n, &mut rng), &[k, n]);
    let blocked = a.matmul(&b);
    let naive = reference::naive_matmul(a.data(), b.data(), m, k, n);
    if fma_kernels_active() {
        let aabs: Vec<f32> = a.data().iter().map(|v| v.abs()).collect();
        let babs: Vec<f32> = b.data().iter().map(|v| v.abs()).collect();
        let absref = reference::naive_matmul(&aabs, &babs, m, k, n);
        assert_tol(blocked.data(), &naive, &absref, k, "matmul");
    } else {
        assert_bits(blocked.data(), &naive, "matmul");
    }
}

fn check_matmul_tn(seed: u64, k: usize, m: usize, n: usize) {
    let mut rng = Rng::new(seed);
    let a = Tensor::from_vec(randv(k * m, &mut rng), &[k, m]);
    let b = Tensor::from_vec(randv(k * n, &mut rng), &[k, n]);
    let blocked = a.matmul_tn(&b);
    let naive = reference::naive_matmul_tn(a.data(), b.data(), k, m, n);
    if fma_kernels_active() {
        let aabs: Vec<f32> = a.data().iter().map(|v| v.abs()).collect();
        let babs: Vec<f32> = b.data().iter().map(|v| v.abs()).collect();
        let absref = reference::naive_matmul_tn(&aabs, &babs, k, m, n);
        assert_tol(blocked.data(), &naive, &absref, k, "matmul_tn");
    } else {
        assert_bits(blocked.data(), &naive, "matmul_tn");
    }
}

fn check_matmul_nt(seed: u64, m: usize, k: usize, n: usize) {
    let mut rng = Rng::new(seed);
    let a = Tensor::from_vec(randv(m * k, &mut rng), &[m, k]);
    let b = Tensor::from_vec(randv(n * k, &mut rng), &[n, k]);
    let blocked = a.matmul_nt(&b);
    let naive = reference::naive_matmul_nt(a.data(), b.data(), m, k, n);
    // NT uses 8-lane partial sums on every path: always tolerance.
    let aabs: Vec<f32> = a.data().iter().map(|v| v.abs()).collect();
    let babs: Vec<f32> = b.data().iter().map(|v| v.abs()).collect();
    let absref = reference::naive_matmul_nt(&aabs, &babs, m, k, n);
    assert_tol(blocked.data(), &naive, &absref, k, "matmul_nt");
}

#[test]
fn matmul_matches_naive_on_tile_edges() {
    for m in EDGES {
        for k in EDGES {
            for n in EDGES {
                let seed = (m * 10_000 + k * 100 + n) as u64;
                check_matmul(seed, m, k, n);
                check_matmul_tn(seed ^ 0xA5A5, k, m, n);
                check_matmul_nt(seed ^ 0x5A5A, m, k, n);
            }
        }
    }
}

#[test]
fn matmul_matches_naive_on_random_shapes() {
    let input = quad(any_u64(), usize_in(1, 40), usize_in(1, 40), usize_in(1, 40));
    forall(
        "matmul_matches_naive_on_random_shapes",
        CASES,
        &input,
        |&(seed, m, k, n)| {
            check_matmul(seed, m, k, n);
            check_matmul_tn(seed, k, m, n);
            check_matmul_nt(seed, m, k, n);
        },
    );
}

#[test]
fn matmul_tn_acc_accumulates_exactly() {
    let input = quad(any_u64(), usize_in(1, 25), usize_in(1, 25), usize_in(1, 25));
    forall(
        "matmul_tn_acc_accumulates_exactly",
        CASES,
        &input,
        |&(seed, k, m, n)| {
            let mut rng = Rng::new(seed);
            let a = Tensor::from_vec(randv(k * m, &mut rng), &[k, m]);
            let b = Tensor::from_vec(randv(k * n, &mut rng), &[k, n]);
            let init = randv(m * n, &mut rng);
            let mut acc = Tensor::from_vec(init.clone(), &[m, n]);
            a.matmul_tn_acc(&b, &mut acc);
            // `accumulate` adds the finished tile onto the prior value, so
            // `init + (fresh product)` is exact on every path.
            let fresh = a.matmul_tn(&b);
            let expect: Vec<f32> = init.iter().zip(fresh.data()).map(|(i, p)| i + p).collect();
            assert_bits(acc.data(), &expect, "matmul_tn_acc");
        },
    );
}

/// The chunk grid is a pure function of the output shape, so a matmul
/// large enough to take the parallel path must produce, row range by row
/// range, exactly the bits of the small sequential matmuls over the same
/// 24-row slices — at any `ECOFL_THREADS`.
#[test]
fn parallel_chunks_match_sequential_slices_bitwise() {
    const CHUNK: usize = 24; // ROWS_PER_CHUNK
    let (m, k, n) = (48, 512, 256); // m·k·n exceeds the parallel threshold
    let mut rng = Rng::new(99);
    let a = Tensor::from_vec(randv(m * k, &mut rng), &[m, k]);
    let b = Tensor::from_vec(randv(k * n, &mut rng), &[k, n]);
    let whole = a.matmul(&b);
    for (ci, arows) in a.data().chunks(CHUNK * k).enumerate() {
        let rows = arows.len() / k;
        let part = Tensor::from_vec(arows.to_vec(), &[rows, k]).matmul(&b);
        let wrows = &whole.data()[ci * CHUNK * n..ci * CHUNK * n + rows * n];
        assert_bits(part.data(), wrows, "parallel chunk");
    }
}

#[test]
fn conv2d_forward_is_bit_identical_to_naive() {
    let gen = quad(
        any_u64(),
        pair(usize_in(1, 3), usize_in(1, 4)),   // batch, in_c
        pair(usize_in(1, 4), usize_in(0, 2)),   // out_c, kernel selector
        pair(usize_in(1, 12), usize_in(1, 12)), // h, w
    );
    forall(
        "conv2d_forward_is_bit_identical_to_naive",
        CASES,
        &gen,
        |&(seed, (batch, in_c), (out_c, ksel), (h0, w0))| {
            let k = [1, 3, 5][ksel];
            let pad = k / 2;
            let (h, w) = (h0.max(k), w0.max(k));
            let mut rng = Rng::new(seed);
            let x = Tensor::from_vec(randv(batch * in_c * h * w, &mut rng), &[batch, in_c, h, w]);
            let wgt = randv(out_c * in_c * k * k, &mut rng);
            let bias = randv(out_c, &mut rng);
            let mut conv = Conv2d::zeroed(in_c, out_c, k, pad);
            let params: Vec<f32> = wgt.iter().chain(&bias).copied().collect();
            conv.read_params(&params);
            let out = conv.forward(&x);
            let naive = reference::naive_conv2d_forward(
                x.data(),
                &wgt,
                &bias,
                batch,
                in_c,
                h,
                w,
                out_c,
                k,
                pad,
            );
            assert_bits(out.data(), &naive, "conv2d forward");
        },
    );
}

#[test]
fn conv2d_backward_matches_naive_per_contract() {
    let gen = quad(
        any_u64(),
        pair(usize_in(1, 3), usize_in(1, 4)),   // batch, in_c
        pair(usize_in(1, 4), usize_in(0, 2)),   // out_c, kernel selector
        pair(usize_in(1, 10), usize_in(1, 10)), // h, w
    );
    forall(
        "conv2d_backward_matches_naive_per_contract",
        CASES,
        &gen,
        |&(seed, (batch, in_c), (out_c, ksel), (h0, w0))| {
            let k = [1, 3, 5][ksel];
            let pad = k / 2;
            let (h, w) = (h0.max(k), w0.max(k));
            let (oh, ow) = (h + 2 * pad + 1 - k, w + 2 * pad + 1 - k);
            let mut rng = Rng::new(seed);
            let x = Tensor::from_vec(randv(batch * in_c * h * w, &mut rng), &[batch, in_c, h, w]);
            let wgt = randv(out_c * in_c * k * k, &mut rng);
            let bias = randv(out_c, &mut rng);
            let g = Tensor::from_vec(
                randv(batch * out_c * oh * ow, &mut rng),
                &[batch, out_c, oh, ow],
            );
            let mut conv = Conv2d::zeroed(in_c, out_c, k, pad);
            let params: Vec<f32> = wgt.iter().chain(&bias).copied().collect();
            conv.read_params(&params);
            conv.forward(&x);
            let gx = conv.backward(&g);
            let mut grads = Vec::new();
            conv.write_grads(&mut grads);
            let (gw, gb) = grads.split_at(out_c * in_c * k * k);

            let (ngx, ngw, ngb) = reference::naive_conv2d_backward(
                x.data(),
                &wgt,
                g.data(),
                batch,
                in_c,
                h,
                w,
                out_c,
                k,
                pad,
            );
            // gb accumulates in the naive order on every path.
            assert_bits(gb, &ngb, "conv2d gb");

            // gw (8-lane sums) and gx (reordered taps): tolerance, bounded
            // by the same reduction over absolute values.
            let xabs: Vec<f32> = x.data().iter().map(|v| v.abs()).collect();
            let wabs: Vec<f32> = wgt.iter().map(|v| v.abs()).collect();
            let gabs: Vec<f32> = g.data().iter().map(|v| v.abs()).collect();
            let (agx, agw, _) = reference::naive_conv2d_backward(
                &xabs, &wabs, &gabs, batch, in_c, h, w, out_c, k, pad,
            );
            assert_tol(gw, &ngw, &agw, batch * oh * ow, "conv2d gw");
            assert_tol(gx.data(), &ngx, &agx, out_c * k * k, "conv2d gx");
        },
    );
}

#[test]
fn sgd_step_is_bit_identical_to_naive() {
    let gen = quad(
        any_u64(),
        usize_in(1, 80),
        usize_in(0, 1), // momentum on/off
        usize_in(0, 1), // proximal on/off
    );
    forall(
        "sgd_step_is_bit_identical_to_naive",
        CASES,
        &gen,
        |&(seed, len, with_mom, with_mu)| {
            let (momentum, mu) = (0.9 * with_mom as f32, 0.05 * with_mu as f32);
            let mut rng = Rng::new(seed);
            let init = randv(len, &mut rng);
            let anchor = randv(len, &mut rng);
            let anchor_opt = (mu > 0.0).then_some(anchor.as_slice());

            let mut opt = Sgd::new(0.05);
            if momentum > 0.0 {
                opt = opt.with_momentum(momentum);
            }
            if mu > 0.0 {
                opt = opt.with_proximal(mu);
            }
            let mut fast = init.clone();
            let mut naive = init;
            let mut velocity = vec![0.0f32; len];
            for step in 0..4 {
                let grads = randv(len, &mut rng);
                opt.step(&mut fast, &grads, anchor_opt);
                reference::naive_sgd_step(
                    &mut naive,
                    &grads,
                    anchor_opt,
                    (momentum > 0.0).then_some(velocity.as_mut_slice()),
                    0.05,
                    momentum,
                    mu,
                );
                assert_bits(&fast, &naive, &format!("sgd step {step}"));
            }
        },
    );
}

#[test]
fn local_train_shapes_exercise_every_kernel() {
    // The exact MLP shapes the FL clients train (64→32→10): one smoke
    // round asserting the composed forward/backward stays within the
    // per-kernel bounds proven above. Catches wiring regressions in
    // `layers.rs` (e.g. a gradient product mapped to the wrong kernel).
    let input = triple(any_u64(), usize_in(1, 16), usize_in(1, 48));
    forall(
        "local_train_shapes_exercise_every_kernel",
        24,
        &input,
        |&(seed, batch, hidden)| {
            let mut rng = Rng::new(seed);
            let x = Tensor::from_vec(randv(batch * 64, &mut rng), &[batch, 64]);
            let g = Tensor::from_vec(randv(batch * hidden, &mut rng), &[batch, hidden]);
            // grad_weight = xᵀ·g via the packed-transpose path vs the
            // materialized transpose through the plain blocked kernel.
            let packed = x.matmul_tn(&g);
            let materialized = x.transpose().matmul(&g);
            let xabs = Tensor::from_vec(x.data().iter().map(|v| v.abs()).collect(), &[batch, 64]);
            let gabs =
                Tensor::from_vec(g.data().iter().map(|v| v.abs()).collect(), &[batch, hidden]);
            let absref = xabs.transpose().matmul(&gabs);
            assert_tol(
                packed.data(),
                materialized.data(),
                absref.data(),
                batch,
                "packed transpose vs materialized",
            );
        },
    );
}
