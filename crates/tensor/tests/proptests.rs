//! Property-based tests for tensor algebra and gradient plumbing.

use ecofl_compat::check::{any_u64, f32_in, forall, pair, quad, triple, usize_in};
use ecofl_tensor::{Layer, Linear, Network, ReLU, Sgd, Tensor};
use ecofl_util::Rng;

const CASES: usize = 64;

#[test]
fn matmul_identity_is_noop() {
    let input = triple(any_u64(), usize_in(1, 12), usize_in(1, 12));
    forall("matmul_identity_is_noop", CASES, &input, |&(seed, n, m)| {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[n, m], 1.0, &mut rng);
        let out = a.matmul(&Tensor::eye(m));
        for (x, y) in a.data().iter().zip(out.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    });
}

#[test]
fn transpose_is_involution() {
    let input = triple(any_u64(), usize_in(1, 10), usize_in(1, 10));
    forall("transpose_is_involution", CASES, &input, |&(seed, n, m)| {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[n, m], 1.0, &mut rng);
        assert_eq!(a.clone(), a.transpose().transpose());
    });
}

#[test]
fn matmul_distributes_over_addition() {
    let input = quad(any_u64(), usize_in(1, 8), usize_in(1, 8), usize_in(1, 8));
    forall(
        "matmul_distributes_over_addition",
        CASES,
        &input,
        |&(seed, n, k, m)| {
            let mut rng = Rng::new(seed);
            let a = Tensor::randn(&[n, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, m], 1.0, &mut rng);
            let c = Tensor::randn(&[k, m], 1.0, &mut rng);
            let lhs = a.matmul(&b.add(&c));
            let rhs = a.matmul(&b).add(&a.matmul(&c));
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        },
    );
}

#[test]
fn scale_then_norm() {
    let input = triple(any_u64(), usize_in(1, 32), f32_in(-4.0, 4.0));
    forall("scale_then_norm", CASES, &input, |&(seed, n, s)| {
        let mut rng = Rng::new(seed);
        let a = Tensor::randn(&[n], 1.0, &mut rng);
        let scaled = a.scale(s);
        assert!((scaled.norm_sq() - s * s * a.norm_sq()).abs() < 1e-2 * (1.0 + a.norm_sq()));
    });
}

#[test]
fn network_param_round_trip() {
    let input = pair(any_u64(), usize_in(1, 32));
    forall(
        "network_param_round_trip",
        CASES,
        &input,
        |&(seed, hidden)| {
            let mut rng = Rng::new(seed);
            let mut net = Network::new(vec![
                Box::new(Linear::new(6, hidden, &mut rng)) as Box<dyn Layer>,
                Box::new(ReLU::new()),
                Box::new(Linear::new(hidden, 3, &mut rng)),
            ]);
            let params = net.params();
            assert_eq!(params.len(), net.param_len());
            net.set_params(&params);
            assert_eq!(net.params(), params);
        },
    );
}

#[test]
fn sgd_zero_gradient_is_fixed_point_without_prox() {
    let input = triple(any_u64(), usize_in(1, 64), f32_in(0.001, 1.0));
    forall(
        "sgd_zero_gradient_is_fixed_point_without_prox",
        CASES,
        &input,
        |&(seed, n, lr)| {
            let mut rng = Rng::new(seed);
            let mut w: Vec<f32> = (0..n).map(|_| rng.next_f32()).collect();
            let before = w.clone();
            Sgd::new(lr).step(&mut w, &vec![0.0; n], None);
            assert_eq!(w, before);
        },
    );
}

#[test]
fn sgd_proximal_never_overshoots_anchor() {
    let input = triple(any_u64(), usize_in(1, 32), f32_in(0.01, 1.0));
    forall(
        "sgd_proximal_never_overshoots_anchor",
        CASES,
        &input,
        |&(seed, n, mu)| {
            // With zero data gradient and lr·mu < 1, each step moves toward
            // the anchor without crossing it.
            let mut rng = Rng::new(seed);
            let anchor: Vec<f32> = (0..n).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
            let mut w: Vec<f32> = (0..n).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
            let mut opt = Sgd::new(0.5).with_proximal(mu);
            for _ in 0..5 {
                let before: Vec<f32> = w.clone();
                opt.step(&mut w, &vec![0.0; n], Some(&anchor));
                for i in 0..n {
                    let d_before = (before[i] - anchor[i]).abs();
                    let d_after = (w[i] - anchor[i]).abs();
                    assert!(d_after <= d_before + 1e-6);
                }
            }
        },
    );
}

#[test]
fn relu_output_nonnegative_and_sparse_grad() {
    let input = pair(any_u64(), usize_in(1, 64));
    forall(
        "relu_output_nonnegative_and_sparse_grad",
        CASES,
        &input,
        |&(seed, n)| {
            let mut rng = Rng::new(seed);
            let x = Tensor::randn(&[1, n], 1.0, &mut rng);
            let mut relu = ReLU::new();
            let y = relu.forward(&x);
            assert!(y.data().iter().all(|&v| v >= 0.0));
            let g = Tensor::full(&[1, n], 1.0);
            let gx = relu.backward(&g);
            for (i, &v) in gx.data().iter().enumerate() {
                if x.data()[i] > 0.0 {
                    assert_eq!(v, 1.0);
                } else {
                    assert_eq!(v, 0.0);
                }
            }
        },
    );
}

#[test]
fn train_step_gradient_descends_loss_locally() {
    forall(
        "train_step_gradient_descends_loss_locally",
        CASES,
        &any_u64(),
        |&seed| {
            // A single small SGD step on the computed gradient must not
            // increase the loss on the same batch (first-order descent).
            let mut rng = Rng::new(seed);
            let mut net = Network::new(vec![
                Box::new(Linear::new(4, 8, &mut rng)) as Box<dyn Layer>,
                Box::new(ReLU::new()),
                Box::new(Linear::new(8, 3, &mut rng)),
            ]);
            let x = Tensor::randn(&[6, 4], 1.0, &mut rng);
            let y: Vec<usize> = (0..6).map(|i| i % 3).collect();
            net.zero_grads();
            let loss_before = net.train_step(&x, &y);
            let mut params = net.params();
            let grads = net.grads();
            for (p, g) in params.iter_mut().zip(&grads) {
                *p -= 1e-3 * g;
            }
            net.set_params(&params);
            let (loss_after, _) = net.evaluate(&x, &y);
            assert!(
                loss_after <= loss_before + 1e-4,
                "{loss_before} -> {loss_after}"
            );
        },
    );
}
