//! Softmax cross-entropy loss and classification accuracy.

use crate::tensor::Tensor;

/// Numerically stable row-wise softmax of a `[B, K]` logit matrix.
#[must_use]
pub fn softmax(logits: &Tensor) -> Tensor {
    let (b, k) = (logits.rows(), logits.cols());
    let mut out = vec![0.0f32; b * k];
    for (row_in, row_out) in logits.data().chunks(k).zip(out.chunks_mut(k)) {
        let max = row_in.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (o, &x) in row_out.iter_mut().zip(row_in) {
            let e = (x - max).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for o in row_out.iter_mut() {
            *o *= inv;
        }
    }
    Tensor::from_vec(out, &[b, k])
}

/// Mean softmax cross-entropy head.
///
/// `loss_and_grad` returns the scalar mean loss over the batch and the
/// gradient with respect to the logits — `(softmax(x) − one_hot(y)) / B`.
#[derive(Debug, Default, Clone)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Creates the loss head.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Computes `(mean loss, d loss / d logits)` for `[B, K]` logits and a
    /// batch of class indices.
    ///
    /// # Panics
    /// Panics if `targets.len()` differs from the batch size or a target is
    /// out of range.
    pub fn loss_and_grad(&mut self, logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
        let (b, k) = (logits.rows(), logits.cols());
        assert_eq!(targets.len(), b, "loss: batch size mismatch");
        let probs = softmax(logits);
        let mut loss = 0.0f32;
        let mut grad = probs.data().to_vec();
        let inv_b = 1.0 / b as f32;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < k, "loss: target {t} out of range for {k} classes");
            let p = probs.data()[i * k + t].max(1e-12);
            loss -= p.ln();
            grad[i * k + t] -= 1.0;
        }
        for g in &mut grad {
            *g *= inv_b;
        }
        (loss * inv_b, Tensor::from_vec(grad, &[b, k]))
    }
}

/// Fraction of rows whose argmax matches the target class.
///
/// # Panics
/// Panics if `targets.len()` differs from the number of logit rows.
#[must_use]
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f64 {
    let (b, k) = (logits.rows(), logits.cols());
    assert_eq!(targets.len(), b, "accuracy: batch size mismatch");
    if b == 0 {
        return 0.0;
    }
    let mut correct = 0usize;
    for (row, &t) in logits.data().chunks(k).zip(targets) {
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("accuracy: NaN logit"))
            .map(|(i, _)| i)
            .expect("accuracy: empty row");
        if argmax == t {
            correct += 1;
        }
    }
    correct as f64 / b as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = softmax(&logits);
        for row in p.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let logits = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]);
        let p = softmax(&logits);
        assert!(p.data().iter().all(|x| x.is_finite()));
        assert!(p.data()[1] > p.data()[0]);
    }

    #[test]
    fn loss_decreases_with_correct_confidence() {
        let mut head = SoftmaxCrossEntropy::new();
        let confident = Tensor::from_vec(vec![5.0, 0.0], &[1, 2]);
        let unsure = Tensor::from_vec(vec![0.1, 0.0], &[1, 2]);
        let (l1, _) = head.loss_and_grad(&confident, &[0]);
        let (l2, _) = head.loss_and_grad(&unsure, &[0]);
        assert!(l1 < l2);
    }

    #[test]
    fn grad_is_probs_minus_onehot_over_batch() {
        let mut head = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
        let (loss, grad) = head.loss_and_grad(&logits, &[1]);
        assert!((loss - (2.0f32).ln()).abs() < 1e-6);
        assert!((grad.data()[0] - 0.5).abs() < 1e-6);
        assert!((grad.data()[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let mut head = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.0, 0.5, -0.5], &[2, 3]);
        let targets = [2usize, 0];
        let (_, grad) = head.loss_and_grad(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let (lp, _) = head.loss_and_grad(&plus, &targets);
            let (lm, _) = head.loss_and_grad(&minus, &targets);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "logit {i}: {numeric} vs {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]);
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn loss_rejects_bad_target() {
        let mut head = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[1, 2]);
        let _ = head.loss_and_grad(&logits, &[2]);
    }
}
