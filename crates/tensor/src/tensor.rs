//! Row-major dense `f32` tensors with shape checking.
//!
//! The hot path of the whole FL simulation is `matmul` inside client local
//! training; it and the transpose-composed products [`Tensor::matmul_tn`] /
//! [`Tensor::matmul_nt`] delegate to the cache-blocked, register-tiled
//! kernels in [`crate::kernel`] (SIMD-dispatched at runtime, parallelized
//! across fixed row chunks once the work is large enough to amortize the
//! fork-join cost — see that module for the determinism and tolerance
//! contract against [`crate::reference`]).

use crate::kernel;
use ecofl_compat::serde::{Deserialize, Serialize};
use ecofl_util::Rng;

/// A dense, row-major `f32` tensor.
///
/// # Examples
///
/// ```
/// use ecofl_tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.data(), a.data());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    #[must_use]
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Self {
            data: vec![0.0; n],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor filled with `value`.
    #[must_use]
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        Self {
            data: vec![value; n],
            shape: shape.to_vec(),
        }
    }

    /// Identity matrix of size `n × n`.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the product of `shape`.
    #[must_use]
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "from_vec: buffer length {} != shape volume {n}",
            data.len()
        );
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Gaussian-initialized tensor (mean 0, the given std), deterministic
    /// under the provided RNG. Used for weight init.
    #[must_use]
    pub fn randn(shape: &[usize], std: f32, rng: &mut Rng) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.next_gaussian() as f32 * std).collect();
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the buffer under a new shape of equal volume.
    ///
    /// # Panics
    /// Panics if the volumes differ.
    #[must_use]
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(self.data.len(), n, "reshape: volume mismatch");
        self.shape = shape.to_vec();
        self
    }

    /// Number of rows of a 2-D tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not 2-D.
    #[must_use]
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows: tensor is not 2-D");
        self.shape[0]
    }

    /// Number of columns of a 2-D tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not 2-D.
    #[must_use]
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols: tensor is not 2-D");
        self.shape[1]
    }

    /// Matrix product of two 2-D tensors (`[m,k] × [k,n] → [m,n]`).
    ///
    /// Runs the register-tiled kernel in [`crate::kernel`]; results are
    /// bit-identical across thread counts (the chunk grid is fixed) and
    /// match [`crate::reference::naive_matmul`] exactly on the portable
    /// path, within the documented tolerance on the FMA path.
    ///
    /// # Panics
    /// Panics on non-2-D inputs or mismatched inner dimensions.
    #[must_use]
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul: inner dimensions {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        kernel::gemm(&self.data, &other.data, &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// `selfᵀ · other` without materializing the transpose
    /// (`[k,m]ᵀ × [k,n] → [m,n]`).
    ///
    /// This is the gradient product `xᵀ·g` in `Linear::backward`; the
    /// kernel packs column panels of `self` into a small reused buffer
    /// instead of building the full `[m,k]` transpose.
    ///
    /// # Panics
    /// Panics on non-2-D inputs or mismatched leading dimensions.
    #[must_use]
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(&[self.cols(), other.cols()]);
        self.matmul_tn_acc(other, &mut out);
        out
    }

    /// `acc += selfᵀ · other`, the accumulating form of
    /// [`Tensor::matmul_tn`] used for gradient accumulation.
    ///
    /// # Panics
    /// Panics on non-2-D inputs or shape mismatches (including `acc`).
    pub fn matmul_tn_acc(&self, other: &Tensor, acc: &mut Tensor) {
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul_tn: leading dimensions {k} vs {k2}");
        assert_eq!(
            acc.shape(),
            &[m, n],
            "matmul_tn_acc: accumulator shape mismatch"
        );
        kernel::gemm_tn(&self.data, &other.data, &mut acc.data, k, m, n, true);
    }

    /// `self · otherᵀ` without materializing the transpose
    /// (`[m,k] × [n,k]ᵀ → [m,n]`).
    ///
    /// This is the gradient product `g·Wᵀ` in `Linear::backward`. Both
    /// operands are walked row-contiguously; the per-element dot product
    /// uses fixed-order lane accumulators, so outputs are deterministic but
    /// compared against [`crate::reference::naive_matmul_nt`] under the
    /// documented tolerance on every path.
    ///
    /// # Panics
    /// Panics on non-2-D inputs or mismatched trailing dimensions.
    #[must_use]
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul_nt: trailing dimensions {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        kernel::gemm_nt(&self.data, &other.data, &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not 2-D.
    #[must_use]
    pub fn transpose(&self) -> Tensor {
        let (m, n) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; m * n];
        for (i, row) in self.data.chunks(n).enumerate() {
            for (j, &v) in row.iter().enumerate() {
                out[j * m + i] = v;
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Element-wise sum.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            data,
            shape: self.shape.clone(),
        }
    }

    /// In-place `self += scale * other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Returns `self * scalar`.
    #[must_use]
    pub fn scale(&self, scalar: f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|a| a * scalar).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Adds a `[n]` bias vector to every row of a `[m, n]` tensor, in place.
    ///
    /// # Panics
    /// Panics if shapes are incompatible.
    pub fn add_row_bias(&mut self, bias: &Tensor) {
        let n = self.cols();
        assert_eq!(bias.len(), n, "add_row_bias: bias length mismatch");
        for row in self.data.chunks_mut(n) {
            for (x, b) in row.iter_mut().zip(bias.data()) {
                *x += b;
            }
        }
    }

    /// Sum over rows of a 2-D tensor → `[n]` vector (bias gradient).
    #[must_use]
    pub fn sum_rows(&self) -> Tensor {
        let n = self.cols();
        let mut out = vec![0.0f32; n];
        for row in self.data.chunks(n) {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[n])
    }

    /// Squared L2 norm of all elements.
    #[must_use]
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Fills the buffer with zeros (gradient reset between steps).
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(t.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(&[4], 2.5);
        assert!(f.data().iter().all(|&x| x == 2.5));
    }

    #[test]
    #[should_panic(expected = "volume")]
    fn from_vec_checks_volume() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::new(1);
        let a = Tensor::randn(&[5, 5], 1.0, &mut rng);
        let c = a.matmul(&Tensor::eye(5));
        for (x, y) in a.data().iter().zip(c.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_matches_naive_reference() {
        // The blocked kernel must match the retained naive reference:
        // bit-identically on the portable path, within the documented FMA
        // tolerance otherwise (tests/kernel_equivalence.rs sweeps shapes;
        // this is the in-crate smoke check).
        let mut rng = Rng::new(2);
        let (m, k, n) = (80, 70, 90);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let big = a.matmul(&b);
        let reference = crate::reference::naive_matmul(a.data(), b.data(), m, k, n);
        if crate::kernel::fma_kernels_active() {
            for (x, y) in big.data().iter().zip(&reference) {
                assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
            }
        } else {
            assert_eq!(
                big.data(),
                &reference[..],
                "portable path must be bit-identical to the naive reference"
            );
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose_composition() {
        let mut rng = Rng::new(12);
        let a = Tensor::randn(&[9, 5], 1.0, &mut rng); // [k=9, m=5]
        let b = Tensor::randn(&[9, 7], 1.0, &mut rng); // [k=9, n=7]
        let fused = a.matmul_tn(&b);
        let composed = a.transpose().matmul(&b);
        assert_eq!(fused.shape(), &[5, 7]);
        for (x, y) in fused.data().iter().zip(composed.data()) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_tn_acc_accumulates() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]); // [k=2, m=1]
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]); // [k=2, n=1]
        let mut acc = Tensor::full(&[1, 1], 5.0);
        a.matmul_tn_acc(&b, &mut acc);
        assert_eq!(acc.data(), &[5.0 + 1.0 * 3.0 + 2.0 * 4.0]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose_composition() {
        let mut rng = Rng::new(13);
        let a = Tensor::randn(&[6, 11], 1.0, &mut rng); // [m=6, k=11]
        let b = Tensor::randn(&[8, 11], 1.0, &mut rng); // [n=8, k=11]
        let fused = a.matmul_nt(&b);
        let composed = a.matmul(&b.transpose());
        assert_eq!(fused.shape(), &[6, 8]);
        for (x, y) in fused.data().iter().zip(composed.data()) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_checks_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = Rng::new(3);
        let a = Tensor::randn(&[3, 7], 1.0, &mut rng);
        let t = a.transpose();
        assert_eq!(t.shape(), &[7, 3]);
        assert_eq!(a, t.transpose());
    }

    #[test]
    fn add_and_scale() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 6.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        let mut c = a.clone();
        c.add_scaled(&b, -1.0);
        assert_eq!(c.data(), &[-2.0, -2.0]);
    }

    #[test]
    fn row_bias_and_sum_rows() {
        let mut x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        x.add_row_bias(&b);
        assert_eq!(x.data(), &[11.0, 22.0, 13.0, 24.0]);
        let s = x.sum_rows();
        assert_eq!(s.data(), &[24.0, 46.0]);
    }

    #[test]
    fn reshape_and_norm() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]).reshape(&[1, 2]);
        assert_eq!(t.shape(), &[1, 2]);
        assert_eq!(t.norm_sq(), 25.0);
    }

    #[test]
    fn randn_deterministic() {
        let mut r1 = Rng::new(42);
        let mut r2 = Rng::new(42);
        let a = Tensor::randn(&[10], 0.5, &mut r1);
        let b = Tensor::randn(&[10], 0.5, &mut r2);
        assert_eq!(a, b);
    }
}
