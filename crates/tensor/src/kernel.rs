//! Cache-blocked, register-tiled matrix and convolution kernels.
//!
//! This module is the compute core behind [`crate::Tensor::matmul`] and the
//! `Conv2d`/`Sgd` hot paths. The design is the classic BLIS-style
//! decomposition scaled down to the model sizes this workspace trains:
//!
//! - **Row chunks.** Output rows are processed in fixed
//!   [`ROWS_PER_CHUNK`]-row chunks. The chunk grid depends only on the
//!   output shape — never on the worker count — so the parallel path
//!   (`compat::par::par_chunks_mut`) computes exactly the same tiles as the
//!   sequential path and results are bit-identical at `ECOFL_THREADS=1/2/8`.
//! - **Register tiles.** Inside a chunk, an `MR×NR` accumulator tile lives
//!   in locals for the whole depth (`k`) loop, so each output element is
//!   loaded and stored once instead of `k` times, and the innermost loop is
//!   a contiguous fused-multiply-accumulate stream over `b`'s rows that the
//!   compiler auto-vectorizes.
//! - **Packed-transpose panels.** `gemm_tn` (the `xᵀ·g` gradient product)
//!   packs `MR`-column panels of the transposed operand into a small
//!   reusable buffer instead of materializing the full transpose, then runs
//!   the same register-tiled kernel over the panel.
//!
//! # SIMD dispatch and the tolerance policy
//!
//! Three instantiations of the same kernel body exist:
//!
//! - a **portable** path (`acc + a*b`, 4×8 tiles) that performs every
//!   multiply and add in exactly the order of the retained naive kernels in
//!   [`crate::reference`] — outputs are **bit-identical** to them,
//! - an **FMA** path (`f32::mul_add`, 6×16 tiles) compiled with
//!   `#[target_feature(enable = "avx2", enable = "fma")]` and selected at
//!   runtime when the CPU supports it, and
//! - an **AVX-512** path (8×32 tiles held in zmm registers by explicit
//!   `_mm512_fmadd_ps` intrinsics) selected when `avx512f` is present.
//!
//! Fused multiply-add skips the intermediate rounding of the product, so
//! the FMA/AVX-512 outputs differ from the naive reference by at most
//! `2·k·ε` relative to the absolute-value inner product (≈1e-6 relative
//! for the `k ≲ 100` shapes the models use); the property tests in
//! `tests/kernel_equivalence.rs` enforce that bound. Per output element
//! both paths accumulate in the same ascending-`p` scalar-lane order as
//! the naive loop — only the `mul_add` rounding differs.
//!
//! On a given machine the dispatch decision is constant, so runs remain
//! deterministic; `ECOFL_PORTABLE_KERNELS=1` forces the portable path
//! (used by CI to prove the exact-equality claim on any host).

use ecofl_compat::par::{max_threads, par_chunks_mut};
use std::cell::RefCell;
use std::sync::OnceLock;

/// Register-tile rows of the AVX2 FMA kernel (6 rows × 2 AVX lanes of
/// accumulators = 12 of 16 vector registers).
pub const MR_FMA: usize = 6;
/// Register-tile columns of the AVX2 FMA kernel (two 8-lane registers).
pub const NR_FMA: usize = 16;
/// Register-tile rows of the AVX-512 kernel (8 rows × 2 zmm lanes of
/// accumulators = 16 of 32 zmm registers; 8 also divides
/// [`ROWS_PER_CHUNK`] exactly, so no chunk carries padded tile rows).
pub const MR_AVX512: usize = 8;
/// Register-tile columns of the AVX-512 kernel (two 16-lane registers).
pub const NR_AVX512: usize = 32;
/// Register-tile rows of the portable kernel (sized for 16 SSE registers).
pub const MR_PORTABLE: usize = 4;
/// Register-tile columns of the portable kernel.
pub const NR_PORTABLE: usize = 8;
/// Output rows per parallel chunk — a common multiple of every kernel's
/// `MR`, so every chunk except the last decomposes into full register
/// tiles and the tile grid is independent of how chunks map to threads.
pub const ROWS_PER_CHUNK: usize = 24;

/// Below this many multiply-accumulates a matmul stays sequential: the
/// scoped worker pool spawns threads per call, which only amortizes over
/// large products (the old 64³ threshold put the micro-bench's own case
/// on the spawn-dominated path).
const PAR_MAC_THRESHOLD: usize = 1 << 22;

/// Which kernel instantiation runtime dispatch selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KernelPath {
    /// Plain `mul`+`add`, 4×8 tiles — bit-identical to the naive
    /// references on every machine.
    Portable,
    /// AVX2 + FMA, 6×16 tiles.
    Fma,
    /// AVX-512, 8×32 tiles (two 16-lane zmm accumulator columns).
    Avx512,
}

fn kernel_path() -> KernelPath {
    static PATH: OnceLock<KernelPath> = OnceLock::new();
    *PATH.get_or_init(|| {
        if std::env::var_os("ECOFL_PORTABLE_KERNELS").is_some_and(|v| v == "1") {
            return KernelPath::Portable;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                // The NT/conv helpers run the AVX2 instantiation even on
                // the AVX-512 tier, so that tier requires both.
                if std::arch::is_x86_feature_detected!("avx512f") {
                    return KernelPath::Avx512;
                }
                return KernelPath::Fma;
            }
        }
        KernelPath::Portable
    })
}

/// Whether runtime dispatch selected a fused-multiply-add kernel
/// (AVX2+FMA or AVX-512) instead of the portable path.
///
/// Constant for the lifetime of the process: the decision depends only on
/// CPU features and the `ECOFL_PORTABLE_KERNELS` environment variable read
/// once. When `false`, every kernel in this module is bit-identical to the
/// naive references in [`crate::reference`].
#[must_use]
pub fn fma_kernels_active() -> bool {
    kernel_path() != KernelPath::Portable
}

/// Human-readable name of the selected dispatch path.
fn path_name(path: KernelPath) -> &'static str {
    match path {
        KernelPath::Portable => "portable",
        KernelPath::Fma => "fma",
        KernelPath::Avx512 => "avx512",
    }
}

/// Dispatch-entry statistics: per-(kernel, ISA path) call counts and
/// cumulative wall-clock nanoseconds, scraped by the metrics layer.
///
/// Collection is off by default and the disabled check is one relaxed
/// atomic load per kernel call — the hot path pays nothing until
/// [`set_kernel_stats_enabled`] turns it on (done by metered CLI runs
/// and benches, never by library code).
mod stats {
    use super::{kernel_path, path_name, KernelPath};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::Instant;

    pub(super) const KERNEL_NAMES: [&str; 5] =
        ["gemm", "gemm_tn", "gemm_nt", "conv2d_fwd", "conv2d_bwd"];
    const N_KERNELS: usize = KERNEL_NAMES.len();
    const N_PATHS: usize = 3;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static CALLS: [AtomicU64; N_KERNELS * N_PATHS] =
        [const { AtomicU64::new(0) }; N_KERNELS * N_PATHS];
    static NANOS: [AtomicU64; N_KERNELS * N_PATHS] =
        [const { AtomicU64::new(0) }; N_KERNELS * N_PATHS];

    fn slot(kernel: usize) -> usize {
        kernel * N_PATHS + kernel_path() as usize
    }

    pub(super) fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    pub(super) fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    pub(super) fn reset() {
        for c in &CALLS {
            c.store(0, Ordering::Relaxed);
        }
        for n in &NANOS {
            n.store(0, Ordering::Relaxed);
        }
    }

    /// An RAII timer charging the enclosing kernel call to its
    /// (kernel, path) slot on drop; a no-op when collection is off.
    pub(super) struct KernelTimer {
        start: Option<(usize, Instant)>,
    }

    pub(super) fn time_kernel(kernel: usize) -> KernelTimer {
        KernelTimer {
            start: enabled().then(|| (slot(kernel), Instant::now())),
        }
    }

    impl Drop for KernelTimer {
        fn drop(&mut self) {
            if let Some((slot, start)) = self.start {
                CALLS[slot].fetch_add(1, Ordering::Relaxed);
                NANOS[slot].fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }
    }

    pub(super) fn snapshot() -> Vec<super::KernelStat> {
        let paths = [KernelPath::Portable, KernelPath::Fma, KernelPath::Avx512];
        let mut out = Vec::new();
        for (k, kernel) in KERNEL_NAMES.iter().enumerate() {
            for (p, path) in paths.iter().enumerate() {
                let slot = k * N_PATHS + p;
                let calls = CALLS[slot].load(Ordering::Relaxed);
                if calls == 0 {
                    continue;
                }
                out.push(super::KernelStat {
                    kernel,
                    path: path_name(*path),
                    calls,
                    nanos: NANOS[slot].load(Ordering::Relaxed),
                });
            }
        }
        out
    }
}

pub(crate) const K_GEMM: usize = 0;
pub(crate) const K_GEMM_TN: usize = 1;
pub(crate) const K_GEMM_NT: usize = 2;
pub(crate) const K_CONV_FWD: usize = 3;
pub(crate) const K_CONV_BWD: usize = 4;

/// One row of [`kernel_stats`]: cumulative calls and wall-clock
/// nanoseconds one dispatch entry point spent on one ISA path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelStat {
    /// Dispatch entry point (`gemm`, `gemm_tn`, `gemm_nt`,
    /// `conv2d_fwd`, `conv2d_bwd`).
    pub kernel: &'static str,
    /// ISA path runtime dispatch selected (`portable`, `fma`,
    /// `avx512`).
    pub path: &'static str,
    /// Calls since collection was enabled (or last reset).
    pub calls: u64,
    /// Cumulative wall-clock nanoseconds across those calls.
    pub nanos: u64,
}

/// Turns kernel dispatch statistics collection on or off. Off (the
/// default), kernel calls pay one relaxed atomic load; on, each call
/// adds two relaxed atomic adds and an `Instant` read.
pub fn set_kernel_stats_enabled(on: bool) {
    stats::set_enabled(on);
}

/// Whether kernel dispatch statistics are being collected.
#[must_use]
pub fn kernel_stats_enabled() -> bool {
    stats::enabled()
}

/// Zeroes every (kernel, path) slot.
pub fn reset_kernel_stats() {
    stats::reset();
}

/// The non-zero (kernel, path) rows collected so far, in a stable
/// (kernel, path) order.
#[must_use]
pub fn kernel_stats() -> Vec<KernelStat> {
    stats::snapshot()
}

/// Runs `f(first_row, chunk_rows_slice)` over fixed `ROWS_PER_CHUNK`-row
/// chunks of `out`, in parallel when `par` is set. The chunk grid is a pure
/// function of `out.len()` and `n`, so parallel and sequential execution
/// produce identical results.
fn for_row_chunks(out: &mut [f32], n: usize, par: bool, f: impl Fn(usize, &mut [f32]) + Sync) {
    let chunk = ROWS_PER_CHUNK * n;
    if par && max_threads() > 1 {
        par_chunks_mut(out, chunk, |ci, rows| f(ci * ROWS_PER_CHUNK, rows));
    } else {
        for (ci, rows) in out.chunks_mut(chunk).enumerate() {
            f(ci * ROWS_PER_CHUNK, rows);
        }
    }
}

thread_local! {
    /// Reusable A-panel packing scratch, one per worker thread. Fresh
    /// `Vec`s per GEMM call cost ~2µs on the 64³ micro-bench case — a
    /// fifth of the whole call. Contents are garbage between calls by
    /// design: `pack_a` overwrites every live lane and zero-fills every
    /// padded lane on each call.
    static A_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Reusable B-strip packing scratch (packed once per call on the
    /// calling thread, shared read-only with workers).
    static B_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Grows `buf` to at least `len` elements and returns the `len`-prefix
/// without zeroing previously used capacity.
fn scratch(buf: &mut Vec<f32>, len: usize) -> &mut [f32] {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    &mut buf[..len]
}

/// Where a GEMM chunk reads its left-hand operand from.
///
/// `Rows` is the plain product (`a·b`, contiguous row panel); `Cols` is the
/// packed-transpose path (`aᵀ·b`) — the packer below gathers columns of the
/// `[k,m]` operand directly into the tile layout, so the transpose is never
/// materialized.
#[derive(Clone, Copy)]
enum ASrc<'a> {
    /// A row-major `[m,k]` matrix with leading dimension `lda`; chunks take
    /// row ranges.
    Rows { a: &'a [f32], lda: usize },
    /// A row-major `[k,m]` matrix; chunks take column ranges.
    Cols { a: &'a [f32], m: usize },
}

/// The innermost register tile: `acc[r][j] += Σ_p ap[p·MR+r] · bp[p·NR+j]`
/// over zero-padded packed panels.
///
/// Everything is `chunks_exact` with const-generic widths, so the body has
/// **no bounds checks and no side exits** — the compiler keeps the whole
/// `MR×NR` accumulator in vector registers for the depth loop instead of
/// spilling it to the stack each iteration (the difference is ~4x).
///
/// `madd` is the multiply-accumulate op — `acc + a*b` on the portable
/// instantiation, `a.mul_add(b, acc)` on the FMA one. Per output element
/// the products accumulate in ascending-`p` order into a single scalar
/// lane, matching the naive triple loop, so the only divergence from
/// [`crate::reference::naive_matmul`] is the `madd` rounding itself.
#[inline(always)]
fn microkernel<const MR: usize, const NR: usize>(
    madd: impl Fn(f32, f32, f32) -> f32 + Copy,
    apanel: &[f32],
    bpanel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    for (ap, bp) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        for (r, accr) in acc.iter_mut().enumerate() {
            let a_rp = ap[r];
            for j in 0..NR {
                accr[j] = madd(a_rp, bp[j], accr[j]);
            }
        }
    }
}

/// Packs the chunk's A rows/columns (starting at output row `i0`) into
/// `[tile][p][r]` order (`MR` consecutive row values per depth step),
/// zero-padding the tail tile. Padded lanes multiply into accumulator rows
/// that are never stored.
fn pack_a<const MR: usize>(src: ASrc<'_>, i0: usize, rows: usize, k: usize, apack: &mut [f32]) {
    if !rows.is_multiple_of(MR) {
        let full = (rows / MR) * k * MR;
        apack[full..].fill(0.0);
    }
    match src {
        ASrc::Rows { a, lda } => {
            for t in 0..rows.div_ceil(MR) {
                let tile = &mut apack[t * k * MR..(t + 1) * k * MR];
                for r in 0..MR.min(rows - t * MR) {
                    let arow = &a[(i0 + t * MR + r) * lda..][..k];
                    for (p, &v) in arow.iter().enumerate() {
                        tile[p * MR + r] = v;
                    }
                }
            }
        }
        ASrc::Cols { a, m } => {
            for (p, arow) in a.chunks_exact(m).enumerate() {
                let acols = &arow[i0..i0 + rows];
                for (r, &v) in acols.iter().enumerate() {
                    apack[(r / MR) * k * MR + p * MR + (r % MR)] = v;
                }
            }
        }
    }
}

/// AVX-512 instantiation of the microkernel body, written with explicit
/// `_mm512_*` intrinsics: at `NR = 32` the autovectorizer keeps the
/// accumulator tile on the stack (rustc tunes for 256-bit vectors, and
/// thirty-two 256-bit accumulators do not fit the sixteen ymm registers
/// `avx512f` alone exposes), which costs ~14x. Held by hand the tile is
/// sixteen of thirty-two zmm registers. Lane for lane the arithmetic is
/// exactly `acc[j] = a.mul_add(b[j], acc[j])`, identical to what the
/// generic FMA instantiation computes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn microkernel_avx512(apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR_AVX512]; MR_AVX512]) {
    use std::arch::x86_64::{
        _mm512_fmadd_ps, _mm512_loadu_ps, _mm512_set1_ps, _mm512_setzero_ps, _mm512_storeu_ps,
    };
    // SAFETY: every load/store stays inside `acc`'s 32-wide rows or the
    // `chunks_exact` panels (16 lanes at offsets 0 and 16).
    unsafe {
        let mut c = [[_mm512_setzero_ps(); 2]; MR_AVX512];
        for (cr, row) in c.iter_mut().zip(acc.iter()) {
            cr[0] = _mm512_loadu_ps(row.as_ptr());
            cr[1] = _mm512_loadu_ps(row.as_ptr().add(16));
        }
        for (ap, bp) in apanel
            .chunks_exact(MR_AVX512)
            .zip(bpanel.chunks_exact(NR_AVX512))
        {
            let b0 = _mm512_loadu_ps(bp.as_ptr());
            let b1 = _mm512_loadu_ps(bp.as_ptr().add(16));
            for (&a_rp, cr) in ap.iter().zip(c.iter_mut()) {
                let av = _mm512_set1_ps(a_rp);
                cr[0] = _mm512_fmadd_ps(av, b0, cr[0]);
                cr[1] = _mm512_fmadd_ps(av, b1, cr[1]);
            }
        }
        for (row, cr) in acc.iter_mut().zip(&c) {
            _mm512_storeu_ps(row.as_mut_ptr(), cr[0]);
            _mm512_storeu_ps(row.as_mut_ptr().add(16), cr[1]);
        }
    }
}

/// The full GEMM driver for one kernel instantiation: packs B once into
/// zero-padded `NR`-column strips (`[strip][p][j]`, shared read-only by all
/// chunks/threads), then runs the row chunks — pack the chunk's A panel,
/// sweep the strips, run the microkernel per tile, and write back only the
/// live `rb×cb` window of each accumulator.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn gemm_driver<const MR: usize, const NR: usize>(
    kern: impl Fn(&[f32], &[f32], &mut [[f32; NR]; MR]) + Copy + Sync,
    asrc: ASrc<'_>,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
    accumulate: bool,
    par: bool,
) {
    let strips = n.div_ceil(NR);
    B_SCRATCH.with_borrow_mut(|bbuf| {
        let bpack = scratch(bbuf, strips * k * NR);
        for (p, brow) in b.chunks_exact(n).enumerate() {
            for s in 0..strips {
                let jb = s * NR;
                let cb = (n - jb).min(NR);
                let prow = &mut bpack[s * k * NR + p * NR..][..NR];
                prow[..cb].copy_from_slice(&brow[jb..jb + cb]);
                prow[cb..].fill(0.0);
            }
        }
        let bpack = &*bpack;
        for_row_chunks(out, n, par, move |i0, chunk| {
            let rows = chunk.len() / n.max(1);
            let tiles = rows.div_ceil(MR);
            A_SCRATCH.with_borrow_mut(|abuf| {
                let apack = scratch(abuf, tiles * k * MR);
                run_chunk::<MR, NR>(kern, asrc, k, n, bpack, i0, chunk, rows, apack, accumulate);
            });
        });
    });
}

/// One row chunk of [`gemm_driver`]: pack the chunk's A panel, sweep the B
/// strips, run the microkernel per tile, write back the live `rb×cb`
/// window of each accumulator.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn run_chunk<const MR: usize, const NR: usize>(
    kern: impl Fn(&[f32], &[f32], &mut [[f32; NR]; MR]) + Copy,
    asrc: ASrc<'_>,
    k: usize,
    n: usize,
    bpack: &[f32],
    i0: usize,
    chunk: &mut [f32],
    rows: usize,
    apack: &mut [f32],
    accumulate: bool,
) {
    pack_a::<MR>(asrc, i0, rows, k, apack);
    for (s, bstrip) in bpack.chunks_exact(k * NR).enumerate() {
        let jb = s * NR;
        let cb = (n - jb).min(NR);
        for (t, atile) in apack.chunks_exact(k * MR).enumerate() {
            let rb = MR.min(rows - t * MR);
            let mut acc = [[0.0f32; NR]; MR];
            kern(atile, bstrip, &mut acc);
            for (r, accr) in acc.iter().enumerate().take(rb) {
                let orow = &mut chunk[(t * MR + r) * n + jb..(t * MR + r) * n + jb + cb];
                if accumulate {
                    for (o, &v) in orow.iter_mut().zip(&accr[..cb]) {
                        *o += v;
                    }
                } else {
                    orow.copy_from_slice(&accr[..cb]);
                }
            }
        }
    }
}

fn gemm_portable(
    asrc: ASrc<'_>,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
    accumulate: bool,
    par: bool,
) {
    gemm_driver::<MR_PORTABLE, NR_PORTABLE>(
        |ap, bp, acc| microkernel(|a, b, acc| acc + a * b, ap, bp, acc),
        asrc,
        k,
        b,
        n,
        out,
        accumulate,
        par,
    );
}

/// Safe to *define*; callers must ensure AVX2+FMA are available (enforced
/// by the [`kernel_path`] runtime check at the dispatch site).
/// The parallel closure inside inherits the target features; worker
/// threads only ever run it after the same runtime check passed.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
fn gemm_fma(
    asrc: ASrc<'_>,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
    accumulate: bool,
    par: bool,
) {
    gemm_driver::<MR_FMA, NR_FMA>(
        |ap, bp, acc| microkernel(|a, b, acc| a.mul_add(b, acc), ap, bp, acc),
        asrc,
        k,
        b,
        n,
        out,
        accumulate,
        par,
    );
}

/// Same contract as [`gemm_fma`], instantiated for 512-bit vectors via the
/// hand-held [`microkernel_avx512`] tile.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn gemm_avx512(
    asrc: ASrc<'_>,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
    accumulate: bool,
    par: bool,
) {
    gemm_driver::<MR_AVX512, NR_AVX512>(
        |ap, bp, acc| microkernel_avx512(ap, bp, acc),
        asrc,
        k,
        b,
        n,
        out,
        accumulate,
        par,
    );
}

/// Dispatches a GEMM to the selected kernel instantiation.
fn gemm_dispatch(
    asrc: ASrc<'_>,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
    accumulate: bool,
    par: bool,
) {
    match kernel_path() {
        // SAFETY: `kernel_path` verified the corresponding CPU features at
        // runtime; the functions contain only safe Rust compiled with
        // those features enabled.
        #[cfg(target_arch = "x86_64")]
        KernelPath::Avx512 => unsafe { gemm_avx512(asrc, k, b, n, out, accumulate, par) },
        #[cfg(target_arch = "x86_64")]
        KernelPath::Fma => unsafe { gemm_fma(asrc, k, b, n, out, accumulate, par) },
        _ => gemm_portable(asrc, k, b, n, out, accumulate, par),
    }
}

/// `out = a·b` for row-major `a: [m,k]`, `b: [k,n]`, `out: [m,n]`.
pub(crate) fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let _t = stats::time_kernel(K_GEMM);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let par = m * n * k >= PAR_MAC_THRESHOLD;
    gemm_dispatch(ASrc::Rows { a, lda: k }, k, b, n, out, false, par);
}

/// `out (+)= aᵀ·b` for row-major `a: [k,m]`, `b: [k,n]`, `out: [m,n]`,
/// without materializing `aᵀ`: the packer gathers each chunk's columns of
/// `a` straight into the microkernel tile layout.
pub(crate) fn gemm_tn(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    m: usize,
    n: usize,
    accumulate: bool,
) {
    let _t = stats::time_kernel(K_GEMM_TN);
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let par = m * n * k >= PAR_MAC_THRESHOLD;
    gemm_dispatch(ASrc::Cols { a, m }, k, b, n, out, accumulate, par);
}

/// One output row of `a·bᵀ`: `out[j] = Σ_p arow[p]·b[j·k+p]`.
///
/// Both operands are walked contiguously (that is the point of the NT
/// layout — no transpose is formed). The dot product accumulates into
/// `LANES` independent partial sums folded in a fixed order at the end, so
/// results are deterministic and thread-count independent, but reassociated
/// relative to the naive scalar chain — NT products are always compared
/// against the reference under the documented tolerance, on both paths.
#[inline(always)]
fn nt_row_body(
    madd: impl Fn(f32, f32, f32) -> f32 + Copy,
    arow: &[f32],
    b: &[f32],
    k: usize,
    orow: &mut [f32],
) {
    const LANES: usize = 8;
    for (j, o) in orow.iter_mut().enumerate() {
        let brow = &b[j * k..(j + 1) * k];
        let mut lanes = [0.0f32; LANES];
        let mut chunks_a = arow.chunks_exact(LANES);
        let mut chunks_b = brow.chunks_exact(LANES);
        for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
            for l in 0..LANES {
                lanes[l] = madd(ca[l], cb[l], lanes[l]);
            }
        }
        for (l, (&av, &bv)) in chunks_a
            .remainder()
            .iter()
            .zip(chunks_b.remainder())
            .enumerate()
        {
            lanes[l] = madd(av, bv, lanes[l]);
        }
        // Fixed pairwise fold — part of the kernel's defined semantics.
        *o = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
            + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
fn nt_rows_fma(a: &[f32], b: &[f32], k: usize, n: usize, i0: usize, chunk: &mut [f32]) {
    for (r, orow) in chunk.chunks_mut(n).enumerate() {
        let i = i0 + r;
        nt_row_body(
            |x, y, acc| x.mul_add(y, acc),
            &a[i * k..(i + 1) * k],
            b,
            k,
            orow,
        );
    }
}

fn nt_rows_portable(a: &[f32], b: &[f32], k: usize, n: usize, i0: usize, chunk: &mut [f32]) {
    for (r, orow) in chunk.chunks_mut(n).enumerate() {
        let i = i0 + r;
        nt_row_body(|x, y, acc| acc + x * y, &a[i * k..(i + 1) * k], b, k, orow);
    }
}

/// `out = a·bᵀ` for row-major `a: [m,k]`, `b: [n,k]`, `out: [m,n]`.
pub(crate) fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let _t = stats::time_kernel(K_GEMM_NT);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    let par = m * n * k >= PAR_MAC_THRESHOLD;
    for_row_chunks(out, n, par, |i0, chunk| {
        #[cfg(target_arch = "x86_64")]
        if fma_kernels_active() {
            // SAFETY: guarded by the same runtime AVX2+FMA detection as
            // `gemm_dispatch`.
            unsafe { nt_rows_fma(a, b, k, n, i0, chunk) };
            return;
        }
        nt_rows_portable(a, b, k, n, i0, chunk);
    });
}

/// Geometry of one `Conv2d` application (stride 1, symmetric zero padding).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ConvShape {
    pub batch: usize,
    pub in_c: usize,
    pub h: usize,
    pub w: usize,
    pub out_c: usize,
    pub k: usize,
    pub pad: usize,
    pub oh: usize,
    pub ow: usize,
}

impl ConvShape {
    /// Valid output-row range for kernel row `ky`: `oy` such that
    /// `iy = oy + ky - pad ∈ [0, h)`.
    fn oy_range(&self, ky: usize) -> (usize, usize) {
        let lo = self.pad.saturating_sub(ky);
        let hi = (self.h + self.pad - ky).min(self.oh);
        (lo.min(hi), hi)
    }

    /// Valid output-column range for kernel column `kx`.
    fn ox_range(&self, kx: usize) -> (usize, usize) {
        let lo = self.pad.saturating_sub(kx);
        let hi = (self.w + self.pad - kx).min(self.ow);
        (lo.min(hi), hi)
    }

    fn macs(&self) -> usize {
        self.batch * self.out_c * self.oh * self.ow * self.in_c * self.k * self.k
    }
}

/// Blocked Conv2d forward: `out[bi,oc] = bias[oc] + Σ_{ic,ky,kx} w·x`.
///
/// The loops are restructured so the innermost loop streams a contiguous
/// output row against a contiguous input row (no per-pixel padding
/// branches); per output element the taps still arrive in the naive
/// `(ic, ky, kx)` order with the bias added first, so results are
/// bit-identical to [`crate::reference::naive_conv2d_forward`].
pub(crate) fn conv2d_forward(x: &[f32], wgt: &[f32], bias: &[f32], s: &ConvShape, out: &mut [f32]) {
    let _t = stats::time_kernel(K_CONV_FWD);
    let plane = s.oh * s.ow;
    let par = s.macs() >= PAR_MAC_THRESHOLD;
    let run = |plane_idx: usize, oplane: &mut [f32]| {
        let (bi, oc) = (plane_idx / s.out_c, plane_idx % s.out_c);
        oplane.fill(bias[oc]);
        for ic in 0..s.in_c {
            let xplane = &x[((bi * s.in_c + ic) * s.h) * s.w..][..s.h * s.w];
            for ky in 0..s.k {
                let (ylo, yhi) = s.oy_range(ky);
                for kx in 0..s.k {
                    let (xlo, xhi) = s.ox_range(kx);
                    if xlo >= xhi {
                        continue;
                    }
                    let wv = wgt[((oc * s.in_c + ic) * s.k + ky) * s.k + kx];
                    for oy in ylo..yhi {
                        let iy = oy + ky - s.pad;
                        let ix0 = xlo + kx - s.pad;
                        let xrow = &xplane[iy * s.w + ix0..][..xhi - xlo];
                        let orow = &mut oplane[oy * s.ow + xlo..oy * s.ow + xhi];
                        for (o, &xv) in orow.iter_mut().zip(xrow) {
                            *o += wv * xv;
                        }
                    }
                }
            }
        }
    };
    if par && max_threads() > 1 {
        par_chunks_mut(out, plane, |idx, oplane| run(idx, oplane));
    } else {
        for (idx, oplane) in out.chunks_mut(plane).enumerate() {
            run(idx, oplane);
        }
    }
}

/// Blocked Conv2d backward.
///
/// Three passes, each with its own parallel axis and its own equivalence
/// contract against [`crate::reference::naive_conv2d_backward`]:
///
/// - `gb` (sequential, cheap): contributions arrive in the naive
///   `(bi, oy, ox)` order per channel — **bit-identical**.
/// - `gw` (parallel over `oc`, disjoint weight slices): the per-row dot
///   products use 8-lane partial sums, reassociating the naive scalar
///   chain — **documented tolerance**.
/// - `gx` (parallel over `bi`, disjoint input planes): contiguous axpy
///   rows; tap order per input element differs from the naive loop nest —
///   **documented tolerance**.
pub(crate) fn conv2d_backward(
    x: &[f32],
    wgt: &[f32],
    g: &[f32],
    s: &ConvShape,
    gx: &mut [f32],
    gw: &mut [f32],
    gb: &mut [f32],
) {
    let _t = stats::time_kernel(K_CONV_BWD);
    let oplane = s.oh * s.ow;
    let par = s.macs() >= PAR_MAC_THRESHOLD && max_threads() > 1;

    // Pass 1: bias gradient, naive accumulation order per channel.
    for bi in 0..s.batch {
        for (oc, gbo) in gb.iter_mut().enumerate() {
            let gplane = &g[(bi * s.out_c + oc) * oplane..][..oplane];
            for &gv in gplane {
                *gbo += gv;
            }
        }
    }

    // Pass 2: weight gradient — each `oc` owns a disjoint `gw` slice.
    let wslice = s.in_c * s.k * s.k;
    let gw_pass = |oc: usize, gwo: &mut [f32]| {
        for bi in 0..s.batch {
            let gplane = &g[(bi * s.out_c + oc) * oplane..][..oplane];
            for ic in 0..s.in_c {
                let xplane = &x[((bi * s.in_c + ic) * s.h) * s.w..][..s.h * s.w];
                for ky in 0..s.k {
                    let (ylo, yhi) = s.oy_range(ky);
                    for kx in 0..s.k {
                        let (xlo, xhi) = s.ox_range(kx);
                        if xlo >= xhi {
                            continue;
                        }
                        let mut lanes = [0.0f32; 8];
                        for oy in ylo..yhi {
                            let iy = oy + ky - s.pad;
                            let ix0 = xlo + kx - s.pad;
                            let grow = &gplane[oy * s.ow + xlo..oy * s.ow + xhi];
                            let xrow = &xplane[iy * s.w + ix0..][..xhi - xlo];
                            let mut ga = grow.chunks_exact(8);
                            let mut xa = xrow.chunks_exact(8);
                            for (gc, xc) in (&mut ga).zip(&mut xa) {
                                for l in 0..8 {
                                    lanes[l] += gc[l] * xc[l];
                                }
                            }
                            for (l, (&gv, &xv)) in
                                ga.remainder().iter().zip(xa.remainder()).enumerate()
                            {
                                lanes[l] += gv * xv;
                            }
                        }
                        gwo[(ic * s.k + ky) * s.k + kx] += ((lanes[0] + lanes[1])
                            + (lanes[2] + lanes[3]))
                            + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
                    }
                }
            }
        }
    };
    if par {
        par_chunks_mut(gw, wslice, gw_pass);
    } else {
        for (oc, gwo) in gw.chunks_mut(wslice).enumerate() {
            gw_pass(oc, gwo);
        }
    }

    // Pass 3: input gradient — each batch element owns a disjoint plane.
    let xvol = s.in_c * s.h * s.w;
    let gx_pass = |bi: usize, gxb: &mut [f32]| {
        for oc in 0..s.out_c {
            let gplane = &g[(bi * s.out_c + oc) * oplane..][..oplane];
            for ic in 0..s.in_c {
                let gxplane = &mut gxb[ic * s.h * s.w..(ic + 1) * s.h * s.w];
                for ky in 0..s.k {
                    let (ylo, yhi) = s.oy_range(ky);
                    for kx in 0..s.k {
                        let (xlo, xhi) = s.ox_range(kx);
                        if xlo >= xhi {
                            continue;
                        }
                        let wv = wgt[((oc * s.in_c + ic) * s.k + ky) * s.k + kx];
                        for oy in ylo..yhi {
                            let iy = oy + ky - s.pad;
                            let ix0 = xlo + kx - s.pad;
                            let grow = &gplane[oy * s.ow + xlo..oy * s.ow + xhi];
                            let gxrow = &mut gxplane[iy * s.w + ix0..iy * s.w + ix0 + xhi - xlo];
                            for (gxv, &gv) in gxrow.iter_mut().zip(grow) {
                                *gxv += wv * gv;
                            }
                        }
                    }
                }
            }
        }
    };
    if par {
        par_chunks_mut(gx, xvol, gx_pass);
    } else {
        for (bi, gxb) in gx.chunks_mut(xvol).enumerate() {
            gx_pass(bi, gxb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_is_common_tile_multiple() {
        assert_eq!(ROWS_PER_CHUNK % MR_FMA, 0);
        assert_eq!(ROWS_PER_CHUNK % MR_AVX512, 0);
        assert_eq!(ROWS_PER_CHUNK % MR_PORTABLE, 0);
    }

    #[test]
    fn gemm_known_values() {
        // [2,3]·[3,2] with small integers is exact on every path.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        let mut out = [0.0f32; 4];
        gemm(&a, &b, &mut out, 2, 3, 2);
        assert_eq!(out, [58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn gemm_tn_equals_explicit_transpose() {
        // aᵀ·b where a is [k=2, m=3].
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // rows [1 2 3], [4 5 6]
        let b = [1.0, 0.0, 0.0, 1.0]; // k=2, n=2 identity
        let mut out = [0.0f32; 6];
        gemm_tn(&a, &b, &mut out, 2, 3, 2, false);
        assert_eq!(out, [1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn gemm_tn_accumulates_in_place() {
        let a = [1.0, 2.0]; // k=2, m=1
        let b = [3.0, 4.0]; // k=2, n=1
        let mut out = [10.0f32];
        gemm_tn(&a, &b, &mut out, 2, 1, 1, true);
        assert_eq!(out, [10.0 + 1.0 * 3.0 + 2.0 * 4.0]);
    }

    #[test]
    fn gemm_nt_is_row_dot_products() {
        let a = [1.0, 2.0, 3.0, 4.0]; // m=2, k=2
        let b = [5.0, 6.0, 7.0, 8.0]; // n=2, k=2
        let mut out = [0.0f32; 4];
        gemm_nt(&a, &b, &mut out, 2, 2, 2);
        assert_eq!(out, [17.0, 23.0, 39.0, 53.0]);
    }

    #[test]
    fn kernel_stats_count_calls_only_while_enabled() {
        // Serialized against other uses of the process-global stats by
        // running everything inside this one test.
        reset_kernel_stats();
        assert!(!kernel_stats_enabled());
        let a = [1.0f32; 16];
        let b = [2.0f32; 16];
        let mut out = [0.0f32; 16];
        gemm(&a, &b, &mut out, 4, 4, 4);
        assert!(
            kernel_stats().is_empty(),
            "disabled collection must record nothing"
        );

        set_kernel_stats_enabled(true);
        gemm(&a, &b, &mut out, 4, 4, 4);
        gemm(&a, &b, &mut out, 4, 4, 4);
        gemm_nt(&a, &b, &mut out, 4, 4, 4);
        set_kernel_stats_enabled(false);
        gemm(&a, &b, &mut out, 4, 4, 4);

        // Other tests in this binary may run concurrently and land
        // kernel calls inside the enabled window, so the counts are
        // lower bounds; the disabled window before it saw nothing.
        let stats = kernel_stats();
        let gemm_row = stats.iter().find(|s| s.kernel == "gemm").expect("gemm row");
        assert!(gemm_row.calls >= 2, "enabled-window calls must count");
        let nt_row = stats
            .iter()
            .find(|s| s.kernel == "gemm_nt")
            .expect("gemm_nt row");
        assert!(nt_row.calls >= 1);
        assert!(
            stats
                .iter()
                .all(|s| ["portable", "fma", "avx512"].contains(&s.path)),
            "paths must be the dispatch names"
        );
        reset_kernel_stats();
        assert!(kernel_stats().is_empty());
    }
}
