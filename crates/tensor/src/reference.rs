//! Retained naive kernels — the semantic ground truth for [`crate::kernel`].
//!
//! These are the textbook triple loops the blocked kernels replaced. They
//! are deliberately kept (and kept *simple*: no zero-skips, no blocking, no
//! lane splitting) so the property tests in `tests/kernel_equivalence.rs`
//! can assert, for every kernel, either **bit-identical** output (portable
//! paths, which replay the exact accumulation order below) or agreement
//! within the documented FMA/reassociation tolerance (see `DESIGN.md`,
//! "Kernel tiling and the tolerance policy"). The micro benches also time
//! them to anchor the committed `BENCH_micro.json` speedup trajectory.
//!
//! Accumulation-order contract (what "bit-identical" is measured against):
//! every output element is a single scalar accumulator updated in
//! ascending inner-index order — `p` for the matmuls, `(ic, ky, kx)` taps
//! (bias first) for the convolution.

/// Naive `out = a·b` for row-major `a: [m,k]`, `b: [k,n]`.
#[must_use]
pub fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Naive `out = aᵀ·b` for row-major `a: [k,m]`, `b: [k,n]`.
#[must_use]
pub fn naive_matmul_tn(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), k * m);
    assert_eq!(b.len(), k * n);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[p * m + i] * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Naive `out = a·bᵀ` for row-major `a: [m,k]`, `b: [n,k]`.
#[must_use]
pub fn naive_matmul_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[j * k + p];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Naive stride-1 zero-padded Conv2d forward.
///
/// `x: [batch, in_c, h, w]`, `wgt: [out_c, in_c, k, k]`, `bias: [out_c]` →
/// `[batch, out_c, oh, ow]` with `oh = h + 2·pad + 1 − k`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn naive_conv2d_forward(
    x: &[f32],
    wgt: &[f32],
    bias: &[f32],
    batch: usize,
    in_c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    k: usize,
    pad: usize,
) -> Vec<f32> {
    let (oh, ow) = (h + 2 * pad + 1 - k, w + 2 * pad + 1 - k);
    let mut out = vec![0.0f32; batch * out_c * oh * ow];
    for bi in 0..batch {
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[oc];
                    for ic in 0..in_c {
                        for ky in 0..k {
                            let iy = (oy + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox + kx) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((bi * in_c + ic) * h + iy as usize) * w + ix as usize;
                                let wi = ((oc * in_c + ic) * k + ky) * k + kx;
                                acc += x[xi] * wgt[wi];
                            }
                        }
                    }
                    out[((bi * out_c + oc) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    out
}

/// Naive Conv2d backward → `(gx, gw, gb)`, all freshly allocated.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn naive_conv2d_backward(
    x: &[f32],
    wgt: &[f32],
    g: &[f32],
    batch: usize,
    in_c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    k: usize,
    pad: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let (oh, ow) = (h + 2 * pad + 1 - k, w + 2 * pad + 1 - k);
    let mut gx = vec![0.0f32; batch * in_c * h * w];
    let mut gw = vec![0.0f32; out_c * in_c * k * k];
    let mut gb = vec![0.0f32; out_c];
    for bi in 0..batch {
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let go = g[((bi * out_c + oc) * oh + oy) * ow + ox];
                    gb[oc] += go;
                    for ic in 0..in_c {
                        for ky in 0..k {
                            let iy = (oy + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox + kx) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((bi * in_c + ic) * h + iy as usize) * w + ix as usize;
                                let wi = ((oc * in_c + ic) * k + ky) * k + kx;
                                gw[wi] += go * x[xi];
                                gx[xi] += go * wgt[wi];
                            }
                        }
                    }
                }
            }
        }
    }
    (gx, gw, gb)
}

/// Naive SGD/momentum/FedProx step — one element at a time, every branch
/// evaluated inside the loop, exactly as `Sgd::step` was originally
/// written. The rewritten optimizer must match this **bit-identically**
/// (the update expression per element is unchanged; only the branching
/// moved out of the loop).
pub fn naive_sgd_step(
    params: &mut [f32],
    grads: &[f32],
    reference: Option<&[f32]>,
    velocity: Option<&mut [f32]>,
    lr: f32,
    momentum: f32,
    mu: f32,
) {
    let mut velocity = velocity;
    for i in 0..params.len() {
        let mut g = grads[i];
        if mu > 0.0 {
            g += mu * (params[i] - reference.expect("naive_sgd_step: missing reference")[i]);
        }
        let update = if momentum > 0.0 {
            let vel = velocity
                .as_deref_mut()
                .expect("naive_sgd_step: missing velocity");
            let v = momentum * vel[i] + g;
            vel[i] = v;
            v
        } else {
            g
        };
        params[i] -= lr * update;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_matmul_known() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        assert_eq!(
            naive_matmul(&a, &b, 2, 3, 2),
            vec![58.0, 64.0, 139.0, 154.0]
        );
    }

    #[test]
    fn tn_and_nt_agree_with_explicit_transposes() {
        // a: [2,3], b: [2,3] → aᵀ·b is [3,3]; a·aᵀ is [2,2].
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let at = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0]; // [3,2]
        assert_eq!(
            naive_matmul_tn(&a, &a, 2, 3, 3),
            naive_matmul(&at, &a, 3, 2, 3)
        );
        assert_eq!(
            naive_matmul_nt(&a, &a, 2, 3, 2),
            naive_matmul(&a, &at, 2, 3, 2)
        );
    }

    #[test]
    fn conv_identity_kernel_passes_input_through() {
        // 1×1 kernel of weight 1, no padding: conv is the identity.
        let x: Vec<f32> = (0..2 * 3 * 3).map(|i| i as f32).collect();
        let out = naive_conv2d_forward(&x, &[1.0, 0.0, 0.0, 1.0], &[0.0, 0.0], 1, 2, 3, 3, 2, 1, 0);
        // out channel 0 sees input channel 0, channel 1 sees channel 1.
        assert_eq!(out, x);
    }

    #[test]
    fn naive_sgd_matches_hand_computation() {
        let mut w = vec![1.0f32, -2.0];
        naive_sgd_step(&mut w, &[0.5, -0.5], None, None, 0.1, 0.0, 0.0);
        assert_eq!(w, vec![1.0 - 0.1 * 0.5, -2.0 + 0.1 * 0.5]);
    }
}
