//! # ecofl-tensor
//!
//! A minimal, dependency-light dense tensor and neural-network toolkit used
//! by the Eco-FL reproduction for *real* local training on FL clients.
//!
//! The paper's simulation trains genuine models (the same DNNs as FedAVG)
//! on each client; we reproduce that with a small hand-rolled framework:
//!
//! - [`Tensor`]: row-major `f32` dense tensors with shape checking,
//! - [`layers`]: `Linear`, `ReLU`, `Conv2d`, pooling, flatten — each with
//!   manual backprop verified against finite differences in the tests,
//! - [`network::Network`]: a sequential container exposing flat parameter
//!   vectors (what the FL aggregators exchange),
//! - [`loss`]: stable softmax cross-entropy and accuracy,
//! - [`optim::Sgd`]: SGD with optional momentum and the FedProx proximal
//!   term `µ/2·‖w − w_global‖²` used by Eco-FL's intra-group solver (§5.1).
//!
//! The compute core lives in [`kernel`]: cache-blocked, register-tiled
//! matmul/conv kernels with runtime AVX-512/AVX2+FMA dispatch and fixed-chunk
//! parallelism (results are bit-identical across `ECOFL_THREADS=1/2/8`).
//! The naive triple loops they replaced are retained in [`reference`] as
//! the semantic ground truth; `tests/kernel_equivalence.rs` proves each
//! blocked kernel against them — bit-identically on the portable path,
//! within the documented tolerance where FMA/lane reduction reassociates
//! (see DESIGN.md, "Kernel tiling and the tolerance policy").

pub mod kernel;
pub mod layers;
pub mod loss;
pub mod network;
pub mod optim;
pub mod reference;
pub mod tensor;

pub use kernel::{
    kernel_stats, kernel_stats_enabled, reset_kernel_stats, set_kernel_stats_enabled, KernelStat,
};
pub use layers::{AvgPool2d, Conv2d, Flatten, Layer, Linear, ReLU, Tanh};
pub use loss::{accuracy, softmax, SoftmaxCrossEntropy};
pub use network::Network;
pub use optim::Sgd;
pub use tensor::Tensor;
