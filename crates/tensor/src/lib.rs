//! # ecofl-tensor
//!
//! A minimal, dependency-light dense tensor and neural-network toolkit used
//! by the Eco-FL reproduction for *real* local training on FL clients.
//!
//! The paper's simulation trains genuine models (the same DNNs as FedAVG)
//! on each client; we reproduce that with a small hand-rolled framework:
//!
//! - [`Tensor`]: row-major `f32` dense tensors with shape checking,
//! - [`layers`]: `Linear`, `ReLU`, `Conv2d`, pooling, flatten — each with
//!   manual backprop verified against finite differences in the tests,
//! - [`network::Network`]: a sequential container exposing flat parameter
//!   vectors (what the FL aggregators exchange),
//! - [`loss`]: stable softmax cross-entropy and accuracy,
//! - [`optim::Sgd`]: SGD with optional momentum and the FedProx proximal
//!   term `µ/2·‖w − w_global‖²` used by Eco-FL's intra-group solver (§5.1).
//!
//! Matrix multiplication parallelizes across rows with the compat
//! worker pool above a size
//! threshold; results are bit-identical to the sequential path because rows
//! are independent.

pub mod layers;
pub mod loss;
pub mod network;
pub mod optim;
pub mod tensor;

pub use layers::{AvgPool2d, Conv2d, Flatten, Layer, Linear, ReLU, Tanh};
pub use loss::{accuracy, softmax, SoftmaxCrossEntropy};
pub use network::Network;
pub use optim::Sgd;
pub use tensor::Tensor;
