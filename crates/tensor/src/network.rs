//! Sequential network container.
//!
//! A [`Network`] is an ordered stack of boxed [`Layer`]s plus a softmax
//! cross-entropy head. It exposes the flat parameter-vector view that the
//! FL aggregators operate on: `params()` / `set_params()` round-trip the
//! entire model as one `Vec<f32>`, and `grads()` yields the matching
//! gradient vector after a backward pass.

use crate::layers::Layer;
use crate::loss::{accuracy, SoftmaxCrossEntropy};
use crate::tensor::Tensor;

/// A sequential feed-forward classification network.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    head: SoftmaxCrossEntropy,
}

impl Network {
    /// Builds a network from an ordered list of layers.
    #[must_use]
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self {
            layers,
            head: SoftmaxCrossEntropy::new(),
        }
    }

    /// Number of layers (excluding the loss head).
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of scalar parameters.
    #[must_use]
    pub fn param_len(&self) -> usize {
        self.layers.iter().map(|l| l.param_len()).sum()
    }

    /// Runs a forward pass and returns the logits.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Forward + loss + backward: accumulates gradients and returns the
    /// mean batch loss.
    pub fn train_step(&mut self, input: &Tensor, targets: &[usize]) -> f32 {
        let logits = self.forward(input);
        let (loss, mut grad) = self.head.loss_and_grad(&logits, targets);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        loss
    }

    /// Mean loss and accuracy without touching gradients.
    ///
    /// Drops the forward's cached activations afterwards so evaluation
    /// never desynchronizes the FIFO forward/backward matching used by
    /// pipelined training.
    pub fn evaluate(&mut self, input: &Tensor, targets: &[usize]) -> (f32, f64) {
        let logits = self.forward(input);
        self.clear_caches();
        let (loss, _) = self.head.loss_and_grad(&logits, targets);
        (loss, accuracy(&logits, targets))
    }

    /// Drops all cached forward activations (inference-only cleanup).
    pub fn clear_caches(&mut self) {
        for layer in &mut self.layers {
            layer.clear_cache();
        }
    }

    /// All parameters as one flat vector (layer order, fixed layout).
    #[must_use]
    pub fn params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_len());
        self.params_into(&mut out);
        out
    }

    /// Clears `out` and writes all parameters into it, reusing its
    /// allocation — the hot-loop variant of [`Network::params`] (local
    /// training extracts the full vector every mini-batch).
    pub fn params_into(&self, out: &mut Vec<f32>) {
        out.clear();
        for layer in &self.layers {
            layer.write_params(out);
        }
    }

    /// All accumulated gradients, same layout as [`Network::params`].
    #[must_use]
    pub fn grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_len());
        self.grads_into(&mut out);
        out
    }

    /// Clears `out` and writes all gradients into it, reusing its
    /// allocation — the hot-loop variant of [`Network::grads`].
    pub fn grads_into(&self, out: &mut Vec<f32>) {
        out.clear();
        for layer in &self.layers {
            layer.write_grads(out);
        }
    }

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Panics
    /// Panics if `src.len()` differs from [`Network::param_len`].
    pub fn set_params(&mut self, src: &[f32]) {
        assert_eq!(
            src.len(),
            self.param_len(),
            "set_params: expected {} values, got {}",
            self.param_len(),
            src.len()
        );
        let mut offset = 0;
        for layer in &mut self.layers {
            offset += layer.read_params(&src[offset..]);
        }
        debug_assert_eq!(offset, src.len());
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, ReLU};
    use crate::optim::Sgd;
    use ecofl_util::Rng;

    fn tiny_net(rng: &mut Rng) -> Network {
        Network::new(vec![
            Box::new(Linear::new(4, 8, rng)),
            Box::new(ReLU::new()),
            Box::new(Linear::new(8, 3, rng)),
        ])
    }

    /// Linearly separable 3-class toy problem.
    fn toy_batch() -> (Tensor, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..30 {
            let class = i % 3;
            let mut row = vec![0.1f32; 4];
            row[class] = 1.0 + (i as f32 % 5.0) * 0.01;
            xs.extend_from_slice(&row);
            ys.push(class);
        }
        (Tensor::from_vec(xs, &[30, 4]), ys)
    }

    #[test]
    fn param_round_trip() {
        let mut rng = Rng::new(1);
        let mut net = tiny_net(&mut rng);
        let p = net.params();
        assert_eq!(p.len(), net.param_len());
        assert_eq!(p.len(), 4 * 8 + 8 + 8 * 3 + 3);
        net.set_params(&p);
        assert_eq!(net.params(), p);
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let mut rng = Rng::new(2);
        let mut net = tiny_net(&mut rng);
        let (x, y) = toy_batch();
        let mut opt = Sgd::new(0.5);
        let (initial_loss, _) = net.evaluate(&x, &y);
        for _ in 0..60 {
            net.zero_grads();
            let _ = net.train_step(&x, &y);
            let mut params = net.params();
            opt.step(&mut params, &net.grads(), None);
            net.set_params(&params);
        }
        let (final_loss, acc) = net.evaluate(&x, &y);
        assert!(
            final_loss < initial_loss * 0.5,
            "{initial_loss} -> {final_loss}"
        );
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn grads_layout_matches_params() {
        let mut rng = Rng::new(3);
        let mut net = tiny_net(&mut rng);
        let (x, y) = toy_batch();
        net.zero_grads();
        let _ = net.train_step(&x, &y);
        assert_eq!(net.grads().len(), net.param_len());
    }

    #[test]
    fn zero_grads_clears() {
        let mut rng = Rng::new(4);
        let mut net = tiny_net(&mut rng);
        let (x, y) = toy_batch();
        let _ = net.train_step(&x, &y);
        assert!(net.grads().iter().any(|&g| g != 0.0));
        net.zero_grads();
        assert!(net.grads().iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "set_params")]
    fn set_params_checks_length() {
        let mut rng = Rng::new(5);
        let mut net = tiny_net(&mut rng);
        net.set_params(&[0.0; 3]);
    }
}
