//! Stochastic gradient descent with the FedProx proximal term.
//!
//! Eco-FL's intra-group local solver (§5.1) minimizes
//! `h_c(w) = F_c(w) + µ/2 · ‖w − w_group‖²` — plain local loss plus a
//! proximal pull toward the group model, which damps client drift under
//! non-IID data (FedProx, Sahu et al. 2018). The proximal gradient
//! contribution is `µ · (w − w_ref)` and is applied here, at the optimizer,
//! so models stay oblivious to the FL algorithm above them.

use ecofl_compat::serde::{Deserialize, Serialize};

/// SGD over flat parameter vectors, with optional momentum and an optional
/// FedProx proximal pull toward a reference parameter vector.
///
/// # Examples
///
/// ```
/// use ecofl_tensor::Sgd;
/// let mut opt = Sgd::new(0.1);
/// let mut w = vec![1.0f32];
/// opt.step(&mut w, &[2.0], None); // w ← 1 − 0.1·2
/// assert!((w[0] - 0.8).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    mu: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    #[must_use]
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            mu: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Adds classical momentum.
    #[must_use]
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }

    /// Sets the FedProx proximal coefficient `µ` (0 disables the term).
    #[must_use]
    pub fn with_proximal(mut self, mu: f32) -> Self {
        assert!(mu >= 0.0, "proximal coefficient must be non-negative");
        self.mu = mu;
        self
    }

    /// Learning rate.
    #[must_use]
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Proximal coefficient `µ`.
    #[must_use]
    pub fn mu(&self) -> f32 {
        self.mu
    }

    /// Applies one update step in place.
    ///
    /// `reference` is the anchor `w_group` for the proximal term; pass
    /// `None` when `µ = 0` or no anchor applies (e.g. plain FedAvg local
    /// training).
    ///
    /// The mode branches (`µ > 0`? momentum?) are resolved once, outside
    /// the element loop, so each specialization below is a straight-line
    /// fused-multiply-add stream the compiler vectorizes. The per-element
    /// arithmetic is unchanged from the original branch-in-loop form, so
    /// results stay **bit-identical** to
    /// [`crate::reference::naive_sgd_step`] on every configuration.
    ///
    /// # Panics
    /// Panics if vector lengths disagree, or if `µ > 0` but no reference is
    /// supplied.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32], reference: Option<&[f32]>) {
        assert_eq!(
            params.len(),
            grads.len(),
            "step: params/grads length mismatch"
        );
        let anchor = if self.mu > 0.0 {
            let anchor = reference.expect("step: proximal term requires a reference vector");
            assert_eq!(
                params.len(),
                anchor.len(),
                "step: reference length mismatch"
            );
            Some(anchor)
        } else {
            None
        };
        if self.momentum > 0.0 && self.velocity.len() != params.len() {
            self.velocity = vec![0.0; params.len()];
        }
        let (lr, mom, mu) = (self.lr, self.momentum, self.mu);
        match (anchor, mom > 0.0) {
            (None, false) => {
                for (p, &g) in params.iter_mut().zip(grads) {
                    *p -= lr * g;
                }
            }
            (None, true) => {
                for ((p, &g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
                    let vnew = mom * *v + g;
                    *v = vnew;
                    *p -= lr * vnew;
                }
            }
            (Some(anchor), false) => {
                for ((p, &g), &a) in params.iter_mut().zip(grads).zip(anchor) {
                    // ∇[µ/2‖w − w_ref‖²] = µ(w − w_ref)
                    let gp = g + mu * (*p - a);
                    *p -= lr * gp;
                }
            }
            (Some(anchor), true) => {
                for (((p, &g), &a), v) in params
                    .iter_mut()
                    .zip(grads)
                    .zip(anchor)
                    .zip(&mut self.velocity)
                {
                    let gp = g + mu * (*p - a);
                    let vnew = mom * *v + gp;
                    *v = vnew;
                    *p -= lr * vnew;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_step() {
        let mut opt = Sgd::new(0.1);
        let mut w = vec![1.0, -2.0];
        opt.step(&mut w, &[0.5, -0.5], None);
        assert!((w[0] - 0.95).abs() < 1e-6);
        assert!((w[1] + 1.95).abs() < 1e-6);
    }

    #[test]
    fn proximal_pulls_toward_reference() {
        let mut opt = Sgd::new(0.1).with_proximal(1.0);
        let reference = vec![0.0f32];
        let mut w = vec![10.0f32];
        // Zero data gradient: only the proximal pull acts.
        for _ in 0..100 {
            opt.step(&mut w, &[0.0], Some(&reference));
        }
        assert!(
            w[0].abs() < 0.01,
            "w should decay toward the anchor, got {}",
            w[0]
        );
    }

    #[test]
    fn proximal_strength_scales_with_mu() {
        let reference = vec![0.0f32];
        let mut w_small = vec![1.0f32];
        let mut w_large = vec![1.0f32];
        Sgd::new(0.1)
            .with_proximal(0.1)
            .step(&mut w_small, &[0.0], Some(&reference));
        Sgd::new(0.1)
            .with_proximal(1.0)
            .step(&mut w_large, &[0.0], Some(&reference));
        assert!(w_large[0] < w_small[0]);
    }

    #[test]
    fn momentum_accelerates_constant_gradient() {
        let mut plain = Sgd::new(0.1);
        let mut momentum = Sgd::new(0.1).with_momentum(0.9);
        let mut wp = vec![0.0f32];
        let mut wm = vec![0.0f32];
        for _ in 0..10 {
            plain.step(&mut wp, &[1.0], None);
            momentum.step(&mut wm, &[1.0], None);
        }
        assert!(
            wm[0] < wp[0],
            "momentum should move farther: {} vs {}",
            wm[0],
            wp[0]
        );
    }

    #[test]
    #[should_panic(expected = "reference")]
    fn proximal_requires_reference() {
        let mut opt = Sgd::new(0.1).with_proximal(0.5);
        let mut w = vec![1.0f32];
        opt.step(&mut w, &[0.0], None);
    }

    #[test]
    fn minimizes_quadratic() {
        // f(w) = (w-3)², ∇f = 2(w-3)
        let mut opt = Sgd::new(0.1).with_momentum(0.5);
        let mut w = vec![0.0f32];
        for _ in 0..100 {
            let g = 2.0 * (w[0] - 3.0);
            opt.step(&mut w, &[g], None);
        }
        assert!((w[0] - 3.0).abs() < 1e-3);
    }
}
