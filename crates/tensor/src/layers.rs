//! Neural-network layers with manual backprop.
//!
//! Each layer caches what its backward pass needs during `forward`. The
//! [`Layer`] trait also exposes flat parameter/gradient serialization: FL
//! aggregation (FedAvg / FedAsync / Eco-FL's hierarchical scheme) exchanges
//! flat `f32` vectors, and the pipeline partitioner reasons about per-layer
//! parameter byte counts.

use crate::kernel::{self, ConvShape};
use crate::tensor::Tensor;
use ecofl_util::Rng;
use std::collections::VecDeque;

/// A differentiable network layer.
///
/// Contract: `backward` must be called with the gradient of the loss with
/// respect to the output of the *most recent* `forward`, and returns the
/// gradient with respect to that forward's input. Parameter gradients
/// accumulate until [`Layer::zero_grads`].
pub trait Layer: Send {
    /// Computes the layer output, caching activations for backward.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Backpropagates `grad_out` (d loss / d output), accumulating parameter
    /// gradients and returning d loss / d input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Total number of scalar parameters.
    fn param_len(&self) -> usize {
        0
    }

    /// Appends all parameters to `out` in a fixed layer-defined order.
    fn write_params(&self, _out: &mut Vec<f32>) {}

    /// Reads parameters back from `src`, returning the number consumed.
    fn read_params(&mut self, _src: &[f32]) -> usize {
        0
    }

    /// Appends all accumulated gradients to `out` (same order as params).
    fn write_grads(&self, _out: &mut Vec<f32>) {}

    /// Clears accumulated gradients.
    fn zero_grads(&mut self) {}

    /// Drops any cached forward activations without running backward.
    ///
    /// Needed after inference-only forwards (evaluation) so pipelined
    /// training, which matches forwards and backwards FIFO, stays in sync.
    fn clear_cache(&mut self) {}

    /// Human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Fully connected layer: `y = x W + b`, `x: [B, in]`, `W: [in, out]`.
pub struct Linear {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: VecDeque<Tensor>,
}

impl Linear {
    /// He-initialized linear layer.
    #[must_use]
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        let std = (2.0 / in_dim as f64).sqrt() as f32;
        Self {
            weight: Tensor::randn(&[in_dim, out_dim], std, rng),
            ..Self::zeroed(in_dim, out_dim)
        }
    }

    /// Zero-initialized linear layer — for receivers that immediately
    /// overwrite the parameters (`set_params`), skipping the Gaussian
    /// draws of [`Linear::new`].
    #[must_use]
    pub fn zeroed(in_dim: usize, out_dim: usize) -> Self {
        Self {
            weight: Tensor::zeros(&[in_dim, out_dim]),
            bias: Tensor::zeros(&[out_dim]),
            grad_weight: Tensor::zeros(&[in_dim, out_dim]),
            grad_bias: Tensor::zeros(&[out_dim]),
            cached_input: VecDeque::new(),
        }
    }

    /// Input dimensionality.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Output dimensionality.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.weight.shape()[1]
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut out = input.matmul(&self.weight);
        out.add_row_bias(&self.bias);
        self.cached_input.push_back(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .pop_front()
            .expect("Linear::backward called before forward");
        // dW = xᵀ g ; db = Σ_rows g ; dx = g Wᵀ. Both transpose-composed
        // products run fused kernels that never materialize a transpose.
        input.matmul_tn_acc(grad_out, &mut self.grad_weight);
        let gb = grad_out.sum_rows();
        self.grad_bias.add_scaled(&gb, 1.0);
        grad_out.matmul_nt(&self.weight)
    }

    fn param_len(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weight.data());
        out.extend_from_slice(self.bias.data());
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let w = self.weight.len();
        let b = self.bias.len();
        self.weight.data_mut().copy_from_slice(&src[..w]);
        self.bias.data_mut().copy_from_slice(&src[w..w + b]);
        w + b
    }

    fn write_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.grad_weight.data());
        out.extend_from_slice(self.grad_bias.data());
    }

    fn zero_grads(&mut self) {
        self.grad_weight.zero();
        self.grad_bias.zero();
    }

    fn clear_cache(&mut self) {
        self.cached_input.clear();
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

/// Rectified linear unit, applied element-wise.
#[derive(Default)]
pub struct ReLU {
    masks: VecDeque<Vec<bool>>,
}

impl ReLU {
    /// Creates a ReLU layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut mask = Vec::with_capacity(input.len());
        let data = input
            .data()
            .iter()
            .map(|&x| {
                let keep = x > 0.0;
                mask.push(keep);
                if keep {
                    x
                } else {
                    0.0
                }
            })
            .collect();
        self.masks.push_back(mask);
        Tensor::from_vec(data, input.shape())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self
            .masks
            .pop_front()
            .expect("ReLU::backward called before forward");
        assert_eq!(
            grad_out.len(),
            mask.len(),
            "ReLU::backward: gradient size mismatch with cached forward"
        );
        let data = grad_out
            .data()
            .iter()
            .zip(&mask)
            .map(|(&g, &keep)| if keep { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_out.shape())
    }

    fn clear_cache(&mut self) {
        self.masks.clear();
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Hyperbolic-tangent activation, applied element-wise.
#[derive(Default)]
pub struct Tanh {
    outputs: VecDeque<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let data: Vec<f32> = input.data().iter().map(|x| x.tanh()).collect();
        let out = Tensor::from_vec(data, input.shape());
        // d tanh(x)/dx = 1 − tanh(x)², so caching the *output* suffices.
        self.outputs.push_back(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .outputs
            .pop_front()
            .expect("Tanh::backward called before forward");
        assert_eq!(
            grad_out.len(),
            y.len(),
            "Tanh::backward: gradient size mismatch with cached forward"
        );
        let data = grad_out
            .data()
            .iter()
            .zip(y.data())
            .map(|(&g, &t)| g * (1.0 - t * t))
            .collect();
        Tensor::from_vec(data, grad_out.shape())
    }

    fn clear_cache(&mut self) {
        self.outputs.clear();
    }

    fn name(&self) -> &'static str {
        "tanh"
    }
}

/// 2-D convolution over `[B, C, H, W]` inputs, stride 1, symmetric zero
/// padding. Kernel shape `[OC, C, K, K]`.
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    padding: usize,
    cached_input: VecDeque<Tensor>,
}

impl Conv2d {
    /// He-initialized convolution.
    #[must_use]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: usize,
        rng: &mut Rng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let std = (2.0 / fan_in as f64).sqrt() as f32;
        Self {
            weight: Tensor::randn(&[out_channels, in_channels, kernel, kernel], std, rng),
            ..Self::zeroed(in_channels, out_channels, kernel, padding)
        }
    }

    /// Zero-initialized convolution — for receivers that immediately
    /// overwrite the parameters (`set_params`), skipping the Gaussian
    /// draws of [`Conv2d::new`].
    #[must_use]
    pub fn zeroed(in_channels: usize, out_channels: usize, kernel: usize, padding: usize) -> Self {
        Self {
            weight: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            bias: Tensor::zeros(&[out_channels]),
            grad_weight: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            grad_bias: Tensor::zeros(&[out_channels]),
            in_channels,
            out_channels,
            kernel,
            padding,
            cached_input: VecDeque::new(),
        }
    }

    fn conv_shape(&self, b: usize, h: usize, w: usize) -> ConvShape {
        ConvShape {
            batch: b,
            in_c: self.in_channels,
            h,
            w,
            out_c: self.out_channels,
            k: self.kernel,
            pad: self.padding,
            oh: h + 2 * self.padding + 1 - self.kernel,
            ow: w + 2 * self.padding + 1 - self.kernel,
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let [b, c, h, w] = *input.shape() else {
            panic!("Conv2d: expected 4-D input, got {:?}", input.shape());
        };
        assert_eq!(c, self.in_channels, "Conv2d: channel mismatch");
        let s = self.conv_shape(b, h, w);
        let mut out = vec![0.0f32; b * s.out_c * s.oh * s.ow];
        kernel::conv2d_forward(
            input.data(),
            self.weight.data(),
            self.bias.data(),
            &s,
            &mut out,
        );
        self.cached_input.push_back(input.clone());
        Tensor::from_vec(out, &[b, s.out_c, s.oh, s.ow])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .pop_front()
            .expect("Conv2d::backward called before forward");
        let [b, _, h, w] = *input.shape() else {
            unreachable!()
        };
        let s = self.conv_shape(b, h, w);
        assert_eq!(
            grad_out.shape(),
            &[b, s.out_c, s.oh, s.ow],
            "Conv2d::backward: gradient shape mismatch"
        );
        let mut gx = vec![0.0f32; input.len()];
        kernel::conv2d_backward(
            input.data(),
            self.weight.data(),
            grad_out.data(),
            &s,
            &mut gx,
            self.grad_weight.data_mut(),
            self.grad_bias.data_mut(),
        );
        Tensor::from_vec(gx, input.shape())
    }

    fn param_len(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn write_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weight.data());
        out.extend_from_slice(self.bias.data());
    }

    fn read_params(&mut self, src: &[f32]) -> usize {
        let w = self.weight.len();
        let b = self.bias.len();
        self.weight.data_mut().copy_from_slice(&src[..w]);
        self.bias.data_mut().copy_from_slice(&src[w..w + b]);
        w + b
    }

    fn write_grads(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.grad_weight.data());
        out.extend_from_slice(self.grad_bias.data());
    }

    fn zero_grads(&mut self) {
        self.grad_weight.zero();
        self.grad_bias.zero();
    }

    fn clear_cache(&mut self) {
        self.cached_input.clear();
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }
}

/// Non-overlapping average pooling with square window `k × k` over
/// `[B, C, H, W]`. Requires `H` and `W` divisible by `k`.
pub struct AvgPool2d {
    k: usize,
    cached_shapes: VecDeque<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates a pooling layer with window and stride `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "AvgPool2d: window must be positive");
        Self {
            k,
            cached_shapes: VecDeque::new(),
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let [b, c, h, w] = *input.shape() else {
            panic!("AvgPool2d: expected 4-D input, got {:?}", input.shape());
        };
        assert!(
            h % self.k == 0 && w % self.k == 0,
            "AvgPool2d: H={h}, W={w} not divisible by k={}",
            self.k
        );
        let (oh, ow) = (h / self.k, w / self.k);
        let inv = 1.0 / (self.k * self.k) as f32;
        let x = input.data();
        let mut out = vec![0.0f32; b * c * oh * ow];
        for bc in 0..b * c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..self.k {
                        for kx in 0..self.k {
                            acc += x[(bc * h + oy * self.k + ky) * w + ox * self.k + kx];
                        }
                    }
                    out[(bc * oh + oy) * ow + ox] = acc * inv;
                }
            }
        }
        self.cached_shapes.push_back(input.shape().to_vec());
        Tensor::from_vec(out, &[b, c, oh, ow])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_shapes
            .pop_front()
            .expect("AvgPool2d::backward called before forward");
        let shape = &shape;
        let [b, c, h, w] = *shape.as_slice() else {
            unreachable!()
        };
        let (oh, ow) = (h / self.k, w / self.k);
        let inv = 1.0 / (self.k * self.k) as f32;
        let g = grad_out.data();
        let mut gx = vec![0.0f32; b * c * h * w];
        for bc in 0..b * c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let go = g[(bc * oh + oy) * ow + ox] * inv;
                    for ky in 0..self.k {
                        for kx in 0..self.k {
                            gx[(bc * h + oy * self.k + ky) * w + ox * self.k + kx] = go;
                        }
                    }
                }
            }
        }
        Tensor::from_vec(gx, shape)
    }

    fn clear_cache(&mut self) {
        self.cached_shapes.clear();
    }

    fn name(&self) -> &'static str {
        "avgpool2d"
    }
}

/// Flattens `[B, ...]` to `[B, prod(...)]`.
#[derive(Default)]
pub struct Flatten {
    cached_shapes: VecDeque<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let shape = input.shape().to_vec();
        assert!(
            !shape.is_empty(),
            "Flatten: input must have a batch dimension"
        );
        let b = shape[0];
        let rest: usize = shape[1..].iter().product();
        self.cached_shapes.push_back(shape);
        input.clone().reshape(&[b, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_shapes
            .pop_front()
            .expect("Flatten::backward called before forward");
        grad_out.clone().reshape(&shape)
    }

    fn clear_cache(&mut self) {
        self.cached_shapes.clear();
    }

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::SoftmaxCrossEntropy;

    /// Central finite-difference check of d loss / d params for one layer
    /// followed by a cross-entropy head.
    fn finite_diff_check<L: Layer>(mut layer: L, input: Tensor, targets: &[usize], tol: f32) {
        let mut head = SoftmaxCrossEntropy::new();

        // Analytic gradient.
        layer.zero_grads();
        let out = layer.forward(&input);
        let out2 = out
            .clone()
            .reshape(&[out.shape()[0], out.len() / out.shape()[0]]);
        let (_, grad) = head.loss_and_grad(&out2, targets);
        let grad = grad.reshape(out.shape());
        let _ = layer.backward(&grad);
        let mut analytic = Vec::new();
        layer.write_grads(&mut analytic);

        // Numeric gradient.
        let mut params = Vec::new();
        layer.write_params(&mut params);
        let eps = 1e-2f32;
        for i in (0..params.len()).step_by((params.len() / 24).max(1)) {
            let orig = params[i];
            params[i] = orig + eps;
            layer.read_params(&params);
            let out = layer.forward(&input);
            let out = out
                .clone()
                .reshape(&[out.shape()[0], out.len() / out.shape()[0]]);
            let (lp, _) = head.loss_and_grad(&out, targets);
            params[i] = orig - eps;
            layer.read_params(&params);
            let out = layer.forward(&input);
            let out = out
                .clone()
                .reshape(&[out.shape()[0], out.len() / out.shape()[0]]);
            let (lm, _) = head.loss_and_grad(&out, targets);
            params[i] = orig;
            layer.read_params(&params);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic[i]).abs() < tol.max(0.05 * numeric.abs()),
                "param {i}: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn linear_forward_known() {
        let mut rng = Rng::new(1);
        let mut l = Linear::new(2, 2, &mut rng);
        l.read_params(&[1.0, 2.0, 3.0, 4.0, 0.5, -0.5]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = l.forward(&x);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn linear_gradients_match_finite_difference() {
        let mut rng = Rng::new(2);
        let layer = Linear::new(6, 4, &mut rng);
        let input = Tensor::randn(&[3, 6], 1.0, &mut rng);
        finite_diff_check(layer, input, &[0, 2, 3], 2e-2);
    }

    #[test]
    fn conv_gradients_match_finite_difference() {
        let mut rng = Rng::new(3);
        let layer = Conv2d::new(2, 3, 3, 1, &mut rng);
        let input = Tensor::randn(&[2, 2, 4, 4], 1.0, &mut rng);
        // Conv output [2,3,4,4] -> treated as [2, 48] logits by the head.
        finite_diff_check(layer, input, &[5, 11], 5e-2);
    }

    #[test]
    fn relu_masks_gradient() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[2, 2]);
        let y = r.forward(&x);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let g = Tensor::full(&[2, 2], 1.0);
        let gx = r.backward(&g);
        assert_eq!(gx.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_forward_and_gradient() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![-2.0, 0.0, 1.0], &[1, 3]);
        let y = t.forward(&x);
        assert!((y.data()[0] - (-2.0f32).tanh()).abs() < 1e-6);
        assert_eq!(y.data()[1], 0.0);
        let g = Tensor::full(&[1, 3], 1.0);
        let gx = t.backward(&g);
        // Derivative at 0 is 1; saturates toward the tails.
        assert!((gx.data()[1] - 1.0).abs() < 1e-6);
        assert!(gx.data()[0] < gx.data()[1]);
    }

    #[test]
    fn tanh_gradient_matches_finite_difference() {
        let eps = 1e-3f32;
        for x0 in [-1.5f32, -0.2, 0.7] {
            let mut t = Tanh::new();
            let x = Tensor::from_vec(vec![x0], &[1, 1]);
            let _ = t.forward(&x);
            let gx = t.backward(&Tensor::full(&[1, 1], 1.0));
            let numeric = ((x0 + eps).tanh() - (x0 - eps).tanh()) / (2.0 * eps);
            assert!((gx.data()[0] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn avgpool_forward_backward() {
        let mut p = AvgPool2d::new(2);
        let x = Tensor::from_vec((1..=16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let y = p.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[3.5, 5.5, 11.5, 13.5]);
        let g = Tensor::full(&[1, 1, 2, 2], 4.0);
        let gx = p.backward(&g);
        assert!(gx.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn flatten_round_trip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 5]);
        let y = f.forward(&x);
        assert_eq!(y.shape(), &[2, 60]);
        let gx = f.backward(&y);
        assert_eq!(gx.shape(), &[2, 3, 4, 5]);
    }

    #[test]
    fn conv_output_shape_with_padding() {
        let mut rng = Rng::new(4);
        let mut c = Conv2d::new(1, 2, 3, 1, &mut rng);
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        let y = c.forward(&x);
        assert_eq!(y.shape(), &[1, 2, 8, 8], "same-padding keeps H, W");
    }

    #[test]
    fn param_round_trip() {
        let mut rng = Rng::new(5);
        let mut l = Linear::new(4, 3, &mut rng);
        let mut before = Vec::new();
        l.write_params(&mut before);
        assert_eq!(before.len(), l.param_len());
        let consumed = l.read_params(&before);
        assert_eq!(consumed, before.len());
        let mut after = Vec::new();
        l.write_params(&mut after);
        assert_eq!(before, after);
    }
}
