//! Peak-memory contract of the streaming-aggregation path: an N-client
//! run keeps at most [`TRAIN_FOLD_CHUNK`] finished per-client weight
//! vectors ([`LocalUpdate`]s) alive at any instant — bounded by the
//! fold chunk, not by cohort size and not by the client population.
//!
//! Lives in its own integration binary so the process-wide live/peak
//! counters see no traffic from unrelated tests.

use ecofl_data::{federated::PartitionScheme, FederatedDataset, SyntheticSpec};
use ecofl_fl::client::{live_update_count, peak_live_update_count, reset_peak_live_updates};
use ecofl_fl::engine::{run, FlSetup, Strategy};
use ecofl_fl::sched::TRAIN_FOLD_CHUNK;
use ecofl_fl::FlConfig;
use ecofl_models::ModelArch;

fn setup(cfg: FlConfig) -> FlSetup {
    let data = FederatedDataset::generate(
        &SyntheticSpec::mnist_like(),
        cfg.num_clients,
        8,
        10,
        PartitionScheme::Iid,
        None,
        cfg.seed,
    );
    FlSetup {
        data,
        arch: ModelArch::Mlp,
        config: cfg,
    }
}

#[test]
fn live_weight_vectors_bounded_by_fold_chunk_not_population() {
    // Cohorts of 150 clients — well past the 64-update fold chunk — so
    // the old materialize-everything path would peak at 150 live
    // updates per round.
    let cfg = FlConfig {
        num_clients: 200,
        clients_per_round: 150,
        local_epochs: 1,
        horizon: 700.0,
        eval_interval: 100.0,
        ..FlConfig::tiny()
    };
    assert!(cfg.clients_per_round > TRAIN_FOLD_CHUNK);
    let s = setup(cfg);

    reset_peak_live_updates();
    let r = run(Strategy::FedAvg, &s);
    assert!(r.global_updates >= 2, "need full-size cohorts to exercise");
    assert_eq!(live_update_count(), 0, "updates must not outlive cohorts");
    let peak = peak_live_update_count();
    assert!(peak > 0, "counters should have seen training");
    assert!(
        peak <= TRAIN_FOLD_CHUNK,
        "peak live weight vectors ({peak}) must be bounded by the fold \
         chunk ({TRAIN_FOLD_CHUNK}), got a cohort-sized residency instead"
    );

    // The hierarchical (Eco-FL) path must obey the same bound.
    let cfg = FlConfig {
        num_clients: 200,
        clients_per_round: 150,
        num_groups: 2,
        local_epochs: 1,
        horizon: 700.0,
        eval_interval: 100.0,
        ..FlConfig::tiny()
    };
    let s = setup(cfg);
    reset_peak_live_updates();
    let r = run(
        Strategy::EcoFl {
            dynamic_grouping: true,
        },
        &s,
    );
    assert!(r.global_updates >= 2);
    assert_eq!(live_update_count(), 0);
    assert!(peak_live_update_count() <= TRAIN_FOLD_CHUNK);
}
