//! Failure-injection tests: the FL engine must stay live and keep
//! learning when selected clients crash or disconnect mid-round.

use ecofl_data::federated::PartitionScheme;
use ecofl_data::{FederatedDataset, SyntheticSpec};
use ecofl_fl::engine::{run, FlSetup, Strategy};
use ecofl_fl::FlConfig;
use ecofl_models::ModelArch;

fn setup(failure_prob: f64, seed: u64) -> FlSetup {
    let config = FlConfig {
        num_clients: 24,
        clients_per_round: 8,
        num_groups: 3,
        horizon: 500.0,
        eval_interval: 60.0,
        failure_prob,
        seed,
        ..FlConfig::default()
    };
    let data = FederatedDataset::generate(
        &SyntheticSpec::mnist_like(),
        config.num_clients,
        40,
        20,
        PartitionScheme::ClassesPerClient(2),
        None,
        seed,
    );
    FlSetup {
        data,
        arch: ModelArch::Mlp,
        config,
    }
}

#[test]
fn all_strategies_survive_moderate_failures() {
    let s = setup(0.3, 31);
    for strategy in [
        Strategy::FedAvg,
        Strategy::FedAsync,
        Strategy::FedAt,
        Strategy::EcoFl {
            dynamic_grouping: true,
        },
    ] {
        let r = run(strategy, &s);
        assert!(
            r.global_updates > 0,
            "{}: engine must stay live under 30% failures",
            r.strategy
        );
        assert!(
            r.best_accuracy > 0.3,
            "{}: must still learn (got {:.2})",
            r.strategy,
            r.best_accuracy
        );
    }
}

#[test]
fn extreme_failures_do_not_hang_or_panic() {
    let s = setup(0.95, 32);
    let r = run(
        Strategy::EcoFl {
            dynamic_grouping: true,
        },
        &s,
    );
    // With 95% failures most rounds are empty, but the loop must reach the
    // horizon without deadlocking.
    assert!(r.accuracy.last().is_some());
}

#[test]
fn failures_cost_accuracy_but_not_correctness() {
    let clean = run(Strategy::FedAvg, &setup(0.0, 33));
    let faulty = run(Strategy::FedAvg, &setup(0.5, 33));
    assert!(
        faulty.global_updates <= clean.global_updates,
        "failures cannot create extra updates"
    );
    assert!(
        faulty.best_accuracy <= clean.best_accuracy + 0.05,
        "50% failures should not outperform a clean run"
    );
    assert!(
        faulty.best_accuracy > 0.2,
        "engine must still make progress"
    );
}

#[test]
fn failure_prob_zero_is_bitwise_identical_to_default() {
    let a = run(Strategy::FedAvg, &setup(0.0, 34));
    let b = run(Strategy::FedAvg, &setup(0.0, 34));
    assert_eq!(a.accuracy, b.accuracy);
}
