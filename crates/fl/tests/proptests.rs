//! Property-based tests for aggregation math, the latency model, and
//! the scheduler's dropout path.

use ecofl_compat::check::{
    any_u64, f32_in, f64_in, forall, pair, triple, u64_in, usize_in, vec_exact, vec_in,
};
use ecofl_fl::aggregate::{fedasync_mix, staleness_alpha, weighted_average};
use ecofl_fl::config::DynamicsConfig;
use ecofl_fl::latency::LatencyModel;
use ecofl_fl::sched::surviving;
use ecofl_util::Rng;

const CASES: usize = 256;

#[test]
fn weighted_average_is_convex_combination() {
    let updates = vec_in(
        pair(vec_exact(f32_in(-10.0, 10.0), 5), f64_in(0.1, 100.0)),
        1,
        10,
    );
    forall(
        "weighted_average_is_convex_combination",
        CASES,
        &updates,
        |updates| {
            let refs: Vec<(&[f32], f64)> =
                updates.iter().map(|(p, w)| (p.as_slice(), *w)).collect();
            let avg = weighted_average(&refs);
            for dim in 0..5 {
                let lo = updates
                    .iter()
                    .map(|(p, _)| p[dim])
                    .fold(f32::INFINITY, f32::min);
                let hi = updates
                    .iter()
                    .map(|(p, _)| p[dim])
                    .fold(f32::NEG_INFINITY, f32::max);
                assert!(avg[dim] >= lo - 1e-4 && avg[dim] <= hi + 1e-4);
            }
        },
    );
}

#[test]
fn weighted_average_scale_invariant_in_weights() {
    let input = triple(
        vec_in(vec_exact(f32_in(-5.0, 5.0), 4), 2, 6),
        vec_exact(f64_in(0.1, 10.0), 6),
        f64_in(0.1, 100.0),
    );
    forall(
        "weighted_average_scale_invariant_in_weights",
        CASES,
        &input,
        |(params, weights, scale)| {
            let n = params.len();
            let w = &weights[..n];
            let refs: Vec<(&[f32], f64)> = params
                .iter()
                .zip(w)
                .map(|(p, &wt)| (p.as_slice(), wt))
                .collect();
            let scaled: Vec<(&[f32], f64)> = params
                .iter()
                .zip(w)
                .map(|(p, &wt)| (p.as_slice(), wt * scale))
                .collect();
            let a = weighted_average(&refs);
            let b = weighted_average(&scaled);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-4);
            }
        },
    );
}

#[test]
fn fedasync_mix_interpolates() {
    let input = triple(
        vec_in(f32_in(-10.0, 10.0), 1, 20),
        vec_in(f32_in(-10.0, 10.0), 1, 20),
        f64_in(0.01, 1.0),
    );
    forall(
        "fedasync_mix_interpolates",
        CASES,
        &input,
        |(global, delta, alpha)| {
            let n = global.len().min(delta.len());
            let mut w = global[..n].to_vec();
            let new = &delta[..n];
            let before = w.clone();
            fedasync_mix(&mut w, new, *alpha);
            for i in 0..n {
                let lo = before[i].min(new[i]) - 1e-4;
                let hi = before[i].max(new[i]) + 1e-4;
                assert!(w[i] >= lo && w[i] <= hi);
            }
        },
    );
}

#[test]
fn fedasync_alpha_one_replaces() {
    let global = vec_in(f32_in(-10.0, 10.0), 1, 10);
    forall("fedasync_alpha_one_replaces", CASES, &global, |global| {
        let new: Vec<f32> = global.iter().map(|x| x + 1.0).collect();
        let mut w = global.clone();
        fedasync_mix(&mut w, &new, 1.0);
        for (a, b) in w.iter().zip(&new) {
            assert!((a - b).abs() < 1e-6);
        }
    });
}

#[test]
fn staleness_alpha_monotone() {
    let input = triple(f64_in(0.01, 1.0), f64_in(0.0, 2.0), u64_in(0, 100));
    forall(
        "staleness_alpha_monotone",
        CASES,
        &input,
        |&(alpha, exp, s)| {
            let a = staleness_alpha(alpha, s, exp);
            let b = staleness_alpha(alpha, s + 1, exp);
            assert!(b <= a + 1e-12);
            assert!(a <= alpha + 1e-12);
            assert!(b > 0.0);
        },
    );
}

#[test]
fn latency_model_positive_and_bounded_by_degree() {
    let input = pair(any_u64(), usize_in(1, 100));
    forall(
        "latency_model_positive_and_bounded_by_degree",
        CASES,
        &input,
        |&(seed, n)| {
            let mut rng = Rng::new(seed);
            let m = LatencyModel::sample(n, 30.0, 10.0, &[0.2, 0.4, 0.6, 0.8, 1.0], None, &mut rng);
            for c in 0..m.len() {
                let l = m.response_latency(c);
                assert!(l > 0.0);
                // Latency at degree d is base/d, so it is at most base/0.2.
                assert!(l <= 5.0 * (30.0 + 10.0 * 6.0) / 1.0 + 1e4);
            }
        },
    );
}

#[test]
fn perturbation_only_moves_within_degree_set() {
    let input = triple(any_u64(), usize_in(1, 40), usize_in(1, 50));
    forall(
        "perturbation_only_moves_within_degree_set",
        CASES,
        &input,
        |&(seed, n, rounds)| {
            let degrees = vec![0.2, 0.4, 0.6, 0.8, 1.0];
            let mut rng = Rng::new(seed);
            let mut m = LatencyModel::sample(
                n,
                30.0,
                10.0,
                &degrees,
                Some(DynamicsConfig {
                    change_prob: 0.5,
                    degrees: degrees.clone(),
                }),
                &mut rng,
            );
            for _ in 0..rounds {
                for c in 0..n {
                    let _ = m.maybe_perturb(c, &mut rng);
                    assert!(degrees.iter().any(|&d| (m.degree(c) - d).abs() < 1e-12));
                }
            }
        },
    );
}

#[test]
fn surviving_extremes_keep_all_or_drop_all() {
    let input = pair(any_u64(), vec_in(usize_in(0, 300), 0, 40));
    forall(
        "surviving_extremes_keep_all_or_drop_all",
        CASES,
        &input,
        |(seed, members)| {
            let mut rng = Rng::new(*seed);
            let before = rng;
            assert_eq!(
                surviving(members, 0.0, &mut rng),
                *members,
                "failure_prob = 0 must keep every member"
            );
            // The zero-probability path must not consume randomness.
            assert_eq!(rng, before);
            assert!(
                surviving(members, 1.0, &mut rng).is_empty(),
                "failure_prob = 1 must empty the cohort"
            );
        },
    );
}

#[test]
fn surviving_intermediate_is_deterministic_per_seed_and_ordered() {
    let input = triple(
        any_u64(),
        f64_in(0.05, 0.95),
        vec_in(usize_in(0, 300), 0, 40),
    );
    forall(
        "surviving_intermediate_is_deterministic_per_seed_and_ordered",
        CASES,
        &input,
        |(seed, prob, members)| {
            let a = surviving(members, *prob, &mut Rng::new(*seed));
            let b = surviving(members, *prob, &mut Rng::new(*seed));
            assert_eq!(a, b, "same seed must yield the same survivors");
            // Survivors are an order-preserving subsequence of members.
            let mut cursor = members.iter();
            for s in &a {
                assert!(
                    cursor.any(|m| m == s),
                    "survivor {s} out of member order {members:?} -> {a:?}"
                );
            }
        },
    );
}

#[test]
fn explicit_delays_round_trip() {
    let delays = vec_in(f64_in(0.1, 1e3), 1, 50);
    forall("explicit_delays_round_trip", CASES, &delays, |delays| {
        let m = LatencyModel::from_delays(delays, None);
        for (c, &d) in delays.iter().enumerate() {
            assert!((m.response_latency(c) - d).abs() < 1e-12);
        }
    });
}
