//! Property-based tests for aggregation math and the latency model.

use ecofl_fl::aggregate::{fedasync_mix, staleness_alpha, weighted_average};
use ecofl_fl::config::DynamicsConfig;
use ecofl_fl::latency::LatencyModel;
use ecofl_util::Rng;
use proptest::prelude::*;

proptest! {
    #[test]
    fn weighted_average_is_convex_combination(
        updates in proptest::collection::vec(
            (proptest::collection::vec(-10.0f32..10.0, 5), 0.1f64..100.0),
            1..10,
        ),
    ) {
        let refs: Vec<(&[f32], f64)> =
            updates.iter().map(|(p, w)| (p.as_slice(), *w)).collect();
        let avg = weighted_average(&refs);
        for dim in 0..5 {
            let lo = updates.iter().map(|(p, _)| p[dim]).fold(f32::INFINITY, f32::min);
            let hi = updates.iter().map(|(p, _)| p[dim]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(avg[dim] >= lo - 1e-4 && avg[dim] <= hi + 1e-4);
        }
    }

    #[test]
    fn weighted_average_scale_invariant_in_weights(
        params in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 4), 2..6,
        ),
        weights in proptest::collection::vec(0.1f64..10.0, 6),
        scale in 0.1f64..100.0,
    ) {
        let n = params.len();
        let w = &weights[..n];
        let refs: Vec<(&[f32], f64)> =
            params.iter().zip(w).map(|(p, &wt)| (p.as_slice(), wt)).collect();
        let scaled: Vec<(&[f32], f64)> =
            params.iter().zip(w).map(|(p, &wt)| (p.as_slice(), wt * scale)).collect();
        let a = weighted_average(&refs);
        let b = weighted_average(&scaled);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn fedasync_mix_interpolates(
        global in proptest::collection::vec(-10.0f32..10.0, 1..20),
        delta in proptest::collection::vec(-10.0f32..10.0, 1..20),
        alpha in 0.01f64..1.0,
    ) {
        let n = global.len().min(delta.len());
        let mut w = global[..n].to_vec();
        let new = &delta[..n];
        let before = w.clone();
        fedasync_mix(&mut w, new, alpha);
        for i in 0..n {
            let lo = before[i].min(new[i]) - 1e-4;
            let hi = before[i].max(new[i]) + 1e-4;
            prop_assert!(w[i] >= lo && w[i] <= hi);
        }
    }

    #[test]
    fn fedasync_alpha_one_replaces(
        global in proptest::collection::vec(-10.0f32..10.0, 1..10),
    ) {
        let new: Vec<f32> = global.iter().map(|x| x + 1.0).collect();
        let mut w = global.clone();
        fedasync_mix(&mut w, &new, 1.0);
        for (a, b) in w.iter().zip(&new) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn staleness_alpha_monotone(alpha in 0.01f64..1.0, exp in 0.0f64..2.0, s in 0u64..100) {
        let a = staleness_alpha(alpha, s, exp);
        let b = staleness_alpha(alpha, s + 1, exp);
        prop_assert!(b <= a + 1e-12);
        prop_assert!(a <= alpha + 1e-12);
        prop_assert!(b > 0.0);
    }

    #[test]
    fn latency_model_positive_and_bounded_by_degree(
        seed in any::<u64>(), n in 1usize..100,
    ) {
        let mut rng = Rng::new(seed);
        let m = LatencyModel::sample(n, 30.0, 10.0, &[0.2, 0.4, 0.6, 0.8, 1.0], None, &mut rng);
        for c in 0..m.len() {
            let l = m.response_latency(c);
            prop_assert!(l > 0.0);
            // Latency at degree d is base/d, so it is at most base/0.2.
            prop_assert!(l <= 5.0 * (30.0 + 10.0 * 6.0) / 1.0 + 1e4);
        }
    }

    #[test]
    fn perturbation_only_moves_within_degree_set(
        seed in any::<u64>(), n in 1usize..40, rounds in 1usize..50,
    ) {
        let degrees = vec![0.2, 0.4, 0.6, 0.8, 1.0];
        let mut rng = Rng::new(seed);
        let mut m = LatencyModel::sample(
            n, 30.0, 10.0, &degrees,
            Some(DynamicsConfig { change_prob: 0.5, degrees: degrees.clone() }),
            &mut rng,
        );
        for _ in 0..rounds {
            for c in 0..n {
                let _ = m.maybe_perturb(c, &mut rng);
                prop_assert!(degrees.iter().any(|&d| (m.degree(c) - d).abs() < 1e-12));
            }
        }
    }

    #[test]
    fn explicit_delays_round_trip(
        delays in proptest::collection::vec(0.1f64..1e3, 1..50),
    ) {
        let m = LatencyModel::from_delays(&delays, None);
        for (c, &d) in delays.iter().enumerate() {
            prop_assert!((m.response_latency(c) - d).abs() < 1e-12);
        }
    }
}
